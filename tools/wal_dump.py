#!/usr/bin/env python3
"""Inspect smoother::persist WAL and snapshot files.

Decodes the frozen on-disk framing (see src/smoother/persist/engine.hpp):

    wal.bin       [magic "SMWL"][u32 version LE]
                  records: [u32 payload_len][u32 crc32c(seq || payload)]
                           [u64 seq][payload]
    snapshot.bin  [magic "SMSN"][u32 version LE] + one record, same framing

Every record's CRC32C is re-verified. A torn or CRC-failing tail is reported
with its byte offset — the same prefix rule PersistEngine::recover() applies.
With --checkpoint, the leading fields of the dsim pipeline's checkpoint
payload (u64 committed_intervals, u64 samples_consumed, f64 soc_fraction,
f64 injector_last_clean_kw, f64 shadow_guard_last_good_kw) are decoded too.

Usage:
    tools/wal_dump.py STATE_DIR              # dumps snapshot.bin + wal.bin
    tools/wal_dump.py path/to/wal.bin --checkpoint
    tools/wal_dump.py DIR --limit 5          # first/last records only

Exit status: 0 if every file parsed clean, 1 if any tail was torn or failed
its CRC, 2 on usage/IO errors.
"""

import argparse
import os
import struct
import sys

WAL_MAGIC = b"SMWL"
SNAPSHOT_MAGIC = b"SMSN"
HEADER_BYTES = 8
RECORD_HEADER_BYTES = 16
FORMAT_VERSION = 1

# Reflected Castagnoli polynomial; matches smoother::persist::crc32c
# (golden vector: crc32c(b"123456789") == 0xE3069283).
_CRC_TABLE = []
for _i in range(256):
    _crc = _i
    for _ in range(8):
        _crc = (_crc >> 1) ^ (0x82F63B78 if _crc & 1 else 0)
    _CRC_TABLE.append(_crc)


def crc32c(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def checkpoint_preamble(payload: bytes) -> str:
    if len(payload) < 40:
        return "payload too short for a checkpoint preamble"
    committed, samples = struct.unpack_from("<QQ", payload, 0)
    soc, clean_kw, good_kw = struct.unpack_from("<ddd", payload, 16)
    return (
        f"committed={committed} samples={samples} soc={soc:.6f} "
        f"injector_clean_kw={clean_kw:.3f} guard_good_kw={good_kw:.3f}"
    )


def dump_file(path: str, args) -> bool:
    """Prints the file's records; returns True when the whole file is clean."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        print(f"wal_dump: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    print(f"== {path} ({len(data)} bytes)")
    if len(data) < HEADER_BYTES:
        print(f"   torn header: {len(data)} bytes, need {HEADER_BYTES}")
        return False
    magic, version = data[:4], struct.unpack_from("<I", data, 4)[0]
    kind = {WAL_MAGIC: "wal", SNAPSHOT_MAGIC: "snapshot"}.get(magic)
    if kind is None:
        print(f"   bad magic {magic!r}: not a smoother persistence file")
        return False
    newer = " (NEWER THAN THIS TOOL)" if version > FORMAT_VERSION else ""
    print(f"   {kind} file, format version {version}{newer}")

    # Collect records first so --limit can elide the middle.
    records = []  # (offset, seq, payload, crc_ok)
    offset = HEADER_BYTES
    clean = True
    while offset < len(data):
        if offset + RECORD_HEADER_BYTES > len(data):
            print(
                f"   torn record header at offset {offset}: "
                f"{len(data) - offset} bytes (recovery truncates here)"
            )
            clean = False
            break
        length, stored_crc, seq = struct.unpack_from("<IIQ", data, offset)
        end = offset + RECORD_HEADER_BYTES + length
        if end > len(data):
            print(
                f"   torn record at offset {offset}: seq={seq} promises "
                f"{length} payload bytes, file has {len(data) - offset - RECORD_HEADER_BYTES}"
                " (recovery truncates here)"
            )
            clean = False
            break
        checksummed = data[offset + 8 : end]
        payload = data[offset + RECORD_HEADER_BYTES : end]
        crc_ok = crc32c(checksummed) == stored_crc
        records.append((offset, seq, payload, crc_ok))
        if not crc_ok:
            clean = False
            break  # recovery stops at the first bad record too
        offset = end

    shown = range(len(records))
    if args.limit and len(records) > 2 * args.limit:
        shown = list(range(args.limit)) + list(
            range(len(records) - args.limit, len(records))
        )
    last_printed = -1
    for i in shown:
        if i != last_printed + 1:
            print(f"   ... {i - last_printed - 1} records elided ...")
        last_printed = i
        off, seq, payload, crc_ok = records[i]
        line = (
            f"   record {i}: offset={off} seq={seq} "
            f"payload={len(payload)}B crc={'ok' if crc_ok else 'BAD'}"
        )
        if args.checkpoint:
            line += f"\n      {checkpoint_preamble(payload)}"
        print(line)
    if records and not records[-1][3]:
        print(
            f"   CRC mismatch at offset {records[-1][0]}: scan stopped "
            "(recovery truncates here)"
        )
    print(f"   {len(records)} valid record(s)" + ("" if clean else " before damage"))
    return clean


def main() -> int:
    parser = argparse.ArgumentParser(
        description="dump smoother::persist WAL/snapshot files"
    )
    parser.add_argument("paths", nargs="+", help="state directory or file")
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="decode the dsim checkpoint preamble of each payload",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="print only the first/last N records of each file",
    )
    args = parser.parse_args()

    files = []
    for path in args.paths:
        if os.path.isdir(path):
            found = [
                os.path.join(path, name)
                for name in ("snapshot.bin", "wal.bin")
                if os.path.exists(os.path.join(path, name))
            ]
            if not found:
                print(f"wal_dump: no persistence files in {path}", file=sys.stderr)
                return 2
            files.extend(found)
        else:
            files.append(path)

    all_clean = True
    for path in files:
        all_clean = dump_file(path, args) and all_clean
    return 0 if all_clean else 1


if __name__ == "__main__":
    sys.exit(main())
