// smoother_cli: command-line front end for the Smoother library.
//
// See smoother::cli::main_usage() (printed on no/unknown command) and the
// per-command --help-style usage printed on any argument error.
#include <iostream>
#include <string>
#include <vector>

#include "smoother/cli/commands.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << smoother::cli::main_usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    std::cout << smoother::cli::main_usage();
    return 0;
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  return smoother::cli::run_command(command, args, std::cout, std::cerr);
}
