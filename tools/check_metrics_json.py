#!/usr/bin/env python3
"""Validate a --metrics-out file emitted by the bench harness.

The harness (bench/harness.hpp) writes one JSON document per run:

    {"bench": "<binary>",
     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
     "trace": [<JSON-lines span/log events, one object per entry>]}

This checker enforces the schema plus the layer's internal invariants
(histogram bucket arithmetic, span nesting fields, the wall_ms timing
contract), so the ctest smoke targets fail when an exporter regresses.

Usage:
    check_metrics_json.py FILE [--require-span NAME]... \
        [--require-counter NAME]...
    check_metrics_json.py BENCH_dsim.json --dsim
    check_metrics_json.py BENCH_recovery.json --recovery
    check_metrics_json.py BENCH_fleet.json --fleet
    check_metrics_json.py BENCH_kernels.json --kernels

NAME accepts fnmatch globs (e.g. 'solver.qp.structured_*'), which require at
least one matching span/counter; plain names keep exact-match semantics.

--dsim switches to the BENCH_dsim.json schema emitted by bench/macro_dsim:
year-run gates (zero violations, byte-identical replay, wall < 60 s), the
fault-rate sweep (rates strictly increasing, fallback curve monotone
non-decreasing, zero violations) and the fuzz section (zero crashes and
violation cases, empty reproducer).

--recovery switches to the BENCH_recovery.json schema emitted by
bench/macro_recovery: the crash sweep (>= 50 points, every one recovered
byte-identically and violation-free, torn-write cases present), the WAL
append overhead (< 5 %, byte-identical output) and the recovery-time
ladder (replay counts exact, records strictly increasing).

--fleet switches to the BENCH_fleet.json schema emitted by
bench/macro_fleet: the 10k-tenant scale gate, serial-vs-parallel
byte-identity, factorization sharing (pooled setups far below the tenant
count), ordered p50/p99/p999 latency, and the thread ladder (the >= 3x
speedup gate arms only on hosts with 8 hardware threads; others record
"skipped-hardware").

--kernels switches to the BENCH_kernels.json schema emitted by
bench/micro_kernels: the SIMD tier record (tier/width/reassociates
consistent), the kernel roofline rows (full m x kernel coverage, positive
timings), the BatchSolver rows (batched-vs-scalar agreement: max_x_diff
exactly 0 on non-reassociating tiers, within solver tolerance otherwise)
and the gate_armed flag agreeing with the recorded width.
"""

import argparse
import fnmatch
import json
import sys

SPAN_KEYS = {"type", "name", "seq", "parent", "depth", "fields", "wall_ms"}
LOG_KEYS = {"type", "level", "component", "message"}


def fail(message):
    print(f"check_metrics_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition, message):
    if not condition:
        fail(message)


def check_counters(counters):
    expect(isinstance(counters, dict), "metrics.counters must be an object")
    for name, value in counters.items():
        expect(isinstance(value, int) and not isinstance(value, bool),
               f"counter {name!r} must be an integer, got {value!r}")
        expect(value >= 0, f"counter {name!r} is negative: {value}")


def check_gauges(gauges):
    expect(isinstance(gauges, dict), "metrics.gauges must be an object")
    for name, value in gauges.items():
        expect(isinstance(value, (int, float)) and not isinstance(value, bool),
               f"gauge {name!r} must be a number, got {value!r}")


def check_histograms(histograms):
    expect(isinstance(histograms, dict), "metrics.histograms must be an object")
    for name, data in histograms.items():
        expect(isinstance(data, dict), f"histogram {name!r} must be an object")
        for key in ("timing", "count", "sum", "bounds", "buckets"):
            expect(key in data, f"histogram {name!r} missing {key!r}")
        expect(isinstance(data["timing"], bool),
               f"histogram {name!r}: timing must be a bool")
        bounds = data["bounds"]
        buckets = data["buckets"]
        expect(len(bounds) >= 1, f"histogram {name!r}: empty bounds")
        expect(all(a < b for a, b in zip(bounds, bounds[1:])),
               f"histogram {name!r}: bounds not strictly increasing")
        expect(len(buckets) == len(bounds) + 1,
               f"histogram {name!r}: want {len(bounds) + 1} buckets "
               f"(bounds + overflow), got {len(buckets)}")
        expect(all(isinstance(b, int) and b >= 0 for b in buckets),
               f"histogram {name!r}: buckets must be non-negative integers")
        expect(sum(buckets) == data["count"],
               f"histogram {name!r}: bucket sum {sum(buckets)} != "
               f"count {data['count']}")


def check_trace(trace):
    expect(isinstance(trace, list), "trace must be an array")
    seqs = set()
    for i, event in enumerate(trace):
        expect(isinstance(event, dict), f"trace[{i}] must be an object")
        kind = event.get("type")
        if kind == "span":
            expect(set(event) == SPAN_KEYS,
                   f"trace[{i}] span keys {sorted(event)} != "
                   f"{sorted(SPAN_KEYS)}")
            expect(isinstance(event["seq"], int) and event["seq"] >= 0,
                   f"trace[{i}]: bad seq {event['seq']!r}")
            expect(event["seq"] not in seqs,
                   f"trace[{i}]: duplicate seq {event['seq']}")
            seqs.add(event["seq"])
            expect(isinstance(event["parent"], int) and event["parent"] >= -1,
                   f"trace[{i}]: bad parent {event['parent']!r}")
            expect(isinstance(event["depth"], int) and event["depth"] >= 0,
                   f"trace[{i}]: bad depth {event['depth']!r}")
            expect((event["parent"] == -1) == (event["depth"] == 0),
                   f"trace[{i}]: parent/depth disagree about being a root")
            expect(isinstance(event["fields"], dict),
                   f"trace[{i}]: fields must be an object")
            # wall_ms is the one sanctioned wall-clock field; it lives
            # outside fields so maskers can target it without parsing.
            expect(isinstance(event["wall_ms"], (int, float))
                   and event["wall_ms"] >= 0,
                   f"trace[{i}]: bad wall_ms {event['wall_ms']!r}")
            expect("wall_ms" not in event["fields"],
                   f"trace[{i}]: wall_ms must not appear inside fields")
        elif kind == "log":
            expect(set(event) == LOG_KEYS,
                   f"trace[{i}] log keys {sorted(event)} != "
                   f"{sorted(LOG_KEYS)}")
            expect(event["level"] in ("DEBUG", "INFO", "WARN", "ERROR"),
                   f"trace[{i}]: unknown level {event['level']!r}")
        else:
            fail(f"trace[{i}]: unknown event type {kind!r}")
    return {event["name"] for event in trace if event.get("type") == "span"}


def check_dsim(path, doc):
    """Validate the BENCH_dsim.json schema (bench/macro_dsim)."""
    expect(isinstance(doc, dict), "top level must be an object")
    want = {"bench", "seed", "year", "rate_sweep", "fuzz", "monotone",
            "deterministic", "ok"}
    expect(set(doc) == want,
           f"top-level keys {sorted(doc)} != {sorted(want)}")
    expect(doc["bench"] == "macro_dsim",
           f"bench must be 'macro_dsim', got {doc['bench']!r}")
    expect(isinstance(doc["seed"], int) and doc["seed"] >= 0,
           f"seed must be a non-negative integer, got {doc['seed']!r}")

    year = doc["year"]
    expect(isinstance(year, dict), "year must be an object")
    year_keys = {"days", "samples", "intervals", "events", "fallback_rate",
                 "violations", "wall_seconds", "sim_speedup",
                 "replay_identical"}
    expect(set(year) == year_keys,
           f"year keys {sorted(year)} != {sorted(year_keys)}")
    expect(year["days"] >= 365, f"year.days must cover a year: {year['days']}")
    for key in ("samples", "intervals", "events"):
        expect(isinstance(year[key], int) and year[key] > 0,
               f"year.{key} must be a positive integer, got {year[key]!r}")
    expect(year["events"] >= year["samples"],
           "year.events must cover at least one event per sample")
    expect(0.0 <= year["fallback_rate"] <= 1.0,
           f"year.fallback_rate outside [0,1]: {year['fallback_rate']}")
    expect(year["violations"] == 0,
           f"year run recorded {year['violations']} invariant violations")
    expect(0.0 < year["wall_seconds"] < 60.0,
           f"year.wall_seconds outside (0,60): {year['wall_seconds']}")
    expect(year["sim_speedup"] > 1.0,
           f"year.sim_speedup must be > 1: {year['sim_speedup']}")
    expect(year["replay_identical"] is True, "year replay was not identical")

    sweep = doc["rate_sweep"]
    expect(isinstance(sweep, list) and len(sweep) >= 2,
           "rate_sweep must list at least two cells")
    for i, cell in enumerate(sweep):
        expect(isinstance(cell, dict) and
               set(cell) == {"rate", "fallback_rate", "violations"},
               f"rate_sweep[{i}] must hold rate/fallback_rate/violations")
        expect(cell["violations"] == 0,
               f"rate_sweep[{i}] recorded {cell['violations']} violations")
    rates = [cell["rate"] for cell in sweep]
    expect(all(a < b for a, b in zip(rates, rates[1:])),
           f"rate_sweep rates not strictly increasing: {rates}")
    curve = [cell["fallback_rate"] for cell in sweep]
    expect(all(a <= b for a, b in zip(curve, curve[1:])),
           f"fallback curve not monotone non-decreasing: {curve}")

    fuzz = doc["fuzz"]
    expect(isinstance(fuzz, dict) and
           set(fuzz) == {"cases", "crashes", "violation_cases", "reproducer"},
           "fuzz must hold cases/crashes/violation_cases/reproducer")
    expect(isinstance(fuzz["cases"], int) and fuzz["cases"] > 0,
           f"fuzz.cases must be positive, got {fuzz['cases']!r}")
    expect(fuzz["crashes"] == 0, f"fuzz recorded {fuzz['crashes']} crashes")
    expect(fuzz["violation_cases"] == 0,
           f"fuzz recorded {fuzz['violation_cases']} violation cases")
    expect(fuzz["reproducer"] == "",
           f"fuzz left a reproducer: {fuzz['reproducer']!r}")

    expect(doc["monotone"] is True, "monotone gate is false")
    expect(doc["deterministic"] is True, "deterministic gate is false")
    expect(doc["ok"] is True, "overall ok gate is false")

    print(f"check_metrics_json: OK: {path} (dsim schema; "
          f"{year['intervals']} intervals, {len(sweep)} sweep cells, "
          f"{fuzz['cases']} fuzz cases)")


def check_recovery(path, doc):
    """Validate the BENCH_recovery.json schema (bench/macro_recovery)."""
    expect(isinstance(doc, dict), "top level must be an object")
    want = {"bench", "seed", "crash_sweep", "overhead", "recovery_ladder",
            "ok"}
    expect(set(doc) == want,
           f"top-level keys {sorted(doc)} != {sorted(want)}")
    expect(doc["bench"] == "macro_recovery",
           f"bench must be 'macro_recovery', got {doc['bench']!r}")
    expect(isinstance(doc["seed"], int) and doc["seed"] >= 0,
           f"seed must be a non-negative integer, got {doc['seed']!r}")

    sweep = doc["crash_sweep"]
    expect(isinstance(sweep, dict), "crash_sweep must be an object")
    sweep_keys = {"points", "recovered", "cold_starts", "torn", "identical",
                  "clean", "reference_intervals", "first_failure"}
    expect(set(sweep) == sweep_keys,
           f"crash_sweep keys {sorted(sweep)} != {sorted(sweep_keys)}")
    expect(sweep["points"] >= 50,
           f"crash_sweep.points must be >= 50, got {sweep['points']}")
    expect(sweep["recovered"] + sweep["cold_starts"] == sweep["points"],
           "crash_sweep: recovered + cold_starts != points")
    expect(sweep["recovered"] > 0, "crash sweep never recovered durable state")
    expect(sweep["torn"] > 0, "crash sweep exercised no torn-write cases")
    expect(sweep["identical"] == sweep["points"],
           f"only {sweep['identical']}/{sweep['points']} crash cases resumed "
           f"byte-identically")
    expect(sweep["clean"] == sweep["points"],
           f"only {sweep['clean']}/{sweep['points']} crash cases resumed "
           f"violation-free")
    expect(sweep["reference_intervals"] > 0,
           "crash_sweep.reference_intervals must be positive")
    expect(sweep["first_failure"] == "",
           f"crash sweep failed: {sweep['first_failure']!r}")

    overhead = doc["overhead"]
    expect(isinstance(overhead, dict), "overhead must be an object")
    overhead_keys = {"baseline_seconds", "persist_seconds",
                     "overhead_fraction", "wal_records", "wal_bytes",
                     "output_identical"}
    expect(set(overhead) == overhead_keys,
           f"overhead keys {sorted(overhead)} != {sorted(overhead_keys)}")
    expect(overhead["baseline_seconds"] > 0.0,
           "overhead.baseline_seconds must be positive")
    expect(overhead["persist_seconds"] > 0.0,
           "overhead.persist_seconds must be positive")
    expect(overhead["overhead_fraction"] < 0.05,
           f"WAL append overhead {overhead['overhead_fraction']:.4f} "
           f"breaches the 5% budget")
    expect(overhead["wal_records"] > 0, "overhead run appended no WAL records")
    expect(overhead["wal_bytes"] > 0, "overhead run wrote an empty WAL")
    expect(overhead["output_identical"] is True,
           "attaching the engine changed the simulation output")

    ladder = doc["recovery_ladder"]
    expect(isinstance(ladder, list) and len(ladder) >= 2,
           "recovery_ladder must list at least two rungs")
    for i, rung in enumerate(ladder):
        expect(isinstance(rung, dict) and
               set(rung) == {"wal_records", "wal_bytes", "recover_us",
                             "replayed"},
               f"recovery_ladder[{i}] must hold wal_records/wal_bytes/"
               f"recover_us/replayed")
        expect(rung["replayed"] == rung["wal_records"],
               f"recovery_ladder[{i}]: replayed {rung['replayed']} != "
               f"wal_records {rung['wal_records']}")
        expect(rung["recover_us"] > 0.0,
               f"recovery_ladder[{i}]: non-positive recover_us")
    records = [rung["wal_records"] for rung in ladder]
    expect(all(a < b for a, b in zip(records, records[1:])),
           f"recovery_ladder records not strictly increasing: {records}")
    bytes_col = [rung["wal_bytes"] for rung in ladder]
    expect(all(a < b for a, b in zip(bytes_col, bytes_col[1:])),
           f"recovery_ladder bytes not strictly increasing: {bytes_col}")

    expect(doc["ok"] is True, "overall ok gate is false")

    print(f"check_metrics_json: OK: {path} (recovery schema; "
          f"{sweep['points']} crash points ({sweep['torn']} torn), "
          f"{overhead['overhead_fraction'] * 100.0:.2f}% append overhead, "
          f"{len(ladder)} ladder rungs)")


def check_fleet(path, doc):
    """Validate the BENCH_fleet.json schema (bench/macro_fleet)."""
    expect(isinstance(doc, dict), "top level must be an object")
    want = {"bench", "seed", "tenants", "shards", "intervals", "plans",
            "plans_per_sec", "latency_us", "batched_factorizations",
            "batched_solves", "batched_lanes", "batch_occupancy",
            "shared_solvers", "arena_bytes", "hardware_concurrency",
            "ladder", "speedup_gate", "deterministic", "ok"}
    expect(set(doc) == want,
           f"top-level keys {sorted(doc)} != {sorted(want)}")
    expect(doc["bench"] == "macro_fleet",
           f"bench must be 'macro_fleet', got {doc['bench']!r}")
    expect(isinstance(doc["seed"], int) and doc["seed"] >= 0,
           f"seed must be a non-negative integer, got {doc['seed']!r}")
    expect(doc["tenants"] >= 10000,
           f"fleet scale gate: tenants must be >= 10000, got {doc['tenants']}")
    expect(doc["shards"] >= 1, "shards must be >= 1")
    expect(doc["plans"] >= doc["tenants"],
           f"plans {doc['plans']} < tenants {doc['tenants']}: the run never "
           f"completed one interval per tenant")
    expect(doc["plans_per_sec"] > 0.0, "plans_per_sec must be positive")

    latency = doc["latency_us"]
    expect(isinstance(latency, dict) and
           set(latency) == {"p50", "p99", "p999"},
           "latency_us must hold exactly p50/p99/p999")
    expect(latency["p50"] > 0.0, "latency_us.p50 must be positive")
    expect(latency["p50"] <= latency["p99"] <= latency["p999"],
           f"latency percentiles not ordered: {latency}")

    expect(doc["batched_factorizations"] > 0,
           "batched_factorizations must be positive (no pooled setups ran)")
    expect(doc["batched_factorizations"] < doc["tenants"],
           f"factorization sharing gate: {doc['batched_factorizations']} "
           f"setups for {doc['tenants']} tenants — pooling is not sharing")
    expect(doc["batched_solves"] > 0,
           "batched_solves must be positive (the SoA batch path never ran)")
    expect(doc["batched_lanes"] >= doc["batched_solves"],
           "batched_lanes must cover at least one lane per solve")
    expect(doc["batch_occupancy"] > 1.0,
           f"batch occupancy gate: {doc['batch_occupancy']} lanes/solve — "
           f"batching is not sharing iteration work")
    expect(doc["arena_bytes"] > 0, "arena_bytes must be positive")

    ladder = doc["ladder"]
    expect(isinstance(ladder, list) and len(ladder) >= 2,
           "ladder must list at least two thread counts")
    for i, rung in enumerate(ladder):
        expect(isinstance(rung, dict) and
               set(rung) == {"threads", "wall_s", "speedup"},
               f"ladder[{i}] must hold threads/wall_s/speedup")
        expect(rung["threads"] >= 1, f"ladder[{i}]: threads must be >= 1")
        expect(rung["wall_s"] > 0.0, f"ladder[{i}]: non-positive wall_s")
        expect(rung["speedup"] > 0.0, f"ladder[{i}]: non-positive speedup")
    threads = [rung["threads"] for rung in ladder]
    expect(all(a < b for a, b in zip(threads, threads[1:])),
           f"ladder threads not strictly increasing: {threads}")

    # The speedup gate is hardware-conditional: hosts without 8 real
    # threads record "skipped-hardware" and the ladder is informational.
    expect(doc["speedup_gate"] in ("pass", "skipped-hardware"),
           f"speedup_gate must be 'pass' or 'skipped-hardware', got "
           f"{doc['speedup_gate']!r}")
    if doc["hardware_concurrency"] >= 8:
        expect(doc["speedup_gate"] == "pass",
               "host has >= 8 hardware threads but the speedup gate did "
               "not pass")

    expect(doc["deterministic"] is True,
           "serial-vs-parallel outputs were not byte-identical")
    expect(doc["ok"] is True, "overall ok gate is false")

    print(f"check_metrics_json: OK: {path} (fleet schema; "
          f"{doc['tenants']} tenants x {doc['shards']} shards, "
          f"{doc['plans_per_sec']:.0f} plans/s, "
          f"p999 {latency['p999']:.1f} us, "
          f"speedup gate {doc['speedup_gate']})")


def check_kernels(path, doc):
    """Validate the BENCH_kernels.json schema (bench/micro_kernels)."""
    expect(isinstance(doc, dict), "top level must be an object")
    want = {"bench", "scenario", "tier", "width", "reassociates",
            "gate_armed", "kernels", "batch_solver"}
    expect(set(doc) == want,
           f"top-level keys {sorted(doc)} != {sorted(want)}")
    expect(doc["bench"] == "micro_kernels",
           f"bench must be 'micro_kernels', got {doc['bench']!r}")
    expect(doc["tier"] in ("scalar", "sse2", "neon", "avx2"),
           f"unknown SIMD tier {doc['tier']!r}")
    expect(isinstance(doc["width"], int) and doc["width"] >= 1,
           f"width must be a positive integer, got {doc['width']!r}")
    expect(doc["reassociates"] == (doc["width"] >= 4),
           f"reassociates {doc['reassociates']} disagrees with width "
           f"{doc['width']} (the reassociation contract is width >= 4)")
    expect(doc["gate_armed"] == (doc["width"] >= 4),
           f"gate_armed {doc['gate_armed']} disagrees with width "
           f"{doc['width']} (the 2x gate arms on width >= 4)")

    kernels = doc["kernels"]
    expect(isinstance(kernels, list) and kernels, "kernels must be non-empty")
    row_keys = {"name", "m", "lanes", "simd_ns_per_elem",
                "scalar_ns_per_elem", "gb_per_s", "speedup"}
    seen = set()
    for i, row in enumerate(kernels):
        expect(isinstance(row, dict) and set(row) == row_keys,
               f"kernels[{i}] keys {sorted(row)} != {sorted(row_keys)}")
        key = (row["name"], row["m"], row["lanes"])
        expect(key not in seen, f"kernels[{i}]: duplicate row {key}")
        seen.add(key)
        for field in ("simd_ns_per_elem", "scalar_ns_per_elem", "gb_per_s",
                      "speedup"):
            expect(row[field] > 0.0,
                   f"kernels[{i}].{field} must be positive: {row[field]}")
    stream = {"axpby", "dual_update", "clamp", "residual_max",
              "prefix_sum", "suffix_sum"}
    for m in (72, 288, 1440):
        for name in stream:
            expect((name, m, 1) in seen,
                   f"missing stream kernel row ({name!r}, m={m})")
        for lanes in (1, 8, 64):
            expect(("kkt_solve_lanes", m, lanes) in seen,
                   f"missing kkt_solve_lanes row (m={m}, lanes={lanes})")

    batch = doc["batch_solver"]
    expect(isinstance(batch, list) and batch,
           "batch_solver must be non-empty")
    batch_keys = {"m", "lanes", "batched_lanes_per_s", "scalar_lanes_per_s",
                  "speedup", "max_x_diff"}
    tolerance = 1e-6 if doc["reassociates"] else 0.0
    for i, row in enumerate(batch):
        expect(isinstance(row, dict) and set(row) == batch_keys,
               f"batch_solver[{i}] keys {sorted(row)} != "
               f"{sorted(batch_keys)}")
        expect(row["batched_lanes_per_s"] > 0.0 and
               row["scalar_lanes_per_s"] > 0.0,
               f"batch_solver[{i}]: non-positive throughput")
        expect(row["max_x_diff"] <= tolerance,
               f"batch_solver[{i}] (m={row['m']}, K={row['lanes']}): "
               f"batched-vs-scalar max_x_diff {row['max_x_diff']} breaches "
               f"the {doc['tier']} agreement contract (tol {tolerance})")

    print(f"check_metrics_json: OK: {path} (kernels schema; tier "
          f"{doc['tier']} width {doc['width']}, {len(kernels)} kernel rows, "
          f"{len(batch)} batch rows, gate "
          f"{'armed' if doc['gate_armed'] else 'skipped'})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="--metrics-out JSON file to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a span with this name is present")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this counter is present and > 0")
    parser.add_argument("--dsim", action="store_true",
                        help="validate the BENCH_dsim.json schema instead of "
                             "a --metrics-out file")
    parser.add_argument("--recovery", action="store_true",
                        help="validate the BENCH_recovery.json schema instead "
                             "of a --metrics-out file")
    parser.add_argument("--fleet", action="store_true",
                        help="validate the BENCH_fleet.json schema instead "
                             "of a --metrics-out file")
    parser.add_argument("--kernels", action="store_true",
                        help="validate the BENCH_kernels.json schema instead "
                             "of a --metrics-out file")
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{args.file}: {error}")

    if args.dsim:
        check_dsim(args.file, doc)
        return
    if args.recovery:
        check_recovery(args.file, doc)
        return
    if args.fleet:
        check_fleet(args.file, doc)
        return
    if args.kernels:
        check_kernels(args.file, doc)
        return

    expect(isinstance(doc, dict), "top level must be an object")
    expect(set(doc) == {"bench", "metrics", "trace"},
           f"top-level keys {sorted(doc)} != ['bench', 'metrics', 'trace']")
    expect(isinstance(doc["bench"], str) and doc["bench"],
           "bench must be a non-empty string")
    metrics = doc["metrics"]
    expect(isinstance(metrics, dict) and
           set(metrics) == {"counters", "gauges", "histograms"},
           "metrics must hold exactly counters/gauges/histograms")
    check_counters(metrics["counters"])
    check_gauges(metrics["gauges"])
    check_histograms(metrics["histograms"])
    span_names = check_trace(doc["trace"])

    for name in args.require_span:
        expect(any(fnmatch.fnmatchcase(span, name) for span in span_names),
               f"required span {name!r} absent (saw {sorted(span_names)})")
    for name in args.require_counter:
        matches = [value for counter, value in metrics["counters"].items()
                   if fnmatch.fnmatchcase(counter, name)]
        expect(any(value > 0 for value in matches),
               f"required counter {name!r} absent or zero "
               f"(saw {sorted(metrics['counters'])})")

    print(f"check_metrics_json: OK: {args.file} "
          f"({len(metrics['counters'])} counters, "
          f"{len(doc['trace'])} trace events)")


if __name__ == "__main__":
    main()
