#!/usr/bin/env python3
"""Latency-regression gate: diff a fresh BENCH_*.json against its baseline.

The bench harness binaries emit machine-readable result files
(BENCH_kernels.json, BENCH_solver.json, BENCH_fleet.json, ...); the
checked-in baselines under bench/baselines/ record the performance of the
commit that last touched the hot paths. This tool compares the metrics
that matter for each bench against the baseline within a tolerance band
and exits non-zero on regression, so a ctest run catches "the solver got
2x slower" the same way it catches "the solver got wrong".

Design notes:

  * Tolerance bands, not equality: micro-benchmark numbers on shared CI
    hosts jitter. The default band is generous (a metric may be up to
    --tolerance x worse than baseline, default 1.5x) — the gate exists to
    catch step-function regressions (an accidental O(m^2) loop, a dropped
    factorization cache, a deoptimized kernel), not 5% noise.

  * Only ratio metrics and throughputs are gated. Absolute wall times
    vary with the host; speedup-vs-scalar and lanes-per-second style
    metrics are self-normalizing (both sides run on the same machine), so
    they transfer across hosts far better.

  * Tier-aware: BENCH_kernels.json records the SIMD tier it was built
    with. Comparing an avx2 run against an sse2 baseline is meaningless,
    so a tier mismatch skips the comparison (exit 0) with a notice.

  * --self-test runs the comparator against synthetic pass/fail fixtures
    and is wired as the bench_regress_smoke ctest, so the gate itself is
    tested: a regressed fixture must fail, an identical one must pass.

Usage:
    bench_regress.py CURRENT.json BASELINE.json [--tolerance 1.5]
    bench_regress.py --self-test

Exit codes: 0 = within tolerance (or skipped: tier mismatch / no gated
metrics), 1 = regression, 2 = usage/schema error.
"""

import argparse
import json
import sys


def fail(message):
    print(f"bench_regress: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def schema_error(message):
    print(f"bench_regress: ERROR: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        schema_error(f"{path}: {error}")


class Comparison:
    """Accumulates gated metrics and evaluates the tolerance band."""

    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.rows = []  # (metric, current, baseline, ratio, ok)
        self.regressions = []

    def gate_higher_is_better(self, metric, current, baseline):
        """current must be >= baseline / tolerance."""
        if baseline <= 0.0:
            return  # nothing meaningful to compare against
        ratio = current / baseline
        ok = ratio >= 1.0 / self.tolerance
        self.rows.append((metric, current, baseline, ratio, ok))
        if not ok:
            self.regressions.append(
                f"{metric}: {current:.3f} vs baseline {baseline:.3f} "
                f"({ratio:.2f}x, floor {1.0 / self.tolerance:.2f}x)")

    def report(self, label):
        if not self.rows:
            print(f"bench_regress: SKIP: {label}: no gated metrics in common")
            return 0
        width = max(len(row[0]) for row in self.rows)
        for metric, current, baseline, ratio, ok in self.rows:
            print(f"  {metric:<{width}}  current {current:>12.3f}  "
                  f"baseline {baseline:>12.3f}  ratio {ratio:5.2f}x  "
                  f"{'ok' if ok else 'REGRESSED'}")
        if self.regressions:
            print(f"bench_regress: FAIL: {label}: "
                  f"{len(self.regressions)} metric(s) regressed beyond "
                  f"{self.tolerance:.2f}x:", file=sys.stderr)
            for line in self.regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"bench_regress: OK: {label}: {len(self.rows)} metric(s) "
              f"within {self.tolerance:.2f}x of baseline")
        return 0


def index_rows(rows, *keys):
    """{(row[k] for k in keys): row} over a list of JSON objects."""
    out = {}
    for row in rows:
        out[tuple(row[k] for k in keys)] = row
    return out


def compare_kernels(current, baseline, comparison):
    """BENCH_kernels.json: kernel speedups + BatchSolver throughput ratios.

    Returns None when gated (caller reports), or a skip-notice string.
    """
    if current.get("tier") != baseline.get("tier"):
        return (f"SIMD tier mismatch (current {current.get('tier')!r}, "
                f"baseline {baseline.get('tier')!r}); kernel numbers are "
                f"not comparable across tiers")
    base_kernels = index_rows(baseline.get("kernels", []),
                              "name", "m", "lanes")
    for row in current.get("kernels", []):
        key = (row["name"], row["m"], row["lanes"])
        base = base_kernels.get(key)
        if base is None:
            continue
        name = f"kernel.{row['name']}.m{row['m']}.k{row['lanes']}.speedup"
        comparison.gate_higher_is_better(name, row["speedup"],
                                         base["speedup"])
    base_batch = index_rows(baseline.get("batch_solver", []), "m", "lanes")
    for row in current.get("batch_solver", []):
        base = base_batch.get((row["m"], row["lanes"]))
        if base is None:
            continue
        stem = f"batch.m{row['m']}.k{row['lanes']}"
        comparison.gate_higher_is_better(f"{stem}.speedup", row["speedup"],
                                         base["speedup"])
    return None


def compare_solver(current, baseline, comparison):
    """BENCH_solver.json: structured-vs-dense speedup ladder."""
    base_ladder = index_rows(baseline.get("ladder", []), "m")
    for row in current.get("ladder", []):
        base = base_ladder.get((row["m"],))
        if base is None:
            continue
        comparison.gate_higher_is_better(f"structured.m{row['m']}.speedup",
                                         row["speedup"], base["speedup"])
    return None


def compare_fleet(current, baseline, comparison):
    """BENCH_fleet.json: end-to-end plans/sec throughput."""
    comparison.gate_higher_is_better("fleet.plans_per_sec",
                                     current.get("plans_per_sec", 0.0),
                                     baseline.get("plans_per_sec", 0.0))
    return None


COMPARATORS = {
    "micro_kernels": compare_kernels,
    "micro_structured_solver": compare_solver,
    "macro_fleet": compare_fleet,
}


def run_compare(current_path, baseline_path, tolerance):
    current = load(current_path)
    baseline = load(baseline_path)
    bench = current.get("bench")
    if bench != baseline.get("bench"):
        schema_error(f"bench mismatch: current {bench!r} vs baseline "
                     f"{baseline.get('bench')!r}")
    comparator = COMPARATORS.get(bench)
    if comparator is None:
        schema_error(f"no comparator for bench {bench!r} "
                     f"(know: {sorted(COMPARATORS)})")
    comparison = Comparison(tolerance)
    skip = comparator(current, baseline, comparison)
    if skip is not None:
        print(f"bench_regress: SKIP: {current_path}: {skip}")
        return 0
    return comparison.report(f"{current_path} vs {baseline_path}")


def self_test():
    """The gate gates: a regressed fixture fails, the baseline passes."""
    baseline = {
        "bench": "micro_kernels", "tier": "sse2",
        "kernels": [
            {"name": "axpby", "m": 1440, "lanes": 1, "speedup": 1.0},
            {"name": "kkt_solve_lanes", "m": 288, "lanes": 64,
             "speedup": 2.0},
        ],
        "batch_solver": [{"m": 288, "lanes": 64, "speedup": 1.4}],
    }
    identical = json.loads(json.dumps(baseline))
    regressed = json.loads(json.dumps(baseline))
    regressed["kernels"][1]["speedup"] = 0.5  # 4x slower than baseline
    other_tier = json.loads(json.dumps(baseline))
    other_tier["tier"] = "avx2"

    def run_case(current, want_exit, label):
        comparison = Comparison(1.5)
        skip = compare_kernels(current, baseline, comparison)
        if skip is not None:
            got = 0
            print(f"  (skip: {skip})")
        else:
            got = comparison.report(label)
        if got != want_exit:
            fail(f"self-test {label!r}: exit {got}, want {want_exit}")
        print(f"bench_regress: self-test case ok: {label}")

    run_case(identical, 0, "identical-run-passes")
    run_case(regressed, 1, "regressed-run-fails")
    run_case(other_tier, 0, "tier-mismatch-skips")

    # The solver and fleet comparators on minimal fixtures.
    comparison = Comparison(1.5)
    compare_solver({"bench": "micro_structured_solver",
                    "ladder": [{"m": 288, "speedup": 4.0}]},
                   {"bench": "micro_structured_solver",
                    "ladder": [{"m": 288, "speedup": 30.0}]},
                   comparison)
    if comparison.report("solver-regressed") != 1:
        fail("self-test: solver regression not caught")
    print("bench_regress: self-test case ok: solver-regression-caught")

    comparison = Comparison(1.5)
    compare_fleet({"bench": "macro_fleet", "plans_per_sec": 50000.0},
                  {"bench": "macro_fleet", "plans_per_sec": 60000.0},
                  comparison)
    if comparison.report("fleet-within-band") != 0:
        fail("self-test: fleet within-band run flagged")
    print("bench_regress: self-test case ok: fleet-within-band-passes")

    print("bench_regress: self-test OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="?",
                        help="fresh BENCH_*.json from this run")
    parser.add_argument("baseline", nargs="?",
                        help="checked-in baseline JSON to compare against")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="max allowed worsening factor (default 1.5x)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the comparator against synthetic "
                             "pass/fail fixtures")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.current or not args.baseline:
        parser.error("CURRENT and BASELINE are required unless --self-test")
    if args.tolerance <= 1.0:
        schema_error(f"--tolerance must be > 1.0, got {args.tolerance}")
    sys.exit(run_compare(args.current, args.baseline, args.tolerance))


if __name__ == "__main__":
    main()
