#!/usr/bin/env bash
# Configure, build and run the test suite under sanitizers, in two phases:
#
#   1. ASan+UBSan (build-asan/): the resilience acceptance gate — the
#      >=10k-interval mixed-fault soak and friends must run clean — plus
#      the obs exporter/trace tests, the structured-KKT/banded-Cholesky
#      numerics (span-heavy code, worth the bounds checking), the persist
#      codec/engine suites (byte-level decoders fed corrupted input — prime
#      bounds-check territory), the dsim suites including crash recovery
#      (CrashNemesis) and the dsim_soak target (100 fuzzed seeds x 1
#      simulated month through the full online pipeline, with crash-restart
#      cycles), and the fleet layer (arena placement, wire decoders fed
#      torn/corrupt streams, the sharded engine and FleetSim).
#   2. TSan (build-tsan/): the concurrency surface — obs recording from
#      pool workers, the work-stealing ThreadPool (including the
#      pool_stress_soak missed-wakeup stress: 100 rounds x 10k tasks
#      through the queued_/parked_ parking protocol), SweepRunner, and
#      per-task QpSolver instances (dense and structured paths) on sweep
#      workers — plus the dsim_soak crash-restart soak and the FleetEngine
#      serial-vs-parallel suites (shards on pool workers), which exercise
#      the persist engine's file lifecycle under the instrumented runtime.
#   3. Scalar SIMD tier (build-scalar/): the kernel/batched-solver suites
#      rebuilt with SMOOTHER_SIMD=scalar, so the width-1 fallback paths in
#      solver/simd.hpp (the tier every other tier's bit-exactness contract
#      is stated against) are exercised on every sanitized run, not only
#      on hosts without SSE2.
#
# By default each phase runs its focused subset, which keeps the loop
# fast; pass --full to run the whole suite under both sanitizers (the
# scalar-tier phase keeps its kernel focus either way).
#
# Usage:
#   tools/run_sanitized_tests.sh           # focused subsets
#   tools/run_sanitized_tests.sh --full    # every test, both sanitizers
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
asan_filter="Resilience|TelemetryGuard|FaultInjector|HealthReport|Taxonomy|ResultType|OnlineSmoother|Csv|Battery|FlexibleSmoothing|Obs|Banded|Structured|FsOps|SolverWorkspace|EventLoop|BuggifyConfig|InvariantChecker|PipelineSim|TraceFuzzer|Crc32c|Codec|StateCodec|Engine|CrashNemesis|dsim_soak|Arena|ShardOf|Wire|SolverPool|FleetEngine|FleetSim"
tsan_filter="Obs|ThreadPool|SweepRunner|TaskRng|ParamGrid|Qp|Structured|dsim_soak|FleetEngine|FleetSim|pool_stress_soak"
if [[ "${1:-}" == "--full" ]]; then
  asan_filter=""
  tsan_filter=""
fi

run_phase() {
  local build="$1" sanitize="$2" filter="$3" simd_tier="${4:-}"
  cmake -B "$build" -S "$repo" \
    -DSMOOTHER_SANITIZE="$sanitize" \
    -DSMOOTHER_SIMD="$simd_tier" \
    -DSMOOTHER_BUILD_BENCH=OFF \
    -DSMOOTHER_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)"
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" -R "$filter"
  else
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
  fi
}

export ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
run_phase "$repo/build-asan" "address,undefined" "$asan_filter"
echo "phase 1/3 complete (ASan+UBSan)."

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
run_phase "$repo/build-tsan" "thread" "$tsan_filter"
echo "phase 2/3 complete (TSan)."

# The width-1 tier is the semantic reference every wider tier is tested
# against; run the kernel-facing suites once with it forced on so a
# refactor of the fallback loops cannot hide behind the host's SIMD.
scalar_filter="SimdKernels|BatchSolver|Qp|Structured|Banded|FsOps|SolverWorkspace|SolverPool|FleetEngine"
run_phase "$repo/build-scalar" "address,undefined" "$scalar_filter" "scalar"
echo "phase 3/3 complete (scalar SIMD tier). sanitized test pass complete."
