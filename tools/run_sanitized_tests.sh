#!/usr/bin/env bash
# Configure, build and run the test suite under ASan+UBSan.
#
# The resilience acceptance gate: the >=10k-interval mixed-fault soak (and
# the rest of the fault-injection tests) must run clean under both
# sanitizers. By default only the resilience-focused subset runs, which
# keeps the loop fast; pass --full for the whole suite.
#
# Usage:
#   tools/run_sanitized_tests.sh           # resilience subset
#   tools/run_sanitized_tests.sh --full    # every test
#
# The sanitized build lives in build-asan/ next to the normal build/ and is
# configured via the SMOOTHER_SANITIZE CMake option ("address,undefined").
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-asan"
filter="Resilience|TelemetryGuard|FaultInjector|HealthReport|Taxonomy|ResultType|OnlineSmoother|Csv|Battery|FlexibleSmoothing"
if [[ "${1:-}" == "--full" ]]; then
  filter=""
fi

cmake -B "$build" -S "$repo" \
  -DSMOOTHER_SANITIZE=address,undefined \
  -DSMOOTHER_BUILD_BENCH=OFF \
  -DSMOOTHER_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"

export ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

cd "$build"
if [[ -n "$filter" ]]; then
  ctest --output-on-failure -j "$(nproc)" -R "$filter"
else
  ctest --output-on-failure -j "$(nproc)"
fi
echo "sanitized test pass complete (ASan+UBSan)."
