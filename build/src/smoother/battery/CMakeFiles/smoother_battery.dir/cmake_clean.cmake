file(REMOVE_RECURSE
  "CMakeFiles/smoother_battery.dir/battery.cpp.o"
  "CMakeFiles/smoother_battery.dir/battery.cpp.o.d"
  "CMakeFiles/smoother_battery.dir/esd_bank.cpp.o"
  "CMakeFiles/smoother_battery.dir/esd_bank.cpp.o.d"
  "CMakeFiles/smoother_battery.dir/wear.cpp.o"
  "CMakeFiles/smoother_battery.dir/wear.cpp.o.d"
  "libsmoother_battery.a"
  "libsmoother_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
