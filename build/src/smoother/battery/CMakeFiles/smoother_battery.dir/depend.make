# Empty dependencies file for smoother_battery.
# This may be replaced when dependencies are built.
