
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/battery/battery.cpp" "src/smoother/battery/CMakeFiles/smoother_battery.dir/battery.cpp.o" "gcc" "src/smoother/battery/CMakeFiles/smoother_battery.dir/battery.cpp.o.d"
  "/root/repo/src/smoother/battery/esd_bank.cpp" "src/smoother/battery/CMakeFiles/smoother_battery.dir/esd_bank.cpp.o" "gcc" "src/smoother/battery/CMakeFiles/smoother_battery.dir/esd_bank.cpp.o.d"
  "/root/repo/src/smoother/battery/wear.cpp" "src/smoother/battery/CMakeFiles/smoother_battery.dir/wear.cpp.o" "gcc" "src/smoother/battery/CMakeFiles/smoother_battery.dir/wear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
