file(REMOVE_RECURSE
  "libsmoother_battery.a"
)
