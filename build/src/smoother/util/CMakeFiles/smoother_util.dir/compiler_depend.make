# Empty compiler generated dependencies file for smoother_util.
# This may be replaced when dependencies are built.
