
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/util/args.cpp" "src/smoother/util/CMakeFiles/smoother_util.dir/args.cpp.o" "gcc" "src/smoother/util/CMakeFiles/smoother_util.dir/args.cpp.o.d"
  "/root/repo/src/smoother/util/csv.cpp" "src/smoother/util/CMakeFiles/smoother_util.dir/csv.cpp.o" "gcc" "src/smoother/util/CMakeFiles/smoother_util.dir/csv.cpp.o.d"
  "/root/repo/src/smoother/util/logging.cpp" "src/smoother/util/CMakeFiles/smoother_util.dir/logging.cpp.o" "gcc" "src/smoother/util/CMakeFiles/smoother_util.dir/logging.cpp.o.d"
  "/root/repo/src/smoother/util/rng.cpp" "src/smoother/util/CMakeFiles/smoother_util.dir/rng.cpp.o" "gcc" "src/smoother/util/CMakeFiles/smoother_util.dir/rng.cpp.o.d"
  "/root/repo/src/smoother/util/time_series.cpp" "src/smoother/util/CMakeFiles/smoother_util.dir/time_series.cpp.o" "gcc" "src/smoother/util/CMakeFiles/smoother_util.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
