file(REMOVE_RECURSE
  "libsmoother_util.a"
)
