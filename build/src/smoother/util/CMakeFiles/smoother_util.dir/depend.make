# Empty dependencies file for smoother_util.
# This may be replaced when dependencies are built.
