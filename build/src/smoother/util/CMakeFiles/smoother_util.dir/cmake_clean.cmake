file(REMOVE_RECURSE
  "CMakeFiles/smoother_util.dir/args.cpp.o"
  "CMakeFiles/smoother_util.dir/args.cpp.o.d"
  "CMakeFiles/smoother_util.dir/csv.cpp.o"
  "CMakeFiles/smoother_util.dir/csv.cpp.o.d"
  "CMakeFiles/smoother_util.dir/logging.cpp.o"
  "CMakeFiles/smoother_util.dir/logging.cpp.o.d"
  "CMakeFiles/smoother_util.dir/rng.cpp.o"
  "CMakeFiles/smoother_util.dir/rng.cpp.o.d"
  "CMakeFiles/smoother_util.dir/time_series.cpp.o"
  "CMakeFiles/smoother_util.dir/time_series.cpp.o.d"
  "libsmoother_util.a"
  "libsmoother_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
