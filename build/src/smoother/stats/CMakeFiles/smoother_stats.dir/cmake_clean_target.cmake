file(REMOVE_RECURSE
  "libsmoother_stats.a"
)
