# Empty dependencies file for smoother_stats.
# This may be replaced when dependencies are built.
