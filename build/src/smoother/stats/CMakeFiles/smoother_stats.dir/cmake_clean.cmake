file(REMOVE_RECURSE
  "CMakeFiles/smoother_stats.dir/cdf.cpp.o"
  "CMakeFiles/smoother_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/smoother_stats.dir/descriptive.cpp.o"
  "CMakeFiles/smoother_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/smoother_stats.dir/histogram.cpp.o"
  "CMakeFiles/smoother_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/smoother_stats.dir/rolling.cpp.o"
  "CMakeFiles/smoother_stats.dir/rolling.cpp.o.d"
  "libsmoother_stats.a"
  "libsmoother_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
