
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/stats/cdf.cpp" "src/smoother/stats/CMakeFiles/smoother_stats.dir/cdf.cpp.o" "gcc" "src/smoother/stats/CMakeFiles/smoother_stats.dir/cdf.cpp.o.d"
  "/root/repo/src/smoother/stats/descriptive.cpp" "src/smoother/stats/CMakeFiles/smoother_stats.dir/descriptive.cpp.o" "gcc" "src/smoother/stats/CMakeFiles/smoother_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/smoother/stats/histogram.cpp" "src/smoother/stats/CMakeFiles/smoother_stats.dir/histogram.cpp.o" "gcc" "src/smoother/stats/CMakeFiles/smoother_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/smoother/stats/rolling.cpp" "src/smoother/stats/CMakeFiles/smoother_stats.dir/rolling.cpp.o" "gcc" "src/smoother/stats/CMakeFiles/smoother_stats.dir/rolling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
