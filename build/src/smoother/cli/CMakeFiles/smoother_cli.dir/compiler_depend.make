# Empty compiler generated dependencies file for smoother_cli.
# This may be replaced when dependencies are built.
