file(REMOVE_RECURSE
  "libsmoother_cli.a"
)
