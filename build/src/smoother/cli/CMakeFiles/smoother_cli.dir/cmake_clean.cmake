file(REMOVE_RECURSE
  "CMakeFiles/smoother_cli.dir/commands.cpp.o"
  "CMakeFiles/smoother_cli.dir/commands.cpp.o.d"
  "libsmoother_cli.a"
  "libsmoother_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
