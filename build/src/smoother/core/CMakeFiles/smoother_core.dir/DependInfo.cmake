
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/core/active_delay.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/active_delay.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/active_delay.cpp.o.d"
  "/root/repo/src/smoother/core/flexible_smoothing.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/flexible_smoothing.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/flexible_smoothing.cpp.o.d"
  "/root/repo/src/smoother/core/forecast.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/forecast.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/forecast.cpp.o.d"
  "/root/repo/src/smoother/core/metrics.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/metrics.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/metrics.cpp.o.d"
  "/root/repo/src/smoother/core/multi_esd.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/multi_esd.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/multi_esd.cpp.o.d"
  "/root/repo/src/smoother/core/online.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/online.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/online.cpp.o.d"
  "/root/repo/src/smoother/core/region.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/region.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/region.cpp.o.d"
  "/root/repo/src/smoother/core/smoother.cpp" "src/smoother/core/CMakeFiles/smoother_core.dir/smoother.cpp.o" "gcc" "src/smoother/core/CMakeFiles/smoother_core.dir/smoother.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/stats/CMakeFiles/smoother_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/solver/CMakeFiles/smoother_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/power/CMakeFiles/smoother_power.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/battery/CMakeFiles/smoother_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/sched/CMakeFiles/smoother_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
