file(REMOVE_RECURSE
  "CMakeFiles/smoother_core.dir/active_delay.cpp.o"
  "CMakeFiles/smoother_core.dir/active_delay.cpp.o.d"
  "CMakeFiles/smoother_core.dir/flexible_smoothing.cpp.o"
  "CMakeFiles/smoother_core.dir/flexible_smoothing.cpp.o.d"
  "CMakeFiles/smoother_core.dir/forecast.cpp.o"
  "CMakeFiles/smoother_core.dir/forecast.cpp.o.d"
  "CMakeFiles/smoother_core.dir/metrics.cpp.o"
  "CMakeFiles/smoother_core.dir/metrics.cpp.o.d"
  "CMakeFiles/smoother_core.dir/multi_esd.cpp.o"
  "CMakeFiles/smoother_core.dir/multi_esd.cpp.o.d"
  "CMakeFiles/smoother_core.dir/online.cpp.o"
  "CMakeFiles/smoother_core.dir/online.cpp.o.d"
  "CMakeFiles/smoother_core.dir/region.cpp.o"
  "CMakeFiles/smoother_core.dir/region.cpp.o.d"
  "CMakeFiles/smoother_core.dir/smoother.cpp.o"
  "CMakeFiles/smoother_core.dir/smoother.cpp.o.d"
  "libsmoother_core.a"
  "libsmoother_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
