# Empty dependencies file for smoother_core.
# This may be replaced when dependencies are built.
