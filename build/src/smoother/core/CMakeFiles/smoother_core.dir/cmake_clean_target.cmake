file(REMOVE_RECURSE
  "libsmoother_core.a"
)
