file(REMOVE_RECURSE
  "CMakeFiles/smoother_trace.dir/batch_workload.cpp.o"
  "CMakeFiles/smoother_trace.dir/batch_workload.cpp.o.d"
  "CMakeFiles/smoother_trace.dir/google_cluster.cpp.o"
  "CMakeFiles/smoother_trace.dir/google_cluster.cpp.o.d"
  "CMakeFiles/smoother_trace.dir/solar_model.cpp.o"
  "CMakeFiles/smoother_trace.dir/solar_model.cpp.o.d"
  "CMakeFiles/smoother_trace.dir/swf.cpp.o"
  "CMakeFiles/smoother_trace.dir/swf.cpp.o.d"
  "CMakeFiles/smoother_trace.dir/trace_io.cpp.o"
  "CMakeFiles/smoother_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/smoother_trace.dir/web_workload.cpp.o"
  "CMakeFiles/smoother_trace.dir/web_workload.cpp.o.d"
  "CMakeFiles/smoother_trace.dir/wind_speed_model.cpp.o"
  "CMakeFiles/smoother_trace.dir/wind_speed_model.cpp.o.d"
  "libsmoother_trace.a"
  "libsmoother_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
