file(REMOVE_RECURSE
  "libsmoother_trace.a"
)
