# Empty compiler generated dependencies file for smoother_trace.
# This may be replaced when dependencies are built.
