
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/trace/batch_workload.cpp" "src/smoother/trace/CMakeFiles/smoother_trace.dir/batch_workload.cpp.o" "gcc" "src/smoother/trace/CMakeFiles/smoother_trace.dir/batch_workload.cpp.o.d"
  "/root/repo/src/smoother/trace/google_cluster.cpp" "src/smoother/trace/CMakeFiles/smoother_trace.dir/google_cluster.cpp.o" "gcc" "src/smoother/trace/CMakeFiles/smoother_trace.dir/google_cluster.cpp.o.d"
  "/root/repo/src/smoother/trace/solar_model.cpp" "src/smoother/trace/CMakeFiles/smoother_trace.dir/solar_model.cpp.o" "gcc" "src/smoother/trace/CMakeFiles/smoother_trace.dir/solar_model.cpp.o.d"
  "/root/repo/src/smoother/trace/swf.cpp" "src/smoother/trace/CMakeFiles/smoother_trace.dir/swf.cpp.o" "gcc" "src/smoother/trace/CMakeFiles/smoother_trace.dir/swf.cpp.o.d"
  "/root/repo/src/smoother/trace/trace_io.cpp" "src/smoother/trace/CMakeFiles/smoother_trace.dir/trace_io.cpp.o" "gcc" "src/smoother/trace/CMakeFiles/smoother_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/smoother/trace/web_workload.cpp" "src/smoother/trace/CMakeFiles/smoother_trace.dir/web_workload.cpp.o" "gcc" "src/smoother/trace/CMakeFiles/smoother_trace.dir/web_workload.cpp.o.d"
  "/root/repo/src/smoother/trace/wind_speed_model.cpp" "src/smoother/trace/CMakeFiles/smoother_trace.dir/wind_speed_model.cpp.o" "gcc" "src/smoother/trace/CMakeFiles/smoother_trace.dir/wind_speed_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/power/CMakeFiles/smoother_power.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/sched/CMakeFiles/smoother_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/stats/CMakeFiles/smoother_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/solver/CMakeFiles/smoother_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
