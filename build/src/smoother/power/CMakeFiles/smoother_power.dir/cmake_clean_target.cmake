file(REMOVE_RECURSE
  "libsmoother_power.a"
)
