# Empty compiler generated dependencies file for smoother_power.
# This may be replaced when dependencies are built.
