
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/power/capacity_factor.cpp" "src/smoother/power/CMakeFiles/smoother_power.dir/capacity_factor.cpp.o" "gcc" "src/smoother/power/CMakeFiles/smoother_power.dir/capacity_factor.cpp.o.d"
  "/root/repo/src/smoother/power/datacenter.cpp" "src/smoother/power/CMakeFiles/smoother_power.dir/datacenter.cpp.o" "gcc" "src/smoother/power/CMakeFiles/smoother_power.dir/datacenter.cpp.o.d"
  "/root/repo/src/smoother/power/solar.cpp" "src/smoother/power/CMakeFiles/smoother_power.dir/solar.cpp.o" "gcc" "src/smoother/power/CMakeFiles/smoother_power.dir/solar.cpp.o.d"
  "/root/repo/src/smoother/power/turbine.cpp" "src/smoother/power/CMakeFiles/smoother_power.dir/turbine.cpp.o" "gcc" "src/smoother/power/CMakeFiles/smoother_power.dir/turbine.cpp.o.d"
  "/root/repo/src/smoother/power/wind_farm.cpp" "src/smoother/power/CMakeFiles/smoother_power.dir/wind_farm.cpp.o" "gcc" "src/smoother/power/CMakeFiles/smoother_power.dir/wind_farm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/stats/CMakeFiles/smoother_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/solver/CMakeFiles/smoother_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
