file(REMOVE_RECURSE
  "CMakeFiles/smoother_power.dir/capacity_factor.cpp.o"
  "CMakeFiles/smoother_power.dir/capacity_factor.cpp.o.d"
  "CMakeFiles/smoother_power.dir/datacenter.cpp.o"
  "CMakeFiles/smoother_power.dir/datacenter.cpp.o.d"
  "CMakeFiles/smoother_power.dir/solar.cpp.o"
  "CMakeFiles/smoother_power.dir/solar.cpp.o.d"
  "CMakeFiles/smoother_power.dir/turbine.cpp.o"
  "CMakeFiles/smoother_power.dir/turbine.cpp.o.d"
  "CMakeFiles/smoother_power.dir/wind_farm.cpp.o"
  "CMakeFiles/smoother_power.dir/wind_farm.cpp.o.d"
  "libsmoother_power.a"
  "libsmoother_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
