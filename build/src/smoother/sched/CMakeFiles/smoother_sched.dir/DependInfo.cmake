
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/sched/cluster_timeline.cpp" "src/smoother/sched/CMakeFiles/smoother_sched.dir/cluster_timeline.cpp.o" "gcc" "src/smoother/sched/CMakeFiles/smoother_sched.dir/cluster_timeline.cpp.o.d"
  "/root/repo/src/smoother/sched/scheduler.cpp" "src/smoother/sched/CMakeFiles/smoother_sched.dir/scheduler.cpp.o" "gcc" "src/smoother/sched/CMakeFiles/smoother_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
