file(REMOVE_RECURSE
  "libsmoother_sched.a"
)
