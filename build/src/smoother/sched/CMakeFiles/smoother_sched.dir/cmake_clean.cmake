file(REMOVE_RECURSE
  "CMakeFiles/smoother_sched.dir/cluster_timeline.cpp.o"
  "CMakeFiles/smoother_sched.dir/cluster_timeline.cpp.o.d"
  "CMakeFiles/smoother_sched.dir/scheduler.cpp.o"
  "CMakeFiles/smoother_sched.dir/scheduler.cpp.o.d"
  "libsmoother_sched.a"
  "libsmoother_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
