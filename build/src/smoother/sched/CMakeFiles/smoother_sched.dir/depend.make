# Empty dependencies file for smoother_sched.
# This may be replaced when dependencies are built.
