file(REMOVE_RECURSE
  "libsmoother_solver.a"
)
