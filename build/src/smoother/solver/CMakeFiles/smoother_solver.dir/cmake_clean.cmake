file(REMOVE_RECURSE
  "CMakeFiles/smoother_solver.dir/cholesky.cpp.o"
  "CMakeFiles/smoother_solver.dir/cholesky.cpp.o.d"
  "CMakeFiles/smoother_solver.dir/least_squares.cpp.o"
  "CMakeFiles/smoother_solver.dir/least_squares.cpp.o.d"
  "CMakeFiles/smoother_solver.dir/matrix.cpp.o"
  "CMakeFiles/smoother_solver.dir/matrix.cpp.o.d"
  "CMakeFiles/smoother_solver.dir/qp.cpp.o"
  "CMakeFiles/smoother_solver.dir/qp.cpp.o.d"
  "libsmoother_solver.a"
  "libsmoother_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
