# Empty compiler generated dependencies file for smoother_solver.
# This may be replaced when dependencies are built.
