
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smoother/solver/cholesky.cpp" "src/smoother/solver/CMakeFiles/smoother_solver.dir/cholesky.cpp.o" "gcc" "src/smoother/solver/CMakeFiles/smoother_solver.dir/cholesky.cpp.o.d"
  "/root/repo/src/smoother/solver/least_squares.cpp" "src/smoother/solver/CMakeFiles/smoother_solver.dir/least_squares.cpp.o" "gcc" "src/smoother/solver/CMakeFiles/smoother_solver.dir/least_squares.cpp.o.d"
  "/root/repo/src/smoother/solver/matrix.cpp" "src/smoother/solver/CMakeFiles/smoother_solver.dir/matrix.cpp.o" "gcc" "src/smoother/solver/CMakeFiles/smoother_solver.dir/matrix.cpp.o.d"
  "/root/repo/src/smoother/solver/qp.cpp" "src/smoother/solver/CMakeFiles/smoother_solver.dir/qp.cpp.o" "gcc" "src/smoother/solver/CMakeFiles/smoother_solver.dir/qp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
