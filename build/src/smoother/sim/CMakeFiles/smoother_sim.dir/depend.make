# Empty dependencies file for smoother_sim.
# This may be replaced when dependencies are built.
