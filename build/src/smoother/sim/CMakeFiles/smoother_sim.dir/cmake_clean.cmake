file(REMOVE_RECURSE
  "CMakeFiles/smoother_sim.dir/cost.cpp.o"
  "CMakeFiles/smoother_sim.dir/cost.cpp.o.d"
  "CMakeFiles/smoother_sim.dir/dispatch.cpp.o"
  "CMakeFiles/smoother_sim.dir/dispatch.cpp.o.d"
  "CMakeFiles/smoother_sim.dir/experiments.cpp.o"
  "CMakeFiles/smoother_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/smoother_sim.dir/frequency.cpp.o"
  "CMakeFiles/smoother_sim.dir/frequency.cpp.o.d"
  "CMakeFiles/smoother_sim.dir/geo.cpp.o"
  "CMakeFiles/smoother_sim.dir/geo.cpp.o.d"
  "CMakeFiles/smoother_sim.dir/report.cpp.o"
  "CMakeFiles/smoother_sim.dir/report.cpp.o.d"
  "CMakeFiles/smoother_sim.dir/scenario.cpp.o"
  "CMakeFiles/smoother_sim.dir/scenario.cpp.o.d"
  "libsmoother_sim.a"
  "libsmoother_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
