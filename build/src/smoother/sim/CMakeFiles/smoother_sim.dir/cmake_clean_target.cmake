file(REMOVE_RECURSE
  "libsmoother_sim.a"
)
