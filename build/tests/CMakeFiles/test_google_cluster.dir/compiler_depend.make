# Empty compiler generated dependencies file for test_google_cluster.
# This may be replaced when dependencies are built.
