file(REMOVE_RECURSE
  "CMakeFiles/test_google_cluster.dir/test_google_cluster.cpp.o"
  "CMakeFiles/test_google_cluster.dir/test_google_cluster.cpp.o.d"
  "test_google_cluster"
  "test_google_cluster.pdb"
  "test_google_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_google_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
