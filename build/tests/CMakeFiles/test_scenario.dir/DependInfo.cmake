
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/test_scenario.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/test_scenario.dir/test_scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smoother/cli/CMakeFiles/smoother_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/sim/CMakeFiles/smoother_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/core/CMakeFiles/smoother_core.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/trace/CMakeFiles/smoother_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/sched/CMakeFiles/smoother_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/battery/CMakeFiles/smoother_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/power/CMakeFiles/smoother_power.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/solver/CMakeFiles/smoother_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/stats/CMakeFiles/smoother_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/smoother/util/CMakeFiles/smoother_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
