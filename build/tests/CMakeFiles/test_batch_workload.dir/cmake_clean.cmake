file(REMOVE_RECURSE
  "CMakeFiles/test_batch_workload.dir/test_batch_workload.cpp.o"
  "CMakeFiles/test_batch_workload.dir/test_batch_workload.cpp.o.d"
  "test_batch_workload"
  "test_batch_workload.pdb"
  "test_batch_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
