# Empty compiler generated dependencies file for test_turbine.
# This may be replaced when dependencies are built.
