file(REMOVE_RECURSE
  "CMakeFiles/test_turbine.dir/test_turbine.cpp.o"
  "CMakeFiles/test_turbine.dir/test_turbine.cpp.o.d"
  "test_turbine"
  "test_turbine.pdb"
  "test_turbine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turbine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
