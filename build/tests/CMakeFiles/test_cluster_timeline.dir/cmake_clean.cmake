file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_timeline.dir/test_cluster_timeline.cpp.o"
  "CMakeFiles/test_cluster_timeline.dir/test_cluster_timeline.cpp.o.d"
  "test_cluster_timeline"
  "test_cluster_timeline.pdb"
  "test_cluster_timeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
