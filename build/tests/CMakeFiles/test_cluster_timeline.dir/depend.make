# Empty dependencies file for test_cluster_timeline.
# This may be replaced when dependencies are built.
