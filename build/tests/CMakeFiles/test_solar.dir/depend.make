# Empty dependencies file for test_solar.
# This may be replaced when dependencies are built.
