# Empty compiler generated dependencies file for test_flexible_smoothing.
# This may be replaced when dependencies are built.
