file(REMOVE_RECURSE
  "CMakeFiles/test_flexible_smoothing.dir/test_flexible_smoothing.cpp.o"
  "CMakeFiles/test_flexible_smoothing.dir/test_flexible_smoothing.cpp.o.d"
  "test_flexible_smoothing"
  "test_flexible_smoothing.pdb"
  "test_flexible_smoothing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flexible_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
