# Empty compiler generated dependencies file for test_web_workload.
# This may be replaced when dependencies are built.
