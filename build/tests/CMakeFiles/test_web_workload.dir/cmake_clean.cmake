file(REMOVE_RECURSE
  "CMakeFiles/test_web_workload.dir/test_web_workload.cpp.o"
  "CMakeFiles/test_web_workload.dir/test_web_workload.cpp.o.d"
  "test_web_workload"
  "test_web_workload.pdb"
  "test_web_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_web_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
