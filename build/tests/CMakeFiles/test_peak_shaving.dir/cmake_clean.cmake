file(REMOVE_RECURSE
  "CMakeFiles/test_peak_shaving.dir/test_peak_shaving.cpp.o"
  "CMakeFiles/test_peak_shaving.dir/test_peak_shaving.cpp.o.d"
  "test_peak_shaving"
  "test_peak_shaving.pdb"
  "test_peak_shaving[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peak_shaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
