# Empty compiler generated dependencies file for test_peak_shaving.
# This may be replaced when dependencies are built.
