file(REMOVE_RECURSE
  "CMakeFiles/test_wind_farm.dir/test_wind_farm.cpp.o"
  "CMakeFiles/test_wind_farm.dir/test_wind_farm.cpp.o.d"
  "test_wind_farm"
  "test_wind_farm.pdb"
  "test_wind_farm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wind_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
