# Empty dependencies file for test_wind_farm.
# This may be replaced when dependencies are built.
