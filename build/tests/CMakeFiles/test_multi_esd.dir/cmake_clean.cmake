file(REMOVE_RECURSE
  "CMakeFiles/test_multi_esd.dir/test_multi_esd.cpp.o"
  "CMakeFiles/test_multi_esd.dir/test_multi_esd.cpp.o.d"
  "test_multi_esd"
  "test_multi_esd.pdb"
  "test_multi_esd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_esd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
