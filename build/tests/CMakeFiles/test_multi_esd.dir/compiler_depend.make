# Empty compiler generated dependencies file for test_multi_esd.
# This may be replaced when dependencies are built.
