file(REMOVE_RECURSE
  "CMakeFiles/test_wind_model.dir/test_wind_model.cpp.o"
  "CMakeFiles/test_wind_model.dir/test_wind_model.cpp.o.d"
  "test_wind_model"
  "test_wind_model.pdb"
  "test_wind_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wind_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
