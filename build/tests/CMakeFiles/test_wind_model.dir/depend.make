# Empty dependencies file for test_wind_model.
# This may be replaced when dependencies are built.
