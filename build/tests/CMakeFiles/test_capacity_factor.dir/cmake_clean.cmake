file(REMOVE_RECURSE
  "CMakeFiles/test_capacity_factor.dir/test_capacity_factor.cpp.o"
  "CMakeFiles/test_capacity_factor.dir/test_capacity_factor.cpp.o.d"
  "test_capacity_factor"
  "test_capacity_factor.pdb"
  "test_capacity_factor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capacity_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
