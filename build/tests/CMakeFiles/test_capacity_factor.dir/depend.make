# Empty dependencies file for test_capacity_factor.
# This may be replaced when dependencies are built.
