# Empty dependencies file for test_active_delay.
# This may be replaced when dependencies are built.
