file(REMOVE_RECURSE
  "CMakeFiles/test_active_delay.dir/test_active_delay.cpp.o"
  "CMakeFiles/test_active_delay.dir/test_active_delay.cpp.o.d"
  "test_active_delay"
  "test_active_delay.pdb"
  "test_active_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_active_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
