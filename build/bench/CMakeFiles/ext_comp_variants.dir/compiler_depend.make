# Empty compiler generated dependencies file for ext_comp_variants.
# This may be replaced when dependencies are built.
