file(REMOVE_RECURSE
  "CMakeFiles/ext_comp_variants.dir/ext_comp_variants.cpp.o"
  "CMakeFiles/ext_comp_variants.dir/ext_comp_variants.cpp.o.d"
  "ext_comp_variants"
  "ext_comp_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_comp_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
