file(REMOVE_RECURSE
  "CMakeFiles/table1_web_workloads.dir/table1_web_workloads.cpp.o"
  "CMakeFiles/table1_web_workloads.dir/table1_web_workloads.cpp.o.d"
  "table1_web_workloads"
  "table1_web_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_web_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
