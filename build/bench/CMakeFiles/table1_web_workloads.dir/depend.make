# Empty dependencies file for table1_web_workloads.
# This may be replaced when dependencies are built.
