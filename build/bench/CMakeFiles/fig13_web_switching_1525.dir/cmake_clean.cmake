file(REMOVE_RECURSE
  "CMakeFiles/fig13_web_switching_1525.dir/fig13_web_switching_1525.cpp.o"
  "CMakeFiles/fig13_web_switching_1525.dir/fig13_web_switching_1525.cpp.o.d"
  "fig13_web_switching_1525"
  "fig13_web_switching_1525.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_web_switching_1525.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
