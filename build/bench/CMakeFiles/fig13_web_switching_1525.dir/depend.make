# Empty dependencies file for fig13_web_switching_1525.
# This may be replaced when dependencies are built.
