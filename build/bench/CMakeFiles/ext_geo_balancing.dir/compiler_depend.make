# Empty compiler generated dependencies file for ext_geo_balancing.
# This may be replaced when dependencies are built.
