file(REMOVE_RECURSE
  "CMakeFiles/ext_geo_balancing.dir/ext_geo_balancing.cpp.o"
  "CMakeFiles/ext_geo_balancing.dir/ext_geo_balancing.cpp.o.d"
  "ext_geo_balancing"
  "ext_geo_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_geo_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
