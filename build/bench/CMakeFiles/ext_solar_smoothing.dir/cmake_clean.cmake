file(REMOVE_RECURSE
  "CMakeFiles/ext_solar_smoothing.dir/ext_solar_smoothing.cpp.o"
  "CMakeFiles/ext_solar_smoothing.dir/ext_solar_smoothing.cpp.o.d"
  "ext_solar_smoothing"
  "ext_solar_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_solar_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
