# Empty dependencies file for ext_solar_smoothing.
# This may be replaced when dependencies are built.
