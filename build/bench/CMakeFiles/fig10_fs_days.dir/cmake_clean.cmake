file(REMOVE_RECURSE
  "CMakeFiles/fig10_fs_days.dir/fig10_fs_days.cpp.o"
  "CMakeFiles/fig10_fs_days.dir/fig10_fs_days.cpp.o.d"
  "fig10_fs_days"
  "fig10_fs_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fs_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
