# Empty dependencies file for fig10_fs_days.
# This may be replaced when dependencies are built.
