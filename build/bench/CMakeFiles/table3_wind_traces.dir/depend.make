# Empty dependencies file for table3_wind_traces.
# This may be replaced when dependencies are built.
