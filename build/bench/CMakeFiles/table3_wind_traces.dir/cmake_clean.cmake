file(REMOVE_RECURSE
  "CMakeFiles/table3_wind_traces.dir/table3_wind_traces.cpp.o"
  "CMakeFiles/table3_wind_traces.dir/table3_wind_traces.cpp.o.d"
  "table3_wind_traces"
  "table3_wind_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_wind_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
