# Empty dependencies file for fig11_web_switching_976.
# This may be replaced when dependencies are built.
