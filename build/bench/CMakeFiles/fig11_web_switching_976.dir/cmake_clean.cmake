file(REMOVE_RECURSE
  "CMakeFiles/fig11_web_switching_976.dir/fig11_web_switching_976.cpp.o"
  "CMakeFiles/fig11_web_switching_976.dir/fig11_web_switching_976.cpp.o.d"
  "fig11_web_switching_976"
  "fig11_web_switching_976.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_web_switching_976.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
