# Empty dependencies file for fig05_smoothing.
# This may be replaced when dependencies are built.
