file(REMOVE_RECURSE
  "CMakeFiles/fig05_smoothing.dir/fig05_smoothing.cpp.o"
  "CMakeFiles/fig05_smoothing.dir/fig05_smoothing.cpp.o.d"
  "fig05_smoothing"
  "fig05_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
