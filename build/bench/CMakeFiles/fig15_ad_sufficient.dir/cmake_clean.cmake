file(REMOVE_RECURSE
  "CMakeFiles/fig15_ad_sufficient.dir/fig15_ad_sufficient.cpp.o"
  "CMakeFiles/fig15_ad_sufficient.dir/fig15_ad_sufficient.cpp.o.d"
  "fig15_ad_sufficient"
  "fig15_ad_sufficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ad_sufficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
