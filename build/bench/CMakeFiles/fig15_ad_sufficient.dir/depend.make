# Empty dependencies file for fig15_ad_sufficient.
# This may be replaced when dependencies are built.
