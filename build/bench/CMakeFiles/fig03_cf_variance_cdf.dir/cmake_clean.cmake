file(REMOVE_RECURSE
  "CMakeFiles/fig03_cf_variance_cdf.dir/fig03_cf_variance_cdf.cpp.o"
  "CMakeFiles/fig03_cf_variance_cdf.dir/fig03_cf_variance_cdf.cpp.o.d"
  "fig03_cf_variance_cdf"
  "fig03_cf_variance_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cf_variance_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
