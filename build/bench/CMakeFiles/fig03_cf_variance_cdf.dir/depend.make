# Empty dependencies file for fig03_cf_variance_cdf.
# This may be replaced when dependencies are built.
