file(REMOVE_RECURSE
  "CMakeFiles/fig01_turbine_curve.dir/fig01_turbine_curve.cpp.o"
  "CMakeFiles/fig01_turbine_curve.dir/fig01_turbine_curve.cpp.o.d"
  "fig01_turbine_curve"
  "fig01_turbine_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_turbine_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
