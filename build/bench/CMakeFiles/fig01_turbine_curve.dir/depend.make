# Empty dependencies file for fig01_turbine_curve.
# This may be replaced when dependencies are built.
