# Empty compiler generated dependencies file for fig02_regions.
# This may be replaced when dependencies are built.
