file(REMOVE_RECURSE
  "CMakeFiles/fig02_regions.dir/fig02_regions.cpp.o"
  "CMakeFiles/fig02_regions.dir/fig02_regions.cpp.o.d"
  "fig02_regions"
  "fig02_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
