# Empty compiler generated dependencies file for ext_forecast_error.
# This may be replaced when dependencies are built.
