file(REMOVE_RECURSE
  "CMakeFiles/ext_forecast_error.dir/ext_forecast_error.cpp.o"
  "CMakeFiles/ext_forecast_error.dir/ext_forecast_error.cpp.o.d"
  "ext_forecast_error"
  "ext_forecast_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_forecast_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
