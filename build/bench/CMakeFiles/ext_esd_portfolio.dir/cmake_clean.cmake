file(REMOVE_RECURSE
  "CMakeFiles/ext_esd_portfolio.dir/ext_esd_portfolio.cpp.o"
  "CMakeFiles/ext_esd_portfolio.dir/ext_esd_portfolio.cpp.o.d"
  "ext_esd_portfolio"
  "ext_esd_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_esd_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
