# Empty dependencies file for ext_esd_portfolio.
# This may be replaced when dependencies are built.
