file(REMOVE_RECURSE
  "CMakeFiles/fig18_combined.dir/fig18_combined.cpp.o"
  "CMakeFiles/fig18_combined.dir/fig18_combined.cpp.o.d"
  "fig18_combined"
  "fig18_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
