# Empty dependencies file for fig18_combined.
# This may be replaced when dependencies are built.
