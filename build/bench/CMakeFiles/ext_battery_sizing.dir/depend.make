# Empty dependencies file for ext_battery_sizing.
# This may be replaced when dependencies are built.
