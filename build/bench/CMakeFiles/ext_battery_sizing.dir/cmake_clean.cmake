file(REMOVE_RECURSE
  "CMakeFiles/ext_battery_sizing.dir/ext_battery_sizing.cpp.o"
  "CMakeFiles/ext_battery_sizing.dir/ext_battery_sizing.cpp.o.d"
  "ext_battery_sizing"
  "ext_battery_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_battery_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
