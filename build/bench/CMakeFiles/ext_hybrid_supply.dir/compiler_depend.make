# Empty compiler generated dependencies file for ext_hybrid_supply.
# This may be replaced when dependencies are built.
