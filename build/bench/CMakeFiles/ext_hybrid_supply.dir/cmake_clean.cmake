file(REMOVE_RECURSE
  "CMakeFiles/ext_hybrid_supply.dir/ext_hybrid_supply.cpp.o"
  "CMakeFiles/ext_hybrid_supply.dir/ext_hybrid_supply.cpp.o.d"
  "ext_hybrid_supply"
  "ext_hybrid_supply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hybrid_supply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
