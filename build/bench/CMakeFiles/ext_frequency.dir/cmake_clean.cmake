file(REMOVE_RECURSE
  "CMakeFiles/ext_frequency.dir/ext_frequency.cpp.o"
  "CMakeFiles/ext_frequency.dir/ext_frequency.cpp.o.d"
  "ext_frequency"
  "ext_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
