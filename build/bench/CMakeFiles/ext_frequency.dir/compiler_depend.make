# Empty compiler generated dependencies file for ext_frequency.
# This may be replaced when dependencies are built.
