# Empty dependencies file for fig07_imbalance.
# This may be replaced when dependencies are built.
