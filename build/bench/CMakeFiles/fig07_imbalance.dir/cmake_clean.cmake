file(REMOVE_RECURSE
  "CMakeFiles/fig07_imbalance.dir/fig07_imbalance.cpp.o"
  "CMakeFiles/fig07_imbalance.dir/fig07_imbalance.cpp.o.d"
  "fig07_imbalance"
  "fig07_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
