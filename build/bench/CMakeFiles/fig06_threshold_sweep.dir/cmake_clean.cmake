file(REMOVE_RECURSE
  "CMakeFiles/fig06_threshold_sweep.dir/fig06_threshold_sweep.cpp.o"
  "CMakeFiles/fig06_threshold_sweep.dir/fig06_threshold_sweep.cpp.o.d"
  "fig06_threshold_sweep"
  "fig06_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
