# Empty compiler generated dependencies file for fig14_wind_switching_1525.
# This may be replaced when dependencies are built.
