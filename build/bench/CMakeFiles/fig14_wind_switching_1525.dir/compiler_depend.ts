# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_wind_switching_1525.
