file(REMOVE_RECURSE
  "CMakeFiles/fig14_wind_switching_1525.dir/fig14_wind_switching_1525.cpp.o"
  "CMakeFiles/fig14_wind_switching_1525.dir/fig14_wind_switching_1525.cpp.o.d"
  "fig14_wind_switching_1525"
  "fig14_wind_switching_1525.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_wind_switching_1525.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
