# Empty dependencies file for ext_cost_analysis.
# This may be replaced when dependencies are built.
