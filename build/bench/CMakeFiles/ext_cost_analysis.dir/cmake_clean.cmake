file(REMOVE_RECURSE
  "CMakeFiles/ext_cost_analysis.dir/ext_cost_analysis.cpp.o"
  "CMakeFiles/ext_cost_analysis.dir/ext_cost_analysis.cpp.o.d"
  "ext_cost_analysis"
  "ext_cost_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cost_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
