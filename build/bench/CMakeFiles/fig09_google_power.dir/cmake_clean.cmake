file(REMOVE_RECURSE
  "CMakeFiles/fig09_google_power.dir/fig09_google_power.cpp.o"
  "CMakeFiles/fig09_google_power.dir/fig09_google_power.cpp.o.d"
  "fig09_google_power"
  "fig09_google_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_google_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
