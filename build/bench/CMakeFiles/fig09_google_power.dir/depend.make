# Empty dependencies file for fig09_google_power.
# This may be replaced when dependencies are built.
