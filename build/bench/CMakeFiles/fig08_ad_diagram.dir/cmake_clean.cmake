file(REMOVE_RECURSE
  "CMakeFiles/fig08_ad_diagram.dir/fig08_ad_diagram.cpp.o"
  "CMakeFiles/fig08_ad_diagram.dir/fig08_ad_diagram.cpp.o.d"
  "fig08_ad_diagram"
  "fig08_ad_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ad_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
