# Empty dependencies file for fig08_ad_diagram.
# This may be replaced when dependencies are built.
