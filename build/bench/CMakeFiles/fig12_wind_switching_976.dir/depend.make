# Empty dependencies file for fig12_wind_switching_976.
# This may be replaced when dependencies are built.
