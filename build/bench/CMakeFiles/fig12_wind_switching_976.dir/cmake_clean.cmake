file(REMOVE_RECURSE
  "CMakeFiles/fig12_wind_switching_976.dir/fig12_wind_switching_976.cpp.o"
  "CMakeFiles/fig12_wind_switching_976.dir/fig12_wind_switching_976.cpp.o.d"
  "fig12_wind_switching_976"
  "fig12_wind_switching_976.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_wind_switching_976.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
