# Empty compiler generated dependencies file for fig16_ad_insufficient.
# This may be replaced when dependencies are built.
