file(REMOVE_RECURSE
  "CMakeFiles/fig16_ad_insufficient.dir/fig16_ad_insufficient.cpp.o"
  "CMakeFiles/fig16_ad_insufficient.dir/fig16_ad_insufficient.cpp.o.d"
  "fig16_ad_insufficient"
  "fig16_ad_insufficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ad_insufficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
