# Empty dependencies file for ext_receding_horizon.
# This may be replaced when dependencies are built.
