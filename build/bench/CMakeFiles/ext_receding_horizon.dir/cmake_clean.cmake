file(REMOVE_RECURSE
  "CMakeFiles/ext_receding_horizon.dir/ext_receding_horizon.cpp.o"
  "CMakeFiles/ext_receding_horizon.dir/ext_receding_horizon.cpp.o.d"
  "ext_receding_horizon"
  "ext_receding_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_receding_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
