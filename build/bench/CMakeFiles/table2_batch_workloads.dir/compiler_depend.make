# Empty compiler generated dependencies file for table2_batch_workloads.
# This may be replaced when dependencies are built.
