# Empty dependencies file for wind_farm_smoothing.
# This may be replaced when dependencies are built.
