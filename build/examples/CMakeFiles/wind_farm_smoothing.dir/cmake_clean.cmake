file(REMOVE_RECURSE
  "CMakeFiles/wind_farm_smoothing.dir/wind_farm_smoothing.cpp.o"
  "CMakeFiles/wind_farm_smoothing.dir/wind_farm_smoothing.cpp.o.d"
  "wind_farm_smoothing"
  "wind_farm_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wind_farm_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
