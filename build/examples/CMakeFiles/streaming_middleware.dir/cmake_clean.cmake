file(REMOVE_RECURSE
  "CMakeFiles/streaming_middleware.dir/streaming_middleware.cpp.o"
  "CMakeFiles/streaming_middleware.dir/streaming_middleware.cpp.o.d"
  "streaming_middleware"
  "streaming_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
