# Empty compiler generated dependencies file for streaming_middleware.
# This may be replaced when dependencies are built.
