file(REMOVE_RECURSE
  "CMakeFiles/hybrid_microgrid.dir/hybrid_microgrid.cpp.o"
  "CMakeFiles/hybrid_microgrid.dir/hybrid_microgrid.cpp.o.d"
  "hybrid_microgrid"
  "hybrid_microgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_microgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
