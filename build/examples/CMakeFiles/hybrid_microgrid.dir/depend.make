# Empty dependencies file for hybrid_microgrid.
# This may be replaced when dependencies are built.
