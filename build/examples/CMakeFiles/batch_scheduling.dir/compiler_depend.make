# Empty compiler generated dependencies file for batch_scheduling.
# This may be replaced when dependencies are built.
