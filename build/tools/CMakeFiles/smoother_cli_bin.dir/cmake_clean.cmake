file(REMOVE_RECURSE
  "CMakeFiles/smoother_cli_bin.dir/smoother_cli.cpp.o"
  "CMakeFiles/smoother_cli_bin.dir/smoother_cli.cpp.o.d"
  "smoother_cli"
  "smoother_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_cli_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
