# Empty compiler generated dependencies file for smoother_cli_bin.
# This may be replaced when dependencies are built.
