# Empty dependencies file for smoother_cli_bin.
# This may be replaced when dependencies are built.
