#include "smoother/solver/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "smoother/util/rng.hpp"

// Differential tests of the solver::simd kernels against the out-of-line
// scalar reference (simd::scalar_ref, compiled with auto-vectorization
// off). The contract under test is the one qp_solver.cpp and
// batch_solver.cpp rely on:
//
//   * Elementwise kernels and the max reductions are bit-identical to the
//     sequential loops on EVERY tier — including signed zeros and the
//     NaN-dropping branch of std::max/std::clamp.
//   * The scans/sums (prefix_sum_into, suffix_sum_add, sum) are
//     bit-identical on tiers where simd::kReassociates is false (scalar,
//     sse2, neon — the default builds) and tolerance-equal where it is
//     true (avx2).
//
// Lengths are chosen to cover the vector body plus every possible scalar
// tail (n mod kWidth), and n < kWidth (pure-tail) cases.

namespace smoother::solver::simd {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Bitwise comparison that treats NaNs with equal payloads as equal.
void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(bits(got[i]), bits(want[i]))
        << label << " diverges at i=" << i << ": got " << got[i] << " want "
        << want[i];
  }
}

std::vector<double> random_vec(std::size_t n, util::Rng& rng, double lo = -3.0,
                               double hi = 3.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Every length from pure-tail through several full vector blocks plus
/// every tail residue.
std::vector<std::size_t> test_lengths() {
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 4 * kWidth + 3; ++n) lengths.push_back(n);
  lengths.push_back(144);
  lengths.push_back(577);  // prime, guarantees a ragged tail on every tier
  return lengths;
}

TEST(SimdKernels, TierMetadataIsConsistent) {
  EXPECT_GE(kWidth, 1u);
  EXPECT_EQ(kReassociates, kWidth >= 4);
  const std::string name = tier_name();
  EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "neon" ||
              name == "avx2")
      << name;
}

TEST(SimdKernels, ElementwiseKernelsAreBitwiseEqualToReference) {
  util::Rng rng(4242);
  for (const std::size_t n : test_lengths()) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    const auto w = random_vec(n, rng);
    std::vector<double> got(n, 0.5), want(n, 0.5);

    axpby(1.7, x.data(), -0.3, y.data(), got.data(), n);
    scalar_ref::axpby(1.7, x.data(), -0.3, y.data(), want.data(), n);
    expect_bitwise(got, want, "axpby");

    got.assign(n, 0.25);
    want.assign(n, 0.25);
    add_scaled_sub(0.1, x.data(), y.data(), got.data(), n);
    scalar_ref::add_scaled_sub(0.1, x.data(), y.data(), want.data(), n);
    expect_bitwise(got, want, "add_scaled_sub");

    relaxed_step_add_scaled(1.6, x.data(), -0.6, y.data(), w.data(), 0.1,
                            got.data(), n);
    scalar_ref::relaxed_step_add_scaled(1.6, x.data(), -0.6, y.data(),
                                        w.data(), 0.1, want.data(), n);
    expect_bitwise(got, want, "relaxed_step_add_scaled");

    got = want = random_vec(n, rng);
    dual_update(0.1, 1.6, x.data(), -0.6, y.data(), w.data(), got.data(), n);
    scalar_ref::dual_update(0.1, 1.6, x.data(), -0.6, y.data(), w.data(),
                            want.data(), n);
    expect_bitwise(got, want, "dual_update");

    scale_sub(0.1, x.data(), y.data(), got.data(), n);
    scalar_ref::scale_sub(0.1, x.data(), y.data(), want.data(), n);
    expect_bitwise(got, want, "scale_sub");

    scale_center(2.0 / 7.0, x.data(), 0.123, got.data(), n);
    scalar_ref::scale_center(2.0 / 7.0, x.data(), 0.123, want.data(), n);
    expect_bitwise(got, want, "scale_center");
  }
}

TEST(SimdKernels, ClampKernelsKeepStdClampSemantics) {
  util::Rng rng(99);
  for (const std::size_t n : test_lengths()) {
    const auto lo = random_vec(n, rng, -2.0, -0.5);
    const auto hi = random_vec(n, rng, 0.5, 2.0);
    auto got = random_vec(n, rng, -4.0, 4.0);
    auto want = got;

    clamp_spans(got.data(), lo.data(), hi.data(), n);
    scalar_ref::clamp_spans(want.data(), lo.data(), hi.data(), n);
    expect_bitwise(got, want, "clamp_spans");

    clamp_value(0.0, lo.data(), hi.data(), got.data(), n);
    scalar_ref::clamp_value(0.0, lo.data(), hi.data(), want.data(), n);
    expect_bitwise(got, want, "clamp_value");
  }
}

TEST(SimdKernels, ClampAndMaxHandleSignedZeroAndNanLikeStd) {
  // The exact special values the std semantics pin down: clamp keeps the
  // operand's comparison branches (NaN compares false -> passes through;
  // -0.0 == 0.0 so bounds of the opposite zero do not rewrite it), and the
  // max reductions drop NaN exactly like (out < v) does.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x = {-0.0, 0.0, nan, 1.0, -1.0, -0.0, nan, 0.0};
  std::vector<double> lo(x.size(), -0.0);
  std::vector<double> hi(x.size(), 0.0);
  const std::size_t n = x.size();

  auto got = x;
  auto want = x;
  clamp_spans(got.data(), lo.data(), hi.data(), n);
  scalar_ref::clamp_spans(want.data(), lo.data(), hi.data(), n);
  expect_bitwise(got, want, "clamp_spans special values");

  EXPECT_EQ(bits(max_abs(x.data(), n)),
            bits(scalar_ref::max_abs(x.data(), n)));
  std::vector<double> y = {nan, -0.0, 2.0, nan, 0.5, -3.0, 0.0, nan};
  EXPECT_EQ(bits(max_abs_diff(x.data(), y.data(), n)),
            bits(scalar_ref::max_abs_diff(x.data(), y.data(), n)));
}

TEST(SimdKernels, MaxReductionsAreBitwiseEqualToReference) {
  util::Rng rng(7);
  for (const std::size_t n : test_lengths()) {
    const auto a = random_vec(n, rng);
    const auto b = random_vec(n, rng);
    const auto c = random_vec(n, rng);
    EXPECT_EQ(bits(max_abs(a.data(), n)),
              bits(scalar_ref::max_abs(a.data(), n)))
        << "max_abs n=" << n;
    EXPECT_EQ(bits(max_abs_diff(a.data(), b.data(), n)),
              bits(scalar_ref::max_abs_diff(a.data(), b.data(), n)))
        << "max_abs_diff n=" << n;
    EXPECT_EQ(bits(max_abs_sum3(a.data(), b.data(), c.data(), n)),
              bits(scalar_ref::max_abs_sum3(a.data(), b.data(), c.data(), n)))
        << "max_abs_sum3 n=" << n;
  }
}

TEST(SimdKernels, ScansMatchReferenceBitwiseOrWithinTolerance) {
  util::Rng rng(1234);
  for (const std::size_t n : test_lengths()) {
    const auto x = random_vec(n, rng);
    const auto head = random_vec(n, rng);
    std::vector<double> got(n, 0.0), want(n, 0.0);

    const double got_total = prefix_sum_into(x.data(), got.data(), n);
    const double want_total =
        scalar_ref::prefix_sum_into(x.data(), want.data(), n);
    if (!kReassociates) {
      expect_bitwise(got, want, "prefix_sum_into");
      EXPECT_EQ(bits(got_total), bits(want_total));
    } else {
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(got[i], want[i], 1e-9 * (1.0 + std::abs(want[i])))
            << "prefix_sum_into n=" << n << " i=" << i;
      EXPECT_NEAR(got_total, want_total,
                  1e-9 * (1.0 + std::abs(want_total)));
    }

    suffix_sum_add(head.data(), x.data(), got.data(), n);
    scalar_ref::suffix_sum_add(head.data(), x.data(), want.data(), n);
    if (!kReassociates) {
      expect_bitwise(got, want, "suffix_sum_add");
    } else {
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(got[i], want[i], 1e-9 * (1.0 + std::abs(want[i])))
            << "suffix_sum_add n=" << n << " i=" << i;
    }

    const double got_sum = sum(x.data(), n);
    const double want_sum = scalar_ref::sum(x.data(), n);
    if (!kReassociates) {
      EXPECT_EQ(bits(got_sum), bits(want_sum)) << "sum n=" << n;
    } else {
      EXPECT_NEAR(got_sum, want_sum, 1e-9 * (1.0 + std::abs(want_sum)));
    }
  }
}

TEST(SimdKernels, AlignedVectorIsCacheLineAligned) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u)
        << "n=" << n;
  }
}

TEST(SimdKernels, KernelsAcceptUnalignedInputs) {
  // The kernels use unaligned loads by contract — callers pass views into
  // plain std::vectors (QpProblem fields). Run one kernel at every offset
  // within a cache line to prove it.
  util::Rng rng(31);
  const std::size_t n = 97;
  const auto backing = random_vec(n + 8, rng);
  for (std::size_t offset = 0; offset < 8; ++offset) {
    std::vector<double> got(n, 0.0), want(n, 0.0);
    axpby(2.0, backing.data() + offset, 1.0, backing.data() + offset + 1,
          got.data(), n);
    scalar_ref::axpby(2.0, backing.data() + offset, 1.0,
                      backing.data() + offset + 1, want.data(), n);
    expect_bitwise(got, want, "axpby unaligned");
  }
}

}  // namespace
}  // namespace smoother::solver::simd
