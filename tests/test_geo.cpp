#include "smoother/sim/geo.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/sim/scenario.hpp"

namespace smoother::sim {
namespace {

using sched::Job;
using util::Kilowatts;
using util::Minutes;

Job make_job(std::uint64_t id, double arrival, double runtime,
             double deadline, double power = 10.0) {
  Job job;
  job.id = id;
  job.arrival = Minutes{arrival};
  job.runtime = Minutes{runtime};
  job.deadline = Minutes{deadline};
  job.servers = 1;
  job.power = Kilowatts{power};
  return job;
}

/// Two sites with complementary pulses: site A windy in the morning, site
/// B windy in the evening.
std::vector<GeoSite> pulse_sites() {
  std::vector<double> a(24 * 60, 0.0), b(24 * 60, 0.0);
  for (std::size_t t = 6 * 60; t < 10 * 60; ++t) a[t] = 40.0;
  for (std::size_t t = 18 * 60; t < 22 * 60; ++t) b[t] = 40.0;
  return {GeoSite{"A", util::TimeSeries(util::kOneMinute, std::move(a)), 16},
          GeoSite{"B", util::TimeSeries(util::kOneMinute, std::move(b)), 16}};
}

TEST(Geo, Validation) {
  EXPECT_THROW((void)geo_schedule({}, {}, GeoPolicy::kSingleSite),
               std::invalid_argument);
  auto sites = pulse_sites();
  sites[1].supply = test::constant_series(1.0, 3, util::kOneMinute);
  EXPECT_THROW(
      (void)geo_schedule({}, sites, GeoPolicy::kRenewableHeadroom),
      std::invalid_argument);
  sites = pulse_sites();
  sites[0].servers = 0;
  EXPECT_THROW(
      (void)geo_schedule({}, sites, GeoPolicy::kRenewableHeadroom),
      std::invalid_argument);
}

TEST(Geo, EveryJobAssignedExactlyOnce) {
  const auto sites = pulse_sites();
  std::vector<Job> jobs;
  for (int j = 0; j < 30; ++j)
    jobs.push_back(make_job(static_cast<std::uint64_t>(j + 1), 10.0 * j,
                            45.0, 1439.0));
  for (const auto policy :
       {GeoPolicy::kSingleSite, GeoPolicy::kRenewableHeadroom}) {
    const auto result = geo_schedule(jobs, sites, policy);
    std::size_t total = 0;
    for (std::size_t n : result.jobs_per_site) total += n;
    EXPECT_EQ(total, jobs.size()) << to_string(policy);
    std::size_t placements = 0;
    for (const auto& site_result : result.site_results)
      placements += site_result.outcome.placements.size();
    EXPECT_EQ(placements, jobs.size()) << to_string(policy);
  }
}

TEST(Geo, SingleSitePutsEverythingOnSiteZero) {
  const auto sites = pulse_sites();
  const std::vector<Job> jobs = {make_job(1, 0.0, 30.0, 500.0),
                                 make_job(2, 0.0, 30.0, 500.0)};
  const auto result = geo_schedule(jobs, sites, GeoPolicy::kSingleSite);
  EXPECT_EQ(result.jobs_per_site[0], 2u);
  EXPECT_EQ(result.jobs_per_site[1], 0u);
}

TEST(Geo, HeadroomBalancingSpreadsAcrossComplementarySites) {
  // Jobs with all-day slack: the greedy pass should use both pulses
  // instead of piling everything on one site.
  const auto sites = pulse_sites();
  std::vector<Job> jobs;
  for (int j = 0; j < 20; ++j)
    jobs.push_back(make_job(static_cast<std::uint64_t>(j + 1), 0.0, 60.0,
                            1439.0, 40.0));
  const auto balanced =
      geo_schedule(jobs, sites, GeoPolicy::kRenewableHeadroom);
  EXPECT_GT(balanced.jobs_per_site[0], 0u);
  EXPECT_GT(balanced.jobs_per_site[1], 0u);

  const auto single = geo_schedule(jobs, sites, GeoPolicy::kSingleSite);
  EXPECT_GT(balanced.total_renewable_utilization,
            single.total_renewable_utilization);
}

TEST(Geo, OversizedJobsGoToTheBigSite) {
  auto sites = pulse_sites();
  sites[0].servers = 2;   // small site
  sites[1].servers = 64;  // big site
  Job big = make_job(1, 0.0, 30.0, 1000.0);
  big.servers = 10;  // only fits on site B
  const auto result =
      geo_schedule({big}, sites, GeoPolicy::kRenewableHeadroom);
  EXPECT_EQ(result.jobs_per_site[0], 0u);
  EXPECT_EQ(result.jobs_per_site[1], 1u);
}

TEST(Geo, RealisticTwoSitePortfolioBeatsSingleSite) {
  // TX and CA wind are independently generated; a batch stream balanced
  // across them must catch at least as much renewable energy as the same
  // stream confined to TX.
  const auto horizon = util::days(2.0);
  std::vector<GeoSite> sites;
  sites.push_back(GeoSite{
      "TX", wind_power_series(trace::WindSitePresets::texas_10(),
                              Kilowatts{976.0}, horizon, util::kOneMinute, 3),
      11000});
  sites.push_back(GeoSite{
      "CA",
      wind_power_series(trace::WindSitePresets::california_9122(),
                        Kilowatts{976.0}, horizon, util::kOneMinute, 4),
      11000});

  const auto scenario = make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(), trace::WindSitePresets::texas_10(),
      1.0, horizon, 11000, 9);
  const auto balanced =
      geo_schedule(scenario.jobs, sites, GeoPolicy::kRenewableHeadroom);
  const auto single =
      geo_schedule(scenario.jobs, sites, GeoPolicy::kSingleSite);
  EXPECT_GE(balanced.total_renewable_used.value(),
            single.total_renewable_used.value());
  EXPECT_LE(balanced.total_deadline_misses, single.total_deadline_misses);
}

}  // namespace
}  // namespace smoother::sim
