#include "smoother/battery/battery.hpp"

#include <gtest/gtest.h>

namespace smoother::battery {
namespace {

using util::KilowattHours;
using util::Kilowatts;
using util::Minutes;

BatterySpec lossless_spec() {
  BatterySpec spec;
  spec.capacity = KilowattHours{100.0};
  spec.max_charge_rate = Kilowatts{120.0};
  spec.max_discharge_rate = Kilowatts{120.0};
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return spec;
}

TEST(BatterySpec, Validation) {
  BatterySpec spec = lossless_spec();
  EXPECT_NO_THROW(spec.validate());
  spec.capacity = KilowattHours{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = lossless_spec();
  spec.min_soc_fraction = 0.9;
  spec.max_soc_fraction = 0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = lossless_spec();
  spec.max_charge_rate = Kilowatts{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = lossless_spec();
  spec.charge_efficiency = 1.2;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(BatterySpec, EnergyWindow) {
  const BatterySpec spec = lossless_spec();
  EXPECT_DOUBLE_EQ(spec.min_energy().value(), 10.0);
  EXPECT_DOUBLE_EQ(spec.max_energy().value(), 100.0);
}

TEST(SpecForMaxRate, PaperSizingRule) {
  // Capacity sustains one 5-minute point at the max rate.
  const BatterySpec spec =
      spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes);
  EXPECT_NEAR(spec.capacity.value(), 488.0 * 5.0 / 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(spec.max_charge_rate.value(), 488.0);
  EXPECT_DOUBLE_EQ(spec.max_discharge_rate.value(), 488.0);
  // Headroom widens the capacity.
  const BatterySpec wide =
      spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes, 6.0);
  EXPECT_NEAR(wide.capacity.value(), 6.0 * spec.capacity.value(), 1e-9);
  EXPECT_THROW((void)spec_for_max_rate(Kilowatts{0.0}, util::kFiveMinutes),
               std::invalid_argument);
  EXPECT_THROW((void)spec_for_max_rate(Kilowatts{1.0}, Minutes{0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)spec_for_max_rate(Kilowatts{1.0}, util::kFiveMinutes, 0.5),
               std::invalid_argument);
}

TEST(Battery, InitialSocDefaultsToMidCorridor) {
  const Battery battery(lossless_spec());
  EXPECT_NEAR(battery.soc_fraction(), 0.55, 1e-12);
}

TEST(Battery, InitialSocValidated) {
  EXPECT_THROW(Battery(lossless_spec(), 0.05), std::invalid_argument);
  EXPECT_THROW(Battery(lossless_spec(), 1.01), std::invalid_argument);
  const Battery ok(lossless_spec(), 0.10);
  EXPECT_NEAR(ok.soc_fraction(), 0.10, 1e-12);
}

TEST(Battery, ChargeRespectsRateLimit) {
  Battery battery(lossless_spec(), 0.2);
  const Kilowatts accepted = battery.charge(Kilowatts{1000.0}, Minutes{60.0});
  EXPECT_DOUBLE_EQ(accepted.value(), 80.0);  // SoC ceiling binds: 80 kWh room
}

TEST(Battery, ChargeRespectsSocCeiling) {
  Battery battery(lossless_spec(), 0.95);
  // Room = 5 kWh; an hour at 120 kW would overfill, so only 5 kW accepted.
  const Kilowatts accepted = battery.charge(Kilowatts{120.0}, Minutes{60.0});
  EXPECT_NEAR(accepted.value(), 5.0, 1e-9);
  EXPECT_NEAR(battery.soc_fraction(), 1.0, 1e-9);
}

TEST(Battery, DischargeRespectsSocFloor) {
  Battery battery(lossless_spec(), 0.15);
  // Available above the floor: 5 kWh.
  const Kilowatts delivered =
      battery.discharge(Kilowatts{120.0}, Minutes{60.0});
  EXPECT_NEAR(delivered.value(), 5.0, 1e-9);
  EXPECT_NEAR(battery.soc_fraction(), 0.10, 1e-9);
  // Nothing left above the floor.
  EXPECT_DOUBLE_EQ(battery.max_discharge_power(Minutes{5.0}).value(), 0.0);
}

TEST(Battery, RateLimitBindsOverShortSteps) {
  Battery battery(lossless_spec(), 0.5);
  const Kilowatts accepted = battery.charge(Kilowatts{500.0}, Minutes{5.0});
  EXPECT_DOUBLE_EQ(accepted.value(), 120.0);  // rate limit
  const Kilowatts delivered =
      battery.discharge(Kilowatts{500.0}, Minutes{5.0});
  EXPECT_DOUBLE_EQ(delivered.value(), 120.0);
}

TEST(Battery, NegativeRequestsThrow) {
  Battery battery(lossless_spec());
  EXPECT_THROW(battery.charge(Kilowatts{-1.0}, Minutes{5.0}),
               std::invalid_argument);
  EXPECT_THROW(battery.discharge(Kilowatts{-1.0}, Minutes{5.0}),
               std::invalid_argument);
  EXPECT_THROW((void)battery.max_charge_power(Minutes{0.0}), std::invalid_argument);
}

TEST(Battery, ChargeEfficiencyLosesEnergy) {
  BatterySpec spec = lossless_spec();
  spec.charge_efficiency = 0.8;
  Battery battery(spec, 0.5);
  battery.charge(Kilowatts{60.0}, Minutes{60.0});  // 60 kWh in, 48 stored
  EXPECT_NEAR(battery.energy().value(), 50.0 + 48.0, 1e-9);
}

TEST(Battery, DischargeEfficiencyDrawsMore) {
  BatterySpec spec = lossless_spec();
  spec.discharge_efficiency = 0.8;
  Battery battery(spec, 0.5);
  const Kilowatts delivered = battery.discharge(Kilowatts{8.0}, Minutes{60.0});
  EXPECT_NEAR(delivered.value(), 8.0, 1e-9);
  // 8 kWh delivered required 10 kWh from the cell.
  EXPECT_NEAR(battery.energy().value(), 40.0, 1e-9);
}

TEST(Battery, ApplySignedFollowsPaperConvention) {
  Battery battery(lossless_spec(), 0.5);
  // Positive s discharges.
  const Kilowatts out = battery.apply_signed(Kilowatts{12.0}, Minutes{60.0});
  EXPECT_NEAR(out.value(), 12.0, 1e-9);
  EXPECT_NEAR(battery.energy().value(), 38.0, 1e-9);
  // Negative s charges; the return keeps the sign.
  const Kilowatts in = battery.apply_signed(Kilowatts{-12.0}, Minutes{60.0});
  EXPECT_NEAR(in.value(), -12.0, 1e-9);
  EXPECT_NEAR(battery.energy().value(), 50.0, 1e-9);
}

TEST(Battery, EnergyConservationRoundTrip) {
  Battery battery(lossless_spec(), 0.5);
  const double before = battery.energy().value();
  battery.charge(Kilowatts{30.0}, Minutes{30.0});
  battery.discharge(Kilowatts{30.0}, Minutes{30.0});
  EXPECT_NEAR(battery.energy().value(), before, 1e-9);
}

TEST(Battery, EquivalentFullCyclesCountsThroughput) {
  Battery battery(lossless_spec(), 0.5);
  // Usable window = 90 kWh; cycle 45 in + 45 out = half a full cycle.
  battery.charge(Kilowatts{45.0}, Minutes{60.0});
  battery.discharge(Kilowatts{45.0}, Minutes{60.0});
  EXPECT_NEAR(battery.equivalent_full_cycles(), 0.5, 1e-9);
  EXPECT_NEAR(battery.total_charged().value(), 45.0, 1e-9);
  EXPECT_NEAR(battery.total_discharged().value(), 45.0, 1e-9);
}

TEST(Battery, ChargeAtExactCeilingAcceptsNothing) {
  Battery battery(lossless_spec(), 1.0);
  const Kilowatts accepted = battery.charge(Kilowatts{120.0}, Minutes{5.0});
  EXPECT_DOUBLE_EQ(accepted.value(), 0.0);
  EXPECT_DOUBLE_EQ(battery.soc_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(battery.max_charge_power(Minutes{5.0}).value(), 0.0);
  // A signed charge step at the ceiling is likewise a no-op.
  EXPECT_DOUBLE_EQ(battery.apply_signed(Kilowatts{-50.0}, Minutes{5.0}).value(),
                   0.0);
}

TEST(Battery, DischargeAtExactFloorDeliversNothing) {
  Battery battery(lossless_spec(), 0.10);
  const Kilowatts delivered =
      battery.discharge(Kilowatts{120.0}, Minutes{5.0});
  EXPECT_DOUBLE_EQ(delivered.value(), 0.0);
  EXPECT_DOUBLE_EQ(battery.soc_fraction(), 0.10);
  EXPECT_DOUBLE_EQ(battery.max_discharge_power(Minutes{5.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(battery.apply_signed(Kilowatts{50.0}, Minutes{5.0}).value(),
                   0.0);
}

TEST(BatterySpec, DegenerateSpecsRejected) {
  // Zero (and negative) capacity or rates are non-physical and must be
  // caught at validation, not surface later as NaN SoC or division blowups.
  BatterySpec spec = lossless_spec();
  spec.capacity = KilowattHours{0.0};
  EXPECT_THROW(Battery{spec}, std::invalid_argument);
  spec.capacity = KilowattHours{-5.0};
  EXPECT_THROW(Battery{spec}, std::invalid_argument);
  spec = lossless_spec();
  spec.max_charge_rate = Kilowatts{0.0};
  EXPECT_THROW(Battery{spec}, std::invalid_argument);
  spec = lossless_spec();
  spec.max_discharge_rate = Kilowatts{0.0};
  EXPECT_THROW(Battery{spec}, std::invalid_argument);
  spec = lossless_spec();
  spec.charge_efficiency = 0.0;
  EXPECT_THROW(Battery{spec}, std::invalid_argument);
  spec = lossless_spec();
  spec.discharge_efficiency = 0.0;
  EXPECT_THROW(Battery{spec}, std::invalid_argument);
}

TEST(Battery, SocStaysInCorridorUnderRandomOps) {
  Battery battery(lossless_spec());
  std::uint64_t state = 88172645463325252ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 2000; ++i) {
    const double request = static_cast<double>(next() % 200);
    if (next() % 2 == 0)
      battery.charge(Kilowatts{request}, Minutes{5.0});
    else
      battery.discharge(Kilowatts{request}, Minutes{5.0});
    EXPECT_GE(battery.soc_fraction(), 0.10 - 1e-9);
    EXPECT_LE(battery.soc_fraction(), 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace smoother::battery
