#include "smoother/trace/wind_speed_model.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "smoother/power/capacity_factor.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/stats/descriptive.hpp"

namespace smoother::trace {
namespace {

using util::Kilowatts;

TEST(WindSiteParams, Validation) {
  WindSiteParams p;
  EXPECT_NO_THROW(p.validate());
  p.weibull_scale = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = WindSiteParams{};
  p.reversion_per_hour = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = WindSiteParams{};
  p.diurnal_amplitude = 0.6;
  p.synoptic_amplitude = 0.5;  // sum >= 1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = WindSiteParams{};
  p.gust_duration_minutes = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WindSpeedModel, DeterministicPerSeed) {
  const WindSpeedModel model(WindSitePresets::california_9122());
  const auto a = model.generate_day(42);
  const auto b = model.generate_day(42);
  EXPECT_EQ(a, b);
  const auto c = model.generate_day(43);
  EXPECT_NE(a, c);
}

TEST(WindSpeedModel, ShapeAndNonNegativity) {
  const WindSpeedModel model(WindSitePresets::texas_10());
  const auto day = model.generate_day(7);
  EXPECT_EQ(day.size(), 288u);  // 24h of 5-min points
  EXPECT_DOUBLE_EQ(day.step().value(), 5.0);
  for (std::size_t i = 0; i < day.size(); ++i) EXPECT_GE(day[i], 0.0);
}

TEST(WindSpeedModel, RejectsDegenerateRequests) {
  const WindSpeedModel model(WindSitePresets::california_9122());
  EXPECT_THROW(model.generate(util::Minutes{0.0}, util::kFiveMinutes, 1),
               std::invalid_argument);
  EXPECT_THROW(model.generate(util::Minutes{2.0}, util::kFiveMinutes, 1),
               std::invalid_argument);
}

TEST(WindSpeedModel, PinnedDiurnalPeakHour) {
  WindSiteParams params = WindSitePresets::california_9122();
  params.diurnal_amplitude = 0.4;
  params.synoptic_amplitude = 0.0;
  params.jitter_sd = 0.0;
  params.gusts_per_day = 0.0;
  params.diurnal_peak_hour = 2.0;
  const WindSpeedModel model(params);
  // Average several days: the 0-6h window must be windier than 12-18h.
  const auto week = model.generate(util::days(10.0), util::kFiveMinutes, 5);
  double night = 0.0, day = 0.0;
  std::size_t night_n = 0, day_n = 0;
  for (std::size_t i = 0; i < week.size(); ++i) {
    const double hour = std::fmod(week.time_at(i).value() / 60.0, 24.0);
    if (hour < 6.0) {
      night += week[i];
      ++night_n;
    } else if (hour >= 12.0 && hour < 18.0) {
      day += week[i];
      ++day_n;
    }
  }
  EXPECT_GT(night / static_cast<double>(night_n),
            day / static_cast<double>(day_n));
}

/// Table III calibration: generated capacity factors (through the E48
/// curve) must sit near the published site values.
struct SiteExpectation {
  WindSiteParams params;
  double expected_cf;
  bool high_volatility;
};

class WindPresetTest : public testing::TestWithParam<SiteExpectation> {};

TEST_P(WindPresetTest, CapacityFactorNearTableIII) {
  const auto& [params, expected_cf, high] = GetParam();
  const WindSpeedModel model(params);
  const auto speed = model.generate(util::days(28.0), util::kFiveMinutes, 42);
  const auto power =
      power::TurbineCurve::enercon_e48().power_series(speed);
  const double cf = power::average_capacity_factor(power, Kilowatts{800.0});
  EXPECT_NEAR(cf, expected_cf, 0.05) << params.name;
}

TEST_P(WindPresetTest, VolatilityGroupSeparation) {
  const auto& [params, expected_cf, high] = GetParam();
  const WindSpeedModel model(params);
  const auto speed = model.generate(util::days(14.0), util::kFiveMinutes, 11);
  const auto power =
      power::TurbineCurve::enercon_e48().power_series(speed);
  const auto vars =
      power::interval_capacity_factor_variances(power, Kilowatts{800.0}, 12);
  const double mean_var =
      std::accumulate(vars.begin(), vars.end(), 0.0) /
      static_cast<double>(vars.size());
  if (high)
    EXPECT_GT(mean_var, 0.015) << params.name;
  else
    EXPECT_LT(mean_var, 0.015) << params.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableIII, WindPresetTest,
    testing::Values(
        SiteExpectation{WindSitePresets::california_9122(), 0.179, false},
        SiteExpectation{WindSitePresets::oregon_24258(), 0.190, false},
        SiteExpectation{WindSitePresets::washington_29359(), 0.179, false},
        SiteExpectation{WindSitePresets::texas_10(), 0.324, true},
        SiteExpectation{WindSitePresets::colorado_11005(), 0.299, true},
        SiteExpectation{WindSitePresets::wyoming_16419(), 0.296, true}),
    [](const testing::TestParamInfo<SiteExpectation>& info) {
      std::string name = info.param.params.name;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(WindPresets, GroupsContainThreeSitesEach) {
  EXPECT_EQ(WindSitePresets::low_volatility_group().size(), 3u);
  EXPECT_EQ(WindSitePresets::high_volatility_group().size(), 3u);
  EXPECT_EQ(WindSitePresets::all().size(), 6u);
}

TEST(Fig10Days, VolatilityIsMonotoneInDayIndex) {
  // The four Fig. 10 day presets are ordered smooth -> most fluctuating.
  const auto& e48 = power::TurbineCurve::enercon_e48();
  std::vector<double> roughness;
  for (std::size_t day = 0; day < 4; ++day) {
    const WindSpeedModel model(fig10_day_params(day));
    const auto power = e48.power_series(model.generate_day(17));
    roughness.push_back(stats::rms_successive_diff(power.values()));
  }
  EXPECT_LT(roughness[0], roughness[1]);
  EXPECT_LT(roughness[1], roughness[3]);
  EXPECT_LT(roughness[2], roughness[3]);
  EXPECT_THROW(fig10_day_params(4), std::out_of_range);
}

}  // namespace
}  // namespace smoother::trace
