// Randomized property sweeps across the scheduling and smoothing stacks.
// Each TEST_P instance checks structural invariants on a different random
// scenario; seeds are fixed so the sweep is reproducible.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "smoother/core/active_delay.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/sched/scheduler.hpp"
#include "smoother/sim/dispatch.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/rng.hpp"

namespace smoother {
namespace {

using sched::Job;
using sched::Placement;
using sched::ScheduleRequest;
using util::Kilowatts;
using util::Minutes;

// --- scheduling invariants ---------------------------------------------------

ScheduleRequest random_request(std::uint64_t seed, std::size_t servers) {
  util::Rng rng(seed);
  ScheduleRequest request;
  request.total_servers = servers;
  const std::size_t slots = 24 * 60;  // one day of 1-minute slots
  std::vector<double> supply(slots);
  double level = rng.uniform(0.0, 200.0);
  for (auto& v : supply) {
    level = std::max(level + rng.normal(0.0, 15.0), 0.0);
    v = level;
  }
  request.renewable = util::TimeSeries(util::kOneMinute, std::move(supply));
  const std::size_t jobs = 20 + rng.uniform_index(60);
  for (std::size_t j = 0; j < jobs; ++j) {
    Job job;
    job.id = j + 1;
    job.arrival = Minutes{rng.uniform(0.0, 20.0 * 60.0)};
    job.runtime = Minutes{std::max(rng.lognormal(3.5, 0.8), 2.0)};
    job.deadline =
        job.arrival + job.runtime * rng.uniform(1.0, 10.0);
    job.servers = 1 + rng.uniform_index(servers / 4);
    job.cpu_utilization = rng.uniform(0.3, 1.0);
    job.power = Kilowatts{static_cast<double>(job.servers) * 0.15};
    request.jobs.push_back(job);
  }
  return request;
}

class SchedulerPropertyTest
    : public testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  static std::unique_ptr<sched::Scheduler> make(const std::string& name) {
    if (name == "ad") return std::make_unique<core::ActiveDelayScheduler>();
    if (name == "edf") return std::make_unique<sched::EdfScheduler>();
    return std::make_unique<sched::ImmediateScheduler>();
  }
};

TEST_P(SchedulerPropertyTest, StructuralInvariantsHold) {
  const auto& [policy, seed] = GetParam();
  const auto request =
      random_request(static_cast<std::uint64_t>(seed), 64);
  const auto scheduler = make(policy);
  const auto result = scheduler->schedule(request);

  std::map<std::uint64_t, const Job*> jobs_by_id;
  for (const auto& job : request.jobs) jobs_by_id[job.id] = &job;

  ASSERT_EQ(result.outcome.placements.size(), request.jobs.size());
  const double horizon = request.renewable.duration().value();

  // Rebuild occupancy from the placements and check every invariant.
  std::vector<std::size_t> used(request.renewable.size(), 0);
  std::vector<double> demand(request.renewable.size(), 0.0);
  std::size_t misses = 0;
  for (const auto& placement : result.outcome.placements) {
    const Job& job = *jobs_by_id.at(placement.job_id);
    // Never start before arrival.
    EXPECT_GE(placement.start.value(), job.arrival.value() - 1e-9);
    // Finish is start + runtime.
    EXPECT_NEAR(placement.finish.value(),
                placement.start.value() + job.runtime.value(), 1e-9);
    // Deadline bookkeeping is truthful.
    EXPECT_EQ(placement.met_deadline,
              placement.finish.value() <= job.deadline.value() + 1e-9);
    if (!placement.met_deadline) ++misses;
    if (placement.start.value() >= horizon) continue;  // never placed
    const auto first = static_cast<std::size_t>(placement.start.value());
    const auto span = static_cast<std::size_t>(
        std::ceil(job.runtime.value() - 1e-9));
    for (std::size_t t = first; t < std::min(first + span, used.size());
         ++t) {
      used[t] += job.servers;
      demand[t] += job.power.value();
    }
  }
  EXPECT_EQ(misses, result.outcome.deadline_misses);
  // Capacity never exceeded, and the reported demand series matches the
  // rebuilt one.
  for (std::size_t t = 0; t < used.size(); ++t) {
    EXPECT_LE(used[t], request.total_servers) << policy << " slot " << t;
    EXPECT_NEAR(demand[t], result.demand[t], 1e-6) << policy << " slot " << t;
  }
  // Renewable accounting: used <= generated and used <= workload energy.
  EXPECT_LE(result.outcome.renewable_energy_used.value(),
            request.renewable.total_energy().value() + 1e-6);
  EXPECT_LE(result.outcome.renewable_energy_used.value(),
            result.outcome.total_energy.value() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, SchedulerPropertyTest,
    testing::Combine(testing::Values("immediate", "edf", "ad"),
                     testing::Values(1, 7, 13, 29)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SchedulerProperty, AdNeverUsesLessRenewableThanItClaims) {
  // The sum of per-placement claims equals what the ledger handed out and
  // never exceeds the aggregate min(supply, demand) accounting.
  const auto request = random_request(99, 64);
  const auto result = core::ActiveDelayScheduler().schedule(request);
  double claimed = 0.0;
  for (const auto& placement : result.outcome.placements)
    claimed += placement.renewable_energy_used.value();
  EXPECT_LE(claimed, result.outcome.renewable_energy_used.value() + 1e-6);
}

// --- smoothing invariants ------------------------------------------------------

class SmoothingPropertyTest : public testing::TestWithParam<int> {};

TEST_P(SmoothingPropertyTest, CorridorEnergyAndVariance) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const trace::WindSpeedModel model(
      seed % 2 == 0 ? trace::WindSitePresets::texas_10()
                    : trace::WindSitePresets::oregon_24258());
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(2.0), util::kFiveMinutes, seed));

  core::RegionClassifierConfig rc;
  rc.rated_power = Kilowatts{800.0};
  rc.thresholds.stable_below = 1e-6;
  rc.thresholds.extreme_above = 0.08;
  const core::RegionClassifier classifier(rc);

  auto spec = battery::spec_for_max_rate(Kilowatts{400.0}, util::kFiveMinutes,
                                         2.0);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  battery::Battery battery(spec);
  const double initial_energy = battery.energy().value();

  const core::FlexibleSmoothing fs;
  const auto result = fs.smooth(supply, classifier, battery);

  // SoC corridor.
  EXPECT_GE(battery.soc_fraction(), spec.min_soc_fraction - 1e-9);
  EXPECT_LE(battery.soc_fraction(), spec.max_soc_fraction + 1e-9);

  // Lossless energy book: supply change == battery SoC change.
  const double battery_delta = battery.energy().value() - initial_energy;
  EXPECT_NEAR(result.supply.total_energy().value(),
              supply.total_energy().value() - battery_delta, 1e-6);

  // Per-interval variance never increases where FS acted (perfect
  // forecast), and untouched intervals are bit-identical.
  for (std::size_t k = 0; k < result.intervals.size(); ++k) {
    const auto& interval = result.intervals[k];
    const auto& plan = result.plans[k];
    if (interval.region == core::Region::kSmoothable) {
      EXPECT_LE(plan.variance_after, plan.variance_before + 1e-6);
    } else {
      for (std::size_t i = 0; i < interval.points; ++i)
        EXPECT_DOUBLE_EQ(result.supply[interval.first_point + i],
                         supply[interval.first_point + i]);
    }
  }

  // Supply is physical: never negative, never above generation + max rate.
  for (std::size_t i = 0; i < result.supply.size(); ++i) {
    EXPECT_GE(result.supply[i], 0.0);
    EXPECT_LE(result.supply[i],
              supply[i] + spec.max_discharge_rate.value() + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmoothingPropertyTest,
                         testing::Values(2, 3, 5, 8, 13, 21));

// --- dispatch invariants -------------------------------------------------------

class DispatchPropertyTest
    : public testing::TestWithParam<std::tuple<sim::DispatchPolicy, int>> {};

TEST_P(DispatchPropertyTest, EnergyBooksBalance) {
  const auto& [policy, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 500;
  std::vector<double> s(n), d(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = std::max(rng.normal(120.0, 80.0), 0.0);
    d[i] = std::max(rng.normal(100.0, 40.0), 0.0);
  }
  const util::TimeSeries supply(util::kFiveMinutes, std::move(s));
  const util::TimeSeries demand(util::kFiveMinutes, std::move(d));

  battery::BatterySpec spec;
  spec.capacity = util::KilowattHours{25.0};
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  battery::Battery battery(spec);
  const double battery_before = battery.energy().value();

  const auto result = sim::dispatch(supply, demand, policy, &battery);

  // Demand is always met: used + grid == demand.
  EXPECT_NEAR(result.renewable_used.value() + result.grid_energy.value(),
              demand.total_energy().value(), 1e-6);
  // Effective supply = generation + battery net outflow: spilled + used
  // accounts for all of it.
  const double battery_delta = battery.energy().value() - battery_before;
  EXPECT_NEAR(result.renewable_used.value() +
                  result.spilled_renewable.value() + battery_delta,
              supply.total_energy().value(), 1e-6);
  // Grid power is never negative.
  for (std::size_t i = 0; i < result.grid_power.size(); ++i)
    EXPECT_GE(result.grid_power[i], -1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, DispatchPropertyTest,
    testing::Combine(testing::Values(sim::DispatchPolicy::kDirect,
                                     sim::DispatchPolicy::kComp,
                                     sim::DispatchPolicy::kCompMatching),
                     testing::Values(4, 11, 18)),
    [](const auto& info) {
      std::string name = sim::to_string(std::get<0>(info.param)) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace smoother
