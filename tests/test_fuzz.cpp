// Fuzz-style robustness tests: hostile inputs must fail cleanly (clear
// exceptions or lenient skips), never crash or corrupt state.
#include <gtest/gtest.h>

#include <sstream>

#include "smoother/core/active_delay.hpp"
#include "smoother/trace/swf.hpp"
#include "smoother/util/csv.hpp"
#include "smoother/util/rng.hpp"

namespace smoother {
namespace {

std::string random_garbage_line(util::Rng& rng) {
  static constexpr char kAlphabet[] =
      "0123456789 .-+eE;#abcXYZ\t,|%$\xc3\xa9";
  const std::size_t length = rng.uniform_index(60);
  std::string line;
  for (std::size_t i = 0; i < length; ++i)
    line += kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)];
  return line;
}

TEST(Fuzz, SwfLenientParserNeverThrows) {
  util::Rng rng(0xf00d);
  for (int round = 0; round < 50; ++round) {
    std::stringstream input;
    const std::size_t lines = rng.uniform_index(30);
    for (std::size_t l = 0; l < lines; ++l)
      input << random_garbage_line(rng) << '\n';
    // Sprinkle a valid record so some rounds produce output.
    if (round % 3 == 0)
      input << "1 0 0 600 8 -1 -1 8 600 -1 1 1 1 -1 1 -1 -1 -1\n";
    EXPECT_NO_THROW({
      const auto records = trace::parse_swf(input, /*lenient=*/true);
      for (const auto& r : records) (void)r.schedulable();
    }) << "round "
       << round;
  }
}

TEST(Fuzz, SwfStrictParserThrowsOrParses) {
  util::Rng rng(0xbeef);
  for (int round = 0; round < 50; ++round) {
    std::stringstream input;
    input << random_garbage_line(rng) << '\n';
    try {
      (void)trace::parse_swf(input);
    } catch (const std::runtime_error&) {
      // acceptable: strict mode reports the malformed line
    }
  }
}

TEST(Fuzz, CsvReaderThrowsCleanlyOnGarbage) {
  util::Rng rng(0xcafe);
  for (int round = 0; round < 50; ++round) {
    std::stringstream input;
    const std::size_t lines = 1 + rng.uniform_index(10);
    for (std::size_t l = 0; l < lines; ++l)
      input << random_garbage_line(rng) << '\n';
    try {
      const auto table = util::CsvTable::read(input);
      // If it parsed, the table must be internally consistent.
      for (std::size_t r = 0; r < table.rows(); ++r)
        EXPECT_EQ(table.row(r).size(), table.columns());
    } catch (const std::runtime_error&) {
      // acceptable
    }
  }
}

TEST(Fuzz, SchedulerSurvivesAdversarialJobMixes) {
  // Extreme runtimes, arrivals at/beyond the horizon, zero-slack and
  // absurd-slack jobs, cluster-sized jobs.
  util::Rng rng(0xdead);
  for (int round = 0; round < 20; ++round) {
    sched::ScheduleRequest request;
    request.total_servers = 8;
    request.renewable = util::TimeSeries(
        util::kOneMinute, std::vector<double>(120, rng.uniform(0.0, 50.0)));
    const std::size_t jobs = 1 + rng.uniform_index(12);
    for (std::size_t j = 0; j < jobs; ++j) {
      sched::Job job;
      job.id = j;
      job.arrival = util::Minutes{rng.uniform(0.0, 200.0)};  // may be outside
      job.runtime = util::Minutes{rng.uniform(0.5, 500.0)};
      job.deadline = job.arrival +
                     job.runtime * rng.uniform(1.0, 3.0) *
                         (rng.bernoulli(0.3) ? 0.1 : 1.0);  // some impossible
      job.servers = 1 + rng.uniform_index(8);
      job.power = util::Kilowatts{rng.uniform(0.1, 30.0)};
      request.jobs.push_back(job);
    }
    EXPECT_NO_THROW({
      const auto result = core::ActiveDelayScheduler().schedule(request);
      EXPECT_EQ(result.outcome.placements.size(), request.jobs.size());
    }) << "round "
       << round;
  }
}

}  // namespace
}  // namespace smoother
