// End-to-end pipeline tests: miniature versions of the paper's experiments
// exercising every library together through the public API only.
#include <gtest/gtest.h>

#include <numeric>

#include "smoother/core/metrics.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/power/capacity_factor.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/power/wind_farm.hpp"
#include "smoother/sim/dispatch.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/stats/cdf.hpp"
#include "smoother/trace/trace_io.hpp"

namespace smoother {
namespace {

using util::Kilowatts;

TEST(Integration, WindToPowerToRegionsPipeline) {
  // Speed synthesis -> turbine curve -> farm -> CF variance -> CDF ->
  // thresholds -> classification: the Fig. 2/3 pipeline.
  const trace::WindSpeedModel model(trace::WindSitePresets::wyoming_16419());
  const auto speed = model.generate(util::days(7.0), util::kFiveMinutes, 70);
  const power::WindFarm farm(power::TurbineCurve::enercon_e48(),
                             Kilowatts{1525.0});
  const auto supply = farm.power_series(speed);

  const auto variances = power::interval_capacity_factor_variances(
      supply, farm.installed_capacity(), 12);
  ASSERT_EQ(variances.size(), supply.size() / 12);
  const stats::EmpiricalCdf cdf(variances);
  EXPECT_LT(cdf.value_at(0.25), cdf.value_at(0.95));

  const auto thresholds = core::thresholds_from_history(
      supply, farm.installed_capacity(), 12, 0.25, 0.95);
  core::RegionClassifierConfig config;
  config.rated_power = farm.installed_capacity();
  config.thresholds = thresholds;
  const core::RegionClassifier classifier(config);
  const auto intervals = classifier.classify(supply);
  EXPECT_EQ(intervals.size(), variances.size());
}

TEST(Integration, SmoothingLowersSupplyRoughness) {
  const auto supply =
      sim::wind_power_series(trace::WindSitePresets::texas_10(),
                             Kilowatts{976.0}, util::days(3.0),
                             util::kFiveMinutes, 123);
  const auto config = sim::default_config(Kilowatts{976.0});
  const core::Smoother middleware(config);
  const auto result = middleware.smooth_supply(supply);

  // Energy approximately conserved (battery shifts, doesn't consume —
  // allow the battery's net SoC drift of at most its capacity).
  EXPECT_NEAR(result.supply.total_energy().value(),
              supply.total_energy().value(),
              config.battery.capacity.value() + 1e-6);
  EXPECT_GT(result.smoothed_intervals, 0u);
}

TEST(Integration, RoundTripTracesThroughCsv) {
  // Generated supply survives a save/load cycle and produces identical
  // downstream metrics.
  const auto supply =
      sim::wind_power_series(trace::WindSitePresets::oregon_24258(),
                             Kilowatts{976.0}, util::days(1.0),
                             util::kFiveMinutes, 8);
  const std::string path = testing::TempDir() + "/supply.csv";
  trace::save_series(supply, path, "wind_kw");
  const auto loaded = trace::load_series(path, "wind_kw");
  ASSERT_EQ(loaded.size(), supply.size());
  const auto demand =
      util::TimeSeries(util::kFiveMinutes,
                       std::vector<double>(supply.size(), 150.0));
  EXPECT_EQ(core::energy_switching_times(supply, demand),
            core::energy_switching_times(loaded, demand));
}

TEST(Integration, FullMiddlewareRunOnBatchScenario) {
  const auto scenario = sim::make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(),
      trace::WindSitePresets::texas_10(), 1.0, util::days(2.0), 11000, 31);
  auto config = sim::default_config(Kilowatts{scenario.supply.max()});

  const core::Smoother middleware(config);
  const core::RunReport report =
      middleware.run(scenario.supply, scenario.jobs, scenario.total_servers);

  // Report internally consistent.
  const double generated =
      report.smoothing.supply.total_energy().value();
  const double used =
      report.schedule.outcome.renewable_energy_used.value();
  EXPECT_LE(used, generated + 1e-6);
  EXPECT_NEAR(report.renewable_utilization, used / generated, 0.05);
  EXPECT_EQ(report.schedule.outcome.placements.size(), scenario.jobs.size());
}

TEST(Integration, PaperOrderingAcrossArms) {
  // One scenario, four arms: raw, Comp, FS, FS+AD. The paper's ordering on
  // switching times must hold end to end.
  const Kilowatts capacity{976.0};
  const auto scenario = sim::make_web_scenario(
      trace::WebWorkloadPresets::clark(), trace::WindSitePresets::texas_10(),
      capacity, util::days(7.0), 4242);
  const auto config = sim::default_config(capacity);

  const auto raw =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kDirect);
  battery::Battery comp_battery(config.battery);
  const auto comp =
      sim::dispatch(scenario.supply, scenario.demand,
                    sim::DispatchPolicy::kComp, &comp_battery);
  const core::Smoother middleware(config);
  const auto smoothing = middleware.smooth_supply(scenario.supply);
  const auto fs = sim::dispatch(smoothing.supply, scenario.demand,
                                sim::DispatchPolicy::kDirect);

  EXPECT_LT(fs.switching_times, raw.switching_times);
  EXPECT_LE(fs.switching_times, comp.switching_times);
  EXPECT_LE(comp.switching_times, raw.switching_times);
}

TEST(Integration, SwfJobsDriveActiveDelay) {
  // SWF-exported jobs feed straight back into the scheduler.
  const trace::BatchWorkloadModel model(trace::BatchWorkloadPresets::hpc2n());
  const auto records = model.generate_swf(util::days(1.0), 11000, 17);
  power::DatacenterSpec spec;
  spec.server_count = 11000;
  const power::DatacenterPowerModel dc(spec);
  const auto jobs = trace::swf_to_jobs(records, dc);
  ASSERT_FALSE(jobs.empty());

  sched::ScheduleRequest request;
  request.jobs = jobs;
  request.total_servers = 11000;
  request.renewable = sim::wind_power_series(
      trace::WindSitePresets::colorado_11005(), Kilowatts{976.0},
      util::days(2.0), util::kOneMinute, 5);
  const core::ActiveDelayScheduler scheduler;
  const auto result = scheduler.schedule(request);
  EXPECT_EQ(result.outcome.placements.size(), jobs.size());
}

}  // namespace
}  // namespace smoother
