#include "smoother/stats/rolling.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "smoother/stats/descriptive.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::stats {
namespace {

TEST(RollingVariance, RejectsZeroCapacity) {
  EXPECT_THROW(RollingVariance(0), std::invalid_argument);
}

TEST(RollingVariance, MatchesBatchVarianceOnceFull) {
  util::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(0.0, 50.0));

  RollingVariance rolling(12);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    rolling.add(xs[i]);
    if (i + 1 >= 12) {
      const std::size_t start = i + 1 - 12;
      const double expected =
          variance(std::span<const double>(xs).subspan(start, 12));
      EXPECT_NEAR(rolling.variance(), expected, 1e-9);
      EXPECT_TRUE(rolling.full());
    }
  }
}

TEST(RollingVariance, PartialWindow) {
  RollingVariance rolling(5);
  EXPECT_DOUBLE_EQ(rolling.variance(), 0.0);
  rolling.add(2.0);
  EXPECT_DOUBLE_EQ(rolling.variance(), 0.0);  // one sample
  EXPECT_DOUBLE_EQ(rolling.mean(), 2.0);
  rolling.add(4.0);
  EXPECT_DOUBLE_EQ(rolling.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rolling.variance(), 1.0);
  EXPECT_FALSE(rolling.full());
  EXPECT_EQ(rolling.count(), 2u);
  EXPECT_EQ(rolling.capacity(), 5u);
}

TEST(WindowedVariances, DisjointWindowsDropTail) {
  const std::vector<double> xs = {1.0, 3.0, 5.0, 5.0, 9.0, 9.0, 42.0};
  const auto vars = windowed_variances(xs, 2);
  ASSERT_EQ(vars.size(), 3u);  // 7th sample dropped
  EXPECT_DOUBLE_EQ(vars[0], 1.0);   // {1,3}
  EXPECT_DOUBLE_EQ(vars[1], 0.0);   // {5,5}
  EXPECT_DOUBLE_EQ(vars[2], 0.0);   // {9,9}
  EXPECT_THROW(windowed_variances(xs, 0), std::invalid_argument);
}

TEST(WindowedMeans, HandComputed) {
  const std::vector<double> xs = {2.0, 4.0, 10.0, 20.0};
  const auto means = windowed_means(xs, 2);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], 15.0);
}

TEST(WindowedVariances, ShortInputYieldsEmpty) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_TRUE(windowed_variances(xs, 3).empty());
}

TEST(MovingAverage, SmoothsAndPreservesConstants) {
  const std::vector<double> flat = {3.0, 3.0, 3.0, 3.0, 3.0};
  const auto out = moving_average(flat, 3);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 3.0);

  const std::vector<double> ramp = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto smoothed = moving_average(ramp, 3);
  EXPECT_DOUBLE_EQ(smoothed[2], 2.0);   // full window
  EXPECT_DOUBLE_EQ(smoothed[0], 0.5);   // truncated at the edge
  EXPECT_DOUBLE_EQ(smoothed[4], 3.5);
}

TEST(MovingAverage, RejectsEvenOrZeroWindow) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(moving_average(xs, 2), std::invalid_argument);
  EXPECT_THROW(moving_average(xs, 0), std::invalid_argument);
}

TEST(MovingAverage, ReducesRoughness) {
  util::Rng rng(4);
  std::vector<double> noisy;
  for (int i = 0; i < 200; ++i) noisy.push_back(rng.normal(0.0, 1.0));
  const auto smoothed = moving_average(noisy, 9);
  EXPECT_LT(variance(smoothed), variance(noisy));
}

}  // namespace
}  // namespace smoother::stats
