#include "smoother/stats/rolling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "smoother/stats/descriptive.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::stats {
namespace {

TEST(RollingVariance, RejectsZeroCapacity) {
  EXPECT_THROW(RollingVariance(0), std::invalid_argument);
}

TEST(RollingVariance, MatchesBatchVarianceOnceFull) {
  util::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(0.0, 50.0));

  RollingVariance rolling(12);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    rolling.add(xs[i]);
    if (i + 1 >= 12) {
      const std::size_t start = i + 1 - 12;
      const double expected =
          variance(std::span<const double>(xs).subspan(start, 12));
      EXPECT_NEAR(rolling.variance(), expected, 1e-9);
      EXPECT_TRUE(rolling.full());
    }
  }
}

TEST(RollingVariance, PartialWindow) {
  RollingVariance rolling(5);
  EXPECT_DOUBLE_EQ(rolling.variance(), 0.0);
  rolling.add(2.0);
  EXPECT_DOUBLE_EQ(rolling.variance(), 0.0);  // one sample
  EXPECT_DOUBLE_EQ(rolling.mean(), 2.0);
  rolling.add(4.0);
  EXPECT_DOUBLE_EQ(rolling.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rolling.variance(), 1.0);
  EXPECT_FALSE(rolling.full());
  EXPECT_EQ(rolling.count(), 2u);
  EXPECT_EQ(rolling.capacity(), 5u);
}

TEST(RollingVariance, AddEvictSequencesMatchBatchStats) {
  // Regression for the dead running-accumulator pair: mean and variance
  // must always equal the batch statistics of the raw window, including
  // through long add/evict sequences on ill-scaled data (a huge offset
  // riding on tiny fluctuations is where an accumulated sum-of-squares
  // would cancel catastrophically).
  util::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(1.0e8 + rng.uniform(0.0, 1.0));

  RollingVariance rolling(12);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    rolling.add(xs[i]);
    const std::size_t n = std::min<std::size_t>(i + 1, 12);
    const std::size_t start = i + 1 - n;
    const auto window = std::span<const double>(xs).subspan(start, n);
    // stats::variance runs Welford; the window pass here is two-pass. Both
    // carry ~ulp(1e8) deviation rounding, so compare to that precision
    // rather than bitwise.
    EXPECT_NEAR(rolling.mean(), mean(window), 1e-6) << "at sample " << i;
    if (n >= 2)
      EXPECT_NEAR(rolling.variance(), variance(window), 1e-7)
          << "at sample " << i;
  }
}

TEST(RollingVariance, RecoversAfterNonFiniteSampleIsEvicted) {
  // A NaN (or infinite) sample — a telemetry glitch — may poison the stats
  // while it sits in the window, but once evicted the window holds only
  // finite samples and the statistics must be exact again. With running
  // accumulators this fails forever: NaN - NaN is still NaN.
  RollingVariance rolling(3);
  rolling.add(1.0);
  rolling.add(std::numeric_limits<double>::quiet_NaN());
  rolling.add(2.0);
  EXPECT_TRUE(std::isnan(rolling.mean()));  // glitch is in the window

  rolling.add(4.0);  // evicts 1.0
  rolling.add(6.0);  // evicts the NaN
  EXPECT_DOUBLE_EQ(rolling.mean(), 4.0);          // {2, 4, 6}
  EXPECT_DOUBLE_EQ(rolling.variance(), 8.0 / 3.0);

  RollingVariance with_inf(2);
  with_inf.add(std::numeric_limits<double>::infinity());
  with_inf.add(3.0);
  with_inf.add(5.0);  // infinity evicted
  EXPECT_DOUBLE_EQ(with_inf.mean(), 4.0);
  EXPECT_DOUBLE_EQ(with_inf.variance(), 1.0);
}

TEST(WindowedVariances, DisjointWindowsDropTail) {
  const std::vector<double> xs = {1.0, 3.0, 5.0, 5.0, 9.0, 9.0, 42.0};
  const auto vars = windowed_variances(xs, 2);
  ASSERT_EQ(vars.size(), 3u);  // 7th sample dropped
  EXPECT_DOUBLE_EQ(vars[0], 1.0);   // {1,3}
  EXPECT_DOUBLE_EQ(vars[1], 0.0);   // {5,5}
  EXPECT_DOUBLE_EQ(vars[2], 0.0);   // {9,9}
  EXPECT_THROW(windowed_variances(xs, 0), std::invalid_argument);
}

TEST(WindowedMeans, HandComputed) {
  const std::vector<double> xs = {2.0, 4.0, 10.0, 20.0};
  const auto means = windowed_means(xs, 2);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], 15.0);
}

TEST(WindowedVariances, ShortInputYieldsEmpty) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_TRUE(windowed_variances(xs, 3).empty());
}

TEST(MovingAverage, SmoothsAndPreservesConstants) {
  const std::vector<double> flat = {3.0, 3.0, 3.0, 3.0, 3.0};
  const auto out = moving_average(flat, 3);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 3.0);

  const std::vector<double> ramp = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto smoothed = moving_average(ramp, 3);
  EXPECT_DOUBLE_EQ(smoothed[2], 2.0);   // full window
  EXPECT_DOUBLE_EQ(smoothed[0], 0.5);   // truncated at the edge
  EXPECT_DOUBLE_EQ(smoothed[4], 3.5);
}

TEST(MovingAverage, RejectsEvenOrZeroWindow) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(moving_average(xs, 2), std::invalid_argument);
  EXPECT_THROW(moving_average(xs, 0), std::invalid_argument);
}

TEST(MovingAverage, ReducesRoughness) {
  util::Rng rng(4);
  std::vector<double> noisy;
  for (int i = 0; i < 200; ++i) noisy.push_back(rng.normal(0.0, 1.0));
  const auto smoothed = moving_average(noisy, 9);
  EXPECT_LT(variance(smoothed), variance(noisy));
}

}  // namespace
}  // namespace smoother::stats
