#include "smoother/trace/batch_workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smoother::trace {
namespace {

power::DatacenterPowerModel test_dc(std::size_t servers = 11000) {
  power::DatacenterSpec spec;
  spec.server_count = servers;
  return power::DatacenterPowerModel(spec);
}

TEST(BatchWorkloadParams, Validation) {
  BatchWorkloadParams p;
  EXPECT_NO_THROW(p.validate());
  p.target_utilization = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BatchWorkloadParams{};
  p.source_processors = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BatchWorkloadParams{};
  p.mean_runtime_minutes = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BatchWorkloadParams{};
  p.deadline_slack_min = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BatchWorkloadParams{};
  p.deadline_slack_max = p.deadline_slack_min - 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BatchWorkloadModel, Deterministic) {
  const BatchWorkloadModel model(BatchWorkloadPresets::hpc2n());
  const auto a = model.generate(util::days(2.0), 11000, test_dc(), 5);
  const auto b = model.generate(util::days(2.0), 11000, test_dc(), 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].arrival.value(), b[i].arrival.value());
    EXPECT_DOUBLE_EQ(a[i].runtime.value(), b[i].runtime.value());
  }
}

TEST(BatchWorkloadModel, JobsAreWellFormed) {
  const BatchWorkloadModel model(BatchWorkloadPresets::lanl_cm5());
  const auto jobs = model.generate(util::days(3.0), 11000, test_dc(), 7);
  ASSERT_FALSE(jobs.empty());
  const auto horizon = util::days(3.0);
  for (const auto& job : jobs) {
    EXPECT_NO_THROW(job.validate());
    EXPECT_GE(job.arrival.value(), 0.0);
    EXPECT_LT(job.arrival.value(), horizon.value());
    // Deadline leaves at least the configured minimum slack.
    EXPECT_GE(job.deadline.value(),
              job.arrival.value() + 6.0 * job.runtime.value() - 1e-6);
    EXPECT_GT(job.power.value(), 0.0);
    EXPECT_LE(job.servers, 11000u);
  }
}

class BatchPresetTest : public testing::TestWithParam<BatchWorkloadParams> {};

TEST_P(BatchPresetTest, OfferedUtilizationNearTableII) {
  const BatchWorkloadModel model(GetParam());
  const auto horizon = util::days(4.0);
  const auto jobs = model.generate(horizon, 11000, test_dc(), 99);
  const double offered = BatchWorkloadModel::offered_utilization(
      jobs, GetParam().source_processors, horizon);
  // The steering loop lands within half a mean job of the target.
  EXPECT_NEAR(offered, GetParam().target_utilization,
              0.12 * GetParam().target_utilization)
      << GetParam().name;
}

TEST_P(BatchPresetTest, ArrivalsConcentrateInWorkingHours) {
  const BatchWorkloadModel model(GetParam());
  const auto jobs = model.generate(util::days(6.0), 11000, test_dc(), 3);
  std::size_t daytime = 0, night = 0;
  for (const auto& job : jobs) {
    const double hour = std::fmod(job.arrival.value() / 60.0, 24.0);
    if (hour >= 8.0 && hour < 18.0)
      ++daytime;
    else
      ++night;
  }
  // 10 working hours vs 14 off hours, yet most arrivals are daytime.
  EXPECT_GT(daytime, 2 * night) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    TableII, BatchPresetTest,
    testing::Values(BatchWorkloadPresets::llnl_thunder(),
                    BatchWorkloadPresets::lanl_cm5(),
                    BatchWorkloadPresets::hpc2n(),
                    BatchWorkloadPresets::sandia_ross()),
    [](const testing::TestParamInfo<BatchWorkloadParams>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(BatchPresets, TableIIValues) {
  const auto all = BatchWorkloadPresets::all();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_DOUBLE_EQ(all[0].target_utilization, 0.867);
  EXPECT_DOUBLE_EQ(all[1].target_utilization, 0.744);
  EXPECT_DOUBLE_EQ(all[2].target_utilization, 0.601);
  EXPECT_DOUBLE_EQ(all[3].target_utilization, 0.499);
}

TEST(BatchWorkloadModel, SwfExportRoundTrips) {
  const BatchWorkloadModel model(BatchWorkloadPresets::sandia_ross());
  const auto records = model.generate_swf(util::days(2.0), 11000, 21);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_TRUE(r.schedulable());
    EXPECT_GT(r.run_time_s, 0.0);
    EXPECT_GT(r.allocated_processors, 0);
  }
  // Converting the exported records back yields the same job count.
  const auto jobs = swf_to_jobs(records, test_dc());
  EXPECT_EQ(jobs.size(), records.size());
}

TEST(BatchWorkloadModel, RejectsDegenerateInputs) {
  const BatchWorkloadModel model(BatchWorkloadPresets::hpc2n());
  EXPECT_THROW(model.generate(util::Minutes{0.0}, 100, test_dc(), 1),
               std::invalid_argument);
  EXPECT_THROW(model.generate(util::days(1.0), 0, test_dc(), 1),
               std::invalid_argument);
}

TEST(OfferedUtilization, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(
      BatchWorkloadModel::offered_utilization({}, 100, util::days(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(
      BatchWorkloadModel::offered_utilization({}, 0, util::days(1.0)), 0.0);
}

}  // namespace
}  // namespace smoother::trace
