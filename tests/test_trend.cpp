// Trend-aware smoothing extension: detrended variance statistics, the
// detrended QP objective, detrended region classification, and the
// end-to-end behaviour difference on ramps (solar-like supply).
#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/solver/qp.hpp"
#include "smoother/stats/descriptive.hpp"
#include "smoother/util/rng.hpp"

namespace smoother {
namespace {

using util::Kilowatts;

// --- stats::detrended_variance ---------------------------------------------

TEST(DetrendedVariance, PureRampHasZeroResidual) {
  const std::vector<double> ramp = {0.0, 2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(stats::detrended_variance(ramp), 0.0, 1e-12);
  const std::vector<double> constant(6, 3.0);
  EXPECT_NEAR(stats::detrended_variance(constant), 0.0, 1e-12);
}

TEST(DetrendedVariance, MatchesPlainVarianceWhenNoTrend) {
  // Palindromic data has an exactly zero least-squares slope, so the
  // detrended and plain variances coincide. (An alternating pattern with
  // an even sample count does NOT: it correlates slightly with the index.)
  const std::vector<double> xs = {1.0, 3.0, 5.0, 5.0, 3.0, 1.0};
  EXPECT_NEAR(stats::detrended_variance(xs), stats::variance(xs), 1e-12);
}

TEST(DetrendedVariance, NeverExceedsPlainVariance) {
  util::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> xs;
    const double slope = rng.uniform(-5.0, 5.0);
    for (int i = 0; i < 12; ++i)
      xs.push_back(slope * i + rng.normal(0.0, 2.0));
    EXPECT_LE(stats::detrended_variance(xs), stats::variance(xs) + 1e-9);
  }
}

TEST(DetrendedVariance, ShortInputsAreZero) {
  EXPECT_DOUBLE_EQ(stats::detrended_variance(std::vector<double>{1.0, 9.0}),
                   0.0);
  EXPECT_DOUBLE_EQ(stats::detrended_variance({}), 0.0);
}

TEST(DetrendedVariance, RampPlusNoiseRecoversNoiseVariance) {
  util::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i)
    xs.push_back(10.0 * i + rng.normal(0.0, 3.0));
  EXPECT_NEAR(stats::detrended_variance(xs), 9.0, 0.5);
}

// --- solver::detrended_variance_quadratic_form ------------------------------

TEST(DetrendedQuadraticForm, EqualsDetrendedVariance) {
  util::Rng rng(7);
  for (std::size_t n : {3u, 5u, 12u}) {
    const solver::Matrix p = solver::detrended_variance_quadratic_form(n);
    solver::Vector x(n);
    for (double& v : x) v = rng.uniform(-10.0, 10.0);
    EXPECT_NEAR(0.5 * solver::dot(x, p * x), stats::detrended_variance(x),
                1e-9);
  }
  EXPECT_THROW(solver::detrended_variance_quadratic_form(2),
               std::invalid_argument);
}

TEST(DetrendedQuadraticForm, RampIsInItsNullSpace) {
  const std::size_t n = 12;
  const solver::Matrix p = solver::detrended_variance_quadratic_form(n);
  solver::Vector ramp(n);
  for (std::size_t i = 0; i < n; ++i)
    ramp[i] = 4.0 + 2.5 * static_cast<double>(i);
  const solver::Vector pr = p * ramp;
  EXPECT_NEAR(solver::norm_inf(pr), 0.0, 1e-9);
}

// --- trend-aware Flexible Smoothing -----------------------------------------

battery::BatterySpec fs_battery() {
  auto spec = battery::spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return spec;
}

core::RegionClassifier classifier(bool detrend) {
  core::RegionClassifierConfig config;
  config.rated_power = Kilowatts{800.0};
  config.thresholds.stable_below = 1e-6;
  config.thresholds.extreme_above = 1.0;
  config.detrend = detrend;
  return core::RegionClassifier(config);
}

/// A solar-like clear ramp: 0 -> 440 kW over the hour, no noise.
util::TimeSeries clear_ramp() {
  std::vector<double> values;
  for (int i = 0; i < 12; ++i) values.push_back(40.0 * i);
  return util::TimeSeries(util::kFiveMinutes, std::move(values));
}

TEST(TrendAwareClassifier, RampIsStableNoiseIsNot) {
  const auto ramp = clear_ramp();
  // Mean-based Eq. 6 calls the ramp fluctuating; detrended calls it stable.
  EXPECT_EQ(classifier(false).classify(ramp)[0].region,
            core::Region::kSmoothable);
  EXPECT_EQ(classifier(true).classify(ramp)[0].region,
            core::Region::kStable);
  // Alternating noise is smoothable under both measures.
  const auto noise = test::sawtooth_series(100.0, 500.0, 2, 12);
  EXPECT_EQ(classifier(true).classify(noise)[0].region,
            core::Region::kSmoothable);
}

TEST(TrendAwareFs, LeavesCleanRampUntouched) {
  core::FlexibleSmoothingConfig config;
  config.objective = core::SmoothingObjective::kAroundTrend;
  const core::FlexibleSmoothing fs(config);
  battery::Battery battery(fs_battery());
  const auto ramp = clear_ramp();
  const auto result = fs.smooth(ramp, classifier(true), battery);
  EXPECT_EQ(result.smoothed_intervals, 0u);
  EXPECT_EQ(result.supply, ramp);
}

TEST(TrendAwareFs, MeanObjectiveStaircasesTheRamp) {
  // The paper's Eq. 9 objective flattens toward the mean, bending the ramp;
  // this is the artifact the trend objective removes.
  core::FlexibleSmoothingConfig mean_config;
  const core::FlexibleSmoothing mean_fs(mean_config);
  battery::Battery battery(fs_battery());
  const auto ramp = clear_ramp();
  const auto plan = mean_fs.plan_interval(ramp, battery);
  // It actively charges/discharges on a clean ramp...
  double activity = 0.0;
  for (double s : plan.schedule_kwh) activity += std::abs(s);
  EXPECT_GT(activity, 1.0);
}

TEST(TrendAwareFs, StillSmoothsNoiseOnTopOfRamp) {
  core::FlexibleSmoothingConfig config;
  config.objective = core::SmoothingObjective::kAroundTrend;
  const core::FlexibleSmoothing fs(config);
  battery::Battery battery(fs_battery());
  // Ramp + alternating noise.
  std::vector<double> values;
  for (int i = 0; i < 12; ++i)
    values.push_back(40.0 * i + (i % 2 ? 120.0 : -120.0) + 150.0);
  const util::TimeSeries noisy(util::kFiveMinutes, std::move(values));
  const auto result = fs.smooth(noisy, classifier(true), battery);
  EXPECT_EQ(result.smoothed_intervals, 1u);
  EXPECT_LT(stats::detrended_variance(result.supply.values()),
            stats::detrended_variance(noisy.values()) * 0.5);
}

TEST(TrendAwareFs, WindOutcomeComparableWhenNoTrend) {
  // The two objectives need not produce identical schedules even on
  // zero-slope input (the trend form has an extra null direction), but on
  // trendless wind noise their *smoothing outcomes* must be comparable —
  // the trend option is a safe default for mixed wind+solar fleets.
  std::vector<double> values = {100.0, 500.0, 150.0, 450.0, 200.0, 400.0,
                                400.0, 200.0, 450.0, 150.0, 500.0, 100.0};
  const util::TimeSeries wind(util::kFiveMinutes, std::move(values));
  battery::Battery b1(fs_battery()), b2(fs_battery());
  core::FlexibleSmoothingConfig mean_config;
  core::FlexibleSmoothingConfig trend_config;
  trend_config.objective = core::SmoothingObjective::kAroundTrend;
  const auto mean_plan =
      core::FlexibleSmoothing(mean_config).plan_interval(wind, b1);
  const auto trend_plan =
      core::FlexibleSmoothing(trend_config).plan_interval(wind, b2);
  // The mean objective flattens outright (plain variance collapses)...
  EXPECT_LT(mean_plan.variance_after, 0.05 * mean_plan.variance_before);
  // ...the trend objective may leave a (harmless) residual tilt, so judge
  // it by its own measure: the executed supply's detrended variance.
  const auto trend_supply =
      core::FlexibleSmoothing(trend_config).execute_plan(trend_plan, wind, b2);
  EXPECT_LT(stats::detrended_variance(trend_supply.values()),
            0.05 * stats::detrended_variance(wind.values()));
  // And the trend arm still removes most of the *plain* variance too.
  EXPECT_LT(trend_plan.variance_after, 0.5 * trend_plan.variance_before);
}

}  // namespace
}  // namespace smoother
