// smoother::obs — registry semantics, span nesting & JSON-lines shape,
// determinism (two runs identical modulo wall-clock fields), and
// thread-safety under runtime::ThreadPool (also the TSan suite's target).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "smoother/obs/interval_observer.hpp"
#include "smoother/obs/metrics.hpp"
#include "smoother/obs/profile.hpp"
#include "smoother/obs/trace.hpp"
#include "smoother/runtime/thread_pool.hpp"
#include "smoother/solver/qp.hpp"
#include "smoother/util/logging.hpp"

namespace smoother {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::GlobalMetricsScope;
using obs::GlobalTracerScope;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Span;
using obs::Tracer;

/// Replaces every wall-clock field with a constant so deterministic runs
/// compare equal (the documented determinism contract of the trace log).
std::string mask_wall_ms(const std::string& text) {
  static const std::regex wall("\"wall_ms\":[0-9]+\\.[0-9]+");
  return std::regex_replace(text, wall, "\"wall_ms\":0");
}

// --- Registry semantics ----------------------------------------------------

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(ObsGauge, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram hist({1.0, 10.0, 100.0}, /*timing=*/false);
  hist.record(0.5);    // <= 1
  hist.record(1.0);    // == 1 lands in the first bucket (inclusive edge)
  hist.record(10.0);   // second bucket
  hist.record(99.9);   // third
  hist.record(1000.0); // overflow
  EXPECT_EQ(hist.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 10.0 + 99.9 + 1000.0);
  EXPECT_FALSE(hist.timing());
}

TEST(ObsHistogram, RejectsEmptyOrUnsortedBounds) {
  EXPECT_THROW(Histogram({}, false), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}, false), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}, false), std::invalid_argument);
}

TEST(ObsRegistry, LookupReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&registry.counter("y"), &a);
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
}

TEST(ObsRegistry, HistogramBoundsApplyOnlyOnFirstCreation) {
  MetricsRegistry registry;
  Histogram& first = registry.histogram("h", {1.0, 2.0});
  Histogram& again = registry.histogram("h", {5.0, 6.0, 7.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsRegistry, TimingHistogramIsMarkedAndUsesLatencyLadder) {
  MetricsRegistry registry;
  Histogram& timing = registry.timing_histogram("t_ms");
  EXPECT_TRUE(timing.timing());
  EXPECT_EQ(timing.bounds(), obs::default_latency_bounds_ms());
  EXPECT_FALSE(registry.histogram("plain", {1.0}).timing());
}

TEST(ObsRegistry, GenerationIdsAreProcessUnique) {
  // Hot-path handle caches key on (pointer, id); a fresh registry at a
  // recycled address must present a different id.
  MetricsRegistry a;
  MetricsRegistry b;
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), 0u);
}

TEST(ObsRegistry, SnapshotCapturesAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(2.5);
  registry.histogram("h", {1.0, 2.0}).record(1.5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 7u);
  EXPECT_EQ(snap.gauges.at("g"), 2.5);
  const auto& h = snap.histograms.at("h");
  EXPECT_EQ(h.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(h.buckets, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 1.5);
  EXPECT_FALSE(h.timing);
}

TEST(ObsRegistry, JsonExportIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.counter("z.second").add(2);
  registry.counter("a.first").add(1);
  registry.gauge("g").set(0.5);
  registry.timing_histogram("lat_ms").record(0.02);

  const std::string json = registry.to_json();
  // Counters serialize sorted by name regardless of registration order.
  EXPECT_LT(json.find("\"a.first\": 1"), json.find("\"z.second\": 2"));
  EXPECT_NE(json.find("\"g\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"timing\": true"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(ObsRegistry, CsvExportOneColumnPerField) {
  MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(1.5);
  registry.histogram("h", {10.0}).record(4.0);

  const util::CsvTable table = registry.to_csv();
  std::ostringstream os;
  table.write(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("c.count"), std::string::npos);
  EXPECT_NE(csv.find("g.value"), std::string::npos);
  EXPECT_NE(csv.find("h.le_10"), std::string::npos);
  EXPECT_NE(csv.find("h.overflow"), std::string::npos);
  EXPECT_NE(csv.find("h.sum"), std::string::npos);
}

TEST(ObsGlobals, ScopesInstallAndRestore) {
  MetricsRegistry* before = obs::global_metrics();
  MetricsRegistry outer_registry;
  {
    GlobalMetricsScope outer(&outer_registry);
    EXPECT_EQ(obs::global_metrics(), &outer_registry);
    MetricsRegistry inner_registry;
    {
      GlobalMetricsScope inner(&inner_registry);
      EXPECT_EQ(obs::global_metrics(), &inner_registry);
    }
    EXPECT_EQ(obs::global_metrics(), &outer_registry);
  }
  EXPECT_EQ(obs::global_metrics(), before);

  Tracer tracer;
  Tracer* tracer_before = obs::global_tracer();
  {
    GlobalTracerScope scope(&tracer);
    EXPECT_EQ(obs::global_tracer(), &tracer);
  }
  EXPECT_EQ(obs::global_tracer(), tracer_before);
}

TEST(ObsProfile, ScopedTimerRecordsIntoTimingHistogram) {
  MetricsRegistry registry;
  { obs::ScopedTimer timer(&registry, "scope_ms"); }
  const MetricsSnapshot snap = registry.snapshot();
  const auto& h = snap.histograms.at("scope_ms");
  EXPECT_TRUE(h.timing);
  EXPECT_EQ(h.count, 1u);
  EXPECT_GE(h.sum, 0.0);
  // Null registry: never touches the clock, records nothing.
  obs::ScopedTimer noop(nullptr, "ignored");
}

// --- Span nesting & JSON-lines round-trip ----------------------------------

TEST(ObsSpan, NullTracerIsInert) {
  Span span(nullptr, "noop");
  EXPECT_FALSE(span.active());
  span.field("k", 1).field("s", "v");  // must not crash or allocate a line
}

TEST(ObsSpan, EmitsExactJsonLinesWithNesting) {
  Tracer tracer;
  {
    Span root(&tracer, "root");
    root.field("count", std::uint64_t{7}).field("name", "a\"b");
    {
      Span child(&tracer, "child");
      child.field("x", 1.5);
    }
  }
  const std::vector<std::string> lines = tracer.lines();
  ASSERT_EQ(lines.size(), 2u);
  // The child closes (and serializes) first; parent/depth point at root.
  EXPECT_EQ(mask_wall_ms(lines[0]),
            "{\"type\":\"span\",\"name\":\"child\",\"seq\":1,\"parent\":0,"
            "\"depth\":1,\"fields\":{\"x\":1.5},\"wall_ms\":0}");
  EXPECT_EQ(mask_wall_ms(lines[1]),
            "{\"type\":\"span\",\"name\":\"root\",\"seq\":0,\"parent\":-1,"
            "\"depth\":0,\"fields\":{\"count\":7,\"name\":\"a\\\"b\"},"
            "\"wall_ms\":0}");
}

TEST(ObsSpan, FieldFormatting) {
  Tracer tracer;
  {
    Span span(&tracer, "fmt");
    span.field("neg", std::int64_t{-3})
        .field("whole", 3.0)
        .field("frac", 0.125)
        .field("inf", std::numeric_limits<double>::infinity());
  }
  const std::string line = mask_wall_ms(tracer.events());
  // Whole doubles print bare, fractions round-trip, non-finite -> null.
  EXPECT_NE(line.find("\"neg\":-3,\"whole\":3,\"frac\":0.125,\"inf\":null"),
            std::string::npos);
}

TEST(ObsSpan, SiblingSpansShareParent) {
  Tracer tracer;
  {
    Span root(&tracer, "root");
    { Span a(&tracer, "a"); }
    { Span b(&tracer, "b"); }
  }
  const std::vector<std::string> lines = tracer.lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"name\":\"a\",\"seq\":1,\"parent\":0,\"depth\":1"),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"b\",\"seq\":2,\"parent\":0,\"depth\":1"),
            std::string::npos);
}

TEST(ObsSpan, NestingStackIsPerThread) {
  Tracer tracer;
  {
    Span root(&tracer, "root");
    std::thread other([&] {
      // A span on another thread must not adopt this thread's live root.
      Span detached(&tracer, "detached");
    });
    other.join();
  }
  const std::vector<std::string> lines = tracer.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"name\":\"detached\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"parent\":-1,\"depth\":0"), std::string::npos);
}

TEST(ObsTrace, JsonEscapeHandlesSpecialsAndControls) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ObsTrace, ClearResetsEventsAndSequence) {
  Tracer tracer;
  { Span span(&tracer, "one"); }
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  { Span span(&tracer, "two"); }
  EXPECT_NE(tracer.events().find("\"seq\":0"), std::string::npos);
}

TEST(ObsTrace, LogCaptureSinkTeesWarnAndAbove) {
  Tracer tracer;
  obs::LogCaptureSink capture(tracer, util::LogLevel::kWarn);
  std::ostringstream quiet;
  util::Logger::instance().set_sink(&quiet);
  util::Logger::instance().set_capture_sink(&capture);

  SMOOTHER_LOG(kInfo, "obs-test") << "below threshold";
  SMOOTHER_LOG(kWarn, "obs-test") << "captured \"quoted\"";

  util::Logger::instance().set_capture_sink(nullptr);
  util::Logger::instance().set_sink(nullptr);

  const std::vector<std::string> lines = tracer.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "{\"type\":\"log\",\"level\":\"WARN\",\"component\":\"obs-test\","
            "\"message\":\"captured \\\"quoted\\\"\"}");
}

TEST(ObsObserver, TracingIntervalObserverEmitsSpanAndCounters) {
  Tracer tracer;
  MetricsRegistry registry;
  obs::TracingIntervalObserver observer(&tracer, &registry);

  obs::IntervalEvent event;
  event.index = 3;
  event.region = "smoothable";
  event.fallback = "none";
  event.smoothed = true;
  observer.on_interval(event);

  EXPECT_EQ(tracer.event_count(), 1u);
  EXPECT_NE(tracer.events().find("interval-observe"), std::string::npos);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_FALSE(snap.counters.empty());
}

// --- Determinism -----------------------------------------------------------

void instrumented_workload(MetricsRegistry& registry, Tracer& tracer) {
  Span outer(&tracer, "outer");
  outer.field("layer", "test");
  registry.counter("work.items").add(3);
  Histogram& sizes = registry.histogram("work.sizes", {1.0, 10.0, 100.0});
  for (int i = 0; i < 5; ++i) {
    Span inner(&tracer, "inner");
    inner.field("i", i);
    sizes.record(static_cast<double>(i * i));
  }
  registry.gauge("work.last").set(41.5);
}

TEST(ObsDeterminism, IdenticalRunsProduceIdenticalExports) {
  MetricsRegistry registry_a, registry_b;
  Tracer tracer_a, tracer_b;
  instrumented_workload(registry_a, tracer_a);
  instrumented_workload(registry_b, tracer_b);
  // No timing histograms in the workload, so the full JSON must match; the
  // trace matches once wall_ms — the one wall-clock field — is masked.
  EXPECT_EQ(registry_a.to_json(), registry_b.to_json());
  EXPECT_EQ(mask_wall_ms(tracer_a.events()), mask_wall_ms(tracer_b.events()));
}

solver::QpProblem small_feasible_qp() {
  solver::QpProblem problem;
  problem.p = solver::variance_quadratic_form(3);
  problem.q = {0.0, 0.0, 0.0};
  problem.a = solver::Matrix{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0},
                             {0.0, 0.0, 1.0}};
  problem.lower = {1.0, 2.0, 3.0};
  problem.upper = {4.0, 5.0, 6.0};
  return problem;
}

TEST(ObsDeterminism, InstrumentedSolverRunsCompareEqualModuloTiming) {
  auto run = [](MetricsRegistry& registry, Tracer& tracer) {
    GlobalMetricsScope metrics_scope(&registry);
    GlobalTracerScope tracer_scope(&tracer);
    const solver::QpResult result =
        solver::solve_qp(small_feasible_qp(), solver::QpSettings{});
    EXPECT_EQ(result.status, solver::QpStatus::kSolved);
  };
  MetricsRegistry registry_a, registry_b;
  Tracer tracer_a, tracer_b;
  run(registry_a, tracer_a);
  run(registry_b, tracer_b);

  EXPECT_EQ(mask_wall_ms(tracer_a.events()), mask_wall_ms(tracer_b.events()));

  const MetricsSnapshot a = registry_a.snapshot();
  const MetricsSnapshot b = registry_b.snapshot();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, data] : a.histograms) {
    const auto& other = b.histograms.at(name);
    EXPECT_EQ(data.timing, other.timing) << name;
    if (data.timing) continue;  // wall-clock histograms are exempt
    EXPECT_EQ(data.buckets, other.buckets) << name;
    EXPECT_EQ(data.count, other.count) << name;
    EXPECT_DOUBLE_EQ(data.sum, other.sum) << name;
  }
  EXPECT_GT(a.counters.at("solver.qp.solves"), 0u);
  EXPECT_GT(a.counters.at("solver.qp.iterations"), 0u);
}

TEST(ObsDeterminism, SolverRecordsNothingWhenObservabilityOff) {
  // With no global registry installed, the same solve must leave no trace:
  // the off path is a relaxed load and a branch, never a registration.
  MetricsRegistry sentinel;
  const std::string empty_json = sentinel.to_json();
  const solver::QpResult result =
      solver::solve_qp(small_feasible_qp(), solver::QpSettings{});
  EXPECT_EQ(result.status, solver::QpStatus::kSolved);
  EXPECT_EQ(sentinel.to_json(), empty_json);
}

// --- Thread-safety under runtime::ThreadPool (TSan suite) ------------------

TEST(ObsThreading, ConcurrentRecordingIsExact) {
  constexpr std::size_t kTasks = 8192;
  MetricsRegistry registry;
  Counter& counter = registry.counter("pool.items");
  Histogram& hist = registry.histogram("pool.values", {2.0, 4.0, 6.0});

  runtime::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    counter.add(1);
    hist.record(static_cast<double>(i % 8));
    registry.gauge("pool.last").set(static_cast<double>(i));
  });

  EXPECT_EQ(counter.value(), kTasks);
  EXPECT_EQ(hist.count(), kTasks);
  // i % 8 spreads evenly: 3 values <= 2, 2 more <= 4, 2 more <= 6, 1 over.
  EXPECT_EQ(hist.bucket_counts(),
            (std::vector<std::uint64_t>{kTasks / 8 * 3, kTasks / 8 * 2,
                                        kTasks / 8 * 2, kTasks / 8}));
}

TEST(ObsThreading, ConcurrentLookupReturnsOneInstrumentPerName) {
  MetricsRegistry registry;
  runtime::ThreadPool pool(4);
  std::vector<Counter*> seen(256);
  pool.parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = &registry.counter("contended");
    seen[i]->add(1);
  });
  for (const Counter* counter : seen) EXPECT_EQ(counter, seen[0]);
  EXPECT_EQ(seen[0]->value(), seen.size());
}

TEST(ObsThreading, ConcurrentSpansEmitOnceEachWithUniqueSeq) {
  constexpr std::size_t kTasks = 2048;
  Tracer tracer;
  runtime::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    Span span(&tracer, "task");
    span.field("index", static_cast<std::uint64_t>(i));
  });

  const std::vector<std::string> lines = tracer.lines();
  ASSERT_EQ(lines.size(), kTasks);
  // Concurrent emission interleaves in an unspecified order; compare as a
  // set: every index exactly once, every seq exactly once.
  std::set<std::string> indices;
  std::set<std::string> seqs;
  const std::regex index_re("\"index\":([0-9]+)");
  const std::regex seq_re("\"seq\":([0-9]+)");
  for (const std::string& line : lines) {
    std::smatch match;
    ASSERT_TRUE(std::regex_search(line, match, index_re)) << line;
    indices.insert(match[1]);
    ASSERT_TRUE(std::regex_search(line, match, seq_re)) << line;
    seqs.insert(match[1]);
  }
  EXPECT_EQ(indices.size(), kTasks);
  EXPECT_EQ(seqs.size(), kTasks);
}

TEST(ObsThreading, PoolStatsAccountForEveryTask) {
  constexpr std::size_t kTasks = 512;
  runtime::ThreadPool pool(3);
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    futures.push_back(pool.submit([i] { return i; }));
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(futures[i].get(), i);

  // Which worker ran (or stole) each task is scheduling-dependent; the
  // totals are exact.
  EXPECT_EQ(pool.total_tasks_executed() + pool.external_tasks_executed(),
            kTasks);
  EXPECT_LE(pool.total_tasks_stolen(), pool.total_tasks_executed());
}

}  // namespace
}  // namespace smoother
