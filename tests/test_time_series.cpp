#include "smoother/util/time_series.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.hpp"

namespace smoother::util {
namespace {

using test::series;

TEST(TimeSeries, ConstructionValidatesStep) {
  EXPECT_THROW(TimeSeries(Minutes{0.0}, 3), std::invalid_argument);
  EXPECT_THROW(TimeSeries(Minutes{-1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(TimeSeries, BasicAccessors) {
  const TimeSeries s = series({1.0, 2.0, 3.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.step().value(), 5.0);
  EXPECT_DOUBLE_EQ(s.duration().value(), 15.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
  EXPECT_THROW((void)s.at(3), std::out_of_range);
}

TEST(TimeSeries, TimeAndIndexMapping) {
  const TimeSeries s = series({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.time_at(2).value(), 10.0);
  EXPECT_EQ(s.index_at(Minutes{0.0}), 0u);
  EXPECT_EQ(s.index_at(Minutes{4.9}), 0u);
  EXPECT_EQ(s.index_at(Minutes{5.0}), 1u);
  EXPECT_EQ(s.index_at(Minutes{19.9}), 3u);
  EXPECT_THROW((void)s.index_at(Minutes{20.0}), std::out_of_range);
  EXPECT_THROW((void)s.index_at(Minutes{-1.0}), std::out_of_range);
}

TEST(TimeSeries, Slice) {
  const TimeSeries s = series({1.0, 2.0, 3.0, 4.0, 5.0});
  const TimeSeries sub = s.slice(1, 3);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0], 2.0);
  EXPECT_DOUBLE_EQ(sub[2], 4.0);
  EXPECT_THROW(s.slice(3, 3), std::out_of_range);
}

TEST(TimeSeries, DownsampleAveragesBlocks) {
  const TimeSeries s = series({1.0, 3.0, 10.0, 20.0});
  const TimeSeries d = s.downsample(2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 15.0);
  EXPECT_DOUBLE_EQ(d.step().value(), 10.0);
  EXPECT_THROW(s.downsample(3), std::invalid_argument);
  EXPECT_THROW(s.downsample(0), std::invalid_argument);
}

TEST(TimeSeries, UpsampleHoldsValues) {
  const TimeSeries s = series({4.0, 8.0});
  const TimeSeries u = s.upsample(5);
  ASSERT_EQ(u.size(), 10u);
  EXPECT_DOUBLE_EQ(u[0], 4.0);
  EXPECT_DOUBLE_EQ(u[4], 4.0);
  EXPECT_DOUBLE_EQ(u[5], 8.0);
  EXPECT_DOUBLE_EQ(u.step().value(), 1.0);
}

TEST(TimeSeries, ResamplePreservesEnergyBothWays) {
  const TimeSeries s = series({100.0, 300.0, 200.0, 400.0});
  const TimeSeries down = s.resample(Minutes{10.0});
  const TimeSeries up = s.resample(Minutes{1.0});
  EXPECT_NEAR(down.total_energy().value(), s.total_energy().value(), 1e-9);
  EXPECT_NEAR(up.total_energy().value(), s.total_energy().value(), 1e-9);
}

TEST(TimeSeries, ResampleRejectsNonIntegerRatio) {
  const TimeSeries s = series({1.0, 2.0});
  EXPECT_THROW(s.resample(Minutes{3.0}), std::invalid_argument);
}

TEST(TimeSeries, ArithmeticAndShapeChecks) {
  const TimeSeries a = series({1.0, 2.0});
  const TimeSeries b = series({10.0, 20.0});
  const TimeSeries sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 11.0);
  const TimeSeries diff = b - a;
  EXPECT_DOUBLE_EQ(diff[1], 18.0);
  const TimeSeries scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(scaled[1], 6.0);
  const TimeSeries other_len = series({1.0, 2.0, 3.0});
  EXPECT_THROW(a + other_len, std::invalid_argument);
  const TimeSeries other_step = series({1.0, 2.0}, Minutes{1.0});
  EXPECT_THROW(a + other_step, std::invalid_argument);
}

TEST(TimeSeries, MapAndClamp) {
  const TimeSeries s = series({-5.0, 0.5, 9.0});
  const TimeSeries doubled = s.map([](double v) { return 2.0 * v; });
  EXPECT_DOUBLE_EQ(doubled[0], -10.0);
  const TimeSeries clamped = s.clamped(0.0, 1.0);
  EXPECT_DOUBLE_EQ(clamped[0], 0.0);
  EXPECT_DOUBLE_EQ(clamped[1], 0.5);
  EXPECT_DOUBLE_EQ(clamped[2], 1.0);
  EXPECT_THROW(s.clamped(1.0, 0.0), std::invalid_argument);
}

TEST(TimeSeries, Statistics) {
  const TimeSeries s = series({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 5.0);  // population variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(TimeSeries, EmptyStatistics) {
  const TimeSeries s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
}

TEST(TimeSeries, TotalEnergyIntegratesPower) {
  // 120 kW for four 5-minute samples = 120 * 20/60 = 40 kWh.
  const TimeSeries s = test::constant_series(120.0, 4);
  EXPECT_DOUBLE_EQ(s.total_energy().value(), 40.0);
}

TEST(TimeSeries, ElementwiseMinMax) {
  const TimeSeries a = series({1.0, 5.0, 3.0});
  const TimeSeries b = series({2.0, 4.0, 3.0});
  const TimeSeries lo = elementwise_min(a, b);
  const TimeSeries hi = elementwise_max(a, b);
  EXPECT_DOUBLE_EQ(lo[0], 1.0);
  EXPECT_DOUBLE_EQ(lo[1], 4.0);
  EXPECT_DOUBLE_EQ(hi[0], 2.0);
  EXPECT_DOUBLE_EQ(hi[1], 5.0);
  EXPECT_DOUBLE_EQ(hi[2], 3.0);
  const TimeSeries c = series({1.0});
  EXPECT_THROW(elementwise_min(a, c), std::invalid_argument);
}

TEST(TimeSeries, PushBackAndReserve) {
  TimeSeries s(Minutes{1.0}, std::vector<double>{});
  s.reserve(3);
  s.push_back(1.0);
  s.push_back(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

}  // namespace
}  // namespace smoother::util
