#include "smoother/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::trace {
namespace {

TEST(TraceIo, SeriesCsvRoundTrip) {
  const auto original = test::series({10.5, 20.25, 30.0, 0.0});
  const auto table = series_to_csv(original, "power_kw");
  EXPECT_EQ(table.rows(), 4u);
  EXPECT_EQ(table.header()[1], "power_kw");
  const auto back = series_from_csv(table, "power_kw");
  EXPECT_EQ(back, original);
}

TEST(TraceIo, SeriesFromCsvValidatesGrid) {
  util::CsvTable short_table({"minute", "v"});
  short_table.add_row({0.0, 1.0});
  EXPECT_THROW(series_from_csv(short_table, "v"), std::runtime_error);

  util::CsvTable ragged({"minute", "v"});
  ragged.add_row({0.0, 1.0});
  ragged.add_row({5.0, 2.0});
  ragged.add_row({12.0, 3.0});  // non-uniform gap
  EXPECT_THROW(series_from_csv(ragged, "v"), std::runtime_error);

  util::CsvTable backwards({"minute", "v"});
  backwards.add_row({5.0, 1.0});
  backwards.add_row({0.0, 2.0});
  EXPECT_THROW(series_from_csv(backwards, "v"), std::runtime_error);
}

TEST(TraceIo, SeriesFileRoundTrip) {
  const auto original = test::series({1.0, 2.0, 3.0}, util::kOneMinute);
  const std::string path = testing::TempDir() + "/series.csv";
  save_series(original, path, "wind_kw");
  const auto back = load_series(path, "wind_kw");
  EXPECT_EQ(back, original);
}

TEST(TraceIo, JobsCsvRoundTrip) {
  std::vector<sched::Job> jobs(2);
  jobs[0].id = 7;
  jobs[0].arrival = util::Minutes{10.0};
  jobs[0].runtime = util::Minutes{60.0};
  jobs[0].deadline = util::Minutes{400.0};
  jobs[0].servers = 16;
  jobs[0].cpu_utilization = 0.75;
  jobs[0].power = util::Kilowatts{3.5};
  jobs[1].id = 8;
  jobs[1].arrival = util::Minutes{30.0};
  jobs[1].runtime = util::Minutes{15.0};
  jobs[1].deadline = util::Minutes{120.0};
  jobs[1].servers = 4;
  jobs[1].cpu_utilization = 0.9;
  jobs[1].power = util::Kilowatts{0.8};

  const auto table = jobs_to_csv(jobs);
  const auto back = jobs_from_csv(table);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 7u);
  EXPECT_DOUBLE_EQ(back[0].arrival.value(), 10.0);
  EXPECT_DOUBLE_EQ(back[0].runtime.value(), 60.0);
  EXPECT_DOUBLE_EQ(back[0].deadline.value(), 400.0);
  EXPECT_EQ(back[0].servers, 16u);
  EXPECT_DOUBLE_EQ(back[0].cpu_utilization, 0.75);
  EXPECT_DOUBLE_EQ(back[0].power.value(), 3.5);
  EXPECT_EQ(back[1].servers, 4u);
}

TEST(TraceIo, JobsFileRoundTrip) {
  std::vector<sched::Job> jobs(1);
  jobs[0].id = 1;
  jobs[0].runtime = util::Minutes{5.0};
  jobs[0].deadline = util::Minutes{50.0};
  jobs[0].servers = 2;
  const std::string path = testing::TempDir() + "/jobs.csv";
  save_jobs(jobs, path);
  const auto back = load_jobs(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back[0].runtime.value(), 5.0);
}

TEST(TraceIo, JobsFromCsvValidates) {
  util::CsvTable table({"id", "arrival_min", "runtime_min", "deadline_min",
                        "servers", "cpu_utilization", "power_kw"});
  table.add_row({1.0, 0.0, -5.0, 10.0, 2.0, 0.5, 1.0});  // negative runtime
  EXPECT_THROW(jobs_from_csv(table), std::invalid_argument);
}

}  // namespace
}  // namespace smoother::trace
