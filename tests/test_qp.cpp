#include "smoother/solver/qp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "smoother/stats/descriptive.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::solver {
namespace {

TEST(QpProblem, ValidateShapes) {
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {0.0, 0.0};
  p.a = Matrix::identity(2);
  p.lower = {0.0, 0.0};
  p.upper = {1.0, 1.0};
  EXPECT_NO_THROW(p.validate());
  p.q = {0.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(QpSolve, UnconstrainedQuadraticReachesMinimum) {
  // min (x0-3)^2 + (x1+1)^2 -> P = 2I, q = (-6, 2); loose bounds.
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {-6.0, 2.0};
  p.a = Matrix::identity(2);
  p.lower = {-100.0, -100.0};
  p.upper = {100.0, 100.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
}

TEST(QpSolve, ActiveBoxConstraint) {
  // Same objective but x0 <= 1: optimum sits on the bound.
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {-6.0, 2.0};
  p.a = Matrix::identity(2);
  p.lower = {-100.0, -100.0};
  p.upper = {1.0, 100.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
}

TEST(QpSolve, GeneralConstraintRow) {
  // min x0^2 + x1^2 subject to x0 + x1 = 2 (tight equality via l = u).
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {0.0, 0.0};
  p.a = Matrix{{1.0, 1.0}};
  p.lower = {2.0};
  p.upper = {2.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(QpSolve, DetectsInconsistentBounds) {
  QpProblem p;
  p.p = Matrix::identity(1);
  p.q = {0.0};
  p.a = Matrix::identity(1);
  p.lower = {1.0};
  p.upper = {-1.0};
  const QpResult r = solve_qp(p);
  EXPECT_EQ(r.status, QpStatus::kInfeasible);
}

TEST(QpSolve, SemidefiniteObjective) {
  // P = [[2,0],[0,0]] (PSD, singular): minimize x0^2 + x1 subject to
  // box on x1 so the linear term drives x1 to its lower bound.
  QpProblem p;
  p.p = Matrix{{2.0, 0.0}, {0.0, 0.0}};
  p.q = {0.0, 1.0};
  p.a = Matrix::identity(2);
  p.lower = {-10.0, -5.0};
  p.upper = {10.0, 5.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.0, 1e-3);
  EXPECT_NEAR(r.x[1], -5.0, 1e-3);
}

TEST(QpSolve, ObjectiveValueReported) {
  QpProblem p;
  p.p = Matrix::identity(1) * 2.0;
  p.q = {-4.0};
  p.a = Matrix::identity(1);
  p.lower = {-10.0};
  p.upper = {10.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  // min x^2 - 4x at x=2 -> objective = 4 - 8 = -4.
  EXPECT_NEAR(r.objective, -4.0, 1e-4);
}

TEST(VarianceQuadraticForm, EqualsVariance) {
  util::Rng rng(11);
  for (std::size_t n : {2u, 5u, 12u}) {
    const Matrix p = variance_quadratic_form(n);
    Vector x(n);
    for (double& v : x) v = rng.uniform(-10.0, 10.0);
    const Vector px = p * x;
    const double quad = 0.5 * dot(x, px);
    EXPECT_NEAR(quad, stats::variance(x), 1e-9);
  }
  EXPECT_THROW(variance_quadratic_form(0), std::invalid_argument);
}

TEST(VarianceQuadraticForm, ShiftInvariance) {
  // Adding a constant to every coordinate must not change the objective.
  const std::size_t n = 6;
  const Matrix p = variance_quadratic_form(n);
  util::Rng rng(3);
  Vector x(n);
  for (double& v : x) v = rng.uniform(0.0, 5.0);
  Vector shifted = x;
  for (double& v : shifted) v += 42.0;
  EXPECT_NEAR(0.5 * dot(x, p * x), 0.5 * dot(shifted, p * shifted), 1e-9);
}

// Property sweep: random feasible QPs must satisfy first-order optimality.
class RandomQpTest : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomQpTest, SatisfiesKktConditions) {
  const auto [n_int, seed] = GetParam();
  const auto n = static_cast<std::size_t>(n_int);
  util::Rng rng(static_cast<std::uint64_t>(seed));

  // SPD objective.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal(0.0, 1.0);
  QpProblem problem;
  problem.p = b * b.transpose();
  problem.p.add_diagonal(0.5);
  problem.q.resize(n);
  for (double& v : problem.q) v = rng.normal(0.0, 2.0);
  problem.a = Matrix::identity(n);
  problem.lower.assign(n, -1.0);
  problem.upper.assign(n, 1.0);

  const QpResult r = solve_qp(problem);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_LE(problem.constraint_violation(r.x), 1e-5);

  // Projected-gradient optimality: for interior coordinates the gradient
  // must vanish; at bounds it must point outward.
  const Vector grad = add(problem.p * r.x, problem.q);
  for (std::size_t i = 0; i < n; ++i) {
    if (r.x[i] > -1.0 + 1e-4 && r.x[i] < 1.0 - 1e-4) {
      EXPECT_NEAR(grad[i], 0.0, 1e-3) << "interior coordinate " << i;
    } else if (r.x[i] <= -1.0 + 1e-4) {
      EXPECT_GE(grad[i], -1e-3) << "lower-bound coordinate " << i;
    } else {
      EXPECT_LE(grad[i], 1e-3) << "upper-bound coordinate " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomQpTest,
    testing::Combine(testing::Values(2, 4, 8, 12, 24),
                     testing::Values(1, 2, 3)),
    [](const testing::TestParamInfo<RandomQpTest::ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(QpSolve, MaxIterationsStillReturnsIterate) {
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {-6.0, 2.0};
  p.a = Matrix::identity(2);
  p.lower = {-100.0, -100.0};
  p.upper = {100.0, 100.0};
  QpSettings settings;
  settings.max_iterations = 3;
  settings.check_interval = 1;
  const QpResult r = solve_qp(p, settings);
  EXPECT_EQ(r.status, QpStatus::kMaxIterations);
  EXPECT_EQ(r.x.size(), 2u);
}

TEST(QpStatusNames, AllDistinct) {
  EXPECT_EQ(to_string(QpStatus::kSolved), "solved");
  EXPECT_EQ(to_string(QpStatus::kMaxIterations), "max-iterations");
  EXPECT_EQ(to_string(QpStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(QpStatus::kNumericalError), "numerical-error");
}

}  // namespace
}  // namespace smoother::solver
