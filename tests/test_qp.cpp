#include "smoother/solver/qp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "smoother/runtime/sweep_runner.hpp"
#include "smoother/solver/qp_solver.hpp"
#include "smoother/stats/descriptive.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::solver {
namespace {

TEST(QpProblem, ValidateShapes) {
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {0.0, 0.0};
  p.a = Matrix::identity(2);
  p.lower = {0.0, 0.0};
  p.upper = {1.0, 1.0};
  EXPECT_NO_THROW(p.validate());
  p.q = {0.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(QpSolve, UnconstrainedQuadraticReachesMinimum) {
  // min (x0-3)^2 + (x1+1)^2 -> P = 2I, q = (-6, 2); loose bounds.
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {-6.0, 2.0};
  p.a = Matrix::identity(2);
  p.lower = {-100.0, -100.0};
  p.upper = {100.0, 100.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
}

TEST(QpSolve, ActiveBoxConstraint) {
  // Same objective but x0 <= 1: optimum sits on the bound.
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {-6.0, 2.0};
  p.a = Matrix::identity(2);
  p.lower = {-100.0, -100.0};
  p.upper = {1.0, 100.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
}

TEST(QpSolve, GeneralConstraintRow) {
  // min x0^2 + x1^2 subject to x0 + x1 = 2 (tight equality via l = u).
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {0.0, 0.0};
  p.a = Matrix{{1.0, 1.0}};
  p.lower = {2.0};
  p.upper = {2.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(QpSolve, DetectsInconsistentBounds) {
  QpProblem p;
  p.p = Matrix::identity(1);
  p.q = {0.0};
  p.a = Matrix::identity(1);
  p.lower = {1.0};
  p.upper = {-1.0};
  const QpResult r = solve_qp(p);
  EXPECT_EQ(r.status, QpStatus::kInfeasible);
}

TEST(QpSolve, SemidefiniteObjective) {
  // P = [[2,0],[0,0]] (PSD, singular): minimize x0^2 + x1 subject to
  // box on x1 so the linear term drives x1 to its lower bound.
  QpProblem p;
  p.p = Matrix{{2.0, 0.0}, {0.0, 0.0}};
  p.q = {0.0, 1.0};
  p.a = Matrix::identity(2);
  p.lower = {-10.0, -5.0};
  p.upper = {10.0, 5.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.0, 1e-3);
  EXPECT_NEAR(r.x[1], -5.0, 1e-3);
}

TEST(QpSolve, ObjectiveValueReported) {
  QpProblem p;
  p.p = Matrix::identity(1) * 2.0;
  p.q = {-4.0};
  p.a = Matrix::identity(1);
  p.lower = {-10.0};
  p.upper = {10.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  // min x^2 - 4x at x=2 -> objective = 4 - 8 = -4.
  EXPECT_NEAR(r.objective, -4.0, 1e-4);
}

TEST(VarianceQuadraticForm, EqualsVariance) {
  util::Rng rng(11);
  for (std::size_t n : {2u, 5u, 12u}) {
    const Matrix p = variance_quadratic_form(n);
    Vector x(n);
    for (double& v : x) v = rng.uniform(-10.0, 10.0);
    const Vector px = p * x;
    const double quad = 0.5 * dot(x, px);
    EXPECT_NEAR(quad, stats::variance(x), 1e-9);
  }
  EXPECT_THROW(variance_quadratic_form(0), std::invalid_argument);
}

TEST(VarianceQuadraticForm, ShiftInvariance) {
  // Adding a constant to every coordinate must not change the objective.
  const std::size_t n = 6;
  const Matrix p = variance_quadratic_form(n);
  util::Rng rng(3);
  Vector x(n);
  for (double& v : x) v = rng.uniform(0.0, 5.0);
  Vector shifted = x;
  for (double& v : shifted) v += 42.0;
  EXPECT_NEAR(0.5 * dot(x, p * x), 0.5 * dot(shifted, p * shifted), 1e-9);
}

// Property sweep: random feasible QPs must satisfy first-order optimality.
class RandomQpTest : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomQpTest, SatisfiesKktConditions) {
  const auto [n_int, seed] = GetParam();
  const auto n = static_cast<std::size_t>(n_int);
  util::Rng rng(static_cast<std::uint64_t>(seed));

  // SPD objective.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal(0.0, 1.0);
  QpProblem problem;
  problem.p = b * b.transpose();
  problem.p.add_diagonal(0.5);
  problem.q.resize(n);
  for (double& v : problem.q) v = rng.normal(0.0, 2.0);
  problem.a = Matrix::identity(n);
  problem.lower.assign(n, -1.0);
  problem.upper.assign(n, 1.0);

  const QpResult r = solve_qp(problem);
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_LE(problem.constraint_violation(r.x), 1e-5);

  // Projected-gradient optimality: for interior coordinates the gradient
  // must vanish; at bounds it must point outward.
  const Vector grad = add(problem.p * r.x, problem.q);
  for (std::size_t i = 0; i < n; ++i) {
    if (r.x[i] > -1.0 + 1e-4 && r.x[i] < 1.0 - 1e-4) {
      EXPECT_NEAR(grad[i], 0.0, 1e-3) << "interior coordinate " << i;
    } else if (r.x[i] <= -1.0 + 1e-4) {
      EXPECT_GE(grad[i], -1e-3) << "lower-bound coordinate " << i;
    } else {
      EXPECT_LE(grad[i], 1e-3) << "upper-bound coordinate " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomQpTest,
    testing::Combine(testing::Values(2, 4, 8, 12, 24),
                     testing::Values(1, 2, 3)),
    [](const testing::TestParamInfo<RandomQpTest::ParamType>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(QpSolve, MaxIterationsStillReturnsIterate) {
  QpProblem p;
  p.p = Matrix::identity(2) * 2.0;
  p.q = {-6.0, 2.0};
  p.a = Matrix::identity(2);
  p.lower = {-100.0, -100.0};
  p.upper = {100.0, 100.0};
  QpSettings settings;
  settings.max_iterations = 3;
  settings.check_interval = 1;
  const QpResult r = solve_qp(p, settings);
  EXPECT_EQ(r.status, QpStatus::kMaxIterations);
  EXPECT_EQ(r.x.size(), 2u);
}

TEST(QpStatusNames, AllDistinct) {
  EXPECT_EQ(to_string(QpStatus::kSolved), "solved");
  EXPECT_EQ(to_string(QpStatus::kMaxIterations), "max-iterations");
  EXPECT_EQ(to_string(QpStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(QpStatus::kNumericalError), "numerical-error");
}

// --- Residual staleness regression (the check_interval bug) ---------------

/// A problem slow enough that it cannot converge within the iteration caps
/// used below: an ill-conditioned SPD objective with active bounds.
QpProblem slow_problem() {
  QpProblem p;
  p.p = Matrix{{100.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 0.01}};
  p.q = {-50.0, 3.0, 1.0};
  p.a = Matrix::identity(3);
  p.lower = {-2.0, -2.0, -2.0};
  p.upper = {2.0, 2.0, 2.0};
  return p;
}

TEST(QpResiduals, ComputedEvenWhenMaxIterationsBeforeFirstCheck) {
  // max_iterations below check_interval: the loop never reaches a residual
  // check, so before the fix the reported residuals were the never-touched
  // zero defaults — indistinguishable from a perfectly converged solve.
  QpSettings settings;
  settings.max_iterations = 3;
  settings.check_interval = 10;
  const QpResult r = solve_qp(slow_problem(), settings);
  ASSERT_EQ(r.status, QpStatus::kMaxIterations);
  EXPECT_GT(r.primal_residual + r.dual_residual, 0.0)
      << "residuals must describe the returned iterate, not the defaults";
}

TEST(QpResiduals, ExitResidualsDescribeFinalIterateNotLastCheck) {
  // max_iterations not a multiple of check_interval: the last in-loop
  // residual evaluation happens iterations before the loop exits. Both
  // cadences below run the same 15 ADMM iterations, so the exit residuals
  // must be identical; with the stale-residual bug the 10-cadence run
  // reported iteration 10's residuals and the 5-cadence run iteration 15's.
  QpSettings coarse;
  coarse.max_iterations = 15;
  coarse.check_interval = 10;
  const QpResult a = solve_qp(slow_problem(), coarse);

  QpSettings fine = coarse;
  fine.check_interval = 5;
  const QpResult b = solve_qp(slow_problem(), fine);

  ASSERT_EQ(a.status, QpStatus::kMaxIterations);
  ASSERT_EQ(b.status, QpStatus::kMaxIterations);
  ASSERT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.primal_residual, b.primal_residual);
  EXPECT_DOUBLE_EQ(a.dual_residual, b.dual_residual);
}

TEST(QpResiduals, ZeroCheckIntervalIsTreatedAsEveryIteration) {
  QpSettings settings;
  settings.check_interval = 0;  // would be a modulo-by-zero without the guard
  const QpResult r = solve_qp(slow_problem(), settings);
  EXPECT_TRUE(r.ok());
}

// --- QpResult status edge cases -------------------------------------------

TEST(QpEdgeCases, OneVariableProblem) {
  // min x^2 - 2x on [0, 10] -> x = 1.
  QpProblem p;
  p.p = Matrix::identity(1) * 2.0;
  p.q = {-2.0};
  p.a = Matrix::identity(1);
  p.lower = {0.0};
  p.upper = {10.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.x.size(), 1u);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.objective, -1.0, 1e-4);
}

TEST(QpEdgeCases, OneVariablePinnedByEqualBounds) {
  // l == u turns the single box row into an equality: x = 4 regardless of
  // the unconstrained minimum at 1.
  QpProblem p;
  p.p = Matrix::identity(1) * 2.0;
  p.q = {-2.0};
  p.a = Matrix::identity(1);
  p.lower = {4.0};
  p.upper = {4.0};
  const QpResult r = solve_qp(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 4.0, 1e-3);
}

TEST(QpEdgeCases, InfeasibleBoxReportsNoIterations) {
  QpProblem p;
  p.p = Matrix::identity(2);
  p.q = {0.0, 0.0};
  p.a = Matrix::identity(2);
  p.lower = {0.0, 3.0};
  p.upper = {1.0, 2.0};  // second row inverted
  const QpResult r = solve_qp(p);
  EXPECT_EQ(r.status, QpStatus::kInfeasible);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_TRUE(r.x.empty());
}

TEST(QpEdgeCases, NumericalErrorFromNonPsdObjective) {
  // P = -10 makes K = P + sigma + rho negative under default settings, so
  // the Cholesky factorization must fail loudly instead of "solving" a
  // concave problem.
  QpProblem p;
  p.p = Matrix::identity(1) * -10.0;
  p.q = {0.0};
  p.a = Matrix::identity(1);
  p.lower = {-1.0};
  p.upper = {1.0};
  const QpResult r = solve_qp(p);
  EXPECT_EQ(r.status, QpStatus::kNumericalError);
  EXPECT_TRUE(r.x.empty());
}

// --- Stateful solver lifecycle --------------------------------------------

/// A Flexible-Smoothing-shaped problem: fixed P and A (horizon m), q and
/// bounds derived from the per-point energy vector `u`.
QpProblem fs_like_problem_for(const Vector& u) {
  const std::size_t m = u.size();
  QpProblem p;
  p.p = variance_quadratic_form(m);
  p.q = p.p * u;
  p.a = Matrix(2 * m, m);
  p.lower.assign(2 * m, 0.0);
  p.upper.assign(2 * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    p.a(i, i) = 1.0;
    p.lower[i] = -u[i];
    p.upper[i] = 30.0;
    for (std::size_t t = 0; t <= i; ++t) p.a(m + i, t) = 1.0;
    p.lower[m + i] = -120.0;
    p.upper[m + i] = 120.0;
  }
  return p;
}

/// Problem family keyed by seed (independent energy vectors).
QpProblem fs_like_problem(std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  Vector u(m);
  for (double& v : u) v = rng.uniform(0.0, 40.0);
  return fs_like_problem_for(u);
}

TEST(QpSolverLifecycle, SetupThenSolveMatchesOneShotBitwise) {
  // solve_qp is now a wrapper over the stateful solver; a manual
  // setup + cold solve must be indistinguishable down to the last bit.
  const QpProblem p = fs_like_problem(12, 7);
  const QpResult one_shot = solve_qp(p);

  QpSolver solver;
  ASSERT_EQ(solver.setup(p), QpStatus::kSolved);
  EXPECT_TRUE(solver.is_setup());
  EXPECT_FALSE(solver.warm_ready());
  const QpResult staged = solver.solve();

  ASSERT_EQ(staged.status, one_shot.status);
  EXPECT_EQ(staged.iterations, one_shot.iterations);
  EXPECT_EQ(staged.x, one_shot.x);
  EXPECT_EQ(staged.z, one_shot.z);
  EXPECT_DOUBLE_EQ(staged.primal_residual, one_shot.primal_residual);
  EXPECT_DOUBLE_EQ(staged.dual_residual, one_shot.dual_residual);
  EXPECT_DOUBLE_EQ(staged.objective, one_shot.objective);
}

TEST(QpSolverLifecycle, WarmStartCutsIterations) {
  // The continuation workload micro_qp_warmstart gates on: screen the
  // interval at a loose tolerance, then commit it at the deployment
  // tolerance. The warm commit solve continues the screening iterate on
  // the cached factorization and must need at most half the iterations of
  // a from-scratch commit solve. (Cross-interval warm starts are NOT
  // expected to cut iterations — consecutive wind intervals are nearly
  // independent, so the previous optimum is no closer than the cold
  // z-clamp init; see the warm_start doc in flexible_smoothing.hpp.)
  util::Rng rng(1);
  Vector u(12);
  for (double& v : u) v = rng.uniform(5.0, 40.0);
  const QpProblem problem = fs_like_problem_for(u);

  QpSettings screen;
  screen.check_interval = 1;  // fine-grained iteration counts
  screen.eps_abs = 1e-4;
  screen.eps_rel = 1e-4;
  QpSettings commit = screen;
  commit.eps_abs = 1e-6;
  commit.eps_rel = 1e-6;

  QpSolver solver;
  ASSERT_EQ(solver.setup(problem, screen), QpStatus::kSolved);
  const QpResult screened = solver.solve();
  ASSERT_TRUE(screened.ok());
  ASSERT_TRUE(solver.warm_ready());

  // Cold reference: commit-tolerance solve from scratch.
  const QpResult cold = solve_qp(problem, commit);
  ASSERT_TRUE(cold.ok());

  // Warm: continue the screening iterate to the commit tolerance. The
  // convenience overload adopts the new settings without re-factorizing
  // (same structure, same rho/sigma).
  const QpResult warm = solver.solve(problem, commit);
  ASSERT_TRUE(warm.ok());
  EXPECT_LE(2 * warm.iterations, cold.iterations);
  // Same optimum within solver tolerance (objective, not iterate — the
  // variance form is flat along the all-ones direction).
  EXPECT_NEAR(warm.objective, cold.objective, 1e-3);

  EXPECT_EQ(solver.setup_count(), 1u);
  EXPECT_EQ(solver.solve_count(), 2u);
  EXPECT_EQ(solver.warm_start_count(), 1u);
  EXPECT_EQ(solver.factorization_reuse_count(), 1u);
}

TEST(QpSolverLifecycle, ResetWarmStartColdStartsNextSolve) {
  QpSolver solver;
  ASSERT_EQ(solver.setup(fs_like_problem(8, 3)), QpStatus::kSolved);
  const QpResult first = solver.solve();
  ASSERT_TRUE(solver.warm_ready());
  solver.reset_warm_start();
  EXPECT_FALSE(solver.warm_ready());
  EXPECT_TRUE(solver.is_setup());  // the factorization survives
  const QpResult again = solver.solve();
  // Cold + same factor -> bitwise identical replay.
  EXPECT_EQ(again.iterations, first.iterations);
  EXPECT_EQ(again.x, first.x);
  EXPECT_EQ(solver.warm_start_count(), 0u);
}

TEST(QpSolverLifecycle, UpdateThrowsOnShapeMismatchOrMissingSetup) {
  QpSolver solver;
  const QpProblem p = fs_like_problem(6, 4);
  EXPECT_THROW(solver.update(p.q, p.lower, p.upper), std::invalid_argument);
  ASSERT_EQ(solver.setup(p), QpStatus::kSolved);
  EXPECT_THROW(solver.update(Vector(5, 0.0), p.lower, p.upper),
               std::invalid_argument);
  EXPECT_THROW(solver.update(p.q, Vector(3, 0.0), Vector(3, 1.0)),
               std::invalid_argument);
  // A stale factorization is never applied to mismatched shapes.
  EXPECT_NO_THROW(solver.update(p.q, p.lower, p.upper));
}

TEST(QpSolverLifecycle, ConvenienceSolveResetsOnStructureChange) {
  QpSolver solver;
  const QpResult a = solver.solve(fs_like_problem(12, 5));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(solver.setup_count(), 1u);

  // Same structure -> factorization reused, warm start taken.
  const QpResult b = solver.solve(fs_like_problem(12, 6));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(solver.setup_count(), 1u);
  EXPECT_EQ(solver.warm_start_count(), 1u);

  // Different horizon -> automatic re-setup, warm state dropped.
  const QpResult c = solver.solve(fs_like_problem(10, 6));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(solver.setup_count(), 2u);
  EXPECT_EQ(solver.warm_start_count(), 1u);
  EXPECT_EQ(solver.num_variables(), 10u);

  // A KKT-relevant setting change (rho) also forces re-setup.
  QpSettings retuned;
  retuned.rho = 0.5;
  const QpResult d = solver.solve(fs_like_problem(10, 7), retuned);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(solver.setup_count(), 3u);
}

TEST(QpSolverLifecycle, InfeasibleBoundsAfterUpdate) {
  QpSolver solver;
  QpProblem p = fs_like_problem(6, 8);
  ASSERT_EQ(solver.setup(p), QpStatus::kSolved);
  ASSERT_TRUE(solver.solve().ok());

  Vector bad_lower = p.lower;
  bad_lower[2] = p.upper[2] + 1.0;  // inverted row
  solver.update(p.q, bad_lower, p.upper);
  const QpResult r = solver.solve();
  EXPECT_EQ(r.status, QpStatus::kInfeasible);

  // Restoring consistent bounds recovers without a re-setup.
  solver.update(p.q, p.lower, p.upper);
  EXPECT_TRUE(solver.solve().ok());
  EXPECT_EQ(solver.setup_count(), 1u);
}

TEST(QpSolverLifecycle, SolveWithoutSetupIsNumericalError) {
  QpSolver solver;
  const QpResult r = solver.solve();
  EXPECT_EQ(r.status, QpStatus::kNumericalError);
}

// --- Concurrency: per-task solver instances (TSan asserts cleanliness) ----

TEST(QpSolverConcurrency, PerTaskInstancesAreRaceFreeAndDeterministic) {
  // Mirrors how SweepRunner uses the solver: every task owns its instance
  // and warm-starts across its own problem sequence. Run the sweep at two
  // worker counts; results must match exactly (and TSan must stay quiet).
  const auto sweep = [](std::size_t threads) {
    runtime::SweepRunner runner(runtime::SweepOptions{threads, 0, "qp"});
    return runner.run(24, [](runtime::TaskContext& ctx) {
      QpSolver solver;
      QpSettings settings;
      settings.check_interval = 1;
      double acc = 0.0;
      for (std::uint64_t interval = 0; interval < 6; ++interval) {
        const QpResult r = solver.solve(
            fs_like_problem(12, 100 + 10 * ctx.index + interval), settings);
        acc += r.objective + static_cast<double>(r.iterations);
      }
      return acc;
    });
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_DOUBLE_EQ(serial[i].value, parallel[i].value) << "task " << i;
}

}  // namespace
}  // namespace smoother::solver
