#include "smoother/stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "smoother/util/rng.hpp"

namespace smoother::stats {
namespace {

TEST(Accumulator, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.mean(), 6.2);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(acc.variance(), m2 / 5.0, 1e-12);
  EXPECT_NEAR(acc.sample_variance(), m2 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 16.0);
  EXPECT_NEAR(acc.sum(), 31.0, 1e-12);
}

TEST(Accumulator, EmptyAndSingleSample) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_THROW((void)acc.min(), std::logic_error);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.0);
}

TEST(Accumulator, MergeEqualsSequential) {
  util::Rng rng(3);
  Accumulator whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(5.0, 2.0);
    whole.add(x);
    (i < 250 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Accumulator, NumericallyStableForLargeOffset) {
  // Classic catastrophic-cancellation case: huge mean, tiny variance.
  Accumulator acc;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.add(x);
  EXPECT_NEAR(acc.variance(), 2.0 / 3.0, 1e-6);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, MatchesAccumulator) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 2.8);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(s.variance), 1e-12);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, Validation) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> up = {10.0, 20.0, 30.0};
  const std::vector<double> down = {3.0, 2.0, 1.0};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Correlation, ConstantSideIsZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> flat = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(correlation(xs, flat), 0.0);
}

TEST(Correlation, Validation) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW((void)correlation(xs, ys), std::invalid_argument);
  EXPECT_THROW((void)correlation({}, {}), std::invalid_argument);
}

TEST(RmsSuccessiveDiff, HandComputed) {
  const std::vector<double> xs = {0.0, 3.0, 3.0, -1.0};
  // diffs: 3, 0, -4 -> rms = sqrt((9+0+16)/3)
  EXPECT_NEAR(rms_successive_diff(xs), std::sqrt(25.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(rms_successive_diff({}), 0.0);
  EXPECT_DOUBLE_EQ(rms_successive_diff(std::vector<double>{1.0}), 0.0);
}

TEST(RmsSuccessiveDiff, SmoothSeriesScoresLower) {
  std::vector<double> smooth, rough;
  util::Rng rng(9);
  double level = 0.0;
  for (int i = 0; i < 500; ++i) {
    level += rng.normal(0.0, 0.1);
    smooth.push_back(level);
    rough.push_back(rng.normal(0.0, 1.0));
  }
  EXPECT_LT(rms_successive_diff(smooth), rms_successive_diff(rough));
}

}  // namespace
}  // namespace smoother::stats
