#include "smoother/solver/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "smoother/util/rng.hpp"

namespace smoother::solver {
namespace {

TEST(LevenbergMarquardt, FitsLineExactly) {
  // y = 2x + 1 sampled exactly; residual r_i = (a x_i + b) - y_i.
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
  const auto residual = [&](std::span<const double> p) {
    Vector r(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      r[i] = p[0] * xs[i] + p[1] - ys[i];
    return r;
  };
  const auto result = levenberg_marquardt(residual, {0.0, 0.0});
  EXPECT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_NEAR(result.parameters[0], 2.0, 1e-6);
  EXPECT_NEAR(result.parameters[1], 1.0, 1e-6);
  EXPECT_NEAR(result.cost, 0.0, 1e-10);
}

TEST(LevenbergMarquardt, RecoversGaussianParameters) {
  // One Gaussian bump with known parameters, noiseless samples.
  const double a = 5.0, b = 3.0, c = 1.5;
  std::vector<double> xs, ys;
  for (double x = 0.0; x <= 6.0; x += 0.25) {
    xs.push_back(x);
    const double z = (x - b) / c;
    ys.push_back(a * std::exp(-z * z));
  }
  const auto residual = [&](std::span<const double> p) {
    Vector r(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double z = (xs[i] - p[1]) / p[2];
      r[i] = p[0] * std::exp(-z * z) - ys[i];
    }
    return r;
  };
  const auto result = levenberg_marquardt(residual, {3.0, 2.0, 1.0});
  EXPECT_TRUE(result.ok());
  EXPECT_NEAR(result.parameters[0], a, 1e-4);
  EXPECT_NEAR(result.parameters[1], b, 1e-4);
  EXPECT_NEAR(std::abs(result.parameters[2]), c, 1e-4);
}

TEST(LevenbergMarquardt, NoisyFitStaysClose) {
  util::Rng rng(8);
  std::vector<double> xs, ys;
  for (double x = -2.0; x <= 2.0; x += 0.05) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x - 2.0 * x + 0.5 + rng.normal(0.0, 0.05));
  }
  const auto residual = [&](std::span<const double> p) {
    Vector r(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
      r[i] = p[0] * xs[i] * xs[i] + p[1] * xs[i] + p[2] - ys[i];
    return r;
  };
  const auto result = levenberg_marquardt(residual, {0.0, 0.0, 0.0});
  EXPECT_TRUE(result.ok());
  EXPECT_NEAR(result.parameters[0], 3.0, 0.05);
  EXPECT_NEAR(result.parameters[1], -2.0, 0.05);
  EXPECT_NEAR(result.parameters[2], 0.5, 0.05);
}

TEST(LevenbergMarquardt, RejectsEmptyResidual) {
  const auto residual = [](std::span<const double>) { return Vector{}; };
  EXPECT_THROW(levenberg_marquardt(residual, {1.0}), std::invalid_argument);
}

TEST(LevenbergMarquardt, AlreadyOptimalConvergesImmediately) {
  const auto residual = [](std::span<const double> p) {
    return Vector{p[0] - 7.0};
  };
  const auto result = levenberg_marquardt(residual, {7.0});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.iterations, 0u);
}

TEST(LevenbergMarquardt, RespectsIterationBudget) {
  // Rosenbrock-style hard valley; tiny budget must stop early but cleanly.
  const auto residual = [](std::span<const double> p) {
    return Vector{10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]};
  };
  LeastSquaresSettings settings;
  settings.max_iterations = 2;
  const auto result = levenberg_marquardt(residual, {-1.2, 1.0}, settings);
  EXPECT_EQ(result.status, LeastSquaresStatus::kMaxIterations);
  EXPECT_EQ(result.parameters.size(), 2u);
}

TEST(LeastSquaresStatusNames, Distinct) {
  EXPECT_EQ(to_string(LeastSquaresStatus::kConverged), "converged");
  EXPECT_EQ(to_string(LeastSquaresStatus::kMaxIterations), "max-iterations");
  EXPECT_EQ(to_string(LeastSquaresStatus::kStalled), "stalled");
}

}  // namespace
}  // namespace smoother::solver
