#include "smoother/stats/cdf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "smoother/util/rng.hpp"

namespace smoother::stats {
namespace {

TEST(EmpiricalCdf, RejectsEmptySample) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), std::invalid_argument);
}

TEST(EmpiricalCdf, ProbabilityAtKnownPoints) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.probability_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.probability_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.probability_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.probability_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.probability_at(100.0), 1.0);
}

TEST(EmpiricalCdf, ValueAtQuantiles) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.95), 50.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 50.0);
  EXPECT_THROW((void)cdf.value_at(-0.1), std::invalid_argument);
  EXPECT_THROW((void)cdf.value_at(1.1), std::invalid_argument);
}

TEST(EmpiricalCdf, ValueAtInvertsProbabilityAt) {
  util::Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const EmpiricalCdf cdf(xs);
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double v = cdf.value_at(p);
    // F(F^{-1}(p)) >= p, and strictly smaller values have F < p.
    EXPECT_GE(cdf.probability_at(v), p);
    EXPECT_LT(cdf.probability_at(v - 1e-9) + 1e-12, p + 1.0 / 1000 + 1e-9);
  }
}

TEST(EmpiricalCdf, MinMaxAndSize) {
  const std::vector<double> xs = {5.0, -2.0, 7.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.min(), -2.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 7.0);
}

TEST(EmpiricalCdf, CurveIsMonotoneAndSpansRange) {
  util::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const EmpiricalCdf cdf(xs);
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_DOUBLE_EQ(curve.front().first, cdf.min());
  EXPECT_DOUBLE_EQ(curve.back().first, cdf.max());
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_THROW(cdf.curve(1), std::invalid_argument);
}

TEST(EmpiricalCdf, DuplicateValues) {
  const std::vector<double> xs = {2.0, 2.0, 2.0, 5.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.probability_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.9), 5.0);
}

}  // namespace
}  // namespace smoother::stats
