#include "smoother/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace smoother::runtime {
namespace {

TEST(ThreadPool, StartsAndStopsCleanly) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.worker_count(), threads);
  }
  // No tasks submitted at all: destructor must still return.
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsFutureWithValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitForwardsArguments) {
  ThreadPool pool(2);
  auto future =
      pool.submit([](int a, const std::string& b) { return b + std::to_string(a); },
                  7, std::string("x"));
  EXPECT_EQ(future.get(), "x7");
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, QueuedTasksFinishBeforeShutdown) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i)
      (void)pool.submit([&count] { count.fetch_add(1); });
    // Destructor drains the queues before joining (graceful shutdown).
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, NestedSubmissionCompletes) {
  std::atomic<int> inner_done{0};
  {
    ThreadPool pool(2);
    auto outer = pool.submit([&pool, &inner_done] {
      // A task submitting more tasks must not deadlock, even when every
      // worker is occupied; help_while lets the waiting task drain the
      // pool itself.
      std::vector<std::future<void>> inner;
      inner.reserve(16);
      for (int i = 0; i < 16; ++i)
        inner.push_back(pool.submit([&inner_done] { inner_done.fetch_add(1); }));
      pool.help_while([&inner_done] { return inner_done.load() == 16; });
      for (auto& f : inner) f.get();
      return true;
    });
    EXPECT_TRUE(outer.get());
  }
  EXPECT_EQ(inner_done.load(), 16);
}

TEST(ThreadPool, NestedParallelForOnSingleWorkerPool) {
  // The degenerate pool: one worker, nested parallelism. The caller
  // participates in its own loops, so this terminates.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, StressTenThousandTinyTasks) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(10000);
  for (std::size_t i = 0; i < 10000; ++i)
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 10000u * 9999u / 2);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::invalid_argument("boom");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  ThreadPool pool(4);
  const auto squares =
      pool.parallel_map(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 64u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, ParallelMapMoveOnlyResults) {
  ThreadPool pool(2);
  auto ptrs = pool.parallel_map(
      8, [](std::size_t i) { return std::make_unique<std::size_t>(i); });
  for (std::size_t i = 0; i < ptrs.size(); ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(ThreadPool, HelpWhileFromExternalThreadRunsTasks) {
  ThreadPool pool(1);
  // Saturate the single worker with a task that waits for a flag only an
  // external helper can set by executing the second task.
  std::atomic<bool> flag{false};
  auto blocker = pool.submit([&pool, &flag] {
    pool.help_while([&flag] { return flag.load(); });
  });
  (void)pool.submit([&flag] { flag.store(true); });
  blocker.get();
  EXPECT_TRUE(flag.load());
}

TEST(ThreadPool, RunPendingTaskReportsEmptiness) {
  ThreadPool pool(2);
  // Eventually the queues drain; afterwards there is nothing to run.
  std::atomic<int> ran{0};
  auto f = pool.submit([&ran] { ran.fetch_add(1); });
  f.get();
  EXPECT_FALSE(pool.run_pending_task());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &count] {
      std::vector<std::future<void>> futures;
      futures.reserve(250);
      for (int i = 0; i < 250; ++i)
        futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
      for (auto& future : futures) future.get();
    });
  }
  for (auto& submitter : submitters) submitter.join();
  EXPECT_EQ(count.load(), 1000);
}

// Missed-wakeup stress for the parking protocol: repeated rounds of 10k
// tiny tasks with deliberate drain points, so workers park between bursts
// and every post-park submit exercises the queued_-publish / parked_-read
// pairing. A lost notify leaves a task queued with every worker parked and
// the round hangs in future.get() (surfaced by the ctest timeout).
//
// Rounds default low so the tier-1 run stays fast; the pool_stress_soak
// ctest entry (and the TSan script, where the data-race check has teeth)
// re-runs the suite with SMOOTHER_POOL_STRESS_ROUNDS=100.
TEST(ThreadPoolStress, ParkUnparkChurnLosesNoWakeups) {
  const char* env = std::getenv("SMOOTHER_POOL_STRESS_ROUNDS");
  const std::size_t rounds =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 8;
  constexpr std::size_t kTasks = 10000;
  for (std::size_t round = 0; round < rounds; ++round) {
    ThreadPool pool(4);
    std::atomic<std::size_t> done{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
      // Let the workers drain and park so the next submit hits the
      // empty-pool wakeup path instead of an always-busy fast path.
      if (i % 512 == 511)
        while (done.load() <= i - 8) std::this_thread::yield();
    }
    for (auto& future : futures) future.get();
    ASSERT_EQ(done.load(), kTasks) << "round " << round;
  }
}

}  // namespace
}  // namespace smoother::runtime
