#include "smoother/battery/wear.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smoother::battery {
namespace {

TEST(WearTracker, ValidatesParams) {
  WearModelParams params;
  params.cycles_to_failure_at_full_depth = 0.0;
  EXPECT_THROW(WearTracker{params}, std::invalid_argument);
  params = WearModelParams{};
  params.depth_exponent = -1.0;
  EXPECT_THROW(WearTracker{params}, std::invalid_argument);
}

TEST(WearTracker, RejectsOutOfRangeSoc) {
  WearTracker tracker;
  EXPECT_THROW(tracker.record_soc(-0.1), std::invalid_argument);
  EXPECT_THROW(tracker.record_soc(1.1), std::invalid_argument);
}

TEST(WearTracker, CountsDirectionSwitches) {
  WearTracker tracker;
  for (double soc : {0.5, 0.6, 0.7, 0.6, 0.5, 0.6}) tracker.record_soc(soc);
  // up,up,down,down,up -> two reversals.
  EXPECT_EQ(tracker.direction_switches(), 2u);
}

TEST(WearTracker, IdleStepsDoNotSwitch) {
  WearTracker tracker;
  for (double soc : {0.5, 0.6, 0.6, 0.6, 0.7}) tracker.record_soc(soc);
  EXPECT_EQ(tracker.direction_switches(), 0u);
}

TEST(WearTracker, ThroughputAccumulates) {
  WearTracker tracker;
  for (double soc : {0.2, 0.8, 0.3}) tracker.record_soc(soc);
  EXPECT_NEAR(tracker.total_throughput(), 0.6 + 0.5, 1e-12);
}

TEST(WearTracker, FullCycleCostsOneOverCyclesToFailure) {
  WearModelParams params;
  params.cycles_to_failure_at_full_depth = 1000.0;
  params.depth_exponent = 1.0;
  WearTracker tracker(params);
  // 0 -> 1 -> 0: one full cycle = two half cycles at depth 1.
  tracker.record_soc(0.0);
  tracker.record_soc(1.0);
  tracker.record_soc(0.0);
  EXPECT_NEAR(tracker.life_consumed(), 1.0 / 1000.0, 1e-12);
}

TEST(WearTracker, ShallowCyclesWearLessThanProportional) {
  WearModelParams params;
  params.depth_exponent = 1.5;  // depth-sensitive chemistry
  // Ten 10%-cycles vs one 100%-cycle moving the same total charge.
  WearTracker shallow(params);
  shallow.record_soc(0.0);
  for (int i = 0; i < 10; ++i) {
    shallow.record_soc(0.1);
    shallow.record_soc(0.0);
  }
  WearTracker deep(params);
  deep.record_soc(0.0);
  deep.record_soc(1.0);
  deep.record_soc(0.0);
  EXPECT_NEAR(shallow.total_throughput(), deep.total_throughput(), 1e-12);
  EXPECT_LT(shallow.life_consumed(), deep.life_consumed());
}

TEST(WearTracker, OpenRampIsIncluded) {
  WearModelParams params;
  params.cycles_to_failure_at_full_depth = 100.0;
  params.depth_exponent = 1.0;
  WearTracker tracker(params);
  tracker.record_soc(0.2);
  tracker.record_soc(0.7);  // open half-cycle of depth 0.5
  EXPECT_NEAR(tracker.life_consumed(), 0.5 / 200.0, 1e-12);
}

TEST(WearTracker, MonotoneUnderMoreCycling) {
  WearTracker a, b;
  for (double soc : {0.5, 0.7, 0.5}) {
    a.record_soc(soc);
    b.record_soc(soc);
  }
  const double one_cycle = a.life_consumed();
  for (double soc : {0.7, 0.5}) b.record_soc(soc);
  EXPECT_GT(b.life_consumed(), one_cycle);
}

TEST(LifeConsumedBy, OneShotMatchesStreaming) {
  const std::vector<double> trajectory = {0.3, 0.6, 0.4, 0.9, 0.2};
  WearTracker tracker;
  for (double soc : trajectory) tracker.record_soc(soc);
  EXPECT_DOUBLE_EQ(life_consumed_by(trajectory), tracker.life_consumed());
}

TEST(LifeConsumedBy, ConstantTrajectoryIsFree) {
  EXPECT_DOUBLE_EQ(life_consumed_by(std::vector<double>(10, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(life_consumed_by(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace smoother::battery
