#include "smoother/core/metrics.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::core {
namespace {

using test::constant_series;
using test::series;

TEST(SwitchingTimes, CountsCrossings) {
  // supply vs constant demand of 10: states are W G W G -> 3 switches.
  const auto supply = series({15.0, 5.0, 12.0, 3.0});
  const auto demand = constant_series(10.0, 4);
  EXPECT_EQ(energy_switching_times(supply, demand), 3u);
}

TEST(SwitchingTimes, NoSwitchWhenAlwaysOneSide) {
  const auto demand = constant_series(10.0, 5);
  EXPECT_EQ(energy_switching_times(constant_series(20.0, 5), demand), 0u);
  EXPECT_EQ(energy_switching_times(constant_series(1.0, 5), demand), 0u);
}

TEST(SwitchingTimes, EqualityCountsAsOnWind) {
  const auto supply = series({10.0, 9.0, 10.0});
  const auto demand = constant_series(10.0, 3);
  // W G W -> 2 switches.
  EXPECT_EQ(energy_switching_times(supply, demand), 2u);
}

TEST(SwitchingTimes, EmptyAndSingleSeries) {
  const util::TimeSeries empty;
  EXPECT_EQ(energy_switching_times(empty, empty), 0u);
  const auto one = constant_series(5.0, 1);
  EXPECT_EQ(energy_switching_times(one, one), 0u);
}

TEST(SwitchingTimes, ShapeMismatchThrows) {
  EXPECT_THROW(
      (void)energy_switching_times(constant_series(1.0, 3), constant_series(1.0, 4)),
      std::invalid_argument);
}

TEST(SwitchingTimesHysteresis, DeadbandSuppressesChatter) {
  // Supply oscillates +-2% around the demand: plain counting sees many
  // switches, a 5% deadband sees none.
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(i % 2 ? 102.0 : 98.0);
  const auto supply = series(std::move(values));
  const auto demand = constant_series(100.0, 20);
  EXPECT_EQ(energy_switching_times(supply, demand), 19u);
  EXPECT_EQ(energy_switching_times_hysteresis(supply, demand, 0.05), 0u);
}

TEST(SwitchingTimesHysteresis, LargeSwingsStillSwitch) {
  const auto supply = series({150.0, 50.0, 150.0, 50.0});
  const auto demand = constant_series(100.0, 4);
  EXPECT_EQ(energy_switching_times_hysteresis(supply, demand, 0.1), 3u);
}

TEST(SwitchingTimesHysteresis, NegativeDeadbandThrows) {
  const auto s = constant_series(1.0, 2);
  EXPECT_THROW((void)energy_switching_times_hysteresis(s, s, -0.1),
               std::invalid_argument);
}

TEST(RenewableEnergyUsed, MinOfSupplyAndDemand) {
  const auto supply = series({100.0, 20.0});
  const auto demand = series({50.0, 60.0});
  // min: 50, 20 over 5-min steps -> (70) * 5/60 kWh.
  EXPECT_NEAR(renewable_energy_used(supply, demand).value(), 70.0 * 5.0 / 60.0,
              1e-9);
}

TEST(RenewableUtilization, UsedOverGenerated) {
  const auto supply = series({100.0, 100.0});
  const auto demand = series({50.0, 150.0});
  // used = 50 + 100 = 150 of 200 generated.
  EXPECT_NEAR(renewable_utilization(supply, demand), 0.75, 1e-12);
}

TEST(RenewableUtilization, ZeroGeneration) {
  const auto supply = constant_series(0.0, 3);
  const auto demand = constant_series(10.0, 3);
  EXPECT_DOUBLE_EQ(renewable_utilization(supply, demand), 0.0);
}

TEST(UnusableRenewable, Fig7GreenArea) {
  const auto supply = series({100.0, 20.0});
  const auto demand = series({50.0, 60.0});
  EXPECT_NEAR(unusable_renewable(supply, demand).value(), 50.0 * 5.0 / 60.0,
              1e-9);
}

TEST(GridEnergyNeeded, DeficitOnly) {
  const auto supply = series({100.0, 20.0});
  const auto demand = series({50.0, 60.0});
  EXPECT_NEAR(grid_energy_needed(supply, demand).value(), 40.0 * 5.0 / 60.0,
              1e-9);
}

TEST(EnergyBalance, UsedPlusUnusableEqualsGenerated) {
  const auto supply = series({120.0, 30.0, 80.0, 0.0});
  const auto demand = series({50.0, 60.0, 80.0, 10.0});
  const double used = renewable_energy_used(supply, demand).value();
  const double spilled = unusable_renewable(supply, demand).value();
  EXPECT_NEAR(used + spilled, supply.total_energy().value(), 1e-9);
  const double grid = grid_energy_needed(supply, demand).value();
  EXPECT_NEAR(used + grid, demand.total_energy().value(), 1e-9);
}

}  // namespace
}  // namespace smoother::core
