#include "smoother/sim/dispatch.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::sim {
namespace {

using test::constant_series;
using test::series;
using util::Kilowatts;
using util::KilowattHours;

battery::BatterySpec small_battery() {
  battery::BatterySpec spec;
  spec.capacity = KilowattHours{10.0};
  spec.max_charge_rate = Kilowatts{120.0};
  spec.max_discharge_rate = Kilowatts{120.0};
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return spec;
}

TEST(Dispatch, ValidatesInputs) {
  const auto supply = constant_series(10.0, 4);
  const auto short_demand = constant_series(10.0, 3);
  EXPECT_THROW(dispatch(supply, short_demand, DispatchPolicy::kDirect),
               std::invalid_argument);
  EXPECT_THROW(dispatch(supply, supply, DispatchPolicy::kComp, nullptr),
               std::invalid_argument);
}

TEST(Dispatch, DirectPolicyPassesSupplyThrough) {
  const auto supply = series({100.0, 20.0});
  const auto demand = series({50.0, 60.0});
  const auto result = dispatch(supply, demand, DispatchPolicy::kDirect);
  EXPECT_EQ(result.effective_supply, supply);
  EXPECT_NEAR(result.renewable_used.value(), 70.0 * 5.0 / 60.0, 1e-9);
  EXPECT_NEAR(result.grid_energy.value(), 40.0 * 5.0 / 60.0, 1e-9);
  EXPECT_NEAR(result.spilled_renewable.value(), 50.0 * 5.0 / 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.battery_equivalent_cycles, 0.0);
}

TEST(Dispatch, EnergyBalanceHolds) {
  const auto supply = series({100.0, 20.0, 0.0, 80.0});
  const auto demand = series({50.0, 60.0, 30.0, 80.0});
  for (DispatchPolicy policy :
       {DispatchPolicy::kDirect, DispatchPolicy::kComp,
        DispatchPolicy::kCompMatching}) {
    battery::Battery battery(small_battery());
    const auto result = dispatch(supply, demand, policy, &battery);
    // used + grid == demand
    EXPECT_NEAR(result.renewable_used.value() + result.grid_energy.value(),
                demand.total_energy().value(), 1e-9)
        << to_string(policy);
  }
}

TEST(Dispatch, CompMatchingBridgesShortDeficit) {
  // Supply dips below demand for one step; the demand-matching battery
  // (charged by the earlier surplus) erases the dip entirely.
  const auto supply = series({100.0, 100.0, 40.0, 100.0});
  const auto demand = constant_series(50.0, 4);
  battery::Battery battery(small_battery(), 0.5);
  const auto result =
      dispatch(supply, demand, DispatchPolicy::kCompMatching, &battery);
  EXPECT_DOUBLE_EQ(result.effective_supply[2], 50.0);
  EXPECT_EQ(result.switching_times, 0u);
  EXPECT_DOUBLE_EQ(result.grid_power[2], 0.0);
}

TEST(Dispatch, CompBurstOvershootsDeficit) {
  // Same scenario with the paper's SoC-blind Comp: the battery dumps at
  // max rate, overshooting the demand during the dip.
  const auto supply = series({100.0, 100.0, 40.0, 100.0});
  const auto demand = constant_series(50.0, 4);
  battery::Battery battery(small_battery(), 0.5);
  const auto result = dispatch(supply, demand, DispatchPolicy::kComp, &battery);
  EXPECT_GT(result.effective_supply[2], 50.0);
}

TEST(Dispatch, CompChargesFromSurplusOnly) {
  const auto supply = series({80.0, 80.0});
  const auto demand = series({50.0, 50.0});
  battery::Battery battery(small_battery(), 0.1);
  const auto result = dispatch(supply, demand, DispatchPolicy::kComp, &battery);
  // 30 kW surplus for 5 min = 2.5 kWh stored per step.
  EXPECT_LT(result.battery_flow[0], 0.0);
  EXPECT_NEAR(battery.energy().value(), 1.0 + 5.0, 1e-9);
  EXPECT_GT(result.battery_equivalent_cycles, 0.0);
}

TEST(Dispatch, UtilizationComputedAgainstGeneration) {
  const auto supply = series({100.0, 0.0});
  const auto demand = series({50.0, 50.0});
  const auto result = dispatch(supply, demand, DispatchPolicy::kDirect);
  EXPECT_NEAR(result.renewable_utilization, 0.5, 1e-12);
}

TEST(Dispatch, SwitchingCountedOnEffectiveSupply) {
  // Raw supply crosses the demand twice; the matching battery removes the
  // crossings, so Comp-matching counts fewer switches than direct.
  const auto supply = series({100.0, 30.0, 100.0, 30.0, 100.0});
  const auto demand = constant_series(50.0, 5);
  const auto direct = dispatch(supply, demand, DispatchPolicy::kDirect);
  battery::Battery battery(small_battery(), 1.0);
  const auto matching =
      dispatch(supply, demand, DispatchPolicy::kCompMatching, &battery);
  EXPECT_GT(direct.switching_times, matching.switching_times);
}

TEST(Dispatch, PolicyNames) {
  EXPECT_EQ(to_string(DispatchPolicy::kDirect), "direct");
  EXPECT_EQ(to_string(DispatchPolicy::kComp), "comp");
  EXPECT_EQ(to_string(DispatchPolicy::kCompMatching), "comp-matching");
}

TEST(Dispatch, NegativeInputsClampedToZero) {
  const auto supply = series({-10.0, 20.0});
  const auto demand = series({10.0, -5.0});
  const auto result = dispatch(supply, demand, DispatchPolicy::kDirect);
  EXPECT_DOUBLE_EQ(result.effective_supply[0], 0.0);
  EXPECT_DOUBLE_EQ(result.grid_power[1], 0.0);
}

}  // namespace
}  // namespace smoother::sim
