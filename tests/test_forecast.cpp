#include "smoother/core/forecast.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/stats/descriptive.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother::core {
namespace {

using util::Kilowatts;

TEST(PerfectForecaster, ReturnsInputUnchanged) {
  PerfectForecaster forecaster;
  const auto series = test::sawtooth_series(10.0, 90.0, 4, 12);
  EXPECT_EQ(forecaster.forecast(series), series);
  EXPECT_EQ(forecaster.name(), "perfect");
}

TEST(NoisyForecaster, Validation) {
  EXPECT_THROW(NoisyForecaster(-0.1, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(NoisyForecaster(0.1, 1.0, 1), std::invalid_argument);
  EXPECT_NO_THROW(NoisyForecaster(0.1, -0.05, 1));
}

TEST(NoisyForecaster, ZeroErrorIsNearPerfect) {
  NoisyForecaster forecaster(0.0, 0.0, 7);
  const auto series = test::sawtooth_series(10.0, 90.0, 4, 12);
  const auto predicted = forecaster.forecast(series);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_NEAR(predicted[i], series[i], 1e-9);
}

TEST(NoisyForecaster, ErrorMagnitudeTracksSigma) {
  const auto series = test::constant_series(100.0, 2000, util::kFiveMinutes);
  NoisyForecaster forecaster(0.08, 0.0, 11);
  const auto predicted = forecaster.forecast(series);
  std::vector<double> errors;
  for (std::size_t i = 0; i < series.size(); ++i)
    errors.push_back((predicted[i] - series[i]) / series[i]);
  const auto summary = stats::summarize(errors);
  EXPECT_NEAR(summary.mean, 0.0, 0.02);
  EXPECT_NEAR(summary.stddev, 0.08, 0.02);
}

TEST(NoisyForecaster, BiasShiftsTheForecast) {
  const auto series = test::constant_series(100.0, 2000, util::kFiveMinutes);
  NoisyForecaster optimistic(0.01, 0.10, 5);
  const auto predicted = optimistic.forecast(series);
  EXPECT_NEAR(predicted.mean(), 110.0, 2.0);
}

TEST(NoisyForecaster, ErrorsAreTemporallyCorrelated) {
  // AR(1) errors: adjacent errors correlate strongly; distant ones do not.
  const auto series = test::constant_series(100.0, 4000, util::kFiveMinutes);
  NoisyForecaster forecaster(0.1, 0.0, 3);
  const auto predicted = forecaster.forecast(series);
  std::vector<double> err;
  for (std::size_t i = 0; i < series.size(); ++i)
    err.push_back(predicted[i] - series[i]);
  std::vector<double> lead(err.begin(), err.end() - 1);
  std::vector<double> lag(err.begin() + 1, err.end());
  EXPECT_GT(stats::correlation(lead, lag), 0.4);
}

TEST(NoisyForecaster, NeverNegative) {
  const auto series = test::constant_series(1.0, 500, util::kFiveMinutes);
  NoisyForecaster wild(0.9, -0.5, 13);
  const auto predicted = wild.forecast(series);
  for (std::size_t i = 0; i < predicted.size(); ++i)
    EXPECT_GE(predicted[i], 0.0);
}

TEST(NoisyForecaster, SuccessiveCallsDiffer) {
  const auto series = test::constant_series(100.0, 12, util::kFiveMinutes);
  NoisyForecaster forecaster(0.1, 0.0, 2);
  const auto a = forecaster.forecast(series);
  const auto b = forecaster.forecast(series);
  EXPECT_NE(a, b);
}

// --- FS under forecast error -----------------------------------------------

RegionClassifier lenient_classifier() {
  RegionClassifierConfig config;
  config.rated_power = Kilowatts{800.0};
  config.thresholds.stable_below = 1e-8;
  config.thresholds.extreme_above = 1.0;
  return RegionClassifier(config);
}

battery::BatterySpec fs_battery() {
  auto spec = battery::spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return spec;
}

util::TimeSeries volatile_supply() {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  return power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(2.0), util::kFiveMinutes, 77));
}

TEST(SmoothWithForecast, PerfectForecastMatchesPlainSmooth) {
  const auto supply = volatile_supply();
  const FlexibleSmoothing fs;
  battery::Battery b1(fs_battery()), b2(fs_battery());
  PerfectForecaster perfect;
  const auto plain = fs.smooth(supply, lenient_classifier(), b1);
  const auto forecasted =
      fs.smooth_with_forecast(supply, lenient_classifier(), b2, perfect);
  EXPECT_EQ(plain.supply, forecasted.supply);
  EXPECT_EQ(plain.smoothed_intervals, forecasted.smoothed_intervals);
}

TEST(SmoothWithForecast, ModestErrorStillSmooths) {
  const auto supply = volatile_supply();
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery());
  NoisyForecaster forecaster(0.075, 0.0, 9);  // the paper's 5-10 % band
  const auto result = fs.smooth_with_forecast(supply, lenient_classifier(),
                                              battery, forecaster);
  EXPECT_GT(result.smoothed_intervals, 0u);
  EXPECT_GT(result.mean_variance_reduction(), 0.2);
}

TEST(SmoothWithForecast, DegradesGracefullyWithError) {
  const auto supply = volatile_supply();
  const FlexibleSmoothing fs;
  const auto reduction_at = [&](double sigma) {
    battery::Battery battery(fs_battery());
    NoisyForecaster forecaster(sigma, 0.0, 21);
    return fs
        .smooth_with_forecast(supply, lenient_classifier(), battery,
                              forecaster)
        .mean_variance_reduction();
  };
  const double at_zero = reduction_at(0.0);
  const double at_thirty = reduction_at(0.30);
  EXPECT_GT(at_zero, at_thirty);   // more error, less smoothing
  EXPECT_GT(at_thirty, 0.0);       // but still net-positive
}

TEST(SmoothWithForecast, BatteryCorridorHoldsUnderError) {
  const auto supply = volatile_supply();
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery());
  NoisyForecaster forecaster(0.25, 0.1, 4);
  (void)fs.smooth_with_forecast(supply, lenient_classifier(), battery,
                                forecaster);
  EXPECT_GE(battery.soc_fraction(), 0.10 - 1e-9);
  EXPECT_LE(battery.soc_fraction(), 1.0 + 1e-9);
}

TEST(SmoothWithForecast, ChargeNeverExceedsActualGeneration) {
  // Optimistic forecast wants to store more than is generated; execution
  // must cap the charge at the actual output, keeping supply >= 0 without
  // clamping artifacts.
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery(), 0.15);
  const auto actual = test::constant_series(50.0, 12);
  NoisyForecaster optimistic(0.01, 0.6, 8);  // forecasts ~80 kW
  const auto result = fs.smooth_with_forecast(
      actual, lenient_classifier(), battery, optimistic);
  for (std::size_t i = 0; i < result.supply.size(); ++i)
    EXPECT_GE(result.supply[i], -1e-9);
}

}  // namespace
}  // namespace smoother::core
