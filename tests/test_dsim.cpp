// smoother::dsim: deterministic event loop, pipeline simulation,
// invariant checking, the trace fuzzer, and crash-recovery fuzzing.
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "smoother/dsim/crash_nemesis.hpp"
#include "smoother/dsim/event_loop.hpp"
#include "smoother/dsim/invariants.hpp"
#include "smoother/dsim/pipeline_sim.hpp"
#include "smoother/dsim/trace_fuzz.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::dsim {
namespace {

constexpr std::uint64_t kSeed = 20260809;

PipelineSimConfig week_config() {
  PipelineSimConfig config;
  config.duration = util::days(7.0);
  return config;
}

/// Fresh per-test scratch directory; pid-qualified because test_dsim and
/// the dsim_soak target run the same binary concurrently under ctest -j.
std::string crash_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("smoother_dsim_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// The digest from interval `committed` on (skips that many lines).
std::string digest_from(const std::string& digest, std::uint64_t committed) {
  std::size_t start = 0;
  for (std::uint64_t skipped = 0; skipped < committed; ++skipped) {
    const std::size_t end = digest.find('\n', start);
    if (end == std::string::npos) return {};
    start = end + 1;
  }
  return digest.substr(start);
}

// ---------------------------------------------------------------- EventLoop

TEST(EventLoop, ExecutesInTimeOrderWithStableTieBreak) {
  BuggifyConfig quiet;
  quiet.enabled = false;
  EventLoop loop(1, quiet);
  std::vector<int> order;
  loop.schedule(util::Minutes{10.0}, "b", [&] { order.push_back(2); });
  loop.schedule(util::Minutes{5.0}, "a", [&] { order.push_back(1); });
  // Equal times: insertion order decides.
  loop.schedule(util::Minutes{10.0}, "c", [&] { order.push_back(3); });
  loop.schedule(util::Minutes{20.0}, "d", [&] { order.push_back(4); });
  EXPECT_EQ(loop.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(loop.now().value(), 20.0);
}

TEST(EventLoop, VirtualClockNeverRunsBackwards) {
  EventLoop loop(7);
  double last = 0.0;
  bool monotone = true;
  for (int i = 0; i < 200; ++i)
    loop.schedule(util::Minutes{static_cast<double>(200 - i)}, "e", [&] {
      monotone = monotone && loop.now().value() >= last;
      last = loop.now().value();
    });
  loop.run();
  EXPECT_TRUE(monotone);
}

TEST(EventLoop, NestedSchedulingFromCallbacks) {
  BuggifyConfig quiet;
  quiet.enabled = false;
  EventLoop loop(3, quiet);
  int fired = 0;
  loop.schedule(util::Minutes{1.0}, "outer", [&] {
    loop.schedule(util::Minutes{1.0}, "inner", [&] { ++fired; });
  });
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now().value(), 2.0);
}

TEST(EventLoop, RunUntilStopsAtTheLimit) {
  BuggifyConfig quiet;
  quiet.enabled = false;
  EventLoop loop(3, quiet);
  int fired = 0;
  loop.schedule(util::Minutes{5.0}, "in", [&] { ++fired; });
  loop.schedule(util::Minutes{50.0}, "out", [&] { ++fired; });
  EXPECT_EQ(loop.run_until(util::Minutes{10.0}), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, StopEndsTheRun) {
  EventLoop loop(3);
  int fired = 0;
  loop.schedule(util::Minutes{1.0}, "a", [&] {
    ++fired;
    loop.stop();
  });
  loop.schedule(util::Minutes{2.0}, "b", [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, HaltAfterEventsKillsBetweenEvents) {
  // The crash point the nemesis uses: the event at the limit completes
  // (writes are never cut mid-callback by the loop itself — torn writes
  // are modelled separately, on the file), then the loop dies.
  BuggifyConfig quiet;
  quiet.enabled = false;
  EventLoop loop(3, quiet);
  int fired = 0;
  for (int i = 1; i <= 5; ++i)
    loop.schedule(util::Minutes{static_cast<double>(i)}, "e",
                  [&] { ++fired; });
  loop.set_halt_after_events(3);
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.pending(), 2u);
}

TEST(EventLoop, BuggifiedDelaysAreDeterministicInTheSeed) {
  const auto trace_of = [](std::uint64_t seed) {
    EventLoop loop(seed);
    for (int i = 0; i < 100; ++i)
      loop.schedule(util::Minutes{static_cast<double>(i)}, "e", [] {});
    loop.run();
    std::string joined;
    for (const std::string& line : loop.trace()) joined += line + "\n";
    return joined;
  };
  EXPECT_EQ(trace_of(42), trace_of(42));
  EXPECT_NE(trace_of(42), trace_of(43));
}

TEST(EventLoop, BuggifyStretchesSomeDelays) {
  // With an aggressive config some delays must stretch, and none shrink.
  BuggifyConfig aggressive;
  aggressive.delay_probability = 1.0;
  aggressive.max_delay_minutes = 4.0;
  EventLoop loop(11, aggressive);
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i)
    loop.schedule(util::Minutes{1.0}, "e",
                  [&] { times.push_back(loop.now().value()); });
  loop.run();
  bool stretched = false;
  for (double t : times) {
    EXPECT_GE(t, 1.0);
    EXPECT_LE(t, 5.0);
    if (t > 1.0) stretched = true;
  }
  EXPECT_TRUE(stretched);
}

TEST(EventLoop, NegativeDelayThrows) {
  EventLoop loop(1);
  EXPECT_THROW(loop.schedule(util::Minutes{-1.0}, "bad", [] {}),
               std::invalid_argument);
}

TEST(BuggifyConfig, Validation) {
  BuggifyConfig config;
  EXPECT_NO_THROW(config.validate());
  config.delay_probability = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = BuggifyConfig{};
  config.max_delay_minutes = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// --------------------------------------------------------- InvariantChecker

TEST(InvariantChecker, MonotoneFallbackDetectsDecreases) {
  EXPECT_FALSE(InvariantChecker::check_monotone_fallback(
      {{0.0, 0.0}, {0.1, 0.2}, {0.2, 0.2}, {0.4, 0.5}}));
  const auto violation = InvariantChecker::check_monotone_fallback(
      {{0.0, 0.0}, {0.1, 0.3}, {0.2, 0.1}});
  ASSERT_TRUE(violation);
  EXPECT_NE(violation->find("decreased"), std::string::npos);
}

TEST(InvariantChecker, ReplayCompareFindsFirstDivergence) {
  EXPECT_FALSE(InvariantChecker::check_replay("abc", "abc"));
  const auto violation = InvariantChecker::check_replay("abcd", "abXd");
  ASSERT_TRUE(violation);
  EXPECT_NE(violation->find("byte 2"), std::string::npos);
}

TEST(InvariantChecker, FlagsTerminalImbalance) {
  battery::BatterySpec spec;
  battery::Battery cell(spec);  // mid-corridor
  InvariantChecker checker;
  BatterySnapshot before = BatterySnapshot::of(cell);
  // Claim the battery delivered energy it never exchanged: terminal
  // imbalance.
  checker.check_interval(0, 0.0, cell, before, 5.0, {100.0, 100.0},
                         {150.0, 150.0});
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant,
            "energy-conservation-terminal");
}

TEST(InvariantChecker, CleanIntervalPasses) {
  battery::BatterySpec spec;
  battery::Battery cell(spec);
  InvariantChecker checker;
  BatterySnapshot before = BatterySnapshot::of(cell);
  checker.check_interval(0, 0.0, cell, before, 5.0, {100.0, 100.0},
                         {100.0, 100.0});
  EXPECT_TRUE(checker.ok());
  // Real exchange: discharge shows up in both the battery and the series.
  before = BatterySnapshot::of(cell);
  const util::Kilowatts delivered =
      cell.discharge(util::Kilowatts{60.0}, util::kFiveMinutes);
  checker.check_interval(1, 5.0, cell, before, 5.0, {100.0},
                         {100.0 + delivered.value()});
  EXPECT_TRUE(checker.ok())
      << (checker.violations().empty() ? std::string{}
                                       : checker.violations()[0].detail);
}

TEST(InvariantChecker, FlagsNonFiniteDelivery) {
  battery::BatterySpec spec;
  battery::Battery cell(spec);
  InvariantChecker checker;
  checker.check_interval(0, 0.0, cell, BatterySnapshot::of(cell), 5.0,
                         {100.0}, {std::numeric_limits<double>::quiet_NaN()});
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].invariant, "stream-integrity");
}

// -------------------------------------------------------------- PipelineSim

TEST(PipelineSim, CleanWeekHasZeroViolationsAndZeroFallbacks) {
  PipelineSim sim(week_config(), kSeed);
  const PipelineSimResult result = sim.run();
  EXPECT_TRUE(result.ok()) << result.violations[0].invariant << ": "
                           << result.violations[0].detail;
  EXPECT_EQ(result.health.intervals_fallback, 0u);
  EXPECT_EQ(result.intervals, 7u * 24u);
  EXPECT_EQ(result.samples, 7u * 24u * 12u);
  EXPECT_GT(result.smoothed_intervals, 0u);
  EXPECT_GT(result.events_executed, result.samples);
}

TEST(PipelineSim, ReplayIsByteIdentical) {
  PipelineSimConfig config = week_config();
  config.duration = util::days(3.0);
  const PipelineSimResult a = PipelineSim(config, kSeed).run();
  const PipelineSimResult b = PipelineSim(config, kSeed).run();
  EXPECT_FALSE(InvariantChecker::check_replay(a.event_trace, b.event_trace));
  EXPECT_FALSE(
      InvariantChecker::check_replay(a.records_digest, b.records_digest));
  EXPECT_EQ(a.output_checksum, b.output_checksum);
  EXPECT_EQ(a.final_soc, b.final_soc);
}

TEST(PipelineSim, DifferentSeedsDiverge) {
  PipelineSimConfig config = week_config();
  config.duration = util::days(2.0);
  const PipelineSimResult a = PipelineSim(config, 1).run();
  const PipelineSimResult b = PipelineSim(config, 2).run();
  EXPECT_NE(a.output_checksum, b.output_checksum);
}

TEST(PipelineSim, FaultsProduceFallbacksButNoViolations) {
  PipelineSimConfig config = week_config();
  config.faults.telemetry_nan_rate = 0.02;
  config.faults.battery_outage_rate = 0.05;
  config.faults.oracle_throw_rate = 0.05;
  config.faults.solver_failure_rate = 0.05;
  PipelineSim sim(config, kSeed);
  const PipelineSimResult result = sim.run();
  EXPECT_TRUE(result.ok()) << result.violations[0].invariant << ": "
                           << result.violations[0].detail;
  EXPECT_GT(result.health.intervals_fallback, 0u);
  EXPECT_GT(result.health.degraded_entries, 0u);
}

TEST(PipelineSim, FallbackRateMonotoneInFaultRate) {
  std::vector<std::pair<double, double>> curve;
  for (double rate : {0.0, 0.05, 0.15, 0.3}) {
    PipelineSimConfig config = week_config();
    config.duration = util::days(3.0);
    config.record_trace = false;
    config.faults.solver_failure_rate = rate;
    config.faults.oracle_throw_rate = rate / 2.0;
    const PipelineSimResult result = PipelineSim(config, kSeed).run();
    EXPECT_TRUE(result.ok());
    curve.emplace_back(rate, result.health.fallback_rate());
  }
  EXPECT_GT(curve.back().second, 0.0);
  EXPECT_FALSE(InvariantChecker::check_monotone_fallback(curve))
      << *InvariantChecker::check_monotone_fallback(curve);
}

TEST(PipelineSimConfig, Validation) {
  PipelineSimConfig config;
  EXPECT_NO_THROW(config.validate());
  config.buggify.max_delay_minutes = 10.0;  // >= sample step
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = PipelineSimConfig{};
  config.duration = util::Minutes{0.0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = PipelineSimConfig{};
  config.forecast_error_sd = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// -------------------------------------------------------------- TraceFuzzer

TEST(TraceFuzzer, CasesArePureFunctionsOfTheSeed) {
  PipelineSimConfig config = week_config();
  config.duration = util::days(2.0);
  const TraceFuzzer fuzzer(config);
  const FuzzCase a = fuzzer.generate_case(99);
  const FuzzCase b = fuzzer.generate_case(99);
  EXPECT_EQ(TraceFuzzer::describe(a), TraceFuzzer::describe(b));
  EXPECT_NE(TraceFuzzer::describe(a),
            TraceFuzzer::describe(fuzzer.generate_case(100)));
}

TEST(TraceFuzzer, MutationsCoverEveryKind) {
  PipelineSimConfig config = week_config();
  const TraceFuzzer fuzzer(config);
  std::vector<bool> seen(kMutationKindCount, false);
  for (std::uint64_t s = 0; s < 64; ++s)
    for (const Mutation& m : fuzzer.generate_case(s).mutations)
      seen[static_cast<std::size_t>(m.kind)] = true;
  for (std::size_t k = 0; k < kMutationKindCount; ++k)
    EXPECT_TRUE(seen[k]) << "kind " << k << " never generated";
}

TEST(TraceFuzzer, MutateAppliesEachKind) {
  PipelineSimConfig config = week_config();
  config.duration = util::Minutes{60.0};
  const TraceFuzzer fuzzer(config);
  PipelineSim sim(config, kSeed);
  const TelemetryTape tape = sim.clean_tape();
  ASSERT_EQ(tape.size(), 12u);

  auto one = [&](MutationKind kind, double magnitude) {
    return fuzzer.mutate(
        tape, {Mutation{kind, 2, 3, magnitude}});
  };
  EXPECT_DOUBLE_EQ(one(MutationKind::kSpike, 2.0)[2].value_kw,
                   tape[2].value_kw * 2.0);
  EXPECT_TRUE(one(MutationKind::kGap, 0.0)[3].missing);
  EXPECT_TRUE(std::isnan(one(MutationKind::kNanBurst, 0.0)[4].value_kw));
  const TelemetryTape reordered = one(MutationKind::kReorder, 0.0);
  EXPECT_DOUBLE_EQ(reordered[2].time_minutes, tape[4].time_minutes);
  EXPECT_DOUBLE_EQ(reordered[4].time_minutes, tape[2].time_minutes);
  const TelemetryTape skewed = one(MutationKind::kClockSkew, 7.5);
  EXPECT_DOUBLE_EQ(skewed[2].time_minutes, tape[2].time_minutes + 7.5);
  EXPECT_DOUBLE_EQ(skewed[11].time_minutes, tape[11].time_minutes + 7.5);
  EXPECT_DOUBLE_EQ(skewed[1].time_minutes, tape[1].time_minutes);
  const TelemetryTape stuck = one(MutationKind::kStuck, 0.0);
  EXPECT_DOUBLE_EQ(stuck[4].value_kw, tape[2].value_kw);
}

TEST(TraceFuzzer, MutatedWeekSurvivesWithoutViolations) {
  PipelineSimConfig config = week_config();
  config.duration = util::days(2.0);
  config.record_trace = false;
  const TraceFuzzer fuzzer(config);
  const FuzzReport report = fuzzer.run(8, kSeed);
  EXPECT_EQ(report.cases_run, 8u);
  EXPECT_TRUE(report.clean())
      << report.reproducer_description << " (crashes=" << report.crashes
      << ", violation_cases=" << report.violation_cases << ")";
}

TEST(TraceFuzzer, MinimizeShrinksToTheCulpritMutation) {
  // Plant a synthetic "failure": a case fails iff it contains a NaN burst.
  // We can't inject a fake oracle into run_case, so instead verify the
  // shrinking logic through a case whose outcome we can predict: an empty
  // minimization keeps at least one mutation and preserves the seed.
  PipelineSimConfig config = week_config();
  config.duration = util::days(1.0);
  config.record_trace = false;
  const TraceFuzzer fuzzer(config);
  FuzzCase failing = fuzzer.generate_case(5);
  const FuzzCase minimal = fuzzer.minimize(failing);
  EXPECT_EQ(minimal.seed, failing.seed);
  EXPECT_GE(minimal.mutations.size(), 1u);
  EXPECT_LE(minimal.mutations.size(), failing.mutations.size());
}

// ----------------------------------------------------------- CrashRecovery

/// Pipeline config for crash-recovery tests: warm starts off (their
/// iterates are deliberately not checkpointed, so a recovered run would
/// legitimately diverge from the reference in solver iteration counts).
PipelineSimConfig recovery_config(double days) {
  PipelineSimConfig config;
  config.duration = util::days(days);
  config.record_trace = false;
  config.solver_warm_start = false;
  return config;
}

TEST(PipelineSim, CheckpointedRunIsIdenticalToTheUncheckpointedOne) {
  // Persistence must be write-only on the happy path: attaching an engine
  // changes nothing about the simulation's output.
  const PipelineSimConfig config = recovery_config(3.0);
  PipelineSim plain(config, kSeed);
  const TelemetryTape tape = plain.clean_tape();
  const PipelineSimResult reference = plain.run(tape);

  persist::PersistConfig engine_config;
  engine_config.directory = crash_dir("writeonly");
  persist::PersistEngine engine(engine_config);
  SimControls controls;
  controls.engine = &engine;
  PipelineSim checkpointed(config, kSeed);
  const PipelineSimResult result = checkpointed.run(tape, controls);

  EXPECT_FALSE(InvariantChecker::check_replay(reference.records_digest,
                                              result.records_digest));
  EXPECT_EQ(reference.output_checksum, result.output_checksum);
  EXPECT_EQ(reference.final_soc, result.final_soc);
  // One WAL record per committed interval.
  EXPECT_EQ(engine.next_sequence(), result.intervals + 1);
}

TEST(PipelineSim, CrashRecoverResumeIsByteIdentical) {
  const PipelineSimConfig config = recovery_config(3.0);
  PipelineSim sim(config, kSeed);
  const TelemetryTape tape = sim.clean_tape();
  const PipelineSimResult reference = sim.run(tape);
  ASSERT_TRUE(reference.ok());

  persist::PersistConfig engine_config;
  engine_config.directory = crash_dir("single");
  {
    persist::PersistEngine engine(engine_config);
    SimControls controls;
    controls.engine = &engine;
    controls.halt_after_events =
        static_cast<std::uint64_t>(reference.events_executed) / 2;
    PipelineSim crashed(config, kSeed);
    static_cast<void>(crashed.run(tape, controls));
  }

  persist::PersistEngine engine(engine_config);
  const persist::RecoveredState recovered = engine.recover();
  ASSERT_TRUE(recovered.found);  // half a 3-day run commits many intervals
  const CheckpointInfo info = peek_checkpoint(recovered.state);
  EXPECT_GT(info.committed_intervals, 0u);
  EXPECT_LT(info.committed_intervals, reference.intervals);

  SimControls controls;
  controls.engine = &engine;
  controls.resume_state = &recovered.state;
  PipelineSim resumed_sim(config, kSeed);
  const PipelineSimResult resumed = resumed_sim.run(tape, controls);
  EXPECT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.intervals,
            reference.intervals - info.committed_intervals);
  const auto diff = InvariantChecker::check_replay(
      digest_from(reference.records_digest, info.committed_intervals),
      resumed.records_digest);
  EXPECT_FALSE(diff) << *diff;
}

TEST(CrashNemesis, RejectsAWarmStartedPipeline) {
  CrashNemesisConfig config;
  config.pipeline = recovery_config(1.0);
  config.pipeline.solver_warm_start = true;
  config.persist.directory = crash_dir("reject");
  EXPECT_THROW(CrashNemesis(config, kSeed), std::invalid_argument);
}

TEST(CrashNemesis, FuzzedCrashPointsAllRecoverByteIdentically) {
  CrashNemesisConfig config;
  config.pipeline = recovery_config(3.0);
  config.crash_points = 8;
  config.torn_write_fraction = 0.5;
  config.persist.directory = crash_dir("nemesis");
  CrashNemesis nemesis(config, kSeed);
  const CrashNemesisReport report = nemesis.run();
  EXPECT_TRUE(report.ok()) << report.first_failure;
  EXPECT_EQ(report.identical, report.points);
  EXPECT_EQ(report.clean, report.points);
  EXPECT_EQ(report.recovered + report.cold_starts, report.points);
  EXPECT_GT(report.torn, 0u);  // half the cases tear the WAL tail
  EXPECT_GT(report.recovered, 0u);
  std::filesystem::remove_all(config.persist.directory);
}

// ------------------------------------------------------------------- Soak
//
// The fuzz soak: N mutated seeds, one simulated month each, zero crashes
// and zero invariant violations. Plain ctest runs a fast slice; the
// dsim_soak ctest target (tools/run_sanitized_tests.sh) raises the case
// count to 100 via SMOOTHER_DSIM_SOAK_CASES for the sanitized gate.

TEST(DsimSoak, FuzzedMonthsRunCleanUnderEverySeed) {
  std::size_t cases = 6;
  if (const char* env = std::getenv("SMOOTHER_DSIM_SOAK_CASES"))
    cases = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  PipelineSimConfig config;  // one simulated month per case
  config.record_trace = false;
  const TraceFuzzer fuzzer(config);
  const FuzzReport report = fuzzer.run(cases, 0xD51A);
  EXPECT_EQ(report.cases_run, cases);
  EXPECT_TRUE(report.clean())
      << "reproducer: " << report.reproducer_description
      << " (crashes=" << report.crashes
      << ", violation_cases=" << report.violation_cases << ")";
}

TEST(DsimSoak, CrashRestartCyclesRecoverByteIdentically) {
  // Every fuzzed case additionally runs a kill-and-recover cycle on its
  // mutated tape; the resumed run must match the case's own uninterrupted
  // run byte for byte. Shorter horizon than the month soak: each case here
  // costs three runs (reference, crashed, resumed).
  std::size_t cases = 6;
  if (const char* env = std::getenv("SMOOTHER_DSIM_SOAK_CASES"))
    cases = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  PipelineSimConfig config;
  config.duration = util::days(10.0);
  config.record_trace = false;
  FuzzerConfig fuzzer_config;
  fuzzer_config.crash_restart = true;
  fuzzer_config.crash_dir = crash_dir("soak_crash_restart");
  const TraceFuzzer fuzzer(config, fuzzer_config);
  const FuzzReport report = fuzzer.run(cases, 0xC4A5);
  EXPECT_EQ(report.cases_run, cases);
  EXPECT_TRUE(report.clean())
      << "reproducer: " << report.reproducer_description
      << " (crashes=" << report.crashes
      << ", violation_cases=" << report.violation_cases << ")";
  std::filesystem::remove_all(fuzzer_config.crash_dir);
}

}  // namespace
}  // namespace smoother::dsim
