#include "smoother/core/multi_esd.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother {
namespace {

using battery::Battery;
using battery::BatterySpec;
using battery::EsdBank;
using core::MultiEsdPlan;
using core::MultiEsdSmoothing;
using util::Kilowatts;
using util::KilowattHours;

// --- EsdBank -----------------------------------------------------------------

BatterySpec make_spec(double capacity_kwh, double rate_kw) {
  BatterySpec spec;
  spec.capacity = KilowattHours{capacity_kwh};
  spec.max_charge_rate = Kilowatts{rate_kw};
  spec.max_discharge_rate = Kilowatts{rate_kw};
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return spec;
}

TEST(EsdBank, Aggregates) {
  EsdBank bank;
  EXPECT_TRUE(bank.empty());
  bank.add("a", Battery(make_spec(10.0, 100.0)));
  bank.add("b", Battery(make_spec(30.0, 50.0)));
  EXPECT_EQ(bank.size(), 2u);
  EXPECT_DOUBLE_EQ(bank.total_capacity().value(), 40.0);
  EXPECT_DOUBLE_EQ(bank.total_charge_rate().value(), 150.0);
  EXPECT_DOUBLE_EQ(bank.total_discharge_rate().value(), 150.0);
  EXPECT_NEAR(bank.total_energy().value(), 0.55 * 40.0, 1e-9);
  EXPECT_EQ(bank.device(1).name, "b");
  EXPECT_THROW((void)bank.device(2), std::out_of_range);
}

TEST(EsdBank, FastDeepPairSplit) {
  const EsdBank bank = EsdBank::fast_deep_pair(
      KilowattHours{100.0}, Kilowatts{400.0}, 0.2, 0.7);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_DOUBLE_EQ(bank.device(0).battery.spec().capacity.value(), 20.0);
  EXPECT_DOUBLE_EQ(bank.device(1).battery.spec().capacity.value(), 80.0);
  EXPECT_DOUBLE_EQ(bank.device(0).battery.spec().max_charge_rate.value(),
                   280.0);
  EXPECT_DOUBLE_EQ(bank.device(1).battery.spec().max_charge_rate.value(),
                   120.0);
  EXPECT_THROW(EsdBank::fast_deep_pair(KilowattHours{0.0}, Kilowatts{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      EsdBank::fast_deep_pair(KilowattHours{1.0}, Kilowatts{1.0}, 1.5, 0.5),
      std::invalid_argument);
}

// --- MultiEsdSmoothing --------------------------------------------------------

core::RegionClassifier lenient_classifier() {
  core::RegionClassifierConfig rc;
  rc.rated_power = Kilowatts{800.0};
  rc.thresholds.stable_below = 1e-8;
  rc.thresholds.extreme_above = 1.0;
  return core::RegionClassifier(rc);
}

TEST(MultiEsd, RejectsEmptyBankAndLookahead) {
  MultiEsdSmoothing smoothing;
  EsdBank empty;
  const auto window = test::sawtooth_series(100.0, 500.0, 6, 12);
  EXPECT_THROW((void)smoothing.plan_interval(window, empty),
               std::invalid_argument);
  core::FlexibleSmoothingConfig config;
  config.lookahead_intervals = 2;
  EXPECT_THROW(MultiEsdSmoothing{config}, std::invalid_argument);
}

TEST(MultiEsd, SingleDeviceMatchesFlexibleSmoothing) {
  // With one device the multi-ESD QP is the same problem as the paper's.
  const auto window = test::sawtooth_series(100.0, 500.0, 6, 12);
  EsdBank bank;
  bank.add("only", Battery(make_spec(40.0, 488.0)));
  Battery solo(make_spec(40.0, 488.0));

  MultiEsdSmoothing multi;
  core::FlexibleSmoothing single;
  const MultiEsdPlan multi_plan = multi.plan_interval(window, bank);
  const core::IntervalPlan single_plan = single.plan_interval(window, solo);
  ASSERT_EQ(multi_plan.schedules_kwh.size(), 1u);
  EXPECT_NEAR(multi_plan.variance_after, single_plan.variance_after,
              0.05 * single_plan.variance_before + 1e-6);
}

TEST(MultiEsd, PlanRespectsPerDeviceLimits) {
  const auto window = test::sawtooth_series(0.0, 700.0, 4, 12);
  const EsdBank bank = EsdBank::fast_deep_pair(KilowattHours{60.0},
                                               Kilowatts{400.0}, 0.25, 0.75);
  MultiEsdSmoothing smoothing;
  const MultiEsdPlan plan = smoothing.plan_interval(window, bank);
  ASSERT_EQ(plan.schedules_kwh.size(), 2u);
  const double dt_hours = 5.0 / 60.0;
  for (std::size_t d = 0; d < 2; ++d) {
    const auto& spec = bank.device(d).battery.spec();
    const double rate_cap = spec.max_charge_rate.value() * dt_hours;
    const double discharge_cap =
        std::min(spec.max_discharge_rate.value() * dt_hours,
                 0.9 * spec.capacity.value());
    double cumulative = 0.0;
    const double b0 = bank.device(d).battery.energy().value();
    for (double s : plan.schedules_kwh[d]) {
      EXPECT_GE(s, -rate_cap - 1e-6);
      EXPECT_LE(s, discharge_cap + 1e-6);
      cumulative += s;
      const double soc = b0 - cumulative;
      // ADMM tolerances allow ~1e-4 constraint fuzz on the cumulative rows
      // (the battery enforces the corridor exactly at execution).
      EXPECT_GE(soc, spec.min_energy().value() - 1e-3);
      EXPECT_LE(soc, spec.max_energy().value() + 1e-3);
    }
  }
  // Shared net-charge bound: total charging never exceeds the generation.
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_GE(plan.net_kwh(i), -window[i] * dt_hours - 1e-6);
}

TEST(MultiEsd, FastDeviceAbsorbsTheFastComponent) {
  // High-frequency sawtooth: the QP should route most of the movement
  // through the high-rate device.
  const auto window = test::sawtooth_series(100.0, 600.0, 2, 12);
  const EsdBank bank = EsdBank::fast_deep_pair(KilowattHours{60.0},
                                               Kilowatts{400.0}, 0.2, 0.8);
  MultiEsdSmoothing smoothing;
  const MultiEsdPlan plan = smoothing.plan_interval(window, bank);
  double fast_throughput = 0.0, deep_throughput = 0.0;
  for (double s : plan.schedules_kwh[0]) fast_throughput += std::abs(s);
  for (double s : plan.schedules_kwh[1]) deep_throughput += std::abs(s);
  EXPECT_GT(fast_throughput, deep_throughput);
}

TEST(MultiEsd, SplitBeatsRateLimitedMonolith) {
  // Same total capacity; the monolith has the *deep* device's (low) rate,
  // the portfolio adds a fast shallow device. The portfolio must smooth a
  // spiky interval at least as well.
  const auto window = test::sawtooth_series(0.0, 700.0, 2, 12);
  Battery monolith(make_spec(60.0, 100.0));
  core::FlexibleSmoothing single;
  const auto mono_plan = single.plan_interval(window, monolith);

  EsdBank bank;
  bank.add("fast", Battery(make_spec(12.0, 300.0)));
  bank.add("deep", Battery(make_spec(48.0, 100.0)));
  MultiEsdSmoothing multi;
  const auto split_plan = multi.plan_interval(window, bank);
  EXPECT_LE(split_plan.variance_after, mono_plan.variance_after + 1e-6);
  EXPECT_LT(split_plan.variance_after, 0.9 * mono_plan.variance_after);
}

TEST(MultiEsd, ExecuteConservesEnergy) {
  const auto window = test::sawtooth_series(100.0, 500.0, 6, 12);
  EsdBank bank = EsdBank::fast_deep_pair(KilowattHours{60.0},
                                         Kilowatts{400.0});
  const double before = bank.total_energy().value();
  MultiEsdSmoothing smoothing;
  const auto plan = smoothing.plan_interval(window, bank);
  const auto supply = smoothing.execute_plan(plan, window, bank);
  const double delta = bank.total_energy().value() - before;
  EXPECT_NEAR(supply.total_energy().value(),
              window.total_energy().value() - delta, 1e-6);
  for (std::size_t i = 0; i < supply.size(); ++i) EXPECT_GE(supply[i], 0.0);
}

TEST(MultiEsd, SmoothEndToEnd) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(2.0), util::kFiveMinutes, 44));
  EsdBank bank = EsdBank::fast_deep_pair(KilowattHours{80.0},
                                         Kilowatts{488.0});
  MultiEsdSmoothing smoothing;
  const auto result = smoothing.smooth(supply, lenient_classifier(), bank);
  EXPECT_GT(result.smoothed_intervals, 0u);
  EXPECT_GT(result.mean_variance_reduction, 0.3);
  ASSERT_EQ(result.device_max_rate_kw.size(), 2u);
  // Rates within device limits.
  EXPECT_LE(result.device_max_rate_kw[0],
            bank.device(0).battery.spec().max_discharge_rate.value() + 1e-6);
  EXPECT_LE(result.device_max_rate_kw[1],
            bank.device(1).battery.spec().max_discharge_rate.value() + 1e-6);
  // Both devices participated.
  EXPECT_GT(result.device_throughput_kwh[0], 0.0);
  EXPECT_GT(result.device_throughput_kwh[1], 0.0);
  // SoC corridors hold at the end.
  for (std::size_t d = 0; d < bank.size(); ++d) {
    const auto& b = bank.device(d).battery;
    EXPECT_GE(b.soc_fraction(), b.spec().min_soc_fraction - 1e-9);
    EXPECT_LE(b.soc_fraction(), b.spec().max_soc_fraction + 1e-9);
  }
}

}  // namespace
}  // namespace smoother
