// smoother::fleet: the sharded multi-tenant service layer — arena
// allocation, deterministic shard assignment, the binary wire format, the
// engine's determinism/equivalence/checkpoint contracts, and the
// FleetSim crash/resume witness.
#include "smoother/fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "smoother/battery/battery.hpp"
#include "smoother/core/online.hpp"
#include "smoother/dsim/fleet_sim.hpp"
#include "smoother/fleet/arena.hpp"
#include "smoother/fleet/wire.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/resilience/fault_injector.hpp"
#include "smoother/runtime/thread_pool.hpp"
#include "smoother/solver/solver_pool.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother::fleet {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("smoother_fleet_" + name + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

/// A small, fast fleet config: short warmup so tests reach the planned
/// path in a handful of intervals.
FleetConfig small_fleet(std::size_t shards = 4) {
  FleetConfig config;
  config.shards = shards;
  config.smoother.rated_power = util::Kilowatts{800.0};
  config.smoother.warmup_intervals = 2;
  config.smoother.history_intervals = 12;
  return config;
}

/// Per-tenant wind supply, split-seeded like the engine's tenant_rng.
util::TimeSeries tenant_supply(std::uint64_t seed, std::uint64_t tenant_id,
                               double days = 0.5) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  return power::TurbineCurve::enercon_e48().power_series(model.generate(
      util::days(days), util::kFiveMinutes,
      util::Rng::derive_stream_seed(seed, tenant_id)));
}

/// Feeds `ticks` one-sample-per-tenant batches from the given supplies.
std::size_t feed(FleetEngine& engine,
                 const std::vector<util::TimeSeries>& supply,
                 std::size_t ticks) {
  std::size_t events = 0;
  std::vector<SampleRequest> batch(supply.size());
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    for (std::size_t t = 0; t < supply.size(); ++t) {
      batch[t].tenant_id = static_cast<std::uint64_t>(t + 1);
      batch[t].generation_kw = supply[t][tick];
      batch[t].missing = false;
    }
    events += engine.submit(batch).size();
  }
  return events;
}

// ------------------------------------------------------------------- arena

TEST(Arena, AllocationsAreAlignedAndAccounted) {
  Arena arena(256);
  for (const std::size_t alignment : {1u, 2u, 8u, 16u, 64u}) {
    void* p = arena.allocate(24, alignment);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignment, 0u)
        << "alignment " << alignment;
  }
  EXPECT_GE(arena.bytes_used(), 5u * 24u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(Arena, OversizedRequestGetsItsOwnSlabWithoutBreakingTheBump) {
  Arena arena(128);
  void* small_a = arena.allocate(16, 8);
  void* big = arena.allocate(4096, 8);  // far beyond the slab size
  void* small_b = arena.allocate(16, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 8, 0u);
  // The bump slab stayed live: both small blocks are in the same slab,
  // adjacent up to alignment.
  const auto a = reinterpret_cast<std::uintptr_t>(small_a);
  const auto b = reinterpret_cast<std::uintptr_t>(small_b);
  EXPECT_LT(b - a, 128u);
  EXPECT_GE(arena.slab_count(), 2u);
}

TEST(Arena, CreateRunsConstructorsAndDestroyRunsDestructors) {
  static int live = 0;
  struct Tracked {
    explicit Tracked(int v) : value(v) { ++live; }
    ~Tracked() { --live; }
    int value;
  };
  Arena arena;
  Tracked* a = arena.create<Tracked>(7);
  Tracked* b = arena.create<Tracked>(11);
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(b->value, 11);
  EXPECT_EQ(live, 2);
  Arena::destroy(a);
  Arena::destroy(b);
  EXPECT_EQ(live, 0);
}

TEST(Arena, ResetDropsEverything) {
  Arena arena(128);
  (void)arena.allocate(64, 8);
  (void)arena.allocate(1024, 8);
  arena.reset();
  EXPECT_EQ(arena.slab_count(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

// ---------------------------------------------------------------- sharding

TEST(ShardOf, PureBoundedAndSpread) {
  constexpr std::size_t kShards = 16;
  std::vector<std::size_t> population(kShards, 0);
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    const std::size_t shard = shard_of(id, kShards);
    ASSERT_LT(shard, kShards);
    // Pure: same id, same shard, every time.
    ASSERT_EQ(shard, shard_of(id, kShards));
    ++population[shard];
  }
  // Splitmix64 spreads sequential ids: no shard is empty or hoards the
  // fleet (a fixed-modulo-of-raw-id would put all of 1..10000 in order).
  for (const std::size_t count : population) {
    EXPECT_GT(count, 0u);
    EXPECT_LT(count, 2000u);
  }
}

// -------------------------------------------------------------------- wire

TEST(Wire, RoundTripsEveryMessageType) {
  FrameWriter writer;
  std::string out;
  writer.begin_stream(out);
  writer.append(out, AddTenantRequest{42});
  writer.append(out, SampleRequest{42, 513.25, false});
  writer.append(out, SampleRequest{42, 0.0, true});
  IntervalEvent event;
  event.tenant_id = 42;
  event.interval_index = 9;
  event.region = 2;
  event.fallback = 1;
  event.smoothed = true;
  event.degraded = true;
  event.variance_before = 0.125;
  event.variance_after = 0.0625;
  event.solver_iterations = 17;
  writer.append(out, event);

  FrameCursor cursor(out);
  auto f1 = cursor.next();
  ASSERT_TRUE(f1.has_value());
  ASSERT_EQ(f1->type, MessageType::kAddTenant);
  EXPECT_EQ(decode_add_tenant(f1->body).tenant_id, 42u);

  auto f2 = cursor.next();
  ASSERT_TRUE(f2.has_value());
  ASSERT_EQ(f2->type, MessageType::kSample);
  const SampleRequest sample = decode_sample(f2->body, false);
  EXPECT_EQ(sample.tenant_id, 42u);
  EXPECT_EQ(sample.generation_kw, 513.25);

  auto f3 = cursor.next();
  ASSERT_TRUE(f3.has_value());
  ASSERT_EQ(f3->type, MessageType::kMissingSample);
  EXPECT_TRUE(decode_sample(f3->body, true).missing);

  auto f4 = cursor.next();
  ASSERT_TRUE(f4.has_value());
  ASSERT_EQ(f4->type, MessageType::kIntervalEvent);
  EXPECT_EQ(decode_interval_event(f4->body), event);

  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_FALSE(cursor.torn());
  EXPECT_EQ(cursor.valid_end(), out.size());
}

TEST(Wire, TornTailStopsCleanlyAfterTheLastFullFrame) {
  FrameWriter writer;
  std::string out;
  writer.begin_stream(out);
  writer.append(out, AddTenantRequest{1});
  const std::size_t full = out.size();
  writer.append(out, AddTenantRequest{2});
  // Kill the producer mid-write of the second frame.
  const std::string torn = out.substr(0, out.size() - 3);

  FrameCursor cursor(torn);
  ASSERT_TRUE(cursor.next().has_value());
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_TRUE(cursor.torn());
  EXPECT_EQ(cursor.valid_end(), full);  // the resume point
}

TEST(Wire, BitFlipFailsTheCrc) {
  FrameWriter writer;
  std::string out;
  writer.begin_stream(out);
  writer.append(out, SampleRequest{7, 100.0, false});
  out[out.size() - 1] = static_cast<char>(out[out.size() - 1] ^ 0x01);
  FrameCursor cursor(out);
  try {
    (void)cursor.next();
    FAIL() << "expected a checksum error";
  } catch (const persist::PersistError& e) {
    EXPECT_EQ(e.kind(), persist::ErrorKind::kChecksum);
  }
}

TEST(Wire, HeaderIsValidated) {
  EXPECT_THROW(FrameCursor(std::string_view("XXXX\x01\x00\x00\x00", 8)),
               persist::PersistError);
  EXPECT_THROW(FrameCursor(std::string_view("SMFW", 4)),
               persist::PersistError);
  // Future version: readers must refuse rather than misparse.
  EXPECT_THROW(FrameCursor(std::string_view("SMFW\x63\x00\x00\x00", 8)),
               persist::PersistError);
  // Header-only stream is a clean end.
  FrameWriter writer;
  std::string out;
  writer.begin_stream(out);
  FrameCursor cursor(out);
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_FALSE(cursor.torn());
}

// ------------------------------------------------------------- solver pool

TEST(SolverPool, OneSolverPerKeyAndSetupsStayAtKeyCount) {
  solver::SolverPool pool;
  solver::QpSettings settings;
  solver::QpSolver& a = pool.solver_for(12, settings);
  solver::QpSolver& b = pool.solver_for(12, settings);
  EXPECT_EQ(&a, &b);  // stable shared instance
  solver::QpSolver& c = pool.solver_for(24, settings);
  EXPECT_NE(&a, &c);
  solver::QpSettings other = settings;
  other.rho *= 2.0;  // different KKT matrix => different key
  solver::QpSolver& d = pool.solver_for(12, other);
  EXPECT_NE(&a, &d);
  EXPECT_EQ(pool.size(), 3u);
}

// ------------------------------------------------------------------ engine

TEST(FleetEngine, SingleTenantMatchesAStandaloneSmootherBitForBit) {
  const FleetConfig config = small_fleet();
  const util::TimeSeries supply = tenant_supply(config.seed, 1);
  const std::size_t points =
      config.smoother.flexible_smoothing.points_per_interval;
  const std::size_t ticks = 6 * points;

  FleetEngine engine(config);
  engine.add_tenant(1);

  const battery::BatterySpec spec = battery::spec_for_max_rate(
      config.smoother.rated_power * config.battery_rate_fraction,
      config.smoother.sample_step, config.battery_headroom);
  core::OnlineSmoother standalone(config.smoother, battery::Battery(spec));

  std::vector<SampleRequest> batch(1);
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    batch[0] = SampleRequest{1, supply[tick], false};
    const std::vector<IntervalEvent> events = engine.submit(batch);
    const auto record = standalone.push(supply[tick]);
    ASSERT_EQ(events.size(), record.has_value() ? 1u : 0u) << "tick " << tick;
    if (!record) continue;
    const IntervalEvent& event = events.front();
    EXPECT_EQ(event.tenant_id, 1u);
    EXPECT_EQ(event.interval_index, record->index);
    EXPECT_EQ(event.region, static_cast<std::uint8_t>(record->region));
    EXPECT_EQ(event.smoothed, record->smoothed);
    EXPECT_EQ(event.warmup, record->warmup);
    EXPECT_EQ(event.degraded, record->degraded);
    EXPECT_EQ(event.variance_before, record->variance_before);
    EXPECT_EQ(event.variance_after, record->variance_after);
    EXPECT_EQ(event.solver_iterations, record->solver_iterations);
    // The compacted fleet tenant keeps exactly the standalone tail.
    const core::OnlineSmoother* tenant = engine.find_tenant(1);
    ASSERT_NE(tenant, nullptr);
    const util::TimeSeries& fleet_out = tenant->output();
    const util::TimeSeries& solo_out = standalone.output();
    ASSERT_LE(fleet_out.size(), solo_out.size());
    for (std::size_t i = 0; i < fleet_out.size(); ++i)
      ASSERT_EQ(fleet_out[fleet_out.size() - 1 - i],
                solo_out[solo_out.size() - 1 - i]);
  }
}

TEST(FleetEngine, AdmissionAndRoutingErrorsAreTyped) {
  FleetEngine engine(small_fleet());
  engine.add_tenant(5);
  EXPECT_THROW(engine.add_tenant(5), std::invalid_argument);
  const std::vector<SampleRequest> batch = {{99, 1.0, false}};
  EXPECT_THROW((void)engine.submit(batch), std::invalid_argument);
}

TEST(FleetEngine, SerialAndParallelRunsAreByteIdenticalUnderFaults) {
  constexpr std::size_t kTenants = 24;
  const FleetConfig config = small_fleet(8);
  const std::size_t points =
      config.smoother.flexible_smoothing.points_per_interval;
  const std::size_t ticks = 8 * points;

  std::vector<util::TimeSeries> supply;
  supply.reserve(kTenants);
  for (std::size_t t = 0; t < kTenants; ++t)
    supply.push_back(tenant_supply(config.seed, t + 1));

  resilience::FaultInjectorConfig faults;
  faults.telemetry_nan_rate = 0.02;
  faults.telemetry_dropout_rate = 0.02;
  faults.battery_outage_rate = 0.05;

  // Per-tenant fault streams off the engine's split-seed derivation: both
  // engines build injectors the same way, so the nemesis is part of the
  // determinism contract, not exempt from it.
  const auto run = [&](runtime::ThreadPool* pool) {
    std::vector<resilience::FaultInjector> injectors;
    injectors.reserve(kTenants);
    FleetEngine engine(config, pool);
    for (std::size_t t = 0; t < kTenants; ++t) {
      injectors.emplace_back(
          faults, util::Rng::derive_stream_seed(config.seed, 1000 + t));
      resilience::FaultInjector* injector = &injectors.back();
      core::OnlineSmoother::Hooks hooks;
      hooks.battery_monitor = [injector](std::size_t interval) {
        return injector->battery_available(interval);
      };
      engine.add_tenant(t + 1, std::move(hooks));
    }
    std::vector<SampleRequest> batch(kTenants);
    std::size_t events = 0;
    for (std::size_t tick = 0; tick < ticks; ++tick) {
      for (std::size_t t = 0; t < kTenants; ++t) {
        batch[t].tenant_id = t + 1;
        batch[t].generation_kw =
            injectors[t].corrupt_sample(tick, supply[t][tick]);
        batch[t].missing = false;
      }
      events += engine.submit(batch).size();
    }
    return std::pair<std::uint64_t, std::size_t>(engine.output_digest(),
                                                 events);
  };

  const auto serial = run(nullptr);
  runtime::ThreadPool two(2);
  const auto parallel2 = run(&two);
  runtime::ThreadPool eight(8);
  const auto parallel8 = run(&eight);
  runtime::ThreadPool hardware(0);
  const auto parallel_hw = run(&hardware);

  EXPECT_GT(serial.second, 0u);
  EXPECT_EQ(serial.first, parallel2.first);
  EXPECT_EQ(serial.first, parallel8.first);
  EXPECT_EQ(serial.first, parallel_hw.first);
  EXPECT_EQ(serial.second, parallel8.second);
}

TEST(FleetEngine, FactorizationsAreSharedAcrossTenants) {
  constexpr std::size_t kTenants = 32;
  const FleetConfig config = small_fleet(4);
  const std::size_t points =
      config.smoother.flexible_smoothing.points_per_interval;
  FleetEngine engine(config);
  std::vector<util::TimeSeries> supply;
  for (std::size_t t = 0; t < kTenants; ++t) {
    supply.push_back(tenant_supply(config.seed, t + 1));
    engine.add_tenant(t + 1);
  }
  (void)feed(engine, supply, 8 * points);
  const FleetStats stats = engine.stats();
  EXPECT_EQ(stats.tenants, kTenants);
  EXPECT_GT(stats.plans, 0u);
  // Same-shaped fleet: one key per shard pool, so setups stay at the
  // shard count — the whole point of batched planning.
  EXPECT_GT(stats.batched_factorizations, 0u);
  EXPECT_LE(stats.batched_factorizations, config.shards);
  EXPECT_LT(stats.batched_factorizations, kTenants);
  EXPECT_GE(stats.min_shard_tenants, 1u);
  EXPECT_GT(stats.arena_bytes, 0u);
}

TEST(FleetEngine, BatchedSolvesMatchTheScalarPathByteForByte) {
  // FleetConfig::batched_solves routes same-shaped parked intervals
  // through one BatchSolver SoA solve instead of per-tenant scalar
  // solves. On non-reassociating SIMD tiers (the default build) that is
  // bit-identical per lane, so the full output digest must not move.
  constexpr std::size_t kTenants = 32;
  FleetConfig batched_config = small_fleet(4);
  batched_config.batched_solves = true;
  FleetConfig scalar_config = batched_config;
  scalar_config.batched_solves = false;
  const std::size_t points =
      batched_config.smoother.flexible_smoothing.points_per_interval;

  std::vector<util::TimeSeries> supply;
  for (std::size_t t = 0; t < kTenants; ++t)
    supply.push_back(tenant_supply(batched_config.seed, t + 1));

  FleetEngine batched(batched_config);
  FleetEngine scalar(scalar_config);
  for (std::size_t t = 0; t < kTenants; ++t) {
    batched.add_tenant(t + 1);
    scalar.add_tenant(t + 1);
  }
  const std::size_t batched_events = feed(batched, supply, 8 * points);
  const std::size_t scalar_events = feed(scalar, supply, 8 * points);

  EXPECT_EQ(batched_events, scalar_events);
  if (!solver::simd::kReassociates)
    EXPECT_EQ(batched.output_digest(), scalar.output_digest());

  // The batched engine actually batched: SoA solves ran, and with 32
  // same-shaped tenants over 4 shards the mean occupancy is well above one
  // lane per solve. The scalar engine never touched the batched path.
  const FleetStats on = batched.stats();
  const FleetStats off = scalar.stats();
  EXPECT_GT(on.batched_solves, 0u);
  EXPECT_GT(on.batched_lanes, on.batched_solves);
  EXPECT_GE(on.batched_lanes, kTenants);  // at least one lane per tenant
  EXPECT_EQ(off.batched_solves, 0u);
  EXPECT_EQ(off.batched_lanes, 0u);
  EXPECT_EQ(on.plans, off.plans);
}

TEST(FleetEngine, BatchedSolvesStayByteIdenticalAcrossThreadPools) {
  // The serial-vs-parallel witness specifically on the batched path: the
  // flush order inside a shard is deterministic (submission order), so a
  // pool must not move the digest even while batching is grouping solves.
  constexpr std::size_t kTenants = 24;
  const FleetConfig config = small_fleet(4);  // batched_solves defaults on
  const std::size_t points =
      config.smoother.flexible_smoothing.points_per_interval;
  std::vector<util::TimeSeries> supply;
  for (std::size_t t = 0; t < kTenants; ++t)
    supply.push_back(tenant_supply(config.seed, t + 1));

  const auto run = [&](runtime::ThreadPool* pool) {
    FleetEngine engine(config, pool);
    for (std::size_t t = 0; t < kTenants; ++t) engine.add_tenant(t + 1);
    (void)feed(engine, supply, 6 * points);
    return engine.output_digest();
  };

  const std::uint64_t serial = run(nullptr);
  runtime::ThreadPool pool(3);
  EXPECT_EQ(run(&pool), serial);
}

TEST(FleetEngine, CheckpointRestoreContinuesByteIdentically) {
  constexpr std::size_t kTenants = 12;
  const FleetConfig config = small_fleet(4);
  const std::size_t points =
      config.smoother.flexible_smoothing.points_per_interval;
  const std::size_t half = 5 * points + 7;  // mid-interval checkpoint
  const std::size_t ticks = 10 * points;

  std::vector<util::TimeSeries> supply;
  for (std::size_t t = 0; t < kTenants; ++t)
    supply.push_back(tenant_supply(config.seed, t + 1));

  FleetEngine original(config);
  for (std::size_t t = 0; t < kTenants; ++t) original.add_tenant(t + 1);
  std::vector<SampleRequest> batch(kTenants);
  const auto feed_range = [&](FleetEngine& engine, std::size_t from,
                              std::size_t to) {
    for (std::size_t tick = from; tick < to; ++tick) {
      for (std::size_t t = 0; t < kTenants; ++t)
        batch[t] = SampleRequest{t + 1, supply[t][tick], false};
      (void)engine.submit(batch);
    }
  };
  feed_range(original, 0, half);

  // Through the real persistence machinery, not just in-memory bytes.
  persist::PersistConfig pconfig;
  pconfig.directory = test_dir("checkpoint");
  {
    persist::PersistEngine wal(pconfig);
    wal.append(original.encode_checkpoint());
  }
  persist::PersistEngine wal(pconfig);
  const persist::RecoveredState recovered = wal.recover();
  ASSERT_TRUE(recovered.found);

  FleetEngine restored(config);
  restored.restore_checkpoint(recovered.state);
  EXPECT_EQ(restored.tenant_count(), kTenants);
  EXPECT_EQ(restored.output_digest(), original.output_digest());

  feed_range(original, half, ticks);
  feed_range(restored, half, ticks);
  EXPECT_EQ(restored.output_digest(), original.output_digest());
}

TEST(FleetEngine, RestoreIntoAForeignConfigFailsLoudly) {
  const FleetConfig config = small_fleet();
  const std::size_t points =
      config.smoother.flexible_smoothing.points_per_interval;
  FleetEngine engine(config);
  engine.add_tenant(1);
  std::vector<util::TimeSeries> supply = {tenant_supply(config.seed, 1)};
  (void)feed(engine, supply, 6 * points);  // well past calibration
  const std::string checkpoint = engine.encode_checkpoint();

  FleetConfig foreign = small_fleet();
  // A clearly different quantile of the variance history (value_at is a
  // step function; nearby levels can collide on a short history).
  foreign.smoother.stable_cdf = 0.75;
  FleetEngine other(foreign);
  EXPECT_THROW(other.restore_checkpoint(checkpoint),
               core::StateMismatchError);
}

TEST(FleetEngine, WireRequestsMatchTheDirectSubmitPath) {
  const FleetConfig config = small_fleet();
  const std::size_t points =
      config.smoother.flexible_smoothing.points_per_interval;
  constexpr std::size_t kTenants = 3;
  std::vector<util::TimeSeries> supply;
  for (std::size_t t = 0; t < kTenants; ++t)
    supply.push_back(tenant_supply(config.seed, t + 1));

  // Wire path: admissions and one interval of samples in a single stream.
  FrameWriter writer;
  std::string requests;
  writer.begin_stream(requests);
  for (std::size_t t = 0; t < kTenants; ++t)
    writer.append(requests, AddTenantRequest{t + 1});
  for (std::size_t tick = 0; tick < points; ++tick)
    for (std::size_t t = 0; t < kTenants; ++t)
      writer.append(requests, SampleRequest{t + 1, supply[t][tick], false});

  FleetEngine wired(config);
  std::string events_out;
  const WireApplyResult applied = wired.apply_wire(requests, events_out);
  EXPECT_FALSE(applied.torn);
  EXPECT_EQ(applied.frames_applied, kTenants + kTenants * points);
  EXPECT_EQ(applied.events, kTenants);  // one completed interval each

  // Direct path, same requests.
  FleetEngine direct(config);
  for (std::size_t t = 0; t < kTenants; ++t) direct.add_tenant(t + 1);
  (void)feed(direct, supply, points);
  EXPECT_EQ(wired.output_digest(), direct.output_digest());

  // The emitted event stream decodes and names every tenant once.
  FrameCursor cursor(events_out);
  std::size_t decoded = 0;
  while (auto frame = cursor.next()) {
    ASSERT_EQ(frame->type, MessageType::kIntervalEvent);
    const IntervalEvent event = decode_interval_event(frame->body);
    EXPECT_GE(event.tenant_id, 1u);
    EXPECT_LE(event.tenant_id, kTenants);
    ++decoded;
  }
  EXPECT_FALSE(cursor.torn());
  EXPECT_EQ(decoded, kTenants);

  // Idempotent re-admission over the wire: a duplicate kAddTenant frame is
  // a no-op, not an error (retried streams must be safe to replay).
  std::string readmit;
  writer.begin_stream(readmit);
  writer.append(readmit, AddTenantRequest{1});
  std::string ignored;
  EXPECT_EQ(wired.apply_wire(readmit, ignored).frames_applied, 1u);
  EXPECT_EQ(wired.tenant_count(), kTenants);
}

TEST(FleetEngine, TornWireStreamAppliesThePrefix) {
  const FleetConfig config = small_fleet();
  FleetEngine engine(config);
  FrameWriter writer;
  std::string requests;
  writer.begin_stream(requests);
  writer.append(requests, AddTenantRequest{1});
  writer.append(requests, AddTenantRequest{2});
  writer.append(requests, SampleRequest{1, 100.0, false});
  const std::string torn = requests.substr(0, requests.size() - 5);
  std::string events_out;
  const WireApplyResult applied = engine.apply_wire(torn, events_out);
  EXPECT_TRUE(applied.torn);
  EXPECT_EQ(applied.frames_applied, 2u);  // both admissions, no sample
  EXPECT_EQ(engine.tenant_count(), 2u);
}

// ---------------------------------------------------------------- FleetSim

dsim::FleetSimConfig small_sim() {
  dsim::FleetSimConfig config;
  config.tenants = 8;
  config.shards = 4;
  config.duration = util::days(0.5);
  config.audit_tenants = 2;
  config.faults.telemetry_nan_rate = 0.01;
  config.faults.telemetry_dropout_rate = 0.01;
  config.faults.battery_outage_rate = 0.02;
  return config;
}

TEST(FleetSim, DeterministicAcrossPoolsWithCleanAudit) {
  const dsim::FleetSimConfig config = small_sim();
  const dsim::FleetSimResult serial = dsim::FleetSim(config, 42).run();
  EXPECT_TRUE(serial.ok());
  EXPECT_EQ(serial.audit_mismatches, 0u);
  EXPECT_GT(serial.interval_events, 0u);

  runtime::ThreadPool pool(4);
  const dsim::FleetSimResult parallel =
      dsim::FleetSim(config, 42).run(&pool);
  EXPECT_EQ(parallel.output_digest, serial.output_digest);
  EXPECT_EQ(parallel.event_trace, serial.event_trace);
  EXPECT_EQ(parallel.interval_events, serial.interval_events);
}

TEST(FleetSim, CrashAndResumeMatchesTheUninterruptedRun) {
  const dsim::FleetSimConfig config = small_sim();
  constexpr std::uint64_t kSeed = 77;
  const dsim::FleetSimResult whole = dsim::FleetSim(config, kSeed).run();
  ASSERT_TRUE(whole.ok());

  // Crash: checkpoint every tick, kill after 40 events.
  persist::PersistConfig pconfig;
  pconfig.directory = test_dir("fleet_crash");
  pconfig.snapshot_every_records = 8;
  dsim::FleetSimResult crashed;
  {
    persist::PersistEngine wal(pconfig);
    dsim::FleetSimControls controls;
    controls.engine = &wal;
    controls.halt_after_events = 40;
    crashed = dsim::FleetSim(config, kSeed).run(nullptr, controls);
    EXPECT_TRUE(crashed.halted);
    EXPECT_LT(crashed.ticks, whole.ticks);
  }

  // Recover the newest fleet checkpoint and replay the remaining ticks.
  persist::PersistEngine wal(pconfig);
  const persist::RecoveredState recovered = wal.recover();
  ASSERT_TRUE(recovered.found);
  dsim::FleetSimControls resume;
  resume.resume_state = &recovered.state;
  const dsim::FleetSimResult resumed =
      dsim::FleetSim(config, kSeed).run(nullptr, resume);
  EXPECT_FALSE(resumed.halted);
  EXPECT_EQ(resumed.ticks + crashed.ticks, whole.ticks);
  EXPECT_EQ(resumed.output_digest, whole.output_digest);
}

}  // namespace
}  // namespace smoother::fleet
