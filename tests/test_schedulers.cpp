#include "smoother/sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::sched {
namespace {

using util::Kilowatts;
using util::Minutes;

Job make_job(std::uint64_t id, double arrival, double runtime, double deadline,
             std::size_t servers = 1, double power = 10.0) {
  Job job;
  job.id = id;
  job.arrival = Minutes{arrival};
  job.runtime = Minutes{runtime};
  job.deadline = Minutes{deadline};
  job.servers = servers;
  job.cpu_utilization = 0.9;
  job.power = Kilowatts{power};
  return job;
}

ScheduleRequest base_request(std::size_t slots = 60,
                             std::size_t servers = 10) {
  ScheduleRequest request;
  request.renewable = test::constant_series(50.0, slots, util::kOneMinute);
  request.total_servers = servers;
  return request;
}

TEST(Job, SlackAndHelpers) {
  const Job job = make_job(1, 10.0, 30.0, 100.0);
  EXPECT_DOUBLE_EQ(job.slack_at(Minutes{10.0}).value(), 60.0);
  EXPECT_TRUE(job.deferrable_at(Minutes{10.0}));
  EXPECT_FALSE(job.deferrable_at(Minutes{70.0}));
  EXPECT_DOUBLE_EQ(job.latest_start().value(), 70.0);
  EXPECT_DOUBLE_EQ(job.total_energy().value(), 5.0);  // 10 kW * 0.5 h
}

TEST(Job, Validation) {
  Job job = make_job(1, 0.0, 10.0, 100.0);
  EXPECT_NO_THROW(job.validate());
  job.runtime = Minutes{0.0};
  EXPECT_THROW(job.validate(), std::invalid_argument);
  job = make_job(1, 0.0, 10.0, 100.0);
  job.servers = 0;
  EXPECT_THROW(job.validate(), std::invalid_argument);
  job = make_job(1, 0.0, 10.0, 100.0);
  job.cpu_utilization = 1.5;
  EXPECT_THROW(job.validate(), std::invalid_argument);
  job = make_job(1, -5.0, 10.0, 100.0);
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(ScheduleRequest, Validation) {
  ScheduleRequest request = base_request();
  request.jobs.push_back(make_job(1, 0.0, 5.0, 50.0));
  EXPECT_NO_THROW(request.validate());
  request.jobs.push_back(make_job(2, 0.0, 5.0, 50.0, 11));  // > cluster
  EXPECT_THROW(request.validate(), std::invalid_argument);
  request.jobs.clear();
  request.renewable = util::TimeSeries{};
  EXPECT_THROW(request.validate(), std::invalid_argument);
}

TEST(ImmediateScheduler, StartsAtArrival) {
  ScheduleRequest request = base_request();
  request.jobs = {make_job(1, 0.0, 10.0, 100.0), make_job(2, 7.0, 5.0, 100.0)};
  const auto result = ImmediateScheduler().schedule(request);
  ASSERT_EQ(result.outcome.placements.size(), 2u);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 0.0);
  EXPECT_DOUBLE_EQ(result.outcome.placements[1].start.value(), 7.0);
  EXPECT_EQ(result.outcome.deadline_misses, 0u);
}

TEST(ImmediateScheduler, QueuesWhenClusterFull) {
  ScheduleRequest request = base_request(60, 2);
  // Two jobs fill the cluster for 10 minutes; the third waits.
  request.jobs = {make_job(1, 0.0, 10.0, 100.0, 1),
                  make_job(2, 0.0, 10.0, 100.0, 1),
                  make_job(3, 0.0, 10.0, 100.0, 2)};
  const auto result = ImmediateScheduler().schedule(request);
  EXPECT_DOUBLE_EQ(result.outcome.placements[2].start.value(), 10.0);
}

TEST(ImmediateScheduler, FractionalArrivalRoundsUpToNextSlot) {
  ScheduleRequest request = base_request();
  request.jobs = {make_job(1, 2.5, 5.0, 100.0)};
  const auto result = ImmediateScheduler().schedule(request);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 3.0);
}

TEST(EdfScheduler, PrioritizesTightDeadlines) {
  ScheduleRequest request = base_request(60, 1);
  // Both arrive at 0 on a 1-server cluster; EDF must run the tight one
  // first even though it was listed second.
  request.jobs = {make_job(1, 0.0, 10.0, 1000.0), make_job(2, 0.0, 10.0, 20.0)};
  const auto result = EdfScheduler().schedule(request);
  const auto& placements = result.outcome.placements;
  ASSERT_EQ(placements.size(), 2u);
  // Placements follow scheduling order: job 2 first.
  EXPECT_EQ(placements[0].job_id, 2u);
  EXPECT_DOUBLE_EQ(placements[0].start.value(), 0.0);
  EXPECT_EQ(placements[1].job_id, 1u);
  EXPECT_DOUBLE_EQ(placements[1].start.value(), 10.0);
  EXPECT_EQ(result.outcome.deadline_misses, 0u);
}

TEST(ImmediateVsEdf, EdfMissesFewerDeadlinesUnderContention) {
  ScheduleRequest request = base_request(120, 1);
  // FIFO order: loose deadline first starves the tight one.
  request.jobs = {make_job(1, 0.0, 30.0, 500.0), make_job(2, 1.0, 10.0, 15.0)};
  const auto fifo = ImmediateScheduler().schedule(request);
  const auto edf = EdfScheduler().schedule(request);
  EXPECT_GT(fifo.outcome.deadline_misses, edf.outcome.deadline_misses);
}

TEST(FinalizeSchedule, RenewableAccounting) {
  ScheduleRequest request = base_request(10);
  request.jobs = {make_job(1, 0.0, 10.0, 100.0, 1, 30.0)};
  const auto result = ImmediateScheduler().schedule(request);
  // Demand 30 kW against 50 kW renewable for 10 minutes.
  EXPECT_NEAR(result.outcome.total_energy.value(), 30.0 * 10.0 / 60.0, 1e-9);
  EXPECT_NEAR(result.outcome.renewable_energy_used.value(), 30.0 * 10.0 / 60.0,
              1e-9);
  for (std::size_t i = 0; i < result.residual_renewable.size(); ++i)
    EXPECT_NEAR(result.residual_renewable[i], 20.0, 1e-9);
}

TEST(FinalizeSchedule, BaselineConsumesRenewableFirst) {
  ScheduleRequest request = base_request(10);
  request.baseline_power = Kilowatts{45.0};
  request.jobs = {make_job(1, 0.0, 10.0, 100.0, 1, 30.0)};
  const auto result = ImmediateScheduler().schedule(request);
  // Only 5 kW of renewable is left for the workload.
  EXPECT_NEAR(result.outcome.renewable_energy_used.value(), 5.0 * 10.0 / 60.0,
              1e-9);
  for (std::size_t i = 0; i < result.residual_renewable.size(); ++i)
    EXPECT_NEAR(result.residual_renewable[i], 0.0, 1e-9);
}

TEST(FinalizeSchedule, MissedJobCounted) {
  ScheduleRequest request = base_request(10, 1);
  // Second job cannot start before its deadline passes.
  request.jobs = {make_job(1, 0.0, 10.0, 100.0), make_job(2, 0.0, 5.0, 8.0)};
  const auto result = ImmediateScheduler().schedule(request);
  EXPECT_EQ(result.outcome.deadline_misses, 1u);
}

TEST(ScheduleOutcome, RenewableUtilizationHelper) {
  ScheduleOutcome outcome;
  outcome.renewable_energy_used = util::KilowattHours{25.0};
  EXPECT_DOUBLE_EQ(outcome.renewable_utilization(util::KilowattHours{100.0}),
                   0.25);
  EXPECT_DOUBLE_EQ(outcome.renewable_utilization(util::KilowattHours{0.0}),
                   0.0);
}

}  // namespace
}  // namespace smoother::sched
