#include "smoother/core/online.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother::core {
namespace {

using util::Kilowatts;

OnlineSmootherConfig small_config() {
  OnlineSmootherConfig config;
  config.rated_power = Kilowatts{800.0};
  config.warmup_intervals = 4;
  config.history_intervals = 48;
  return config;
}

battery::Battery small_battery() {
  auto spec = battery::spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes,
                                         2.0);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return battery::Battery(spec);
}

util::TimeSeries wind_day(std::uint64_t seed, double days = 2.0) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  return power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(days), util::kFiveMinutes, seed));
}

TEST(OnlineSmootherConfig, Validation) {
  OnlineSmootherConfig config = small_config();
  EXPECT_NO_THROW(config.validate());
  config.warmup_intervals = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.history_intervals = 2;  // below warmup
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.flexible_smoothing.lookahead_intervals = 2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.stable_cdf = 0.99;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(OnlineSmootherHooks, DeprecatedSettersNeverClobberOtherFields) {
  // Precedence contract: each deprecated setter writes only its own hook
  // field; everything previously installed — including through
  // set_hooks() — must survive it. Last writer wins per field.
  obs::TracingIntervalObserver observer(nullptr, nullptr);
  OnlineSmoother smoother(small_config(), small_battery());

  OnlineSmoother::Hooks hooks;
  hooks.forecast_oracle = [](std::size_t) { return std::vector<double>(12); };
  hooks.solver_settings = [](std::size_t) {
    return std::optional<solver::QpSettings>{};
  };
  hooks.observer = &observer;
  smoother.set_hooks(std::move(hooks));

  smoother.set_battery_monitor([](std::size_t) { return true; });
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().forecast_oracle));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().solver_settings));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_EQ(smoother.hooks().observer, &observer);

  smoother.set_forecast_oracle(nullptr);  // clears only its own field
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().forecast_oracle));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().solver_settings));
  EXPECT_EQ(smoother.hooks().observer, &observer);

  smoother.set_solver_settings_hook([](std::size_t) {
    return std::optional<solver::QpSettings>{solver::QpSettings{}};
  });
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_EQ(smoother.hooks().observer, &observer);
}

TEST(OnlineSmootherHooks, SetHooksReplacesWholesale) {
  // set_hooks() is documented as wholesale replacement: fields previously
  // installed through the deprecated setters do not survive a set_hooks()
  // with defaults.
  OnlineSmoother smoother(small_config(), small_battery());
  smoother.set_battery_monitor([](std::size_t) { return false; });
  smoother.set_forecast_oracle(
      [](std::size_t) { return std::vector<double>(12); });
  ASSERT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));

  smoother.set_hooks({});
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().forecast_oracle));
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().solver_settings));
  EXPECT_EQ(smoother.hooks().observer, nullptr);
}

TEST(OnlineSmoother, EmitsOneRecordPerCompletedInterval) {
  OnlineSmoother smoother(small_config(), small_battery());
  int records = 0;
  for (int i = 0; i < 12 * 5; ++i) {
    const auto record = smoother.push(300.0);
    if (record) {
      ++records;
      EXPECT_EQ(record->index, static_cast<std::size_t>(records - 1));
    }
  }
  EXPECT_EQ(records, 5);
  EXPECT_EQ(smoother.output().size(), 60u);
  EXPECT_EQ(smoother.records().size(), 5u);
}

TEST(OnlineSmoother, WarmupPassesThroughUnsmoothed) {
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(5);
  std::size_t warmup_records = 0;
  for (std::size_t i = 0; i < 4 * 12; ++i) {
    const auto record = smoother.push(supply[i]);
    if (record) {
      EXPECT_TRUE(record->warmup);
      EXPECT_FALSE(record->smoothed);
      ++warmup_records;
    }
  }
  EXPECT_EQ(warmup_records, 4u);
  // Warmup output is bit-identical to the input.
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    EXPECT_DOUBLE_EQ(smoother.output()[i], supply[i]);
  EXPECT_TRUE(smoother.calibrated());  // 4 intervals = warmup complete
}

double mean_reduction(const OnlineSmoother& smoother) {
  std::size_t smoothed = 0;
  double reduction = 0.0;
  for (const auto& record : smoother.records()) {
    if (!record.smoothed || record.variance_before <= 0.0) continue;
    ++smoothed;
    reduction += (record.variance_before - record.variance_after) /
                 record.variance_before;
  }
  return smoothed == 0 ? 0.0 : reduction / static_cast<double>(smoothed);
}

TEST(OnlineSmoother, SmoothsAfterCalibrationWithOracle) {
  // With a real predictor (here: a perfect oracle, the paper's effective
  // assumption) the online pipeline smooths like the batch one.
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(21, 3.0);
  smoother.set_forecast_oracle([&](std::size_t interval) {
    std::vector<double> predicted(12);
    for (std::size_t i = 0; i < 12; ++i)
      predicted[i] = supply[interval * 12 + i];
    return predicted;
  });
  for (std::size_t i = 0; i < supply.size(); ++i) smoother.push(supply[i]);

  EXPECT_TRUE(smoother.calibrated());
  std::size_t smoothed = 0;
  for (const auto& record : smoother.records())
    if (record.smoothed) ++smoothed;
  ASSERT_GT(smoothed, 5u);
  EXPECT_GT(mean_reduction(smoother), 0.4);
  // Thresholds were learned (non-default).
  EXPECT_NE(smoother.thresholds().stable_below,
            RegionThresholds{}.stable_below);
}

TEST(OnlineSmoother, PersistenceForecastIsWeakerThanOracle) {
  // Documented honestly: persistence on 5-minute wind is a poor predictor;
  // the oracle must beat it, and persistence must not blow the corridor.
  const auto supply = wind_day(21, 3.0);

  OnlineSmoother persistence(small_config(), small_battery());
  for (std::size_t i = 0; i < supply.size(); ++i) persistence.push(supply[i]);

  OnlineSmoother oracle(small_config(), small_battery());
  oracle.set_forecast_oracle([&](std::size_t interval) {
    std::vector<double> predicted(12);
    for (std::size_t i = 0; i < 12; ++i)
      predicted[i] = supply[interval * 12 + i];
    return predicted;
  });
  for (std::size_t i = 0; i < supply.size(); ++i) oracle.push(supply[i]);

  EXPECT_GT(mean_reduction(oracle), mean_reduction(persistence));
  EXPECT_GE(persistence.battery().soc_fraction(), 0.10 - 1e-9);
}

TEST(OnlineSmoother, BadOracleLengthFallsBackInsteadOfThrowing) {
  // A misbehaving forecast service must not kill the stream: the interval
  // falls back (recorded on the record) and the pipeline stays aligned.
  OnlineSmoother smoother(small_config(), small_battery());
  smoother.set_forecast_oracle(
      [](std::size_t) { return std::vector<double>(5, 1.0); });
  const auto supply = wind_day(3, 2.0);
  EXPECT_NO_THROW({
    for (std::size_t i = 0; i < supply.size(); ++i) smoother.push(supply[i]);
  });
  EXPECT_EQ(smoother.records().size(), supply.size() / 12);
  EXPECT_EQ(smoother.output().size(), supply.size());
  std::size_t fallbacks = 0;
  for (const auto& record : smoother.records())
    if (record.fallback == resilience::FallbackReason::kOracleFailed)
      ++fallbacks;
  EXPECT_GT(fallbacks, 0u);
  EXPECT_EQ(smoother.health().fallbacks_of(
                resilience::FallbackReason::kOracleFailed),
            fallbacks);
}

TEST(OnlineSmoother, ThrowingOracleKeepsStreamAligned) {
  // Regression for the exception-safety bug: an oracle failure mid-stream
  // used to leave the open interval's samples behind, misaligning every
  // subsequent interval. Now intervals commit atomically; once the oracle
  // heals, the smoother recovers and plans again.
  auto config = small_config();
  config.recovery_intervals = 2;
  OnlineSmoother smoother(config, small_battery());
  const auto supply = wind_day(21, 3.0);
  std::size_t calls = 0;
  smoother.set_forecast_oracle([&](std::size_t interval) {
    if (++calls <= 2) throw std::runtime_error("forecast service down");
    std::vector<double> predicted(12);
    for (std::size_t i = 0; i < 12; ++i)
      predicted[i] = supply[interval * 12 + i];
    return predicted;
  });
  for (std::size_t i = 0; i < supply.size(); ++i) {
    smoother.push(supply[i]);
    // Alignment invariant: output advances in whole intervals.
    EXPECT_EQ(smoother.output().size(), ((i + 1) / 12) * 12);
  }
  EXPECT_EQ(smoother.records().size(), supply.size() / 12);
  std::size_t oracle_fallbacks = 0, planned = 0;
  for (const auto& record : smoother.records()) {
    if (record.fallback == resilience::FallbackReason::kOracleFailed)
      ++oracle_fallbacks;
    if (record.smoothed &&
        record.fallback == resilience::FallbackReason::kNone)
      ++planned;
  }
  EXPECT_EQ(oracle_fallbacks, 2u);
  EXPECT_GT(planned, 0u);  // QP path resumed after recovery
  EXPECT_FALSE(smoother.degraded());
  // Each throw happens in normal mode (the oracle is only consulted
  // there), so two throws mean two degraded episodes, each recovered.
  EXPECT_EQ(smoother.health().degraded_entries, 2u);
  EXPECT_EQ(smoother.health().recoveries, 2u);
}

TEST(OnlineSmoother, OutputTrailsInputByAtMostOneInterval) {
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(9);
  for (std::size_t i = 0; i < supply.size(); ++i) {
    smoother.push(supply[i]);
    const std::size_t completed = (i + 1) / 12;
    EXPECT_EQ(smoother.output().size(), completed * 12);
  }
}

TEST(OnlineSmoother, BatteryCorridorHolds) {
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(33, 4.0);
  for (std::size_t i = 0; i < supply.size(); ++i) smoother.push(supply[i]);
  EXPECT_GE(smoother.battery().soc_fraction(), 0.10 - 1e-9);
  EXPECT_LE(smoother.battery().soc_fraction(), 1.0 + 1e-9);
}

TEST(OnlineSmoother, NegativeInputClampedToZero) {
  OnlineSmoother smoother(small_config(), small_battery());
  for (int i = 0; i < 12; ++i) smoother.push(-50.0);
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    EXPECT_DOUBLE_EQ(smoother.output()[i], 0.0);
}

TEST(OnlineSmoother, RecoveryAfterExactlyNHealthyIntervals) {
  // Boundary pin for the recovery hysteresis: with recovery_intervals = 3,
  // the smoother must still be degraded after 2 healthy intervals and leave
  // degraded mode at the end of the 3rd — not the 2nd, not the 4th.
  auto config = small_config();
  config.recovery_intervals = 3;
  OnlineSmoother smoother(config, small_battery());
  const std::size_t fault_interval = 5;
  smoother.set_battery_monitor(
      [fault_interval](std::size_t interval) {
        return interval != fault_interval;
      });

  auto complete_interval = [&] {
    std::optional<OnlineIntervalRecord> record;
    for (int i = 0; i < 12; ++i) record = smoother.push(300.0);
    return *record;
  };

  for (std::size_t k = 0; k < fault_interval; ++k) complete_interval();
  ASSERT_FALSE(smoother.degraded());

  const auto faulted = complete_interval();
  EXPECT_EQ(faulted.fallback, resilience::FallbackReason::kBatteryFaulted);
  EXPECT_TRUE(smoother.degraded());

  // Healthy intervals 1 and 2: still inside the hysteresis window, and
  // their records carry the degraded flag.
  EXPECT_TRUE(complete_interval().degraded);
  EXPECT_TRUE(smoother.degraded());
  EXPECT_TRUE(complete_interval().degraded);
  EXPECT_TRUE(smoother.degraded());

  // Healthy interval 3: processed while degraded, but recovery fires at
  // its end.
  EXPECT_TRUE(complete_interval().degraded);
  EXPECT_FALSE(smoother.degraded());
  EXPECT_FALSE(complete_interval().degraded);

  EXPECT_EQ(smoother.health().degraded_entries, 1u);
  EXPECT_EQ(smoother.health().recoveries, 1u);
}

TEST(OnlineSmoother, FaultOnTheRecoveryIntervalRestartsTheStreak) {
  // A fault landing on the interval that would have completed the healthy
  // streak zeroes it: the smoother stays degraded (one episode, no second
  // degraded_entries tick) and needs a full fresh streak to recover.
  auto config = small_config();
  config.recovery_intervals = 3;
  OnlineSmoother smoother(config, small_battery());
  const std::size_t first_fault = 5;
  // 5 faults, then 6-7 healthy, then 8 faults again — exactly the interval
  // whose healthy completion would have triggered recovery.
  smoother.set_battery_monitor([first_fault](std::size_t interval) {
    return interval != first_fault && interval != first_fault + 3;
  });

  auto complete_interval = [&] {
    std::optional<OnlineIntervalRecord> record;
    for (int i = 0; i < 12; ++i) record = smoother.push(300.0);
    return *record;
  };

  for (std::size_t k = 0; k < first_fault; ++k) complete_interval();
  const auto faulted = complete_interval();
  EXPECT_EQ(faulted.fallback, resilience::FallbackReason::kBatteryFaulted);
  complete_interval();  // healthy 1
  complete_interval();  // healthy 2
  const auto refaulted = complete_interval();  // would-be recovery: fault
  EXPECT_EQ(refaulted.fallback, resilience::FallbackReason::kBatteryFaulted);
  EXPECT_TRUE(smoother.degraded());
  EXPECT_EQ(smoother.health().recoveries, 0u);

  // A fresh full streak is required now.
  complete_interval();
  complete_interval();
  EXPECT_TRUE(smoother.degraded());
  complete_interval();
  EXPECT_FALSE(smoother.degraded());
  EXPECT_EQ(smoother.health().degraded_entries, 1u);  // one episode
  EXPECT_EQ(smoother.health().recoveries, 1u);
}

TEST(OnlineSmoother, FirstPlanAfterRecoveryColdStarts) {
  // The cached QP duals describe the pre-fault battery trajectory; the
  // recovery contract is that the first post-recovery plan cold-starts
  // (no warm_starts tick for its solve) and later plans warm-start again.
  // Pinned through the public solver_cache_stats() counters.
  auto config = small_config();
  config.recovery_intervals = 2;

  // Pass 1 (clean): find the planned intervals so the fault can be aimed
  // at the middle of the planned region deterministically.
  const auto supply = wind_day(33, 4.0);
  const auto oracle = [&supply](std::size_t interval) {
    std::vector<double> predicted(12);
    for (std::size_t i = 0; i < 12; ++i)
      predicted[i] = supply[interval * 12 + i];
    return predicted;
  };
  std::vector<std::size_t> planned;
  {
    OnlineSmoother probe(config, small_battery());
    probe.set_forecast_oracle(oracle);
    for (std::size_t i = 0; i < supply.size(); ++i) probe.push(supply[i]);
    for (const auto& record : probe.records())
      if (record.smoothed &&
          record.fallback == resilience::FallbackReason::kNone &&
          record.solver_iterations > 0)
        planned.push_back(record.index);
  }
  ASSERT_GE(planned.size(), 4u);
  const std::size_t fault_interval = planned[planned.size() / 2];

  // Pass 2: same stream, battery outage on one mid-run planned interval.
  OnlineSmoother smoother(config, small_battery());
  smoother.set_forecast_oracle(oracle);
  smoother.set_battery_monitor([fault_interval](std::size_t interval) {
    return interval != fault_interval;
  });

  // Per-interval deltas of the cache counters, via interval-by-interval
  // stepping.
  struct PlanDelta {
    std::size_t index;
    std::size_t solves;
    std::size_t warm_starts;
  };
  std::vector<PlanDelta> deltas;
  SolverCacheStats last = smoother.solver_cache_stats();
  for (std::size_t i = 0; i < supply.size(); ++i) {
    const auto record = smoother.push(supply[i]);
    if (!record) continue;
    const SolverCacheStats now = smoother.solver_cache_stats();
    if (now.solves > last.solves)
      deltas.push_back({record->index, now.solves - last.solves,
                        now.warm_starts - last.warm_starts});
    last = now;
  }
  EXPECT_EQ(smoother.health().recoveries, 1u);

  // Locate the first plan after the recovery. Recovery completes at the
  // end of interval fault_interval + recovery_intervals; any solve after
  // that is post-recovery.
  const std::size_t recovered_at = fault_interval + config.recovery_intervals;
  bool saw_cold_restart = false, saw_warm_after = false;
  for (const auto& delta : deltas) {
    if (delta.index <= recovered_at) continue;
    if (!saw_cold_restart) {
      // First post-recovery plan: must not be seeded from stale duals.
      EXPECT_EQ(delta.warm_starts, 0u)
          << "interval " << delta.index << " warm-started off stale iterates";
      saw_cold_restart = true;
    } else if (delta.warm_starts > 0) {
      saw_warm_after = true;
    }
  }
  EXPECT_TRUE(saw_cold_restart);  // the QP path did resume
  EXPECT_TRUE(saw_warm_after);    // and warm starts re-engaged afterwards
}

TEST(OnlineSmoother, ConstantSupplyNeverSmoothed) {
  // Constant supply: every interval variance is 0; after calibration the
  // thresholds are degenerate-but-valid and nothing is labelled smoothable.
  OnlineSmoother smoother(small_config(), small_battery());
  for (int i = 0; i < 12 * 10; ++i) smoother.push(250.0);
  for (const auto& record : smoother.records())
    EXPECT_FALSE(record.smoothed);
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    EXPECT_DOUBLE_EQ(smoother.output()[i], 250.0);
}

// -------------------------------------------------- import_state mismatch

/// Runs a smoother long enough to calibrate and returns its exported state.
OnlineSmoother::StreamState calibrated_state(
    const OnlineSmootherConfig& config, std::uint64_t seed = 7) {
  OnlineSmoother smoother(config, small_battery());
  const util::TimeSeries supply = wind_day(seed);
  const std::size_t points = config.flexible_smoothing.points_per_interval;
  const std::size_t samples = (config.warmup_intervals + 6) * points;
  for (std::size_t i = 0; i < samples && i < supply.size(); ++i)
    (void)smoother.push(supply[i]);
  OnlineSmoother::StreamState state = smoother.export_state();
  EXPECT_TRUE(state.calibrated);
  return state;
}

TEST(OnlineSmootherState, SameConfigImportAccepts) {
  const OnlineSmootherConfig config = small_config();
  const auto state = calibrated_state(config);
  OnlineSmoother restored(config, small_battery());
  EXPECT_NO_THROW(restored.import_state(state));
  EXPECT_EQ(restored.intervals_completed(),
            static_cast<std::size_t>(state.intervals_completed));
}

TEST(OnlineSmootherState, ForeignCdfLevelsAreRejectedTyped) {
  // The decided behaviour: a snapshot written under different CDF levels
  // is rejected with StateMismatchError — never silently adopted. The
  // thresholds in the state are internally coherent (0 < stable <
  // extreme), so only the config-consistency gate can catch it.
  const auto state = calibrated_state(small_config());
  OnlineSmootherConfig other = small_config();
  // Far enough from the default 0.25 to land on a different order
  // statistic of the (small) variance history — value_at is a step
  // function, so nearby levels can derive the identical threshold.
  other.stable_cdf = 0.75;
  OnlineSmoother restored(other, small_battery());
  EXPECT_THROW(restored.import_state(state), StateMismatchError);
  // StateMismatchError IS-A invalid_argument, so pre-existing catch sites
  // (and the persist codec's error mapping) keep working unchanged.
  EXPECT_THROW(restored.import_state(state), std::invalid_argument);
}

TEST(OnlineSmootherState, HandEditedThresholdsAreRejectedTyped) {
  const OnlineSmootherConfig config = small_config();
  auto state = calibrated_state(config);
  state.stable_below *= 1.0000001;  // no longer derive(variance_history)
  OnlineSmoother restored(config, small_battery());
  EXPECT_THROW(restored.import_state(state), StateMismatchError);
}

TEST(OnlineSmootherState, UncalibratedSnapshotSkipsTheMismatchGate) {
  // Pre-calibration there are no thresholds to disagree about: a warmup
  // snapshot imports into any config whose structural checks pass.
  OnlineSmootherConfig config = small_config();
  OnlineSmoother smoother(config, small_battery());
  const util::TimeSeries supply = wind_day(11);
  const std::size_t points = config.flexible_smoothing.points_per_interval;
  for (std::size_t i = 0; i < points + 3; ++i) (void)smoother.push(supply[i]);
  const auto state = smoother.export_state();
  ASSERT_FALSE(state.calibrated);
  OnlineSmootherConfig other = small_config();
  other.stable_cdf = 0.30;
  OnlineSmoother restored(other, small_battery());
  EXPECT_NO_THROW(restored.import_state(state));
}

// -------------------------------------------------------------- compaction

TEST(OnlineSmoother, CompactBoundsMemoryWithoutChangingTheStream) {
  const OnlineSmootherConfig config = small_config();
  const std::size_t points = config.flexible_smoothing.points_per_interval;
  const util::TimeSeries supply = wind_day(13);

  OnlineSmoother plain(config, small_battery());
  OnlineSmoother compacted(config, small_battery());
  const std::size_t samples = (config.warmup_intervals + 10) * points;
  ASSERT_LE(samples, supply.size());
  for (std::size_t i = 0; i < samples; ++i) {
    const auto a = plain.push(supply[i]);
    const auto b = compacted.push(supply[i]);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->index, b->index);
      EXPECT_EQ(a->smoothed, b->smoothed);
      EXPECT_EQ(a->variance_after, b->variance_after);
      compacted.compact(2 * points, 3);
    }
  }

  // Memory actually bounded...
  EXPECT_LE(compacted.output().size(), 2 * points);
  EXPECT_LE(compacted.records().size(), 3u);
  // ...while the lifetime cursors and the output tail are untouched.
  EXPECT_EQ(compacted.intervals_completed(), plain.intervals_completed());
  const util::TimeSeries& full = plain.output();
  const util::TimeSeries& tail = compacted.output();
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_EQ(tail[tail.size() - 1 - i], full[full.size() - 1 - i]) << i;

  // A checkpoint taken from the compacted stream still restores exactly.
  const auto state = compacted.export_state();
  EXPECT_EQ(state.intervals_completed, plain.intervals_completed());
  OnlineSmoother restored(config, small_battery());
  EXPECT_NO_THROW(restored.import_state(state));
}

TEST(OnlineSmoother, CompactFloorsAtOneInterval) {
  // Keeping less than points_per_interval of output would truncate the
  // tail a checkpoint needs; the floor silently applies.
  const OnlineSmootherConfig config = small_config();
  const std::size_t points = config.flexible_smoothing.points_per_interval;
  OnlineSmoother smoother(config, small_battery());
  const util::TimeSeries supply = wind_day(17);
  for (std::size_t i = 0; i < 3 * points; ++i) (void)smoother.push(supply[i]);
  smoother.compact(0, 1);
  EXPECT_GE(smoother.output().size(), points);
  EXPECT_EQ(smoother.intervals_completed(), 3u);
}

}  // namespace
}  // namespace smoother::core
