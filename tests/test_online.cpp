#include "smoother/core/online.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother::core {
namespace {

using util::Kilowatts;

OnlineSmootherConfig small_config() {
  OnlineSmootherConfig config;
  config.rated_power = Kilowatts{800.0};
  config.warmup_intervals = 4;
  config.history_intervals = 48;
  return config;
}

battery::Battery small_battery() {
  auto spec = battery::spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes,
                                         2.0);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return battery::Battery(spec);
}

util::TimeSeries wind_day(std::uint64_t seed, double days = 2.0) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  return power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(days), util::kFiveMinutes, seed));
}

TEST(OnlineSmootherConfig, Validation) {
  OnlineSmootherConfig config = small_config();
  EXPECT_NO_THROW(config.validate());
  config.warmup_intervals = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.history_intervals = 2;  // below warmup
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.flexible_smoothing.lookahead_intervals = 2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.stable_cdf = 0.99;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(OnlineSmootherHooks, DeprecatedSettersNeverClobberOtherFields) {
  // Precedence contract: each deprecated setter writes only its own hook
  // field; everything previously installed — including through
  // set_hooks() — must survive it. Last writer wins per field.
  obs::TracingIntervalObserver observer(nullptr, nullptr);
  OnlineSmoother smoother(small_config(), small_battery());

  OnlineSmoother::Hooks hooks;
  hooks.forecast_oracle = [](std::size_t) { return std::vector<double>(12); };
  hooks.solver_settings = [](std::size_t) {
    return std::optional<solver::QpSettings>{};
  };
  hooks.observer = &observer;
  smoother.set_hooks(std::move(hooks));

  smoother.set_battery_monitor([](std::size_t) { return true; });
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().forecast_oracle));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().solver_settings));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_EQ(smoother.hooks().observer, &observer);

  smoother.set_forecast_oracle(nullptr);  // clears only its own field
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().forecast_oracle));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().solver_settings));
  EXPECT_EQ(smoother.hooks().observer, &observer);

  smoother.set_solver_settings_hook([](std::size_t) {
    return std::optional<solver::QpSettings>{solver::QpSettings{}};
  });
  EXPECT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_EQ(smoother.hooks().observer, &observer);
}

TEST(OnlineSmootherHooks, SetHooksReplacesWholesale) {
  // set_hooks() is documented as wholesale replacement: fields previously
  // installed through the deprecated setters do not survive a set_hooks()
  // with defaults.
  OnlineSmoother smoother(small_config(), small_battery());
  smoother.set_battery_monitor([](std::size_t) { return false; });
  smoother.set_forecast_oracle(
      [](std::size_t) { return std::vector<double>(12); });
  ASSERT_TRUE(static_cast<bool>(smoother.hooks().battery_monitor));

  smoother.set_hooks({});
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().forecast_oracle));
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().battery_monitor));
  EXPECT_FALSE(static_cast<bool>(smoother.hooks().solver_settings));
  EXPECT_EQ(smoother.hooks().observer, nullptr);
}

TEST(OnlineSmoother, EmitsOneRecordPerCompletedInterval) {
  OnlineSmoother smoother(small_config(), small_battery());
  int records = 0;
  for (int i = 0; i < 12 * 5; ++i) {
    const auto record = smoother.push(300.0);
    if (record) {
      ++records;
      EXPECT_EQ(record->index, static_cast<std::size_t>(records - 1));
    }
  }
  EXPECT_EQ(records, 5);
  EXPECT_EQ(smoother.output().size(), 60u);
  EXPECT_EQ(smoother.records().size(), 5u);
}

TEST(OnlineSmoother, WarmupPassesThroughUnsmoothed) {
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(5);
  std::size_t warmup_records = 0;
  for (std::size_t i = 0; i < 4 * 12; ++i) {
    const auto record = smoother.push(supply[i]);
    if (record) {
      EXPECT_TRUE(record->warmup);
      EXPECT_FALSE(record->smoothed);
      ++warmup_records;
    }
  }
  EXPECT_EQ(warmup_records, 4u);
  // Warmup output is bit-identical to the input.
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    EXPECT_DOUBLE_EQ(smoother.output()[i], supply[i]);
  EXPECT_TRUE(smoother.calibrated());  // 4 intervals = warmup complete
}

double mean_reduction(const OnlineSmoother& smoother) {
  std::size_t smoothed = 0;
  double reduction = 0.0;
  for (const auto& record : smoother.records()) {
    if (!record.smoothed || record.variance_before <= 0.0) continue;
    ++smoothed;
    reduction += (record.variance_before - record.variance_after) /
                 record.variance_before;
  }
  return smoothed == 0 ? 0.0 : reduction / static_cast<double>(smoothed);
}

TEST(OnlineSmoother, SmoothsAfterCalibrationWithOracle) {
  // With a real predictor (here: a perfect oracle, the paper's effective
  // assumption) the online pipeline smooths like the batch one.
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(21, 3.0);
  smoother.set_forecast_oracle([&](std::size_t interval) {
    std::vector<double> predicted(12);
    for (std::size_t i = 0; i < 12; ++i)
      predicted[i] = supply[interval * 12 + i];
    return predicted;
  });
  for (std::size_t i = 0; i < supply.size(); ++i) smoother.push(supply[i]);

  EXPECT_TRUE(smoother.calibrated());
  std::size_t smoothed = 0;
  for (const auto& record : smoother.records())
    if (record.smoothed) ++smoothed;
  ASSERT_GT(smoothed, 5u);
  EXPECT_GT(mean_reduction(smoother), 0.4);
  // Thresholds were learned (non-default).
  EXPECT_NE(smoother.thresholds().stable_below,
            RegionThresholds{}.stable_below);
}

TEST(OnlineSmoother, PersistenceForecastIsWeakerThanOracle) {
  // Documented honestly: persistence on 5-minute wind is a poor predictor;
  // the oracle must beat it, and persistence must not blow the corridor.
  const auto supply = wind_day(21, 3.0);

  OnlineSmoother persistence(small_config(), small_battery());
  for (std::size_t i = 0; i < supply.size(); ++i) persistence.push(supply[i]);

  OnlineSmoother oracle(small_config(), small_battery());
  oracle.set_forecast_oracle([&](std::size_t interval) {
    std::vector<double> predicted(12);
    for (std::size_t i = 0; i < 12; ++i)
      predicted[i] = supply[interval * 12 + i];
    return predicted;
  });
  for (std::size_t i = 0; i < supply.size(); ++i) oracle.push(supply[i]);

  EXPECT_GT(mean_reduction(oracle), mean_reduction(persistence));
  EXPECT_GE(persistence.battery().soc_fraction(), 0.10 - 1e-9);
}

TEST(OnlineSmoother, BadOracleLengthFallsBackInsteadOfThrowing) {
  // A misbehaving forecast service must not kill the stream: the interval
  // falls back (recorded on the record) and the pipeline stays aligned.
  OnlineSmoother smoother(small_config(), small_battery());
  smoother.set_forecast_oracle(
      [](std::size_t) { return std::vector<double>(5, 1.0); });
  const auto supply = wind_day(3, 2.0);
  EXPECT_NO_THROW({
    for (std::size_t i = 0; i < supply.size(); ++i) smoother.push(supply[i]);
  });
  EXPECT_EQ(smoother.records().size(), supply.size() / 12);
  EXPECT_EQ(smoother.output().size(), supply.size());
  std::size_t fallbacks = 0;
  for (const auto& record : smoother.records())
    if (record.fallback == resilience::FallbackReason::kOracleFailed)
      ++fallbacks;
  EXPECT_GT(fallbacks, 0u);
  EXPECT_EQ(smoother.health().fallbacks_of(
                resilience::FallbackReason::kOracleFailed),
            fallbacks);
}

TEST(OnlineSmoother, ThrowingOracleKeepsStreamAligned) {
  // Regression for the exception-safety bug: an oracle failure mid-stream
  // used to leave the open interval's samples behind, misaligning every
  // subsequent interval. Now intervals commit atomically; once the oracle
  // heals, the smoother recovers and plans again.
  auto config = small_config();
  config.recovery_intervals = 2;
  OnlineSmoother smoother(config, small_battery());
  const auto supply = wind_day(21, 3.0);
  std::size_t calls = 0;
  smoother.set_forecast_oracle([&](std::size_t interval) {
    if (++calls <= 2) throw std::runtime_error("forecast service down");
    std::vector<double> predicted(12);
    for (std::size_t i = 0; i < 12; ++i)
      predicted[i] = supply[interval * 12 + i];
    return predicted;
  });
  for (std::size_t i = 0; i < supply.size(); ++i) {
    smoother.push(supply[i]);
    // Alignment invariant: output advances in whole intervals.
    EXPECT_EQ(smoother.output().size(), ((i + 1) / 12) * 12);
  }
  EXPECT_EQ(smoother.records().size(), supply.size() / 12);
  std::size_t oracle_fallbacks = 0, planned = 0;
  for (const auto& record : smoother.records()) {
    if (record.fallback == resilience::FallbackReason::kOracleFailed)
      ++oracle_fallbacks;
    if (record.smoothed &&
        record.fallback == resilience::FallbackReason::kNone)
      ++planned;
  }
  EXPECT_EQ(oracle_fallbacks, 2u);
  EXPECT_GT(planned, 0u);  // QP path resumed after recovery
  EXPECT_FALSE(smoother.degraded());
  // Each throw happens in normal mode (the oracle is only consulted
  // there), so two throws mean two degraded episodes, each recovered.
  EXPECT_EQ(smoother.health().degraded_entries, 2u);
  EXPECT_EQ(smoother.health().recoveries, 2u);
}

TEST(OnlineSmoother, OutputTrailsInputByAtMostOneInterval) {
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(9);
  for (std::size_t i = 0; i < supply.size(); ++i) {
    smoother.push(supply[i]);
    const std::size_t completed = (i + 1) / 12;
    EXPECT_EQ(smoother.output().size(), completed * 12);
  }
}

TEST(OnlineSmoother, BatteryCorridorHolds) {
  OnlineSmoother smoother(small_config(), small_battery());
  const auto supply = wind_day(33, 4.0);
  for (std::size_t i = 0; i < supply.size(); ++i) smoother.push(supply[i]);
  EXPECT_GE(smoother.battery().soc_fraction(), 0.10 - 1e-9);
  EXPECT_LE(smoother.battery().soc_fraction(), 1.0 + 1e-9);
}

TEST(OnlineSmoother, NegativeInputClampedToZero) {
  OnlineSmoother smoother(small_config(), small_battery());
  for (int i = 0; i < 12; ++i) smoother.push(-50.0);
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    EXPECT_DOUBLE_EQ(smoother.output()[i], 0.0);
}

TEST(OnlineSmoother, ConstantSupplyNeverSmoothed) {
  // Constant supply: every interval variance is 0; after calibration the
  // thresholds are degenerate-but-valid and nothing is labelled smoothable.
  OnlineSmoother smoother(small_config(), small_battery());
  for (int i = 0; i < 12 * 10; ++i) smoother.push(250.0);
  for (const auto& record : smoother.records())
    EXPECT_FALSE(record.smoothed);
  for (std::size_t i = 0; i < smoother.output().size(); ++i)
    EXPECT_DOUBLE_EQ(smoother.output()[i], 250.0);
}

}  // namespace
}  // namespace smoother::core
