#include "smoother/runtime/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "smoother/runtime/task_rng.hpp"

namespace smoother::runtime {
namespace {

TEST(ParamGrid, SizeIsProductOfAxes) {
  ParamGrid grid;
  grid.axis("a", {1.0, 2.0, 3.0}).axis("b", {10.0, 20.0});
  EXPECT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid.axis_count(), 2u);
}

TEST(ParamGrid, EmptyGridHasSizeZero) { EXPECT_EQ(ParamGrid().size(), 0u); }

TEST(ParamGrid, RejectsEmptyAxis) {
  ParamGrid grid;
  EXPECT_THROW(grid.axis("empty", {}), std::invalid_argument);
}

TEST(ParamGrid, EnumeratesInNestedLoopOrder) {
  // Declaration order = loop nesting order: first axis slowest.
  ParamGrid grid;
  grid.axis("outer", {1.0, 2.0}).axis("inner", {0.1, 0.2, 0.3});
  std::vector<std::pair<double, double>> expected;
  for (double outer : {1.0, 2.0})
    for (double inner : {0.1, 0.2, 0.3}) expected.emplace_back(outer, inner);
  ASSERT_EQ(grid.size(), expected.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto point = grid.at(i);
    EXPECT_EQ(point.index, i);
    EXPECT_DOUBLE_EQ(point["outer"], expected[i].first);
    EXPECT_DOUBLE_EQ(point["inner"], expected[i].second);
  }
}

TEST(ParamGrid, UnknownAxisNameThrows) {
  ParamGrid grid;
  grid.axis("a", {1.0});
  EXPECT_THROW(static_cast<void>(grid.at(0)["nope"]), std::out_of_range);
  EXPECT_THROW(grid.at(1), std::out_of_range);
}

TEST(SweepRunner, ResultsAreOrderedByIndex) {
  SweepRunner runner(SweepOptions{4, 0, "order"});
  const auto results = runner.run(
      100, [](TaskContext& ctx) { return ctx.index * 3; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].value, i * 3);
  }
}

TEST(SweepRunner, CapturesPerTaskAndTotalWallTime) {
  SweepRunner runner(SweepOptions{2, 0, "timing"});
  const auto results = runner.run(8, [](TaskContext& ctx) {
    double acc = 0.0;
    for (int i = 0; i < 50000; ++i)
      acc += std::sin(static_cast<double>(i) + static_cast<double>(ctx.index));
    return acc;
  });
  for (const auto& result : results) EXPECT_GE(result.wall_ms, 0.0);
  EXPECT_GT(runner.last_wall_ms(), 0.0);
}

TEST(SweepRunner, ExceptionInTaskPropagates) {
  SweepRunner runner(SweepOptions{2, 0, "throws"});
  EXPECT_THROW(runner.run(10,
                          [](TaskContext& ctx) -> int {
                            if (ctx.index == 5)
                              throw std::runtime_error("task 5 failed");
                            return 0;
                          }),
               std::runtime_error);
}

/// A miniature stochastic grid evaluation: every task draws from its own
/// deterministic stream and folds the grid parameters in. Serialising the
/// results makes "byte-identical" concrete.
std::string evaluate_grid(std::size_t threads) {
  ParamGrid grid;
  grid.axis("level", {0.80, 0.90, 0.95, 0.98})
      .axis("headroom", {1.0, 2.0, 4.0});
  SweepRunner runner(SweepOptions{threads, 20110501, "determinism"});
  const auto results =
      runner.run_grid(grid, [](const ParamGrid::Point& point,
                               TaskContext& ctx) {
        double acc = point["level"] * point["headroom"];
        for (int draw = 0; draw < 1000; ++draw) acc += ctx.rng.normal();
        return acc;
      });
  std::ostringstream out;
  out.precision(17);
  for (const auto& result : results)
    out << result.index << "," << result.value << "\n";
  return out.str();
}

TEST(SweepRunner, GridResultsAreByteIdenticalAcrossThreadCounts) {
  const std::string serial = evaluate_grid(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, evaluate_grid(2));
  EXPECT_EQ(serial, evaluate_grid(8));
}

TEST(TaskRng, SameTaskSameStream) {
  const TaskRng rng(42);
  auto a = rng.for_task(7);
  auto b = rng.for_task(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(TaskRng, DifferentTasksDifferentStreams) {
  const TaskRng rng(42);
  auto a = rng.for_task(0);
  auto b = rng.for_task(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(TaskRng, SubstreamsAreIndependent) {
  const TaskRng rng(9);
  auto a = rng.for_task(3, 0);
  auto b = rng.for_task(3, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace smoother::runtime
