// Shared builders for the Smoother test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::test {

/// Series from explicit values at the given step.
inline util::TimeSeries series(std::vector<double> values,
                               util::Minutes step = util::kFiveMinutes) {
  return util::TimeSeries(step, std::move(values));
}

/// Constant series.
inline util::TimeSeries constant_series(double value, std::size_t count,
                                        util::Minutes step = util::kFiveMinutes) {
  return util::TimeSeries(step, std::vector<double>(count, value));
}

/// Deterministic sawtooth in [lo, hi] with the given period in samples.
inline util::TimeSeries sawtooth_series(double lo, double hi,
                                        std::size_t period, std::size_t count,
                                        util::Minutes step = util::kFiveMinutes) {
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double phase =
        static_cast<double>(i % period) / static_cast<double>(period);
    values[i] = lo + (hi - lo) * phase;
  }
  return util::TimeSeries(step, std::move(values));
}

}  // namespace smoother::test
