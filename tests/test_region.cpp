#include "smoother/core/region.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/power/turbine.hpp"

namespace smoother::core {
namespace {

using util::Kilowatts;

RegionClassifierConfig config_with(double stable, double extreme) {
  RegionClassifierConfig config;
  config.rated_power = Kilowatts{800.0};
  config.points_per_interval = 12;
  config.thresholds.stable_below = stable;
  config.thresholds.extreme_above = extreme;
  return config;
}

TEST(RegionThresholds, Validation) {
  RegionThresholds t;
  EXPECT_NO_THROW(t.validate());
  t.stable_below = 0.5;
  t.extreme_above = 0.4;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.stable_below = -1.0;
  t.extreme_above = 1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(RegionClassifier, ConfigValidation) {
  RegionClassifierConfig config = config_with(1e-4, 1e-2);
  config.points_per_interval = 1;
  EXPECT_THROW(RegionClassifier{config}, std::invalid_argument);
  config = config_with(1e-4, 1e-2);
  config.rated_power = Kilowatts{0.0};
  EXPECT_THROW(RegionClassifier{config}, std::invalid_argument);
}

TEST(RegionClassifier, VarianceBands) {
  const RegionClassifier classifier(config_with(1e-4, 1e-2));
  EXPECT_EQ(classifier.classify_variance(0.0), Region::kStable);
  EXPECT_EQ(classifier.classify_variance(5e-5), Region::kStable);
  EXPECT_EQ(classifier.classify_variance(1e-4), Region::kSmoothable);
  EXPECT_EQ(classifier.classify_variance(5e-3), Region::kSmoothable);
  EXPECT_EQ(classifier.classify_variance(1e-2), Region::kExtreme);
  EXPECT_EQ(classifier.classify_variance(1.0), Region::kExtreme);
}

TEST(RegionClassifier, ClassifiesSeriesIntervals) {
  // Three hourly intervals: flat, moderately wavy, violently alternating.
  std::vector<double> values;
  for (int i = 0; i < 12; ++i) values.push_back(400.0);
  for (int i = 0; i < 12; ++i) values.push_back(400.0 + (i % 2 ? 60.0 : -60.0));
  for (int i = 0; i < 12; ++i) values.push_back(i % 2 ? 800.0 : 0.0);
  const auto series = test::series(std::move(values));

  const RegionClassifier classifier(config_with(1e-4, 1e-1));
  const auto intervals = classifier.classify(series);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0].region, Region::kStable);
  EXPECT_EQ(intervals[1].region, Region::kSmoothable);
  EXPECT_EQ(intervals[2].region, Region::kExtreme);
  EXPECT_EQ(intervals[1].first_point, 12u);
  EXPECT_EQ(intervals[1].points, 12u);
  EXPECT_NEAR(intervals[0].cf_variance, 0.0, 1e-12);
}

TEST(RegionClassifier, CalmAndRatedSaturationAreStable) {
  // Paper: Region-I covers both "no wind" and "rated plateau" situations.
  const RegionClassifier classifier(config_with(1e-4, 1e-2));
  const auto calm = test::constant_series(0.0, 12);
  const auto rated = test::constant_series(800.0, 12);
  EXPECT_EQ(classifier.classify(calm)[0].region, Region::kStable);
  EXPECT_EQ(classifier.classify(rated)[0].region, Region::kStable);
}

TEST(RegionClassifier, RegionFractions) {
  std::vector<IntervalClass> intervals(4);
  intervals[0].region = Region::kStable;
  intervals[1].region = Region::kSmoothable;
  intervals[2].region = Region::kSmoothable;
  intervals[3].region = Region::kExtreme;
  const auto fractions = RegionClassifier::region_fractions(intervals);
  EXPECT_DOUBLE_EQ(fractions[0], 0.25);
  EXPECT_DOUBLE_EQ(fractions[1], 0.5);
  EXPECT_DOUBLE_EQ(fractions[2], 0.25);
  const auto empty = RegionClassifier::region_fractions({});
  EXPECT_DOUBLE_EQ(empty[0], 0.0);
}

TEST(ThresholdsFromHistory, MatchesRequestedCdfLevels) {
  // A month of volatile wind: with stable=0.25 and extreme=0.95 the
  // classifier should label ~25 % Region-I and ~5 % Region-II-2.
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto speed = model.generate(util::days(28.0), util::kFiveMinutes, 3);
  const auto power = power::TurbineCurve::enercon_e48().power_series(speed);

  const auto thresholds =
      thresholds_from_history(power, Kilowatts{800.0}, 12, 0.25, 0.95);
  RegionClassifierConfig config;
  config.rated_power = Kilowatts{800.0};
  config.thresholds = thresholds;
  const RegionClassifier classifier(config);
  const auto fractions =
      RegionClassifier::region_fractions(classifier.classify(power));
  EXPECT_NEAR(fractions[0], 0.25, 0.03);
  EXPECT_NEAR(fractions[2], 0.05, 0.03);
}

TEST(ThresholdsFromHistory, Validation) {
  const auto series = test::constant_series(10.0, 24);
  EXPECT_THROW(
      (void)thresholds_from_history(series, Kilowatts{800.0}, 12, 0.9, 0.5),
      std::invalid_argument);
  const auto tiny = test::constant_series(10.0, 6);
  EXPECT_THROW(
      (void)thresholds_from_history(tiny, Kilowatts{800.0}, 12, 0.2, 0.9),
      std::invalid_argument);
}

TEST(ThresholdsFromHistory, DegenerateHistoryStillValidates) {
  // Constant supply: every interval variance is zero; the fallback epsilon
  // split must still produce a valid threshold pair.
  const auto series = test::constant_series(10.0, 48);
  const auto thresholds =
      thresholds_from_history(series, Kilowatts{800.0}, 12, 0.2, 0.9);
  EXPECT_NO_THROW(thresholds.validate());
}

TEST(RegionNames, Strings) {
  EXPECT_EQ(to_string(Region::kStable), "Region-I");
  EXPECT_EQ(to_string(Region::kSmoothable), "Region-II-1");
  EXPECT_EQ(to_string(Region::kExtreme), "Region-II-2");
}

}  // namespace
}  // namespace smoother::core
