#include "smoother/sim/frequency.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/stats/rolling.hpp"

namespace smoother::sim {
namespace {

TEST(GridModelParams, Validation) {
  GridModelParams params;
  EXPECT_NO_THROW(params.validate());
  params.inertia_seconds = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = GridModelParams{};
  params.base_power_kw = -1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = GridModelParams{};
  params.integration_step_s = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(GridFrequencyModel, BalancedSystemStaysAtNominal) {
  const GridFrequencyModel model;
  const auto supply = test::constant_series(500.0, 24);
  const auto stats = model.simulate(supply, supply);
  EXPECT_DOUBLE_EQ(stats.max_deviation_hz, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_rocof_hz_per_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.seconds_outside_band, 0.0);
  for (std::size_t i = 0; i < stats.frequency_hz.size(); ++i)
    EXPECT_DOUBLE_EQ(stats.frequency_hz[i], 50.0);
}

TEST(GridFrequencyModel, StepImbalanceInitialRocofIsAnalytic) {
  // First integration step from rest: df/dt = f0 * dP_pu / (2H).
  GridModelParams params;
  params.base_power_kw = 1000.0;
  params.inertia_seconds = 5.0;
  const GridFrequencyModel model(params);
  const auto supply = test::constant_series(600.0, 4);
  const auto demand = test::constant_series(500.0, 4);  // +0.1 pu surplus
  const auto stats = model.simulate(supply, demand);
  const double analytic = 50.0 * 0.1 / (2.0 * 5.0);
  EXPECT_NEAR(stats.max_rocof_hz_per_s, analytic, 1e-9);
  // Surplus pushes the frequency up.
  EXPECT_GT(stats.frequency_hz[0], 50.0);
}

TEST(GridFrequencyModel, DroopAndDampingBoundTheExcursion) {
  // Sustained +0.1 pu surplus: steady state df_pu = dP / (droop + damping)
  // as long as the droop is unsaturated.
  GridModelParams params;
  params.droop_gain_pu = 20.0;
  params.load_damping = 1.0;
  params.droop_limit_pu = 0.5;
  const GridFrequencyModel model(params);
  const auto supply = test::constant_series(2200.0, 288);
  const auto demand = test::constant_series(2000.0, 288);  // +0.1 pu
  const auto stats = model.simulate(supply, demand, 1.0);
  const double expected_ss = 50.0 * 0.1 / 21.0;
  EXPECT_NEAR(stats.frequency_hz[stats.frequency_hz.size() - 1] - 50.0,
              expected_ss, 0.01);
}

TEST(GridFrequencyModel, ShapeMismatchThrows) {
  const GridFrequencyModel model;
  EXPECT_THROW(model.simulate(test::constant_series(1.0, 3),
                              test::constant_series(1.0, 4)),
               std::invalid_argument);
  EXPECT_THROW(model.simulate(test::constant_series(1.0, 3),
                              test::constant_series(1.0, 3), 0.0),
               std::invalid_argument);
}

TEST(GridFrequencyModel, RougherInjectionMeansHigherRocof) {
  const GridFrequencyModel model;
  const auto calm = test::sawtooth_series(480.0, 520.0, 12, 288);
  const auto rough = test::sawtooth_series(200.0, 800.0, 2, 288);
  const auto demand = test::constant_series(500.0, 288);
  EXPECT_GT(model.simulate(rough, demand).max_rocof_hz_per_s,
            model.simulate(calm, demand).max_rocof_hz_per_s);
}

TEST(GridFrequencyModel, FsSmoothedSupplyStressesTheGridLess) {
  // The paper's stability claim, quantified: frequency response to the
  // fluctuating component (supply minus its rolling hourly mean) is gentler
  // after Flexible Smoothing.
  const auto scenario = make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      util::Kilowatts{976.0}, util::days(2.0), 77);
  const auto config = default_config(util::Kilowatts{976.0});
  const core::Smoother middleware(config);
  const auto smoothing = middleware.smooth_supply(scenario.supply);

  const GridFrequencyModel model;
  const auto fluctuation_stats = [&](const util::TimeSeries& series) {
    const auto trend = stats::moving_average(series.values(), 13);
    const util::TimeSeries baseline(series.step(),
                                    std::vector<double>(trend.begin(),
                                                        trend.end()));
    return model.simulate(series, baseline);
  };
  const auto raw = fluctuation_stats(scenario.supply);
  const auto smoothed = fluctuation_stats(smoothing.supply);
  EXPECT_LT(smoothed.max_rocof_hz_per_s, raw.max_rocof_hz_per_s);
  EXPECT_LE(smoothed.seconds_outside_band, raw.seconds_outside_band);
}

}  // namespace
}  // namespace smoother::sim
