#include "smoother/solver/banded.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "smoother/solver/cholesky.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::solver {
namespace {

/// Random symmetric positive-definite matrix with the given bandwidth:
/// random entries inside the band plus a diagonal shift that guarantees
/// strict diagonal dominance.
BandedMatrix random_spd_banded(std::size_t n, std::size_t w,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  BandedMatrix a(n, w);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i < w ? 0 : i - w; j <= i; ++j)
      a.entry(i, j) = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    a.entry(i, i) = std::abs(a(i, i)) + 2.0 * static_cast<double>(w + 1);
  return a;
}

TEST(BandedMatrix, AccessorsAndSymmetry) {
  BandedMatrix a(4, 1);
  a.entry(0, 0) = 2.0;
  a.entry(1, 0) = -1.0;
  a.entry(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a(0, 1), -1.0);  // symmetric read
  EXPECT_DOUBLE_EQ(a(0, 2), 0.0);   // outside the band
  EXPECT_DOUBLE_EQ(a(3, 0), 0.0);
  EXPECT_THROW(a.entry(0, 1), std::out_of_range);  // upper triangle
  EXPECT_THROW(a.entry(2, 0), std::out_of_range);  // outside the band
  EXPECT_THROW((void)a(4, 0), std::out_of_range);
  EXPECT_THROW(BandedMatrix(3, 3), std::invalid_argument);
}

TEST(BandedMatrix, TridiagonalBuilder) {
  const Vector diag{2.0, 2.0, 2.0};
  const Vector off{-1.0, -1.0};
  const BandedMatrix a = BandedMatrix::tridiagonal(diag, off);
  EXPECT_EQ(a.dimension(), 3u);
  EXPECT_EQ(a.bandwidth(), 1u);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(a(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(a(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(a(0, 2), 0.0);
  const Vector empty;
  EXPECT_THROW(BandedMatrix::tridiagonal(empty, empty),
               std::invalid_argument);
  const Vector short_off{-1.0};
  EXPECT_THROW(BandedMatrix::tridiagonal(diag, short_off),
               std::invalid_argument);
}

TEST(BandedMatrix, DenseRoundTrip) {
  const BandedMatrix a = random_spd_banded(7, 2, 42);
  const Matrix dense = a.to_dense();
  const BandedMatrix back = BandedMatrix::from_dense(dense, 2);
  EXPECT_DOUBLE_EQ(back.to_dense().max_abs_diff(dense), 0.0);
  // A too-small bandwidth must refuse, never silently truncate.
  EXPECT_THROW(BandedMatrix::from_dense(dense, 1), std::invalid_argument);
}

TEST(BandedMatrix, MatvecMatchesDense) {
  for (const std::size_t w : {0u, 1u, 3u}) {
    const std::size_t n = 9;
    const BandedMatrix a = random_spd_banded(n, w, 7 + w);
    const Matrix dense = a.to_dense();
    util::Rng rng(99);
    Vector x(n);
    for (double& v : x) v = rng.uniform(-5.0, 5.0);
    const Vector got = a * x;
    const Vector want = dense * x;
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], want[i], 1e-12);
  }
}

TEST(BandedCholesky, MatchesDenseFactorizationOnRandomSpdBands) {
  for (const std::size_t w : {0u, 1u, 2u, 4u}) {
    for (const std::size_t n : {1u, 2u, 5u, 12u, 30u}) {
      if (w >= n) continue;
      const BandedMatrix a = random_spd_banded(n, w, 1000 + 10 * n + w);
      const auto banded = BandedCholesky::factorize(a);
      ASSERT_TRUE(banded.has_value()) << "n=" << n << " w=" << w;
      const auto dense = Cholesky::factorize(a.to_dense());
      ASSERT_TRUE(dense.has_value());
      // Same factor (unique for SPD matrices) ...
      EXPECT_LT(banded->lower_dense().max_abs_diff(dense->lower()), 1e-10)
          << "n=" << n << " w=" << w;
      // ... and the same solutions.
      util::Rng rng(5 + n);
      Vector b(n);
      for (double& v : b) v = rng.uniform(-10.0, 10.0);
      const Vector xb = banded->solve(b);
      const Vector xd = dense->solve(b);
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xb[i], xd[i], 1e-10);
      // Residual check closes the loop independently of the dense factor.
      const Vector ax = a * xb;
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
    }
  }
}

TEST(BandedCholesky, ThomasStyleTridiagonalSolve) {
  // The FS KKT reduction's exact shape: tridiagonal SPD, bandwidth 1.
  const std::size_t n = 288;
  Vector diag(n, 4.0);
  Vector off(n - 1, -1.0);
  const BandedMatrix a = BandedMatrix::tridiagonal(diag, off);
  const auto chol = BandedCholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  util::Rng rng(3);
  Vector b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = chol->solve(b);
  const Vector ax = a * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(BandedCholesky, SolveIntoMatchesSolve) {
  const BandedMatrix a = random_spd_banded(15, 2, 77);
  const auto chol = BandedCholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  util::Rng rng(8);
  Vector b(15);
  for (double& v : b) v = rng.uniform(-4.0, 4.0);
  const Vector x = chol->solve(b);
  Vector x2(15, 0.0);
  chol->solve_into(b, x2);
  EXPECT_EQ(x, x2);
}

TEST(BandedCholesky, RejectsNonPositiveDefinite) {
  // Indefinite: negative diagonal.
  Vector diag{1.0, -2.0, 1.0};
  Vector off{0.0, 0.0};
  EXPECT_FALSE(
      BandedCholesky::factorize(BandedMatrix::tridiagonal(diag, off))
          .has_value());
  // Singular: a zero row/column.
  Vector diag2{1.0, 0.0, 1.0};
  EXPECT_FALSE(
      BandedCholesky::factorize(BandedMatrix::tridiagonal(diag2, off))
          .has_value());
}

}  // namespace
}  // namespace smoother::solver
