#include "smoother/util/args.hpp"

#include <gtest/gtest.h>

namespace smoother::util {
namespace {

ArgParser demo_parser() {
  ArgParser parser("demo", "a demo parser");
  parser.add_flag("verbose", "talk more")
      .add_option("seed", "random seed", "42")
      .add_option("name", "a label", "default-name")
      .add_required("out", "output path");
  return parser;
}

TEST(ArgParser, DefaultsAndRequired) {
  const auto parsed = demo_parser().parse({"--out", "x.csv"});
  EXPECT_FALSE(parsed.flag("verbose"));
  EXPECT_EQ(parsed.get("seed"), "42");
  EXPECT_EQ(parsed.get("out"), "x.csv");
}

TEST(ArgParser, MissingRequiredThrows) {
  EXPECT_THROW((void)demo_parser().parse({}), ArgError);
  EXPECT_THROW((void)demo_parser().parse({"--seed", "1"}), ArgError);
}

TEST(ArgParser, FlagsAndOverrides) {
  const auto parsed = demo_parser().parse(
      {"--verbose", "--seed", "7", "--out", "y.csv", "--name", "abc"});
  EXPECT_TRUE(parsed.flag("verbose"));
  EXPECT_EQ(parsed.get("seed"), "7");
  EXPECT_EQ(parsed.get("name"), "abc");
}

TEST(ArgParser, UnknownOptionThrows) {
  EXPECT_THROW((void)demo_parser().parse({"--out", "x", "--bogus"}), ArgError);
}

TEST(ArgParser, MissingValueThrows) {
  EXPECT_THROW((void)demo_parser().parse({"--out"}), ArgError);
}

TEST(ArgParser, Positionals) {
  const auto parsed = demo_parser().parse({"--out", "x", "file1", "file2"});
  ASSERT_EQ(parsed.positional().size(), 2u);
  EXPECT_EQ(parsed.positional()[1], "file2");
}

TEST(ParsedArgs, TypedGetters) {
  ArgParser parser("t", "typed");
  parser.add_option("d", "double", "2.5")
      .add_option("i", "int", "-3")
      .add_option("u", "unsigned", "9");
  const auto parsed = parser.parse({});
  EXPECT_DOUBLE_EQ(parsed.number("d"), 2.5);
  EXPECT_EQ(parsed.integer("i"), -3);
  EXPECT_EQ(parsed.unsigned_integer("u"), 9u);
}

TEST(ParsedArgs, TypedGetterErrors) {
  ArgParser parser("t", "typed");
  parser.add_option("d", "double", "abc").add_option("u", "unsigned", "-1");
  const auto parsed = parser.parse({});
  EXPECT_THROW((void)parsed.number("d"), ArgError);
  EXPECT_THROW((void)parsed.unsigned_integer("u"), ArgError);
  EXPECT_THROW((void)parsed.get("never-declared"), ArgError);
}

TEST(ParsedArgs, HasDetectsPresence) {
  ArgParser parser("t", "t");
  parser.add_option("with-default", "x", "1").add_required("req", "y");
  const auto parsed = parser.parse({"--req", "v"});
  EXPECT_TRUE(parsed.has("with-default"));
  EXPECT_TRUE(parsed.has("req"));
  EXPECT_FALSE(parsed.has("nope"));
}

TEST(ArgParser, UsageListsEverything) {
  const std::string usage = demo_parser().usage();
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("(default: 42)"), std::string::npos);
  EXPECT_NE(usage.find("(required)"), std::string::npos);
  EXPECT_NE(usage.find("demo"), std::string::npos);
}

}  // namespace
}  // namespace smoother::util
