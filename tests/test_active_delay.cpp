#include "smoother/core/active_delay.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/sched/scheduler.hpp"

namespace smoother::core {
namespace {

using sched::Job;
using sched::ScheduleRequest;
using util::Kilowatts;
using util::Minutes;

Job make_job(std::uint64_t id, double arrival, double runtime, double deadline,
             std::size_t servers = 1, double power = 10.0) {
  Job job;
  job.id = id;
  job.arrival = Minutes{arrival};
  job.runtime = Minutes{runtime};
  job.deadline = Minutes{deadline};
  job.servers = servers;
  job.cpu_utilization = 0.9;
  job.power = Kilowatts{power};
  return job;
}

/// Renewable that is zero except for a plateau [start, end) of `level` kW.
util::TimeSeries pulse_supply(std::size_t slots, std::size_t start,
                              std::size_t end, double level) {
  std::vector<double> values(slots, 0.0);
  for (std::size_t i = start; i < end && i < slots; ++i) values[i] = level;
  return util::TimeSeries(util::kOneMinute, std::move(values));
}

TEST(ActiveDelay, DefersIntoRenewableWindow) {
  // Renewable only in minutes 30-40; job arrives at 0 with plenty of slack.
  ScheduleRequest request;
  request.renewable = pulse_supply(60, 30, 40, 50.0);
  request.total_servers = 10;
  request.jobs = {make_job(1, 0.0, 10.0, 59.0)};
  const auto result = ActiveDelayScheduler().schedule(request);
  ASSERT_EQ(result.outcome.placements.size(), 1u);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 30.0);
  EXPECT_TRUE(result.outcome.placements[0].met_deadline);
  // The job's whole 10 kW demand runs inside the window.
  EXPECT_NEAR(result.outcome.placements[0].renewable_energy_used.value(),
              10.0 * 10.0 / 60.0, 1e-9);
}

TEST(ActiveDelay, NonDeferrableRunsImmediately) {
  ScheduleRequest request;
  request.renewable = pulse_supply(60, 30, 40, 50.0);
  request.total_servers = 10;
  // deadline == arrival + runtime: zero slack.
  request.jobs = {make_job(1, 5.0, 10.0, 15.0)};
  const auto result = ActiveDelayScheduler().schedule(request);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 5.0);
}

TEST(ActiveDelay, RespectsDeadlineWhenChoosingStart) {
  // The renewable window opens after the latest feasible start; the job
  // must NOT chase it past its deadline.
  ScheduleRequest request;
  request.renewable = pulse_supply(120, 100, 110, 50.0);
  request.total_servers = 10;
  request.jobs = {make_job(1, 0.0, 10.0, 50.0)};  // latest start = 40
  const auto result = ActiveDelayScheduler().schedule(request);
  EXPECT_LE(result.outcome.placements[0].start.value(), 40.0);
  EXPECT_TRUE(result.outcome.placements[0].met_deadline);
}

TEST(ActiveDelay, UpdatesRemainingRenewableBetweenJobs) {
  // Window fits one job's power only; the second job must look elsewhere
  // (all else equal it takes the earliest start, minute 0).
  ScheduleRequest request;
  request.renewable = pulse_supply(60, 30, 40, 10.0);
  request.total_servers = 10;
  request.jobs = {make_job(1, 0.0, 10.0, 59.0, 1, 10.0),
                  make_job(2, 0.0, 10.0, 59.0, 1, 10.0)};
  const auto result = ActiveDelayScheduler().schedule(request);
  ASSERT_EQ(result.outcome.placements.size(), 2u);
  const double first = result.outcome.placements[0].start.value();
  const double second = result.outcome.placements[1].start.value();
  EXPECT_DOUBLE_EQ(first, 30.0);
  EXPECT_NE(second, 30.0);
  // Aggregate renewable use equals the window's full content.
  EXPECT_NEAR(result.outcome.renewable_energy_used.value(), 10.0 * 10.0 / 60.0,
              1e-9);
}

TEST(ActiveDelay, SlackOrderingPrioritizesUrgentJobs) {
  // Both arrive together; the small window fits one. The urgent job (less
  // slack) is scheduled first and wins the window.
  ScheduleRequest request;
  request.renewable = pulse_supply(60, 20, 30, 10.0);
  request.total_servers = 1;  // force capacity conflict too
  request.jobs = {make_job(1, 0.0, 10.0, 59.0, 1, 10.0),   // loose
                  make_job(2, 0.0, 10.0, 35.0, 1, 10.0)};  // tight
  const auto result = ActiveDelayScheduler().schedule(request);
  ASSERT_EQ(result.outcome.placements.size(), 2u);
  // Scheduling order is slack-ascending: job 2 first.
  EXPECT_EQ(result.outcome.placements[0].job_id, 2u);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 20.0);
  EXPECT_EQ(result.outcome.deadline_misses, 0u);
}

TEST(ActiveDelay, HonoursClusterCapacity) {
  // Two 1-server jobs on a 1-server cluster with the same best window:
  // they cannot overlap.
  ScheduleRequest request;
  request.renewable = pulse_supply(60, 10, 40, 100.0);
  request.total_servers = 1;
  request.jobs = {make_job(1, 0.0, 10.0, 59.0), make_job(2, 0.0, 10.0, 59.0)};
  const auto result = ActiveDelayScheduler().schedule(request);
  const auto& a = result.outcome.placements[0];
  const auto& b = result.outcome.placements[1];
  const bool disjoint = a.finish <= b.start || b.finish <= a.start;
  EXPECT_TRUE(disjoint);
}

TEST(ActiveDelay, TieBreaksTowardEarliestStart) {
  // Uniform renewable: every start is equally good; the default config
  // starts as early as possible.
  ScheduleRequest request;
  request.renewable = test::constant_series(50.0, 60, util::kOneMinute);
  request.total_servers = 10;
  request.jobs = {make_job(1, 7.0, 10.0, 59.0)};
  const auto result = ActiveDelayScheduler().schedule(request);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 7.0);
}

TEST(ActiveDelay, BeatsImmediateOnRenewableUse) {
  // Misaligned pulse: immediate runs at arrival (no wind), AD defers.
  ScheduleRequest request;
  request.renewable = pulse_supply(120, 60, 90, 40.0);
  request.total_servers = 10;
  for (int j = 0; j < 5; ++j)
    request.jobs.push_back(
        make_job(static_cast<std::uint64_t>(j + 1), 2.0 * j, 15.0, 119.0, 1,
                 8.0));
  const auto ad = ActiveDelayScheduler().schedule(request);
  const auto immediate = sched::ImmediateScheduler().schedule(request);
  EXPECT_GT(ad.outcome.renewable_energy_used.value(),
            immediate.outcome.renewable_energy_used.value());
}

TEST(ActiveDelay, ArrivalBeyondHorizonIsMissed) {
  ScheduleRequest request;
  request.renewable = pulse_supply(30, 0, 30, 10.0);
  request.total_servers = 4;
  request.jobs = {make_job(1, 500.0, 10.0, 600.0)};
  const auto result = ActiveDelayScheduler().schedule(request);
  EXPECT_EQ(result.outcome.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(result.demand.sum(), 0.0);
}

TEST(ActiveDelay, BaselinePowerReducesClaimableRenewable) {
  ScheduleRequest request;
  request.renewable = pulse_supply(60, 30, 40, 50.0);
  request.baseline_power = Kilowatts{45.0};
  request.total_servers = 10;
  request.jobs = {make_job(1, 0.0, 10.0, 59.0, 1, 10.0)};
  const auto result = ActiveDelayScheduler().schedule(request);
  // Only 5 kW per slot is claimable inside the window.
  EXPECT_NEAR(result.outcome.placements[0].renewable_energy_used.value(),
              5.0 * 10.0 / 60.0, 1e-9);
}

TEST(ActiveDelay, NameAndConfig) {
  ActiveDelayConfig config;
  config.prefer_early_on_tie = false;
  const ActiveDelayScheduler scheduler(config);
  EXPECT_EQ(scheduler.name(), "active-delay");
  EXPECT_FALSE(scheduler.config().prefer_early_on_tie);
}

}  // namespace
}  // namespace smoother::core
