// Tests for the grid-draw cap (peak shaving) in Active Delay and the
// hybrid wind+solar supply builder.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/core/active_delay.hpp"
#include "smoother/sim/scenario.hpp"

namespace smoother {
namespace {

using sched::Job;
using sched::ScheduleRequest;
using util::Kilowatts;
using util::Minutes;

Job small_job(std::uint64_t id, double arrival, double runtime,
              double deadline, double power_kw) {
  Job job;
  job.id = id;
  job.arrival = Minutes{arrival};
  job.runtime = Minutes{runtime};
  job.deadline = Minutes{deadline};
  job.servers = 1;
  job.power = Kilowatts{power_kw};
  return job;
}

TEST(PeakShaving, ConfigValidation) {
  core::ActiveDelayConfig config;
  config.max_grid_draw_kw = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.max_grid_draw_kw = 0.0;
  EXPECT_NO_THROW(config.validate());
}

TEST(PeakShaving, CapSpreadsJobsApart) {
  // Zero renewable, four 10 kW jobs with plenty of slack: uncapped AD
  // stacks them all at their arrival slot (25 kW peak grid draw exceeds a
  // 15 kW cap); with the cap only one job fits at a time.
  ScheduleRequest request;
  request.renewable = test::constant_series(0.0, 240, util::kOneMinute);
  request.total_servers = 10;
  for (int j = 0; j < 4; ++j)
    request.jobs.push_back(
        small_job(static_cast<std::uint64_t>(j + 1), 0.0, 30.0, 239.0, 10.0));

  const auto uncapped = core::ActiveDelayScheduler().schedule(request);
  EXPECT_GT(uncapped.demand.max(), 15.0);

  core::ActiveDelayConfig config;
  config.max_grid_draw_kw = 15.0;
  const auto capped = core::ActiveDelayScheduler(config).schedule(request);
  // Grid draw = demand (no renewable): never above the cap.
  EXPECT_LE(capped.demand.max(), 15.0 + 1e-9);
  EXPECT_EQ(capped.outcome.deadline_misses, 0u);
}

TEST(PeakShaving, RenewableRaisesTheEffectiveCap) {
  // A 30 kW renewable plateau lets three 10 kW jobs run concurrently under
  // a 5 kW grid cap, but only inside the plateau.
  ScheduleRequest request;
  std::vector<double> values(240, 0.0);
  for (std::size_t t = 60; t < 120; ++t) values[t] = 30.0;
  request.renewable = util::TimeSeries(util::kOneMinute, std::move(values));
  request.total_servers = 10;
  for (int j = 0; j < 3; ++j)
    request.jobs.push_back(
        small_job(static_cast<std::uint64_t>(j + 1), 0.0, 30.0, 239.0, 10.0));

  core::ActiveDelayConfig config;
  config.max_grid_draw_kw = 5.0;
  const auto result = core::ActiveDelayScheduler(config).schedule(request);
  for (const auto& placement : result.outcome.placements) {
    EXPECT_GE(placement.start.value(), 60.0);
    EXPECT_LE(placement.finish.value(), 120.0 + 1e-9);
  }
  // Grid draw stays under the cap everywhere.
  for (std::size_t t = 0; t < result.demand.size(); ++t)
    EXPECT_LE(std::max(result.demand[t] - request.renewable[t], 0.0),
              5.0 + 1e-9);
}

TEST(PeakShaving, DeadlineBeatsTheCap) {
  // A job that can fit nowhere under the cap still runs (fallback to the
  // earliest start) — the soft deadline wins over the tariff.
  ScheduleRequest request;
  request.renewable = test::constant_series(0.0, 100, util::kOneMinute);
  request.total_servers = 10;
  request.jobs = {small_job(1, 0.0, 20.0, 99.0, 50.0)};
  core::ActiveDelayConfig config;
  config.max_grid_draw_kw = 10.0;  // job alone breaches it
  const auto result = core::ActiveDelayScheduler(config).schedule(request);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 0.0);
  EXPECT_TRUE(result.outcome.placements[0].met_deadline);
}

TEST(PeakShaving, ZeroCapMeansDisabled) {
  ScheduleRequest request;
  request.renewable = test::constant_series(0.0, 120, util::kOneMinute);
  request.total_servers = 10;
  for (int j = 0; j < 3; ++j)
    request.jobs.push_back(
        small_job(static_cast<std::uint64_t>(j + 1), 0.0, 30.0, 119.0, 10.0));
  const auto plain = core::ActiveDelayScheduler().schedule(request);
  core::ActiveDelayConfig config;  // max_grid_draw_kw = 0
  const auto same = core::ActiveDelayScheduler(config).schedule(request);
  for (std::size_t i = 0; i < plain.outcome.placements.size(); ++i)
    EXPECT_DOUBLE_EQ(plain.outcome.placements[i].start.value(),
                     same.outcome.placements[i].start.value());
}

// --- hybrid supply -----------------------------------------------------------

TEST(HybridSupply, SumsWindAndSolar) {
  const auto hybrid = sim::make_hybrid_supply(
      trace::WindSitePresets::texas_10(), Kilowatts{600.0}, Kilowatts{400.0},
      util::days(2.0), util::kFiveMinutes, 7);
  EXPECT_EQ(hybrid.size(), 2u * 288u);
  EXPECT_GE(hybrid.min(), 0.0);
  // Peak cannot exceed combined installed capacity.
  EXPECT_LE(hybrid.max(), 1000.0 + 1e-6);
}

TEST(HybridSupply, Deterministic) {
  const auto a = sim::make_hybrid_supply(
      trace::WindSitePresets::colorado_11005(), Kilowatts{500.0},
      Kilowatts{500.0}, util::days(1.0), util::kFiveMinutes, 9);
  const auto b = sim::make_hybrid_supply(
      trace::WindSitePresets::colorado_11005(), Kilowatts{500.0},
      Kilowatts{500.0}, util::days(1.0), util::kFiveMinutes, 9);
  EXPECT_EQ(a, b);
}

TEST(HybridSupply, SolarFillsTheDaytime) {
  // With the same seed, adding solar raises the 10-16h average far more
  // than the night average.
  const auto wind_only = sim::make_hybrid_supply(
      trace::WindSitePresets::texas_10(), Kilowatts{600.0}, Kilowatts{1e-6},
      util::days(10.0), util::kFiveMinutes, 5);
  const auto hybrid = sim::make_hybrid_supply(
      trace::WindSitePresets::texas_10(), Kilowatts{600.0}, Kilowatts{400.0},
      util::days(10.0), util::kFiveMinutes, 5);
  double day_gain = 0.0, night_gain = 0.0;
  std::size_t day_n = 0, night_n = 0;
  for (std::size_t i = 0; i < hybrid.size(); ++i) {
    const double hour = std::fmod(hybrid.time_at(i).value() / 60.0, 24.0);
    const double gain = hybrid[i] - wind_only[i];
    if (hour >= 10.0 && hour < 16.0) {
      day_gain += gain;
      ++day_n;
    } else if (hour < 4.0 || hour >= 22.0) {
      night_gain += gain;
      ++night_n;
    }
  }
  EXPECT_GT(day_gain / static_cast<double>(day_n),
            10.0 * std::max(night_gain / static_cast<double>(night_n), 0.1));
}

}  // namespace
}  // namespace smoother
