// smoother::resilience: telemetry guard, fault injector, error taxonomy,
// health counters, and the OnlineSmoother degraded-mode state machine.
#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/core/online.hpp"
#include "smoother/resilience/fault_injector.hpp"
#include "smoother/resilience/health.hpp"
#include "smoother/resilience/result.hpp"
#include "smoother/resilience/telemetry_guard.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::resilience {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TelemetryGuardConfig guard_config() {
  TelemetryGuardConfig config;
  config.rated_power_kw = 1000.0;
  return config;
}

TEST(TelemetryGuardConfig, Validation) {
  EXPECT_NO_THROW(guard_config().validate());
  TelemetryGuardConfig config = guard_config();
  config.rated_power_kw = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = guard_config();
  config.spike_clamp_factor = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(TelemetryGuard, CleanSamplesPassThroughBitIdentical) {
  TelemetryGuard guard(guard_config());
  for (double v : {0.0, 1.5, 499.125, 1000.0, 2999.999}) {
    const GuardedSample sample = guard.sanitize(v);
    EXPECT_EQ(sample.value_kw, v);  // exact, not approximate
    EXPECT_EQ(sample.fault, FaultKind::kNone);
  }
}

TEST(TelemetryGuard, NonFiniteFilledByPersistence) {
  TelemetryGuard guard(guard_config());
  guard.sanitize(420.0);
  for (double bad : {kNaN, kInf, -kInf}) {
    const GuardedSample sample = guard.sanitize(bad);
    EXPECT_DOUBLE_EQ(sample.value_kw, 420.0);
    EXPECT_EQ(sample.fault, FaultKind::kTelemetryNaN);
  }
  // Before any good sample the fill is 0.
  TelemetryGuard fresh(guard_config());
  EXPECT_DOUBLE_EQ(fresh.sanitize(kNaN).value_kw, 0.0);
}

TEST(TelemetryGuard, SpikesClampedAgainstRatedPower) {
  TelemetryGuard guard(guard_config());  // bound = 3 * 1000
  const GuardedSample high = guard.sanitize(25000.0);
  EXPECT_DOUBLE_EQ(high.value_kw, 1000.0);
  EXPECT_EQ(high.fault, FaultKind::kTelemetrySpike);
  const GuardedSample low = guard.sanitize(-25000.0);
  EXPECT_DOUBLE_EQ(low.value_kw, 0.0);
  EXPECT_EQ(low.fault, FaultKind::kTelemetrySpike);
  // A spike does not poison the persistence source.
  guard.sanitize(640.0);
  guard.sanitize(25000.0);
  EXPECT_DOUBLE_EQ(guard.last_good_kw(), 640.0);
}

TEST(TelemetryGuard, GapFillReportsDropout) {
  TelemetryGuard guard(guard_config());
  guard.sanitize(333.0);
  const GuardedSample gap = guard.fill_gap();
  EXPECT_DOUBLE_EQ(gap.value_kw, 333.0);
  EXPECT_EQ(gap.fault, FaultKind::kTelemetryDropout);
}

TEST(TelemetryGuard, DisabledGuardIsTransparent) {
  TelemetryGuardConfig config = guard_config();
  config.enabled = false;
  TelemetryGuard guard(config);
  EXPECT_TRUE(std::isnan(guard.sanitize(kNaN).value_kw));
  EXPECT_DOUBLE_EQ(guard.sanitize(1e9).value_kw, 1e9);
}

TEST(Taxonomy, ToStringCoversEveryValue) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i)
    EXPECT_NE(to_string(static_cast<FaultKind>(i)), "?");
  for (std::size_t i = 0; i < kFallbackReasonCount; ++i)
    EXPECT_NE(to_string(static_cast<FallbackReason>(i)), "?");
}

TEST(ResultType, CarriesValueOrError) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 7);
  Result<int> bad(Error{FaultKind::kOracleThrow, "down"});
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().kind, FaultKind::kOracleThrow);
  EXPECT_EQ(bad.error().message, "down");
}

TEST(HealthReport, CountsFaultsAndFallbacks) {
  HealthReport health;
  health.samples_seen = 10;
  health.record_sample_fault(FaultKind::kTelemetryNaN);
  health.record_sample_fault(FaultKind::kTelemetryNaN);
  health.record_interval_fault(FaultKind::kSolverFailure);
  health.intervals_seen = 4;
  health.record_fallback(FallbackReason::kSolverNotConverged);
  health.record_fallback(FallbackReason::kNone);  // no-op
  EXPECT_EQ(health.samples_faulted, 2u);
  EXPECT_EQ(health.faults_of(FaultKind::kTelemetryNaN), 2u);
  EXPECT_EQ(health.faults_of(FaultKind::kSolverFailure), 1u);
  EXPECT_EQ(health.intervals_fallback, 1u);
  EXPECT_DOUBLE_EQ(health.fallback_rate(), 0.25);
  EXPECT_NE(health.summary().find("solver-not-converged=1"),
            std::string::npos);
}

FaultInjectorConfig mixed_faults(double rate) {
  FaultInjectorConfig config;
  config.telemetry_nan_rate = rate / 4.0;
  config.telemetry_dropout_rate = rate / 4.0;
  config.telemetry_spike_rate = rate / 4.0;
  config.telemetry_stuck_rate = rate / 4.0;
  config.battery_outage_rate = rate;
  config.oracle_throw_rate = rate / 3.0;
  config.oracle_bad_length_rate = rate / 3.0;
  config.oracle_stale_rate = rate / 3.0;
  config.solver_failure_rate = rate;
  return config;
}

TEST(FaultInjectorConfig, Validation) {
  EXPECT_NO_THROW(mixed_faults(0.3).validate());
  FaultInjectorConfig config;
  config.telemetry_nan_rate = 0.6;
  config.telemetry_dropout_rate = 0.6;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = FaultInjectorConfig{};
  config.solver_failure_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = FaultInjectorConfig{};
  config.battery_capacity_fade = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = FaultInjectorConfig{};
  config.spike_multiplier = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  FaultInjector a(mixed_faults(0.2), 99);
  FaultInjector b(mixed_faults(0.2), 99);
  for (std::size_t i = 0; i < 500; ++i) {
    const double clean = 100.0 + static_cast<double>(i);
    const double va = a.corrupt_sample(i, clean);
    const double vb = b.corrupt_sample(i, clean);
    if (std::isnan(va))
      EXPECT_TRUE(std::isnan(vb));
    else
      EXPECT_DOUBLE_EQ(va, vb);
    EXPECT_EQ(a.battery_available(i), b.battery_available(i));
    EXPECT_EQ(a.solver_should_fail(i), b.solver_should_fail(i));
  }
  EXPECT_EQ(a.injected(), b.injected());
}

TEST(FaultInjector, FaultSetsAreNestedInTheRate) {
  // Keyed-by-index draws make the faults injected at a low rate a subset
  // of those at any higher rate — the property that makes the bench's
  // fallback-vs-rate curves monotone by construction.
  FaultInjector low(mixed_faults(0.08), 7);
  FaultInjector high(mixed_faults(0.32), 7);
  std::size_t low_faults = 0, high_faults = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    // Strictly increasing clean values so any corruption is detectable.
    const double clean = static_cast<double>(i + 1);
    const bool low_faulted = low.corrupt_sample(i, clean) != clean;
    const bool high_faulted = high.corrupt_sample(i, clean) != clean;
    if (low_faulted) {
      EXPECT_TRUE(high_faulted) << "fault at rate 0.08 missing at 0.32, i="
                                << i;
      ++low_faults;
    }
    if (high_faulted) ++high_faults;
    if (!low.battery_available(i)) EXPECT_FALSE(high.battery_available(i));
    if (low.solver_should_fail(i)) EXPECT_TRUE(high.solver_should_fail(i));
  }
  EXPECT_GT(low_faults, 0u);
  EXPECT_GT(high_faults, low_faults);
}

TEST(FaultInjector, ZeroRateInjectsNothing) {
  FaultInjector injector(FaultInjectorConfig{}, 3);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(injector.corrupt_sample(i, 50.0 + static_cast<double>(i)),
                     50.0 + static_cast<double>(i));
    EXPECT_TRUE(injector.battery_available(i));
    EXPECT_FALSE(injector.solver_should_fail(i));
  }
  for (std::size_t k = 0; k < kFaultKindCount; ++k)
    EXPECT_EQ(injector.injected()[k], 0u);
}

TEST(FaultInjector, BatteryOutagesSpanConfiguredWindows) {
  FaultInjectorConfig config;
  config.battery_outage_rate = 0.05;
  config.battery_outage_intervals = 4;
  FaultInjector injector(config, 11);
  // Every unavailable stretch is at least the window long (overlapping
  // starts can extend it).
  std::size_t run = 0, runs = 0;
  for (std::size_t i = 0; i < 3000; ++i) {
    if (!injector.battery_available(i)) {
      ++run;
    } else if (run > 0) {
      EXPECT_GE(run, 4u);
      run = 0;
      ++runs;
    }
  }
  EXPECT_GT(runs, 0u);
}

TEST(FaultInjector, StuckWindowsReplayTheLastCleanValue) {
  FaultInjectorConfig config;
  config.telemetry_stuck_rate = 0.05;
  config.stuck_window_samples = 5;
  FaultInjector injector(config, 23);
  double last_clean = 0.0;
  bool saw_stuck = false;
  for (std::size_t i = 0; i < 2000; ++i) {
    const double clean = static_cast<double>(i + 1);
    const double out = injector.corrupt_sample(i, clean);
    if (out != clean) {
      saw_stuck = true;
      EXPECT_DOUBLE_EQ(out, last_clean);
    } else {
      last_clean = clean;
    }
  }
  EXPECT_TRUE(saw_stuck);
  EXPECT_GT(injector.injected_of(FaultKind::kTelemetryStuck), 0u);
}

TEST(FaultInjector, WrappedOracleInjectsEveryFailureKind) {
  FaultInjectorConfig config;
  config.oracle_throw_rate = 0.2;
  config.oracle_bad_length_rate = 0.2;
  config.oracle_stale_rate = 0.2;
  FaultInjector injector(config, 5);
  auto oracle = injector.wrap_oracle([](std::size_t interval) {
    return std::vector<double>(12, static_cast<double>(interval));
  });
  std::size_t throws = 0, truncated = 0, stale = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    try {
      const auto forecast = oracle(i);
      if (forecast.size() != 12)
        ++truncated;
      else if (forecast[0] != static_cast<double>(i))
        ++stale;
    } catch (const std::runtime_error&) {
      ++throws;
    }
  }
  EXPECT_GT(throws, 0u);
  EXPECT_GT(truncated, 0u);
  EXPECT_GT(stale, 0u);
  EXPECT_EQ(injector.injected_of(FaultKind::kOracleThrow), throws);
  EXPECT_EQ(injector.injected_of(FaultKind::kOracleBadLength), truncated);
}

TEST(FaultInjector, FadedSpecShrinksCapacityOnly) {
  FaultInjectorConfig config;
  config.battery_capacity_fade = 0.25;
  FaultInjector injector(config, 1);
  battery::BatterySpec spec;
  spec.capacity = util::KilowattHours{200.0};
  const auto faded = injector.faded_spec(spec);
  EXPECT_DOUBLE_EQ(faded.capacity.value(), 150.0);
  EXPECT_DOUBLE_EQ(faded.max_charge_rate.value(),
                   spec.max_charge_rate.value());
}

}  // namespace
}  // namespace smoother::resilience

// ---------------------------------------------------------------------------
// OnlineSmoother integration: degraded-mode state machine and the soak test.
// ---------------------------------------------------------------------------
namespace smoother::core {
namespace {

using resilience::FallbackReason;
using resilience::FaultInjector;
using resilience::FaultInjectorConfig;

OnlineSmootherConfig streaming_config() {
  OnlineSmootherConfig config;
  config.rated_power = util::Kilowatts{800.0};
  config.warmup_intervals = 4;
  config.history_intervals = 48;
  config.recovery_intervals = 3;
  return config;
}

battery::Battery streaming_battery() {
  auto spec = battery::spec_for_max_rate(util::Kilowatts{488.0},
                                         util::kFiveMinutes, 2.0);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return battery::Battery(spec);
}

/// Sawtooth supply: every interval fluctuates identically, so every
/// post-warmup interval is classified smoothable (threshold degeneracy is
/// handled by the epsilon floor) and persistence forecasts are exact.
std::vector<double> sawtooth_supply(std::size_t samples) {
  std::vector<double> supply(samples);
  for (std::size_t i = 0; i < samples; ++i)
    supply[i] = 200.0 + 50.0 * static_cast<double>(i % 12);
  return supply;
}

TEST(OnlineResilience, CleanInputKeepsEveryCounterAtZero) {
  OnlineSmoother smoother(streaming_config(), streaming_battery());
  const auto supply = sawtooth_supply(12 * 40);
  for (double v : supply) smoother.push(v);
  EXPECT_EQ(smoother.health().samples_faulted, 0u);
  EXPECT_EQ(smoother.health().intervals_fallback, 0u);
  EXPECT_EQ(smoother.health().degraded_entries, 0u);
  EXPECT_FALSE(smoother.degraded());
  for (const auto& record : smoother.records())
    EXPECT_EQ(record.fallback, FallbackReason::kNone);
}

TEST(OnlineResilience, BatteryOutageFallsBackToPassThrough) {
  OnlineSmoother smoother(streaming_config(), streaming_battery());
  std::size_t polls = 0;
  smoother.set_battery_monitor([&](std::size_t interval) {
    ++polls;
    return !(interval >= 10 && interval < 14);
  });
  const auto supply = sawtooth_supply(12 * 20);
  for (double v : supply) smoother.push(v);
  ASSERT_EQ(smoother.records().size(), 20u);
  EXPECT_EQ(polls, 20u);  // exactly one poll per interval
  for (std::size_t k = 10; k < 14; ++k) {
    EXPECT_EQ(smoother.records()[k].fallback, FallbackReason::kBatteryFaulted);
    EXPECT_FALSE(smoother.records()[k].smoothed);
    // Pass-through: output of the faulted interval equals its input.
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_DOUBLE_EQ(smoother.output()[k * 12 + i], supply[k * 12 + i]);
  }
  EXPECT_EQ(smoother.health().fallbacks_of(FallbackReason::kBatteryFaulted),
            4u);
  EXPECT_FALSE(smoother.degraded());  // outage cleared, hysteresis elapsed
  EXPECT_EQ(smoother.health().recoveries, 1u);
}

TEST(OnlineResilience, ForcedSolverFailureUsesCheapFallbackPlan) {
  OnlineSmoother smoother(streaming_config(), streaming_battery());
  solver::QpSettings crippled;
  crippled.max_iterations = 0;  // guaranteed kMaxIterations
  std::size_t forced = 0;
  smoother.set_solver_settings_hook(
      [&](std::size_t interval) -> std::optional<solver::QpSettings> {
        if (interval == 8) {
          ++forced;
          return crippled;
        }
        return std::nullopt;
      });
  const auto supply = sawtooth_supply(12 * 20);
  for (double v : supply) smoother.push(v);
  EXPECT_EQ(forced, 1u);
  const auto& record = smoother.records()[8];
  EXPECT_EQ(record.fallback, FallbackReason::kSolverNotConverged);
  // The cheap plan still engages the battery and the corridor holds.
  EXPECT_TRUE(record.smoothed);
  EXPECT_GE(smoother.battery().soc_fraction(), 0.10 - 1e-9);
  EXPECT_LE(smoother.battery().soc_fraction(), 1.0 + 1e-9);
  // Hysteresis: the next recovery_intervals smoothable intervals hold.
  EXPECT_EQ(smoother.records()[9].fallback, FallbackReason::kDegradedHold);
  EXPECT_TRUE(smoother.records()[9].degraded);
  // And the QP path resumes afterwards.
  bool resumed = false;
  for (std::size_t k = 12; k < smoother.records().size(); ++k)
    resumed = resumed ||
              (smoother.records()[k].smoothed &&
               smoother.records()[k].fallback == FallbackReason::kNone);
  EXPECT_TRUE(resumed);
}

TEST(OnlineResilience, MostlyFaultedIntervalIsNotPlannedOn) {
  OnlineSmoother smoother(streaming_config(), streaming_battery());
  const auto supply = sawtooth_supply(12 * 20);
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < supply.size(); ++i) {
    // Interval 10: 7 of 12 samples lost (above the 50% threshold).
    const bool corrupt = i / 12 == 10 && i % 12 < 7;
    smoother.push(corrupt ? kNaN : supply[i]);
  }
  EXPECT_EQ(smoother.records()[10].fallback,
            FallbackReason::kTelemetryUnreliable);
  EXPECT_FALSE(smoother.records()[10].smoothed);
  EXPECT_EQ(smoother.health().samples_faulted, 7u);
  EXPECT_FALSE(smoother.degraded());  // recovered on the clean tail
}

TEST(OnlineResilience, PushMissingGapFillsAndCounts) {
  OnlineSmoother smoother(streaming_config(), streaming_battery());
  smoother.push(500.0);
  const auto record = smoother.push_missing();
  EXPECT_FALSE(record.has_value());
  EXPECT_EQ(smoother.health().faults_of(
                resilience::FaultKind::kTelemetryDropout),
            1u);
  for (int i = 0; i < 10; ++i) smoother.push(500.0);
  // The gap was filled by persistence: a flat interval stays flat.
  EXPECT_DOUBLE_EQ(smoother.output()[1], 500.0);
}

// The acceptance soak: >= 10k intervals mixing every fault kind, no
// exception escapes, stream stays aligned, corridor holds, and the
// smoother is back in normal QP-planned mode once faults clear.
TEST(OnlineResilience, TenThousandIntervalMixedFaultSoak) {
  OnlineSmootherConfig config;
  config.flexible_smoothing.points_per_interval = 4;
  config.flexible_smoothing.qp.max_iterations = 2000;
  config.rated_power = util::Kilowatts{800.0};
  config.warmup_intervals = 8;
  config.history_intervals = 96;
  config.recovery_intervals = 3;
  auto spec = battery::spec_for_max_rate(util::Kilowatts{400.0},
                                         util::kFiveMinutes, 2.0);

  FaultInjectorConfig faults;
  faults.telemetry_nan_rate = 0.02;
  faults.telemetry_dropout_rate = 0.02;
  faults.telemetry_spike_rate = 0.02;
  faults.telemetry_stuck_rate = 0.02;
  faults.battery_outage_rate = 0.03;
  faults.battery_capacity_fade = 0.10;
  faults.oracle_throw_rate = 0.05;
  faults.oracle_bad_length_rate = 0.05;
  faults.oracle_stale_rate = 0.05;
  faults.solver_failure_rate = 0.05;
  FaultInjector injector(faults, 2026);

  OnlineSmoother smoother(config,
                          battery::Battery(injector.faded_spec(spec)));

  constexpr std::size_t kFaultyIntervals = 10000;
  constexpr std::size_t kCleanTail = 50;
  constexpr std::size_t kPoints = 4;
  const std::size_t total_samples =
      (kFaultyIntervals + kCleanTail) * kPoints;

  // Synthetic smoothable supply: slow sinusoid + deterministic noise.
  util::Rng rng(77);
  std::vector<double> clean(total_samples);
  for (std::size_t i = 0; i < total_samples; ++i)
    clean[i] = 400.0 + 200.0 * std::sin(static_cast<double>(i) / 17.0) +
               rng.uniform(0.0, 120.0);

  const auto perfect = [&](std::size_t interval) {
    std::vector<double> predicted(kPoints);
    for (std::size_t i = 0; i < kPoints; ++i)
      predicted[i] = clean[interval * kPoints + i];
    return predicted;
  };
  const std::size_t faulty_samples = kFaultyIntervals * kPoints;
  // Faults stop at the tail: the wrapped (fault-injecting) oracle serves
  // the first kFaultyIntervals, the clean one serves the rest.
  auto faulty_oracle = injector.wrap_oracle(perfect);
  smoother.set_forecast_oracle([&, faulty_oracle](std::size_t interval) {
    return interval * kPoints < faulty_samples ? faulty_oracle(interval)
                                               : perfect(interval);
  });
  solver::QpSettings crippled = config.flexible_smoothing.qp;
  crippled.max_iterations = 0;
  smoother.set_battery_monitor([&](std::size_t interval) {
    return interval * kPoints >= faulty_samples ||
           injector.battery_available(interval);
  });
  smoother.set_solver_settings_hook(
      [&](std::size_t interval) -> std::optional<solver::QpSettings> {
        if (interval * kPoints < faulty_samples &&
            injector.solver_should_fail(interval))
          return crippled;
        return std::nullopt;
      });

  for (std::size_t i = 0; i < total_samples; ++i) {
    const double raw =
        i < faulty_samples ? injector.corrupt_sample(i, clean[i]) : clean[i];
    ASSERT_NO_THROW(smoother.push(raw)) << "sample " << i;
  }

  // Alignment and corridor invariants.
  ASSERT_EQ(smoother.records().size(), kFaultyIntervals + kCleanTail);
  EXPECT_EQ(smoother.output().size(), total_samples);
  EXPECT_GE(smoother.battery().soc_fraction(),
            smoother.battery().spec().min_soc_fraction - 1e-9);
  EXPECT_LE(smoother.battery().soc_fraction(), 1.0 + 1e-9);

  // Every fault kind was actually exercised.
  const auto& health = smoother.health();
  EXPECT_GT(health.samples_faulted, 0u);
  EXPECT_GT(health.fallbacks_of(FallbackReason::kBatteryFaulted), 0u);
  EXPECT_GT(health.fallbacks_of(FallbackReason::kOracleFailed), 0u);
  EXPECT_GT(health.fallbacks_of(FallbackReason::kSolverNotConverged), 0u);
  EXPECT_GT(health.fallbacks_of(FallbackReason::kDegradedHold), 0u);
  EXPECT_GT(health.recoveries, 0u);

  // Faults cleared for the tail: the smoother must be back in normal mode
  // and planning with the QP again.
  EXPECT_FALSE(smoother.degraded());
  std::size_t planned_tail = 0;
  for (std::size_t k = kFaultyIntervals + config.recovery_intervals;
       k < smoother.records().size(); ++k) {
    EXPECT_EQ(smoother.records()[k].fallback, FallbackReason::kNone);
    if (smoother.records()[k].smoothed) ++planned_tail;
  }
  EXPECT_GT(planned_tail, 0u);
}

}  // namespace
}  // namespace smoother::core
