#include "smoother/solver/matrix.hpp"

#include <gtest/gtest.h>

namespace smoother::solver {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
}

TEST(Matrix, InitializerList) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  const std::vector<double> d = {2.0, 5.0};
  const Matrix diag = Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(diag(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(Matrix, Transpose) {
  const Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transpose(), m);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{10.0, 20.0}, {30.0, 40.0}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 44.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 9.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6.0);
  const Matrix wrong(3, 2);
  EXPECT_THROW(a + wrong, std::invalid_argument);
}

TEST(Matrix, MatrixProduct) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  const Matrix wide(2, 3);
  EXPECT_THROW(wide * a, std::invalid_argument);
}

TEST(Matrix, VectorProducts) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector x = {1.0, 10.0};
  const Vector y = m * x;
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 21.0);
  EXPECT_DOUBLE_EQ(y[2], 65.0);
  const Vector z = {1.0, 1.0, 1.0};
  const Vector mt_z = m.transpose_times(z);
  ASSERT_EQ(mt_z.size(), 2u);
  EXPECT_DOUBLE_EQ(mt_z[0], 9.0);
  EXPECT_DOUBLE_EQ(mt_z[1], 12.0);
  EXPECT_THROW(m * z, std::invalid_argument);
  EXPECT_THROW(m.transpose_times(x), std::invalid_argument);
}

TEST(Matrix, TransposeTimesMatchesExplicitTranspose) {
  const Matrix m = {{1.0, -2.0, 0.5}, {3.0, 4.0, -1.0}};
  const Vector x = {2.0, -3.0};
  const Vector fast = m.transpose_times(x);
  const Vector slow = m.transpose() * x;
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_DOUBLE_EQ(fast[i], slow[i]);
}

TEST(Matrix, AddDiagonal) {
  Matrix m = Matrix::identity(2);
  m.add_diagonal(3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  Matrix rect(2, 3);
  EXPECT_THROW(rect.add_diagonal(1.0), std::logic_error);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a = {{1.0, 2.0}};
  const Matrix b = {{1.5, -1.0}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a = {3.0, 4.0};
  const Vector b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  EXPECT_DOUBLE_EQ(norm_inf({}), 0.0);
  Vector y = {1.0, 1.0};
  axpy(2.0, b, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  const Vector c = {1.0};
  EXPECT_THROW((void)dot(a, c), std::invalid_argument);
}

TEST(VectorOps, AddSubtractScale) {
  const Vector a = {1.0, 2.0};
  const Vector b = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(add(a, b)[1], 22.0);
  EXPECT_DOUBLE_EQ(subtract(b, a)[0], 9.0);
  EXPECT_DOUBLE_EQ(scale(3.0, a)[1], 6.0);
}

TEST(Matrix, ToStringContainsEntries) {
  const Matrix m = {{1.5, 2.0}};
  const std::string s = m.to_string();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

}  // namespace
}  // namespace smoother::solver
