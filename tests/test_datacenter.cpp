#include "smoother/power/datacenter.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::power {
namespace {

using util::Kilowatts;

TEST(DatacenterSpec, Validation) {
  DatacenterSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.server_count = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = DatacenterSpec{};
  spec.server_idle_watts = 200.0;  // above peak (186)
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = DatacenterSpec{};
  spec.pue = 0.9;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = DatacenterSpec{};
  spec.network_fraction = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(DatacenterPowerModel, Eq5ServerPower) {
  const DatacenterPowerModel model;  // 11000 servers, 186/62 W
  // Idle fleet: 62 W * 11000 = 682 kW.
  EXPECT_NEAR(model.server_power(0.0).value(), 682.0, 1e-9);
  // Full fleet: 186 W * 11000 = 2046 kW.
  EXPECT_NEAR(model.server_power(1.0).value(), 2046.0, 1e-9);
  // Linear in between (Eq. 5): idle + (peak-idle)*mu.
  EXPECT_NEAR(model.server_power(0.5).value(), 682.0 + 0.5 * 1364.0, 1e-9);
}

TEST(DatacenterPowerModel, UtilizationClamped) {
  const DatacenterPowerModel model;
  EXPECT_DOUBLE_EQ(model.server_power(-0.5).value(),
                   model.server_power(0.0).value());
  EXPECT_DOUBLE_EQ(model.server_power(1.5).value(),
                   model.server_power(1.0).value());
}

TEST(DatacenterPowerModel, Eq4NetworkConstant) {
  const DatacenterPowerModel model;
  // 10 % of total server peak: 0.1 * 2046 kW.
  EXPECT_NEAR(model.network_power().value(), 204.6, 1e-9);
  EXPECT_NEAR(model.it_power(0.0).value(), 682.0 + 204.6, 1e-9);
}

TEST(DatacenterPowerModel, Eq3PueMultiplier) {
  const DatacenterPowerModel model;
  EXPECT_NEAR(model.system_power(1.0).value(), (2046.0 + 204.6) * 1.3, 1e-9);
  EXPECT_DOUBLE_EQ(model.min_system_power().value(),
                   model.system_power(0.0).value());
  EXPECT_DOUBLE_EQ(model.max_system_power().value(),
                   model.system_power(1.0).value());
}

TEST(DatacenterPowerModel, UtilizationForInvertsSystemPower) {
  const DatacenterPowerModel model;
  for (double mu : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(model.utilization_for(model.system_power(mu)), mu, 1e-9);
  }
  // Outside the band clamps.
  EXPECT_DOUBLE_EQ(model.utilization_for(Kilowatts{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(model.utilization_for(Kilowatts{1e9}), 1.0);
}

TEST(DatacenterPowerModel, PowerSeries) {
  const DatacenterPowerModel model;
  const util::TimeSeries mu = test::series({0.0, 1.0});
  const util::TimeSeries power = model.power_series(mu);
  EXPECT_DOUBLE_EQ(power[0], model.min_system_power().value());
  EXPECT_DOUBLE_EQ(power[1], model.max_system_power().value());
}

TEST(DatacenterPowerModel, JobPowerScalesWithServersAndUtilization) {
  const DatacenterPowerModel model;
  const double one = model.job_power(1, 1.0).value();
  // One server flat out: (62 + 124) W * PUE.
  EXPECT_NEAR(one, 0.186 * 1.3, 1e-9);
  EXPECT_NEAR(model.job_power(100, 1.0).value(), 100.0 * one, 1e-9);
  EXPECT_LT(model.job_power(100, 0.2).value(),
            model.job_power(100, 0.9).value());
  // Larger than the fleet clamps to the fleet.
  EXPECT_DOUBLE_EQ(model.job_power(50000, 1.0).value(),
                   model.job_power(11000, 1.0).value());
}

TEST(DatacenterPowerModel, CustomSpec) {
  DatacenterSpec spec;
  spec.server_count = 100;
  spec.server_peak_watts = 200.0;
  spec.server_idle_watts = 100.0;
  spec.pue = 2.0;
  spec.network_fraction = 0.0;
  const DatacenterPowerModel model(spec);
  EXPECT_NEAR(model.system_power(0.5).value(), (10.0 + 5.0) * 2.0, 1e-9);
}

}  // namespace
}  // namespace smoother::power
