#include "smoother/power/solar.hpp"
#include "smoother/trace/solar_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "smoother/power/capacity_factor.hpp"

namespace smoother {
namespace {

using power::PvArray;
using power::PvArraySpec;
using trace::SolarIrradianceModel;
using trace::SolarSiteParams;
using trace::SolarSitePresets;
using util::Kilowatts;

TEST(PvArraySpec, Validation) {
  PvArraySpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.rated_power = Kilowatts{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = PvArraySpec{};
  spec.temperature_coefficient_per_c = 0.01;  // power rising with heat
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = PvArraySpec{};
  spec.system_losses = 1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = PvArraySpec{};
  spec.noct_celsius = 15.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(PvArray, ZeroIrradianceZeroOutput) {
  const PvArray array;
  EXPECT_DOUBLE_EQ(array.output(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(array.output(-50.0).value(), 0.0);
}

TEST(PvArray, OutputScalesWithIrradiance) {
  const PvArray array;
  const double half = array.output(500.0, 20.0).value();
  const double full = array.output(1000.0, 20.0).value();
  EXPECT_GT(full, half);
  // Roughly linear (cell heating bends it slightly below 2x).
  EXPECT_NEAR(full / half, 2.0, 0.15);
}

TEST(PvArray, HotCellsProduceLess) {
  const PvArray array;
  EXPECT_LT(array.output(800.0, 40.0).value(),
            array.output(800.0, 5.0).value());
}

TEST(PvArray, CellTemperatureNoctModel) {
  const PvArray array;  // NOCT 45
  // At 800 W/m^2 and 20 C ambient the cell sits exactly at NOCT.
  EXPECT_NEAR(array.cell_temperature(20.0, 800.0), 45.0, 1e-9);
  EXPECT_NEAR(array.cell_temperature(20.0, 0.0), 20.0, 1e-9);
}

TEST(PvArray, NeverExceedsRatedNorNegative) {
  const PvArray array;
  for (double g = 0.0; g <= 1500.0; g += 50.0) {
    for (double t : {-10.0, 20.0, 45.0}) {
      const double p = array.output(g, t).value();
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, array.spec().rated_power.value());
    }
  }
}

TEST(PvArray, SeriesOverloadsAgree) {
  const PvArray array;
  const auto irradiance = test::series({0.0, 400.0, 900.0});
  const auto temps = test::constant_series(25.0, 3);
  const auto fixed = array.power_series(irradiance, 25.0);
  const auto per_sample = array.power_series(irradiance, temps);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(fixed[i], per_sample[i]);
  const auto wrong = test::constant_series(25.0, 2);
  EXPECT_THROW(array.power_series(irradiance, wrong), std::invalid_argument);
}

TEST(SolarSiteParams, Validation) {
  SolarSiteParams p;
  EXPECT_NO_THROW(p.validate());
  p.sunrise_hour = 19.0;  // after sunset
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SolarSiteParams{};
  p.mean_cloud_cover = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SolarSiteParams{};
  p.dip_depth = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(SolarIrradianceModel, NightIsDark) {
  const SolarIrradianceModel model(SolarSitePresets::coastal());
  const auto day = model.generate_day(3);
  for (std::size_t i = 0; i < day.size(); ++i) {
    const double hour = std::fmod(day.time_at(i).value() / 60.0, 24.0);
    if (hour < 5.9 || hour > 18.1) EXPECT_DOUBLE_EQ(day[i], 0.0);
    EXPECT_GE(day[i], 0.0);
    EXPECT_LE(day[i], 1000.0 + 1e-9);
  }
}

TEST(SolarIrradianceModel, Deterministic) {
  const SolarIrradianceModel model(SolarSitePresets::desert());
  EXPECT_EQ(model.generate_day(9), model.generate_day(9));
  EXPECT_NE(model.generate_day(9), model.generate_day(10));
}

TEST(SolarIrradianceModel, NoonBrighterThanMorning) {
  const SolarIrradianceModel model(SolarSitePresets::desert());
  const auto day = model.generate_day(1);
  const auto at = [&](double hour) {
    return day[static_cast<std::size_t>(hour * 12.0)];
  };
  EXPECT_GT(at(12.0), at(7.0));
  EXPECT_GT(at(12.0), at(17.0));
}

TEST(SolarIrradianceModel, CoastalIsMoreVolatileThanDesert) {
  const power::PvArray array;
  const SolarIrradianceModel desert(SolarSitePresets::desert());
  const SolarIrradianceModel coastal(SolarSitePresets::coastal());
  double desert_var = 0.0, coastal_var = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto pd = array.power_series(
        desert.generate(util::days(7.0), util::kFiveMinutes, seed));
    const auto pc = array.power_series(
        coastal.generate(util::days(7.0), util::kFiveMinutes, seed));
    const auto vd = power::interval_capacity_factor_variances(
        pd, array.spec().rated_power, 12);
    const auto vc = power::interval_capacity_factor_variances(
        pc, array.spec().rated_power, 12);
    for (double v : vd) desert_var += v;
    for (double v : vc) coastal_var += v;
  }
  EXPECT_GT(coastal_var, 2.0 * desert_var);
}

TEST(SolarIrradianceModel, CapacityFactorPlausible) {
  const power::PvArray array;
  const SolarIrradianceModel model(SolarSitePresets::desert());
  const auto supply = array.power_series(
      model.generate(util::days(14.0), util::kFiveMinutes, 4));
  const double cf = power::average_capacity_factor(
      supply, array.spec().rated_power);
  // Fixed-tilt PV in a sunny climate: capacity factor ~15-30 %.
  EXPECT_GT(cf, 0.12);
  EXPECT_LT(cf, 0.35);
}

}  // namespace
}  // namespace smoother
