#include "smoother/stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smoother::stats {
namespace {

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);  // bins of width 2
  EXPECT_EQ(h.bin_of(-1.0), 0u);   // below range saturates low
  EXPECT_EQ(h.bin_of(0.5), 0u);
  EXPECT_EQ(h.bin_of(2.0), 1u);
  EXPECT_EQ(h.bin_of(9.99), 4u);
  EXPECT_EQ(h.bin_of(10.0), 4u);   // at/above range saturates high
  EXPECT_EQ(h.bin_of(99.0), 4u);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h(0.0, 4.0, 4);
  h.add_all(std::vector<double>{0.5, 1.5, 1.7, 3.5});
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_THROW((void)h.count(4), std::out_of_range);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_THROW((void)h.bin_center(5), std::out_of_range);
}

TEST(Histogram, RenderContainsAllBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  // Two lines, the fuller bin gets the longer bar.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("(2)"), std::string::npos);
  EXPECT_NE(out.find("(1)"), std::string::npos);
}

TEST(Histogram, RenderOnEmptyHistogram) {
  Histogram h(0.0, 1.0, 3);
  const std::string out = h.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace smoother::stats
