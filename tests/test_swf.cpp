#include "smoother/trace/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace smoother::trace {
namespace {

constexpr const char* kSampleSwf =
    "; Computer: Test cluster\n"
    "; MaxProcs: 64\n"
    "\n"
    "1 0 10 3600 16 3240 -1 16 7200 -1 1 1 1 -1 1 -1 -1 -1\n"
    "2 600 0 1800 -1 -1 -1 32 1800 -1 1 2 1 -1 1 -1 -1 -1\n"
    "3 1200 5 0 8 0 -1 8 600 -1 0 3 1 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesRecordsAndSkipsComments) {
  std::stringstream in(kSampleSwf);
  const auto records = parse_swf(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].job_number, 1);
  EXPECT_DOUBLE_EQ(records[0].submit_time_s, 0.0);
  EXPECT_DOUBLE_EQ(records[0].run_time_s, 3600.0);
  EXPECT_EQ(records[0].allocated_processors, 16);
  EXPECT_DOUBLE_EQ(records[0].average_cpu_time_s, 3240.0);
  EXPECT_EQ(records[1].allocated_processors, -1);
  EXPECT_EQ(records[1].requested_processors, 32);
}

TEST(Swf, SchedulablePredicate) {
  std::stringstream in(kSampleSwf);
  const auto records = parse_swf(in);
  EXPECT_TRUE(records[0].schedulable());
  EXPECT_TRUE(records[1].schedulable());   // requested procs fallback
  EXPECT_FALSE(records[2].schedulable());  // zero runtime
}

TEST(Swf, StrictModeRejectsMalformedLines) {
  std::stringstream in("1 2 3\n");
  EXPECT_THROW(parse_swf(in), std::runtime_error);
}

TEST(Swf, LenientModeDropsMalformedLines) {
  std::stringstream in(
      "1 2 3\n"
      "1 0 10 3600 16 -1 -1 16 7200 -1 1 1 1 -1 1 -1 -1 -1\n");
  const auto records = parse_swf(in, /*lenient=*/true);
  EXPECT_EQ(records.size(), 1u);
}

TEST(Swf, WriteReadRoundTrip) {
  std::stringstream in(kSampleSwf);
  const auto records = parse_swf(in);
  std::stringstream buffer;
  write_swf(buffer, records);
  const auto back = parse_swf(buffer);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].job_number, records[i].job_number);
    EXPECT_DOUBLE_EQ(back[i].run_time_s, records[i].run_time_s);
    EXPECT_EQ(back[i].allocated_processors, records[i].allocated_processors);
  }
}

TEST(Swf, LoadMissingFileThrows) {
  EXPECT_THROW(load_swf("/nonexistent/file.swf"), std::runtime_error);
}

TEST(SwfToJobs, ConvertsSchedulableRecords) {
  std::stringstream in(kSampleSwf);
  const auto records = parse_swf(in);
  const power::DatacenterPowerModel dc;
  const auto jobs = swf_to_jobs(records, dc);
  ASSERT_EQ(jobs.size(), 2u);  // third record is unschedulable
  EXPECT_EQ(jobs[0].id, 1u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival.value(), 0.0);
  EXPECT_DOUBLE_EQ(jobs[0].runtime.value(), 60.0);
  EXPECT_EQ(jobs[0].servers, 16u);
  // utilization = cpu time / runtime = 3240/3600.
  EXPECT_NEAR(jobs[0].cpu_utilization, 0.9, 1e-9);
  // Default slack factor of 4: deadline = arrival + 4 * runtime.
  EXPECT_DOUBLE_EQ(jobs[0].deadline.value(), 240.0);
  EXPECT_GT(jobs[0].power.value(), 0.0);
  // Record 2 lacks CPU time: default utilization applies.
  EXPECT_DOUBLE_EQ(jobs[1].cpu_utilization, 0.85);
  EXPECT_EQ(jobs[1].servers, 32u);
}

TEST(SwfToJobs, OptionsRespected) {
  std::stringstream in(kSampleSwf);
  const auto records = parse_swf(in);
  const power::DatacenterPowerModel dc;
  SwfConversionOptions options;
  options.deadline_slack_factor = 2.0;
  options.max_runtime_minutes = 30.0;
  const auto jobs = swf_to_jobs(records, dc, options);
  EXPECT_DOUBLE_EQ(jobs[0].runtime.value(), 30.0);  // clipped from 60
  EXPECT_DOUBLE_EQ(jobs[0].deadline.value(), 60.0);
  options.deadline_slack_factor = 0.5;
  EXPECT_THROW(swf_to_jobs(records, dc, options), std::invalid_argument);
}

}  // namespace
}  // namespace smoother::trace
