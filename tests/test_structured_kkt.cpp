#include "smoother/solver/structured_kkt.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "smoother/runtime/sweep_runner.hpp"
#include "smoother/solver/cholesky.hpp"
#include "smoother/solver/qp.hpp"
#include "smoother/solver/qp_solver.hpp"
#include "smoother/util/rng.hpp"

// Binary-wide allocation counter for the zero-allocation-per-iteration
// assertions (SolverWorkspace suite). Counting every successful operator
// new is enough: the test compares totals between runs that differ only in
// ADMM iteration count.
namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace smoother::solver {
namespace {

/// Dense FS constraint matrix A = [I ; L] for horizon m.
Matrix dense_fs_a(std::size_t m) {
  Matrix a(2 * m, m);
  for (std::size_t i = 0; i < m; ++i) {
    a(i, i) = 1.0;
    for (std::size_t t = 0; t <= i; ++t) a(m + i, t) = 1.0;
  }
  return a;
}

/// Dense KKT matrix K = P + sigma I + rho AᵀA for the FS structure.
Matrix dense_fs_kkt(std::size_t m, double sigma, double rho) {
  Matrix kkt = variance_quadratic_form(m);
  kkt.add_diagonal(sigma);
  const Matrix ata = dense_fs_a(m).gram();
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c) kkt(r, c) += rho * ata(r, c);
  return kkt;
}

struct FsShape {
  Vector u;
  double charge_cap = 0.0;
  double discharge_cap = 0.0;
  double cum_lower = 0.0;
  double cum_upper = 0.0;
};

FsShape random_fs_shape(std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  FsShape s;
  s.u.resize(m);
  for (double& v : s.u) v = rng.uniform(0.0, 40.0);
  s.charge_cap = rng.uniform(5.0, 50.0);
  s.discharge_cap = rng.uniform(5.0, 50.0);
  const double half_corridor = rng.uniform(10.0, 200.0);
  s.cum_lower = -half_corridor;
  s.cum_upper = rng.uniform(5.0, half_corridor);
  return s;
}

/// FS problem in the dense untagged form (the control arm).
QpProblem dense_problem(const FsShape& s) {
  const std::size_t m = s.u.size();
  QpProblem p;
  p.p = variance_quadratic_form(m);
  p.q = p.p * s.u;
  p.a = dense_fs_a(m);
  p.lower.assign(2 * m, 0.0);
  p.upper.assign(2 * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    p.lower[i] = -std::min(s.u[i], s.charge_cap);
    p.upper[i] = s.discharge_cap;
    p.lower[m + i] = s.cum_lower;
    p.upper[m + i] = s.cum_upper;
  }
  return p;
}

/// The same FS problem tagged kSmoothing: no materialized P/A, centered q.
QpProblem structured_problem(const FsShape& s) {
  QpProblem p = dense_problem(s);
  const std::size_t m = s.u.size();
  p.structure = QpStructure::kSmoothing;
  p.p = Matrix();
  p.a = Matrix();
  double u_sum = 0.0;
  for (const double v : s.u) u_sum += v;
  const double u_mean = u_sum / static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i)
    p.q[i] = 2.0 / static_cast<double>(m) * (s.u[i] - u_mean);
  return p;
}

TEST(StructuredKkt, SolveMatchesDenseKktInverse) {
  for (const std::size_t m : {2u, 3u, 12u, 77u}) {
    const double sigma = 1e-6;
    const double rho = 0.1;
    const auto structured = StructuredKkt::factorize(m, sigma, rho);
    ASSERT_TRUE(structured.has_value()) << "m=" << m;
    EXPECT_EQ(structured->dimension(), m);
    const auto dense = Cholesky::factorize(dense_fs_kkt(m, sigma, rho));
    ASSERT_TRUE(dense.has_value());
    util::Rng rng(13 + m);
    Vector b(m);
    for (double& v : b) v = rng.uniform(-10.0, 10.0);
    const Vector xs = structured->solve(b);
    const Vector xd = dense->solve(b);
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(xs[i], xd[i], 1e-9) << "m=" << m << " i=" << i;
  }
}

TEST(StructuredKkt, SolveIntoMatchesSolveAndChecksSizes) {
  const auto k = StructuredKkt::factorize(12, 1e-6, 0.1);
  ASSERT_TRUE(k.has_value());
  util::Rng rng(2);
  Vector b(12);
  for (double& v : b) v = rng.uniform(-5.0, 5.0);
  const Vector x = k->solve(b);
  Vector x2(12, 0.0);
  Vector scratch(12, 0.0);
  k->solve_into(b, x2, scratch);
  EXPECT_EQ(x, x2);
  Vector wrong(11, 0.0);
  EXPECT_THROW(k->solve_into(b, wrong, scratch), std::invalid_argument);
}

TEST(StructuredKkt, RejectsNonPositiveDefiniteSystems) {
  // A strongly negative sigma drives c (and the tridiagonal pivots) below
  // zero — the structured factorization must fail exactly like the dense
  // Cholesky does.
  EXPECT_FALSE(StructuredKkt::factorize(12, -1e3, 0.1).has_value());
  EXPECT_FALSE(StructuredKkt::factorize(0, 1e-6, 0.1).has_value());
  EXPECT_FALSE(
      Cholesky::factorize(dense_fs_kkt(12, -1e3, 0.1)).has_value());
}

TEST(FsOps, ImplicitOperatorsMatchDenseProducts) {
  for (const std::size_t m : {1u, 2u, 12u, 50u}) {
    const Matrix a = dense_fs_a(m);
    const Matrix p = variance_quadratic_form(m);
    util::Rng rng(21 + m);
    Vector x(m);
    for (double& v : x) v = rng.uniform(-20.0, 20.0);
    Vector y(2 * m);
    for (double& v : y) v = rng.uniform(-20.0, 20.0);

    Vector ax(2 * m, 0.0);
    fs_ops::apply_a(x, ax);
    const Vector ax_dense = a * x;
    for (std::size_t i = 0; i < 2 * m; ++i)
      EXPECT_NEAR(ax[i], ax_dense[i], 1e-10);

    Vector aty(m, 0.0);
    fs_ops::apply_at(y, aty);
    const Vector aty_dense = a.transpose_times(y);
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(aty[i], aty_dense[i], 1e-10);

    Vector px(m, 0.0);
    fs_ops::apply_p(x, px);
    const Vector px_dense = p * x;
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(px[i], px_dense[i], 1e-10);

    const Vector px2 = p * x;
    EXPECT_NEAR(fs_ops::half_quadratic(x), 0.5 * dot(x, px2), 1e-9);
  }
}

TEST(StructuredQpProblem, ValidateAndImplicitEvaluators) {
  const FsShape s = random_fs_shape(12, 9);
  QpProblem tagged = structured_problem(s);
  EXPECT_NO_THROW(tagged.validate());
  // Wrong row count for the tag.
  QpProblem bad = tagged;
  bad.lower.resize(12);
  bad.upper.resize(12);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Materialized matrices must be full-shape or absent.
  QpProblem half = tagged;
  half.p = Matrix::identity(3);
  EXPECT_THROW(half.validate(), std::invalid_argument);

  // Implicit objective/violation agree with the dense evaluators.
  const QpProblem dense = dense_problem(s);
  util::Rng rng(33);
  Vector x(12);
  for (double& v : x) v = rng.uniform(-10.0, 10.0);
  // Same q for an apples-to-apples objective comparison.
  QpProblem tagged_same_q = tagged;
  tagged_same_q.q = dense.q;
  EXPECT_NEAR(tagged_same_q.objective(x), dense.objective(x), 1e-9);
  EXPECT_NEAR(tagged.constraint_violation(x), dense.constraint_violation(x),
              1e-9);
}

TEST(StructuredQpDifferential, FiftyRandomIntervalsMatchDenseWithinTolerance) {
  QpSettings settings;  // defaults: eps 1e-6, polish on
  std::size_t solved = 0;
  for (std::size_t trial = 0; trial < 50; ++trial) {
    const std::size_t m = 4 + (trial % 5) * 11;  // 4..48
    const FsShape s = random_fs_shape(m, 1000 + trial);
    const QpResult rd = solve_qp(dense_problem(s), settings);
    const QpResult rs = solve_qp(structured_problem(s), settings);

    ASSERT_EQ(rs.status, rd.status) << "trial " << trial;
    if (rs.status != QpStatus::kSolved) continue;
    ++solved;
    // Two eps-accurate optima of the same convex program: objectives agree
    // to solver tolerance (the variance objective is invariant along the
    // all-ones null direction, so objective agreement is the meaningful
    // uniqueness check).
    EXPECT_NEAR(rs.objective, rd.objective,
                1e-5 * std::max(1.0, std::abs(rd.objective)))
        << "trial " << trial;
    // Both iterates satisfy the constraints to tolerance.
    const QpProblem check = dense_problem(s);
    EXPECT_LE(check.constraint_violation(rs.x), 1e-5) << "trial " << trial;
    EXPECT_LE(check.constraint_violation(rd.x), 1e-5) << "trial " << trial;
    // Both residual pairs are under the same convergence tolerances the
    // solver reports convergence with.
    EXPECT_LE(rs.primal_residual, settings.eps_abs + settings.eps_rel * 1e3);
    EXPECT_LE(rd.primal_residual, settings.eps_abs + settings.eps_rel * 1e3);
    EXPECT_TRUE(std::isfinite(rs.dual_residual));
    EXPECT_TRUE(std::isfinite(rd.dual_residual));
  }
  // The family is built to be solvable; a mass of non-converged trials
  // would make the comparison vacuous.
  EXPECT_GE(solved, 45u);
}

TEST(StructuredQpSolver, TaggedSetupTakesStructuredPath) {
  const FsShape s = random_fs_shape(24, 4);
  QpSolver solver;
  ASSERT_EQ(solver.setup(structured_problem(s)), QpStatus::kSolved);
  EXPECT_TRUE(solver.is_setup());
  EXPECT_TRUE(solver.structured());
  const QpResult r = solver.solve();
  EXPECT_EQ(r.status, QpStatus::kSolved);

  // An untagged problem re-setups onto the dense path.
  ASSERT_EQ(solver.setup(dense_problem(s)), QpStatus::kSolved);
  EXPECT_FALSE(solver.structured());
  const QpResult rd = solver.solve();
  EXPECT_EQ(rd.status, QpStatus::kSolved);
  EXPECT_NEAR(rd.objective, r.objective,
              1e-5 * std::max(1.0, std::abs(rd.objective)));
}

TEST(StructuredQpSolver, StructuredFactorizationFailureSurfacesStatus) {
  QpSettings bad;
  bad.sigma = -1e3;
  QpSolver solver;
  EXPECT_EQ(solver.setup(structured_problem(random_fs_shape(12, 6)), bad),
            QpStatus::kNumericalError);
  EXPECT_FALSE(solver.is_setup());
  EXPECT_EQ(solver.solve().status, QpStatus::kNumericalError);
}

/// Allocations during one solve() with every knob fixed except the
/// iteration budget (eps = 0 forces exactly max_iterations iterations).
std::size_t allocations_for_iterations(QpSolver& solver,
                                       const QpProblem& problem,
                                       std::size_t iterations) {
  QpSettings settings;
  settings.eps_abs = 0.0;
  settings.eps_rel = 0.0;
  settings.max_iterations = iterations;
  solver.reset_warm_start();
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const QpResult r = solver.solve(problem, settings);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(r.status, QpStatus::kMaxIterations);
  EXPECT_EQ(r.iterations, iterations);
  return after - before;
}

TEST(SolverWorkspace, ZeroAllocationsPerIterationOnBothPaths) {
  const FsShape s = random_fs_shape(24, 11);
  for (const bool structured : {false, true}) {
    const QpProblem problem =
        structured ? structured_problem(s) : dense_problem(s);
    QpSolver solver;
    ASSERT_EQ(solver.setup(problem), QpStatus::kSolved);
    // Warm up so one-time buffers (warm stash, result capacity) exist...
    (void)allocations_for_iterations(solver, problem, 10);
    // ...then the allocation count must not depend on the iteration count:
    // everything inside the ADMM loop lives in the member workspace.
    const std::size_t short_run =
        allocations_for_iterations(solver, problem, 50);
    const std::size_t long_run =
        allocations_for_iterations(solver, problem, 200);
    EXPECT_EQ(short_run, long_run)
        << (structured ? "structured" : "dense")
        << " path allocates inside the iteration loop";
  }
}

TEST(StructuredQpConcurrency, PerTaskSolversAreRaceFreeAndDeterministic) {
  // Structured solvers inside SweepRunner tasks, mirroring how parallel
  // sweeps drive FS plans: one instance per task, serial == parallel.
  const auto sweep = [](std::size_t threads) {
    runtime::SweepRunner runner(
        runtime::SweepOptions{threads, 0, "structured-qp"});
    return runner.run(16, [](runtime::TaskContext& ctx) {
      QpSolver solver;
      QpSettings settings;
      settings.check_interval = 1;
      double acc = 0.0;
      for (std::uint64_t interval = 0; interval < 4; ++interval) {
        const FsShape s =
            random_fs_shape(24, 500 + 10 * ctx.index + interval);
        const QpResult r = solver.solve(structured_problem(s), settings);
        acc += r.objective + static_cast<double>(r.iterations);
      }
      return acc;
    });
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_DOUBLE_EQ(serial[i].value, parallel[i].value) << "task " << i;
}

}  // namespace
}  // namespace smoother::solver
