#include "smoother/util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace smoother::util {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&buffer_);
    Logger::instance().set_level(LogLevel::kInfo);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }
  std::ostringstream buffer_;
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  SMOOTHER_LOG(kInfo, "test") << "hello " << 42;
  EXPECT_EQ(buffer_.str(), "[INFO] test: hello 42\n");
}

TEST_F(LoggingTest, SuppressesBelowLevel) {
  SMOOTHER_LOG(kDebug, "test") << "invisible";
  EXPECT_TRUE(buffer_.str().empty());
}

TEST_F(LoggingTest, LevelChangeTakesEffect) {
  Logger::instance().set_level(LogLevel::kError);
  SMOOTHER_LOG(kWarn, "test") << "still invisible";
  EXPECT_TRUE(buffer_.str().empty());
  SMOOTHER_LOG(kError, "test") << "visible";
  EXPECT_NE(buffer_.str().find("[ERROR] test: visible"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  SMOOTHER_LOG(kError, "test") << "nope";
  EXPECT_TRUE(buffer_.str().empty());
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Logging, EnabledPredicate) {
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
  Logger::instance().set_level(LogLevel::kInfo);
}

}  // namespace
}  // namespace smoother::util
