#include "smoother/sched/cluster_timeline.hpp"

#include <gtest/gtest.h>

namespace smoother::sched {
namespace {

using util::Kilowatts;
using util::Minutes;

TEST(ClusterTimeline, Validation) {
  EXPECT_THROW(ClusterTimeline(0, Minutes{1.0}, 10), std::invalid_argument);
  EXPECT_THROW(ClusterTimeline(10, Minutes{1.0}, 0), std::invalid_argument);
  EXPECT_THROW(ClusterTimeline(10, Minutes{0.0}, 10), std::invalid_argument);
}

TEST(ClusterTimeline, SlotMath) {
  const ClusterTimeline t(100, Minutes{5.0}, 10);
  EXPECT_EQ(t.slots(), 100u);
  EXPECT_DOUBLE_EQ(t.horizon().value(), 500.0);
  EXPECT_EQ(t.slot_of(Minutes{0.0}), 0u);
  EXPECT_EQ(t.slot_of(Minutes{4.9}), 0u);
  EXPECT_EQ(t.slot_of(Minutes{5.0}), 1u);
  EXPECT_EQ(t.slot_of(Minutes{9999.0}), 99u);  // clamps
  EXPECT_THROW((void)t.slot_of(Minutes{-1.0}), std::invalid_argument);
}

TEST(ClusterTimeline, SlotsForCeils) {
  const ClusterTimeline t(100, Minutes{5.0}, 10);
  EXPECT_EQ(t.slots_for(Minutes{0.0}), 0u);
  EXPECT_EQ(t.slots_for(Minutes{5.0}), 1u);
  EXPECT_EQ(t.slots_for(Minutes{5.1}), 2u);
  EXPECT_EQ(t.slots_for(Minutes{60.0}), 12u);
}

TEST(ClusterTimeline, PlaceAndCapacity) {
  ClusterTimeline t(10, Minutes{1.0}, 10);
  EXPECT_TRUE(t.can_place(0, 5, 10));
  t.place(0, 5, 6, Kilowatts{12.0});
  EXPECT_EQ(t.used_servers(0), 6u);
  EXPECT_EQ(t.free_servers(4), 4u);
  EXPECT_EQ(t.free_servers(5), 10u);
  EXPECT_TRUE(t.can_place(0, 5, 4));
  EXPECT_FALSE(t.can_place(0, 5, 5));
  EXPECT_THROW(t.place(0, 5, 5, Kilowatts{1.0}), std::logic_error);
  EXPECT_FALSE(t.can_place(10, 1, 1));  // beyond horizon
}

TEST(ClusterTimeline, DemandAccumulates) {
  ClusterTimeline t(4, Minutes{1.0}, 100);
  t.place(0, 2, 10, Kilowatts{5.0});
  t.place(1, 2, 20, Kilowatts{7.0});
  const auto& demand = t.demand();
  EXPECT_DOUBLE_EQ(demand[0], 5.0);
  EXPECT_DOUBLE_EQ(demand[1], 12.0);
  EXPECT_DOUBLE_EQ(demand[2], 7.0);
  EXPECT_DOUBLE_EQ(demand[3], 0.0);
}

TEST(ClusterTimeline, PlacementTruncatesAtHorizon) {
  ClusterTimeline t(3, Minutes{1.0}, 5);
  t.place(2, 10, 3, Kilowatts{1.0});  // runs off the end
  EXPECT_EQ(t.used_servers(2), 3u);
  EXPECT_DOUBLE_EQ(t.demand()[2], 1.0);
}

TEST(ClusterTimeline, EarliestFitSkipsBusySlots) {
  ClusterTimeline t(10, Minutes{1.0}, 4);
  t.place(2, 3, 4, Kilowatts{1.0});  // slots 2-4 fully busy
  EXPECT_EQ(t.earliest_fit(0, 2, 2), 0u);
  EXPECT_EQ(t.earliest_fit(1, 2, 2), 5u);  // 1 would overlap slot 2
  EXPECT_EQ(t.earliest_fit(3, 1, 1), 5u);
  EXPECT_EQ(t.earliest_fit(0, 1, 5), 10u);  // bigger than the cluster
}

TEST(ClusterTimeline, BoundsChecking) {
  const ClusterTimeline t(3, Minutes{1.0}, 2);
  EXPECT_THROW((void)t.free_servers(3), std::out_of_range);
  EXPECT_THROW((void)t.used_servers(3), std::out_of_range);
}

}  // namespace
}  // namespace smoother::sched
