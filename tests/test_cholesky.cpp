#include "smoother/solver/cholesky.hpp"

#include <gtest/gtest.h>

#include "smoother/util/rng.hpp"

namespace smoother::solver {
namespace {

/// Random SPD matrix A = B Bᵀ + n*I.
Matrix random_spd(std::size_t n, util::Rng& rng) {
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal(0.0, 1.0);
  Matrix a = b * b.transpose();
  a.add_diagonal(static_cast<double>(n));
  return a;
}

TEST(Cholesky, SolvesKnownSystem) {
  const Matrix a = {{4.0, 2.0}, {2.0, 3.0}};
  const auto chol = Cholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  const Vector x = chol->solve(Vector{8.0, 7.0});
  // 4x + 2y = 8, 2x + 3y = 7 -> x = 1.25, y = 1.5
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, FactorReproducesMatrix) {
  util::Rng rng(2);
  const Matrix a = random_spd(6, rng);
  const auto chol = Cholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix reconstructed = chol->lower() * chol->lower().transpose();
  EXPECT_LT(reconstructed.max_abs_diff(a), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix indefinite = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factorize(indefinite).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky::factorize(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, SolveValidatesSize) {
  const auto chol = Cholesky::factorize(Matrix::identity(2));
  ASSERT_TRUE(chol.has_value());
  EXPECT_THROW(chol->solve(Vector{1.0}), std::invalid_argument);
  EXPECT_EQ(chol->dimension(), 2u);
}

TEST(Ldlt, SolvesRandomSystems) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + trial % 7;
    const Matrix a = random_spd(n, rng);
    Vector b(n);
    for (double& v : b) v = rng.normal(0.0, 5.0);
    const auto ldlt = Ldlt::factorize(a);
    ASSERT_TRUE(ldlt.has_value());
    const Vector x = ldlt->solve(b);
    const Vector ax = a * x;
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
  }
}

TEST(Ldlt, HandlesIndefiniteSystems) {
  // LDLᵀ (unpivoted) still factorizes this indefinite matrix because no
  // leading pivot vanishes.
  const Matrix a = {{2.0, 1.0}, {1.0, -3.0}};
  const auto ldlt = Ldlt::factorize(a);
  ASSERT_TRUE(ldlt.has_value());
  const Vector x = ldlt->solve(Vector{1.0, 1.0});
  const Vector ax = a * x;
  EXPECT_NEAR(ax[0], 1.0, 1e-12);
  EXPECT_NEAR(ax[1], 1.0, 1e-12);
}

TEST(Ldlt, RejectsSingular) {
  const Matrix singular = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(Ldlt::factorize(singular).has_value());
}

TEST(Ldlt, RejectsNonSquare) {
  EXPECT_THROW(Ldlt::factorize(Matrix(3, 2)), std::invalid_argument);
}

TEST(CholeskyVsLdlt, AgreeOnSpd) {
  util::Rng rng(7);
  const Matrix a = random_spd(5, rng);
  Vector b(5);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto chol = Cholesky::factorize(a);
  const auto ldlt = Ldlt::factorize(a);
  ASSERT_TRUE(chol && ldlt);
  const Vector x1 = chol->solve(b);
  const Vector x2 = ldlt->solve(b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

}  // namespace
}  // namespace smoother::solver
