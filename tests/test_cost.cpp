#include "smoother/sim/cost.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::sim {
namespace {

using util::KilowattHours;

TEST(TariffSpec, Validation) {
  TariffSpec tariff;
  EXPECT_NO_THROW(tariff.validate());
  tariff.peak_price_per_kwh = 0.01;  // below off-peak
  EXPECT_THROW(tariff.validate(), std::invalid_argument);
  tariff = TariffSpec{};
  tariff.peak_start_hour = 23.0;
  tariff.peak_end_hour = 8.0;
  EXPECT_THROW(tariff.validate(), std::invalid_argument);
  tariff = TariffSpec{};
  tariff.demand_charge_per_kw = -1.0;
  EXPECT_THROW(tariff.validate(), std::invalid_argument);
}

TEST(TariffSpec, PeakWindow) {
  TariffSpec tariff;  // 8-22
  EXPECT_FALSE(tariff.is_peak_hour(7.9));
  EXPECT_TRUE(tariff.is_peak_hour(8.0));
  EXPECT_TRUE(tariff.is_peak_hour(21.9));
  EXPECT_FALSE(tariff.is_peak_hour(22.0));
}

TEST(CostModel, GridEnergyUsesTimeOfUse) {
  TariffSpec tariff;
  tariff.peak_price_per_kwh = 0.20;
  tariff.offpeak_price_per_kwh = 0.10;
  const CostModel model(tariff);
  // 24 hourly samples of 100 kW: 14 peak hours + 10 off-peak hours.
  const auto grid = test::constant_series(100.0, 24, util::kOneHour);
  const double expected = 100.0 * (14.0 * 0.20 + 10.0 * 0.10);
  EXPECT_NEAR(model.grid_energy_cost(grid), expected, 1e-9);
}

TEST(CostModel, OffPeakOnlySeries) {
  const CostModel model;
  // Six 5-minute samples starting at midnight: all off-peak.
  const auto grid = test::constant_series(120.0, 6);
  EXPECT_NEAR(model.grid_energy_cost(grid),
              120.0 * 0.5 * model.tariff().offpeak_price_per_kwh, 1e-9);
}

TEST(CostModel, DemandChargeOnPeakDraw) {
  const CostModel model;
  const auto grid = test::series({10.0, 250.0, 40.0});
  EXPECT_NEAR(model.demand_charge(grid),
              250.0 * model.tariff().demand_charge_per_kw, 1e-9);
  EXPECT_DOUBLE_EQ(model.demand_charge(util::TimeSeries{}), 0.0);
}

TEST(CostModel, NegativeGridPowerIgnored) {
  const CostModel model;
  const auto grid = test::series({-50.0, -10.0});
  EXPECT_DOUBLE_EQ(model.grid_energy_cost(grid), 0.0);
  EXPECT_DOUBLE_EQ(model.demand_charge(grid), 0.0);
}

TEST(CostModel, BatteryWearAmortizesPackPrice) {
  TariffSpec tariff;
  tariff.battery_pack_price_per_kwh = 400.0;
  const CostModel model(tariff);
  // 1 % of a 50 kWh pack's life = 0.01 * 50 * 400.
  EXPECT_NEAR(model.battery_wear_cost(0.01, KilowattHours{50.0}), 200.0,
              1e-9);
  EXPECT_THROW((void)model.battery_wear_cost(-0.1, KilowattHours{50.0}),
               std::invalid_argument);
}

TEST(CostModel, BreakdownSumsComponents) {
  const CostModel model;
  const auto grid = test::constant_series(100.0, 12);
  const CostBreakdown b = model.price(grid, 0.002, KilowattHours{40.0});
  EXPECT_NEAR(b.total(),
              b.grid_energy_cost + b.demand_charge + b.battery_wear_cost,
              1e-12);
  EXPECT_GT(b.grid_energy_cost, 0.0);
  EXPECT_GT(b.demand_charge, 0.0);
  EXPECT_GT(b.battery_wear_cost, 0.0);
}

TEST(CostModel, CheaperWhenLessGridIsUsed) {
  const CostModel model;
  const auto heavy = test::constant_series(500.0, 288);
  const auto light = test::constant_series(100.0, 288);
  EXPECT_LT(model.price(light, 0.0, KilowattHours{1.0}).total(),
            model.price(heavy, 0.0, KilowattHours{1.0}).total());
}

}  // namespace
}  // namespace smoother::sim
