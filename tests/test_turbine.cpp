#include "smoother/power/turbine.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::power {
namespace {

using util::Kilowatts;
using util::MetresPerSecond;

TEST(GaussianSumCurve, ValidatesTerms) {
  EXPECT_THROW(GaussianSumCurve({}), std::invalid_argument);
  EXPECT_THROW(GaussianSumCurve(std::vector<GaussianTerm>(6)),
               std::invalid_argument);
  GaussianTerm bad;
  bad.width = 0.0;
  EXPECT_THROW(GaussianSumCurve({bad}), std::invalid_argument);
}

TEST(GaussianSumCurve, EvaluatesSum) {
  const GaussianSumCurve curve({{100.0, 5.0, 2.0}, {50.0, 10.0, 1.0}});
  EXPECT_NEAR(curve(5.0), 100.0 + 50.0 * std::exp(-25.0), 1e-9);
  EXPECT_NEAR(curve(10.0), 50.0 + 100.0 * std::exp(-6.25), 1e-9);
}

TEST(GaussianSumCurve, FitRecoversSingleTerm) {
  const GaussianSumCurve truth({{200.0, 8.0, 3.0}});
  std::vector<double> xs, ys;
  for (double v = 2.0; v <= 14.0; v += 0.5) {
    xs.push_back(v);
    ys.push_back(truth(v));
  }
  const GaussianSumCurve fitted = GaussianSumCurve::fit(xs, ys, 1);
  EXPECT_LT(fitted.rms_error(xs, ys), 1.0);
}

TEST(GaussianSumCurve, FitValidation) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(GaussianSumCurve::fit(xs, ys, 1), std::invalid_argument);
  const std::vector<double> ok = {1.0, 2.0};
  EXPECT_THROW(GaussianSumCurve::fit(xs, ok, 0), std::invalid_argument);
  EXPECT_THROW(GaussianSumCurve::fit(xs, ok, 6), std::invalid_argument);
}

TEST(TurbineSpec, Validation) {
  TurbineSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.cut_in = MetresPerSecond{20.0};  // above rated
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = TurbineSpec{};
  spec.rated_power = Kilowatts{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(TurbineCurve, PiecewiseRegionsOfEq1) {
  const TurbineCurve& e48 = TurbineCurve::enercon_e48();
  // Below cut-in: zero.
  EXPECT_DOUBLE_EQ(e48.output(MetresPerSecond{0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(e48.output(MetresPerSecond{3.0}).value(), 0.0);
  // Partial-load: strictly between 0 and rated.
  const double at8 = e48.output(MetresPerSecond{8.0}).value();
  EXPECT_GT(at8, 0.0);
  EXPECT_LT(at8, 800.0);
  // Rated plateau.
  EXPECT_DOUBLE_EQ(e48.output(MetresPerSecond{16.0}).value(), 800.0);
  EXPECT_DOUBLE_EQ(e48.output(MetresPerSecond{25.0}).value(), 800.0);
  // Above cut-out: shut down.
  EXPECT_DOUBLE_EQ(e48.output(MetresPerSecond{25.1}).value(), 0.0);
  EXPECT_DOUBLE_EQ(e48.output(MetresPerSecond{40.0}).value(), 0.0);
}

TEST(TurbineCurve, E48FitMatchesPublishedTable) {
  const TurbineCurve& e48 = TurbineCurve::enercon_e48();
  for (const auto& [speed, power] : TurbineCurve::e48_reference_points()) {
    const double predicted = e48.output(MetresPerSecond{speed}).value();
    if (speed <= 3.0) continue;  // at cut-in Eq. 1 forces exactly zero
    EXPECT_NEAR(predicted, power, 20.0)
        << "speed " << speed << " m/s";  // within 2.5 % of rated
  }
}

TEST(TurbineCurve, PartialLoadIsMonotoneForE48) {
  const TurbineCurve& e48 = TurbineCurve::enercon_e48();
  double prev = 0.0;
  for (double v = 3.1; v <= 14.0; v += 0.1) {
    const double p = e48.output(MetresPerSecond{v}).value();
    // Fit ripple near the rated plateau may dip by a fraction of a kW.
    EXPECT_GE(p, prev - 0.5) << "at " << v;
    prev = p;
  }
}

TEST(TurbineCurve, OutputNeverExceedsRatedNorNegative) {
  const TurbineCurve& e48 = TurbineCurve::enercon_e48();
  for (double v = 0.0; v <= 30.0; v += 0.05) {
    const double p = e48.output(MetresPerSecond{v}).value();
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 800.0);
  }
}

TEST(TurbineCurve, PowerSeriesMapsSpeeds) {
  const TurbineCurve& e48 = TurbineCurve::enercon_e48();
  const util::TimeSeries speeds = test::series({2.0, 8.0, 20.0, 30.0});
  const util::TimeSeries power = e48.power_series(speeds);
  ASSERT_EQ(power.size(), 4u);
  EXPECT_DOUBLE_EQ(power[0], 0.0);
  EXPECT_GT(power[1], 0.0);
  EXPECT_DOUBLE_EQ(power[2], 800.0);
  EXPECT_DOUBLE_EQ(power[3], 0.0);
}

}  // namespace
}  // namespace smoother::power
