#include "smoother/sim/scenario.hpp"

#include <gtest/gtest.h>

namespace smoother::sim {
namespace {

using util::Kilowatts;

TEST(PaperDatacenter, MatchesEvaluationSetup) {
  const auto dc = paper_datacenter();
  EXPECT_EQ(dc.spec().server_count, 11000u);
  EXPECT_DOUBLE_EQ(dc.spec().server_peak_watts, 186.0);
  EXPECT_DOUBLE_EQ(dc.spec().server_idle_watts, 62.0);
}

TEST(DynamicPowerSeries, ScalesWithUtilization) {
  const auto dc = paper_datacenter();
  const util::TimeSeries mu(util::kFiveMinutes,
                            std::vector<double>{0.0, 0.5, 1.0});
  const auto power = dynamic_power_series(mu, dc);
  EXPECT_DOUBLE_EQ(power[0], 0.0);
  // Full dynamic range: (186-62) W * 11000 = 1364 kW.
  EXPECT_NEAR(power[2], 1364.0, 1e-9);
  EXPECT_NEAR(power[1], 682.0, 1e-9);
}

TEST(WindPowerSeries, RespectsInstalledCapacity) {
  const auto supply =
      wind_power_series(trace::WindSitePresets::texas_10(), Kilowatts{976.0},
                        util::days(2.0), util::kFiveMinutes, 77);
  EXPECT_EQ(supply.size(), 2u * 288u);
  EXPECT_GE(supply.min(), 0.0);
  EXPECT_LE(supply.max(), 976.0 + 1e-9);
  EXPECT_GT(supply.mean(), 0.0);
}

TEST(MakeWebScenario, ShapesAlign) {
  const auto scenario = make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      Kilowatts{976.0}, util::days(3.0), 42);
  EXPECT_EQ(scenario.supply.size(), scenario.demand.size());
  EXPECT_EQ(scenario.supply.step(), scenario.demand.step());
  EXPECT_NE(scenario.name.find("NASA"), std::string::npos);
  EXPECT_NE(scenario.name.find("TX"), std::string::npos);
  // NASA at ~29 % utilization: dynamic demand around 0.29 * 1364 kW.
  EXPECT_NEAR(scenario.demand.mean(), 0.2889 * 1364.0, 0.2889 * 1364.0 * 0.1);
}

TEST(MakeWebScenario, DeterministicPerSeed) {
  const auto a = make_web_scenario(
      trace::WebWorkloadPresets::ucb(), trace::WindSitePresets::california_9122(),
      Kilowatts{1525.0}, util::days(1.0), 7);
  const auto b = make_web_scenario(
      trace::WebWorkloadPresets::ucb(), trace::WindSitePresets::california_9122(),
      Kilowatts{1525.0}, util::days(1.0), 7);
  EXPECT_EQ(a.supply, b.supply);
  EXPECT_EQ(a.demand, b.demand);
}

TEST(MakeBatchScenario, SupplyRatioSizesRenewableEnergy) {
  for (double ratio : {0.5, 1.5}) {
    const auto scenario = make_batch_scenario(
        trace::BatchWorkloadPresets::hpc2n(),
        trace::WindSitePresets::colorado_11005(), ratio, util::days(2.0),
        11000, 11);
    ASSERT_FALSE(scenario.jobs.empty());
    EXPECT_GT(scenario.workload_energy.value(), 0.0);
    // Renewable energy = ratio x workload energy by construction.
    EXPECT_NEAR(scenario.renewable_energy.value(),
                ratio * scenario.workload_energy.value(),
                1e-6 * scenario.workload_energy.value());
  }
}

TEST(MakeBatchScenario, JobsFitEvaluationCluster) {
  const auto scenario = make_batch_scenario(
      trace::BatchWorkloadPresets::llnl_thunder(),
      trace::WindSitePresets::texas_10(), 1.0, util::days(2.0), 11000, 3);
  for (const auto& job : scenario.jobs) {
    EXPECT_LE(job.servers, 11000u);
    EXPECT_GT(job.power.value(), 0.0);
  }
  EXPECT_EQ(scenario.total_servers, 11000u);
  EXPECT_DOUBLE_EQ(scenario.supply.step().value(), 5.0);
}

TEST(MakeBatchScenario, RejectsNonPositiveRatio) {
  EXPECT_THROW(
      make_batch_scenario(trace::BatchWorkloadPresets::hpc2n(),
                          trace::WindSitePresets::texas_10(), 0.0,
                          util::days(1.0), 1000, 1),
      std::invalid_argument);
}

TEST(MakeBatchScenario, WindIsNightPeaking) {
  // The batch arm pins the wind diurnal peak to the night (Fig. 7's
  // supply/demand misalignment).
  const auto scenario = make_batch_scenario(
      trace::BatchWorkloadPresets::sandia_ross(),
      trace::WindSitePresets::california_9122(), 1.0, util::days(10.0), 11000,
      19);
  double night = 0.0, day = 0.0;
  std::size_t night_n = 0, day_n = 0;
  for (std::size_t i = 0; i < scenario.supply.size(); ++i) {
    const double hour =
        std::fmod(scenario.supply.time_at(i).value() / 60.0, 24.0);
    if (hour < 6.0) {
      night += scenario.supply[i];
      ++night_n;
    } else if (hour >= 10.0 && hour < 16.0) {
      day += scenario.supply[i];
      ++day_n;
    }
  }
  EXPECT_GT(night / static_cast<double>(night_n),
            day / static_cast<double>(day_n));
}

}  // namespace
}  // namespace smoother::sim
