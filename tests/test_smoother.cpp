#include "smoother/core/smoother.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/trace/batch_workload.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother::core {
namespace {

using util::Kilowatts;
using util::Minutes;

SmootherConfig small_config() {
  SmootherConfig config;
  config.rated_power = Kilowatts{800.0};
  config.battery = battery::spec_for_max_rate(Kilowatts{400.0},
                                              util::kFiveMinutes);
  config.battery.charge_efficiency = 1.0;
  config.battery.discharge_efficiency = 1.0;
  config.stable_cdf = 0.25;
  config.extreme_cdf = 0.95;
  return config;
}

util::TimeSeries volatile_day(std::uint64_t seed = 21) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  return power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(2.0), util::kFiveMinutes, seed));
}

TEST(SmootherConfig, Validation) {
  SmootherConfig config = small_config();
  EXPECT_NO_THROW(config.validate());
  config.stable_cdf = 0.99;  // above extreme
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.rated_power = Kilowatts{0.0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.derive_thresholds = false;
  config.fixed_thresholds.stable_below = 1.0;
  config.fixed_thresholds.extreme_above = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_THROW(Smoother{config}, std::invalid_argument);
}

TEST(Smoother, MakeClassifierDerivesThresholds) {
  const Smoother middleware(small_config());
  const auto supply = volatile_day();
  const RegionClassifier classifier = middleware.make_classifier(supply);
  const auto fractions =
      RegionClassifier::region_fractions(classifier.classify(supply));
  EXPECT_NEAR(fractions[0], 0.25, 0.06);
  EXPECT_NEAR(fractions[2], 0.05, 0.06);
}

TEST(Smoother, MakeClassifierFixedThresholds) {
  SmootherConfig config = small_config();
  config.derive_thresholds = false;
  config.fixed_thresholds.stable_below = 1e-3;
  config.fixed_thresholds.extreme_above = 1e-1;
  const Smoother middleware(config);
  const auto classifier = middleware.make_classifier(volatile_day());
  EXPECT_DOUBLE_EQ(classifier.config().thresholds.stable_below, 1e-3);
  EXPECT_DOUBLE_EQ(classifier.config().thresholds.extreme_above, 1e-1);
}

TEST(Smoother, SmoothSupplyReducesIntervalVariance) {
  const Smoother middleware(small_config());
  const auto raw = volatile_day();
  double cycles = -1.0;
  const SmoothingResult result = middleware.smooth_supply(raw, &cycles);
  EXPECT_GT(result.smoothed_intervals, 0u);
  EXPECT_GT(result.mean_variance_reduction(), 0.0);
  EXPECT_GT(cycles, 0.0);
  EXPECT_EQ(result.supply.size(), raw.size());
}

TEST(Smoother, DisabledFsPassesThrough) {
  SmootherConfig config = small_config();
  config.enable_flexible_smoothing = false;
  const Smoother middleware(config);
  const auto raw = volatile_day();
  double cycles = -1.0;
  const SmoothingResult result = middleware.smooth_supply(raw, &cycles);
  EXPECT_EQ(result.supply, raw);
  EXPECT_EQ(result.smoothed_intervals, 0u);
  EXPECT_DOUBLE_EQ(cycles, 0.0);
  EXPECT_FALSE(result.intervals.empty());  // still classified for reporting
}

TEST(Smoother, ScheduleJobsUsesConfiguredPolicy) {
  sched::Job job;
  job.id = 1;
  job.arrival = Minutes{0.0};
  job.runtime = Minutes{10.0};
  job.deadline = Minutes{100.0};
  job.servers = 1;
  job.power = Kilowatts{10.0};

  // Renewable pulse at minutes 60-80 only.
  std::vector<double> values(120, 0.0);
  for (std::size_t i = 60; i < 80; ++i) values[i] = 20.0;
  const util::TimeSeries supply(util::kOneMinute, std::move(values));

  SmootherConfig with_ad = small_config();
  with_ad.enable_active_delay = true;
  const auto ad_result =
      Smoother(with_ad).schedule_jobs({job}, supply, 100);
  EXPECT_DOUBLE_EQ(ad_result.outcome.placements[0].start.value(), 60.0);

  SmootherConfig without_ad = small_config();
  without_ad.enable_active_delay = false;
  const auto fifo_result =
      Smoother(without_ad).schedule_jobs({job}, supply, 100);
  EXPECT_DOUBLE_EQ(fifo_result.outcome.placements[0].start.value(), 0.0);
}

TEST(Smoother, RunProducesConsistentReport) {
  const auto supply = volatile_day(5);
  power::DatacenterSpec dc_spec;
  dc_spec.server_count = 2000;
  const power::DatacenterPowerModel dc(dc_spec);
  const trace::BatchWorkloadModel workload(trace::BatchWorkloadPresets::hpc2n());
  const auto jobs = workload.generate(util::days(2.0), 2000, dc, 9);

  const Smoother middleware(small_config());
  const RunReport report = middleware.run(supply, jobs, 2000);

  EXPECT_GE(report.renewable_utilization, 0.0);
  EXPECT_LE(report.renewable_utilization, 1.0);
  EXPECT_GE(report.grid_energy.value(), 0.0);
  EXPECT_GT(report.battery_equivalent_cycles, 0.0);
  EXPECT_EQ(report.schedule.outcome.placements.size(), jobs.size());
  // The scheduling grid is 1-minute while the raw series is 5-minute.
  EXPECT_DOUBLE_EQ(report.schedule.demand.step().value(), 1.0);
}

TEST(Smoother, FsReducesSwitchingOnVolatileSupply) {
  const auto supply = volatile_day(13);
  power::DatacenterSpec dc_spec;
  dc_spec.server_count = 2000;
  const power::DatacenterPowerModel dc(dc_spec);
  const trace::BatchWorkloadModel workload(
      trace::BatchWorkloadPresets::sandia_ross());
  const auto jobs = workload.generate(util::days(2.0), 2000, dc, 4);

  SmootherConfig with_fs = small_config();
  SmootherConfig without_fs = small_config();
  without_fs.enable_flexible_smoothing = false;

  const RunReport smoothed = Smoother(with_fs).run(supply, jobs, 2000);
  const RunReport raw = Smoother(without_fs).run(supply, jobs, 2000);
  EXPECT_LT(smoothed.switching_times, raw.switching_times);
}

}  // namespace
}  // namespace smoother::core
