#include "smoother/power/wind_farm.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::power {
namespace {

using util::Kilowatts;
using util::MetresPerSecond;

TEST(WindFarm, RejectsNonPositiveCapacity) {
  EXPECT_THROW(WindFarm(TurbineCurve::enercon_e48(), Kilowatts{0.0}),
               std::invalid_argument);
  EXPECT_THROW(WindFarm(TurbineCurve::enercon_e48(), Kilowatts{-10.0}),
               std::invalid_argument);
}

TEST(WindFarm, ScalesSingleTurbineLinearly) {
  const TurbineCurve& e48 = TurbineCurve::enercon_e48();
  const WindFarm farm(e48, Kilowatts{1600.0});  // two E48 equivalents
  EXPECT_DOUBLE_EQ(farm.turbine_count(), 2.0);
  const MetresPerSecond v{9.0};
  EXPECT_NEAR(farm.output(v).value(), 2.0 * e48.output(v).value(), 1e-9);
}

TEST(WindFarm, FractionalCapacityAllowed) {
  const WindFarm farm(TurbineCurve::enercon_e48(), Kilowatts{976.0});
  EXPECT_NEAR(farm.turbine_count(), 1.22, 1e-9);
  EXPECT_DOUBLE_EQ(farm.installed_capacity().value(), 976.0);
  // At rated wind the farm produces exactly its installed capacity.
  EXPECT_NEAR(farm.output(MetresPerSecond{20.0}).value(), 976.0, 1e-9);
}

TEST(WindFarm, PowerSeriesMatchesPerSampleOutput) {
  const WindFarm farm(TurbineCurve::enercon_e48(), Kilowatts{1525.0});
  const util::TimeSeries speeds = test::series({4.0, 10.0, 18.0});
  const util::TimeSeries power = farm.power_series(speeds);
  for (std::size_t i = 0; i < speeds.size(); ++i)
    EXPECT_DOUBLE_EQ(power[i],
                     farm.output(MetresPerSecond{speeds[i]}).value());
}

}  // namespace
}  // namespace smoother::power
