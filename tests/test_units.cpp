#include "smoother/util/units.hpp"

#include <gtest/gtest.h>

namespace smoother::util {
namespace {

TEST(Units, ArithmeticWithinOneUnit) {
  const Kilowatts a{10.0};
  const Kilowatts b{2.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
  EXPECT_DOUBLE_EQ((-b).value(), -2.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 20.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 2.5);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  EXPECT_DOUBLE_EQ(Kilowatts{10.0} / Kilowatts{4.0}, 2.5);
  EXPECT_DOUBLE_EQ(KilowattHours{9.0} / KilowattHours{3.0}, 3.0);
}

TEST(Units, CompoundAssignment) {
  Kilowatts p{1.0};
  p += Kilowatts{2.0};
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
  p -= Kilowatts{0.5};
  EXPECT_DOUBLE_EQ(p.value(), 2.5);
  p *= 4.0;
  EXPECT_DOUBLE_EQ(p.value(), 10.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Kilowatts{1.0}, Kilowatts{2.0});
  EXPECT_GE(Minutes{5.0}, Minutes{5.0});
  EXPECT_EQ(Kilowatts{3.0}, Kilowatts{3.0});
  EXPECT_NE(Kilowatts{3.0}, Kilowatts{4.0});
}

TEST(Units, EnergyFromPowerAndDuration) {
  // 600 kW held for 5 minutes = 50 kWh.
  EXPECT_DOUBLE_EQ(energy(Kilowatts{600.0}, kFiveMinutes).value(), 50.0);
  // 1 kW for a day = 24 kWh.
  EXPECT_DOUBLE_EQ(energy(Kilowatts{1.0}, kOneDay).value(), 24.0);
}

TEST(Units, AveragePowerInvertsEnergy) {
  const Kilowatts p{123.0};
  const Minutes dt{7.0};
  EXPECT_NEAR(average_power(energy(p, dt), dt).value(), p.value(), 1e-12);
}

TEST(Units, HoursAndDaysHelpers) {
  EXPECT_DOUBLE_EQ(hours(2.0).value(), 120.0);
  EXPECT_DOUBLE_EQ(days(1.5).value(), 2160.0);
  EXPECT_DOUBLE_EQ(kOneHour.value(), 60.0);
  EXPECT_DOUBLE_EQ(kOneDay.value(), 1440.0);
}

}  // namespace
}  // namespace smoother::util
