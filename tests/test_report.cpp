#include "smoother/sim/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "smoother/util/format.hpp"

namespace smoother::sim {
namespace {

TEST(TablePrinter, RejectsEmptyColumns) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, RowWidthValidated) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({std::string("x")}), std::invalid_argument);
}

TEST(TablePrinter, PrintsAlignedTable) {
  TablePrinter table({"workload", "switches"});
  table.add_row({std::string("NASA"), std::string("254")});
  table.add_row(std::vector<double>{1.0, 316.0});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("workload"), std::string::npos);
  EXPECT_NE(text.find("NASA"), std::string::npos);
  EXPECT_NE(text.find("316"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinter, PrintsCsv) {
  TablePrinter table({"x", "y"});
  table.add_row(std::vector<double>{1.0, 2.5});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2.5\n");
}

TEST(ExperimentHeader, NamesTheExperiment) {
  std::ostringstream out;
  print_experiment_header(out, "Fig. 11", "switching times");
  EXPECT_NE(out.str().find("Fig. 11"), std::string::npos);
  EXPECT_NE(out.str().find("switching times"), std::string::npos);
}

TEST(SeriesCsv, PrintsAllPointsByDefault) {
  std::ostringstream out;
  print_series_csv(out, "v", test::series({1.0, 2.0, 3.0}));
  EXPECT_EQ(out.str(), "minute,v\n0,1\n5,2\n10,3\n");
}

TEST(SeriesCsv, DownsamplesToMaxPoints) {
  std::ostringstream out;
  print_series_csv(out, "v", test::constant_series(1.0, 100), 10);
  // Header plus at most 10 data lines.
  const std::string text = out.str();
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_LE(lines, 11);
  EXPECT_GE(lines, 10);
}

TEST(Sparkline, ShapeAndBounds) {
  const auto rising = test::sawtooth_series(0.0, 10.0, 64, 64);
  const std::string line = sparkline(rising, 8);
  EXPECT_EQ(line.size(), 8u);
  // Rising series: last glyph darker than first.
  EXPECT_NE(line.front(), line.back());
  EXPECT_TRUE(sparkline(util::TimeSeries{}, 8).empty());
}

TEST(Sparkline, ConstantSeriesIsFlat) {
  const std::string line = sparkline(test::constant_series(5.0, 32), 8);
  for (char c : line) EXPECT_EQ(c, line[0]);
}

TEST(Strfmt, FormatsLikeSnprintf) {
  EXPECT_EQ(util::strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(util::strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(util::strfmt("no args"), "no args");
}

}  // namespace
}  // namespace smoother::sim
