#include "smoother/power/capacity_factor.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace smoother::power {
namespace {

using util::Kilowatts;

TEST(CapacityFactor, SeriesDividesByRated) {
  const auto power = test::series({400.0, 800.0, 0.0});
  const auto cf = capacity_factor_series(power, Kilowatts{800.0});
  EXPECT_DOUBLE_EQ(cf[0], 0.5);
  EXPECT_DOUBLE_EQ(cf[1], 1.0);
  EXPECT_DOUBLE_EQ(cf[2], 0.0);
}

TEST(CapacityFactor, RejectsNonPositiveRated) {
  const auto power = test::series({1.0});
  EXPECT_THROW(capacity_factor_series(power, Kilowatts{0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)average_capacity_factor(power, Kilowatts{-1.0}),
               std::invalid_argument);
}

TEST(CapacityFactor, AverageMatchesEq7) {
  const auto power = test::series({200.0, 400.0, 600.0, 800.0});
  EXPECT_DOUBLE_EQ(average_capacity_factor(power, Kilowatts{800.0}), 0.625);
}

TEST(CapacityFactor, VarianceMatchesEq6) {
  // CF values: 0.25, 0.75 -> mean 0.5, population variance 0.0625.
  const auto power = test::series({200.0, 600.0});
  EXPECT_DOUBLE_EQ(capacity_factor_variance(power, Kilowatts{800.0}), 0.0625);
}

TEST(CapacityFactor, VarianceIsScaleFree) {
  // Doubling both power and rated power leaves CF variance unchanged.
  const auto power = test::series({100.0, 300.0, 250.0, 50.0});
  const double v1 = capacity_factor_variance(power, Kilowatts{400.0});
  const double v2 = capacity_factor_variance(power * 2.0, Kilowatts{800.0});
  EXPECT_NEAR(v1, v2, 1e-12);
}

TEST(CapacityFactor, IntervalVariancesCutDisjointWindows) {
  // Two hours of 5-min samples: first hour constant (variance 0), second
  // hour alternating (variance > 0).
  std::vector<double> values(24, 400.0);
  for (std::size_t i = 12; i < 24; ++i) values[i] = (i % 2 == 0) ? 0.0 : 800.0;
  const auto power = test::series(std::move(values));
  const auto vars =
      interval_capacity_factor_variances(power, Kilowatts{800.0}, 12);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_DOUBLE_EQ(vars[0], 0.0);
  EXPECT_DOUBLE_EQ(vars[1], 0.25);
}

TEST(CapacityFactor, IntervalVariancesDropPartialTail) {
  const auto power = test::constant_series(100.0, 30);
  const auto vars =
      interval_capacity_factor_variances(power, Kilowatts{800.0}, 12);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_THROW(interval_capacity_factor_variances(power, Kilowatts{800.0}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace smoother::power
