// smoother::persist: the canonical codec, component state serialization,
// and the snapshot + WAL engine's recovery and corruption semantics.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "smoother/battery/battery.hpp"
#include "smoother/core/online.hpp"
#include "smoother/persist/codec.hpp"
#include "smoother/persist/engine.hpp"
#include "smoother/persist/state.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/resilience/health.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::persist {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory (pid-qualified: the binary can run concurrently
/// under ctest -j).
std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("smoother_persist_" + name + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// File header in the engine's on-disk framing: magic + u32 version.
std::string file_header(std::string_view magic, std::uint32_t version) {
  Writer w;
  w.u32(version);
  return std::string(magic) + w.bytes();
}

/// One record in the engine's framing:
/// [u32 len][u32 crc32c(seq || payload)][u64 seq][payload].
std::string framed_record(std::uint64_t seq, std::string_view payload) {
  Writer seq_bytes;
  seq_bytes.u64(seq);
  const std::string checksummed = seq_bytes.bytes() + std::string(payload);
  Writer head;
  head.u32(static_cast<std::uint32_t>(payload.size()));
  head.u32(crc32c(checksummed));
  return head.bytes() + checksummed;
}

ErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const PersistError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a PersistError";
  return ErrorKind::kIo;
}

// ------------------------------------------------------------------ codec

TEST(Crc32c, MatchesTheGoldenVector) {
  // The standard CRC32C check value; pins polynomial, reflection, and the
  // init/final xor in one shot.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
}

TEST(Crc32c, ExtendChainsAcrossSplitPoints) {
  // crc32c_extend(crc32c(a), b) == crc32c(a || b) at every split,
  // including splits that are not multiples of the hardware word size.
  const std::string_view whole = "123456789";
  for (std::size_t cut = 0; cut <= whole.size(); ++cut)
    EXPECT_EQ(crc32c_extend(crc32c(whole.substr(0, cut)), whole.substr(cut)),
              0xE3069283u)
        << "split at " << cut;
}

TEST(Codec, RoundTripsEveryType) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  w.boolean(true);
  w.boolean(false);
  const std::vector<double> doubles = {1.5, -2.25, 1e300};
  w.doubles(doubles);
  const std::vector<std::uint64_t> words = {1, 0, ~0ull};
  w.u64s(words);
  const std::string with_nul("hi\0!", 4);
  w.str(with_nul);  // embedded NUL must survive (length-prefixed, not C-str)

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit-exact, not just value-equal
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.doubles(), doubles);
  EXPECT_EQ(r.u64s(), words);
  EXPECT_EQ(r.str(), with_nul);
  r.expect_done();
}

TEST(Codec, EncodingIsCanonicalLittleEndian) {
  Writer w;
  w.u32(0x01020304u);
  const std::string& bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[3]), 0x01);
}

TEST(Codec, TruncatedInputThrowsTyped) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes());
  EXPECT_EQ(kind_of([&] { (void)r.u64(); }), ErrorKind::kTruncated);
}

TEST(Codec, BadBooleanByteIsCorrupt) {
  Reader r(std::string_view("\x02", 1));
  EXPECT_EQ(kind_of([&] { (void)r.boolean(); }), ErrorKind::kCorrupt);
}

TEST(Codec, OversizedContainerCountIsCorruptNotBadAlloc) {
  Writer w;
  w.u64(~0ull);  // a count no input could satisfy
  Reader doubles_reader(w.bytes());
  EXPECT_EQ(kind_of([&] { (void)doubles_reader.doubles(); }),
            ErrorKind::kCorrupt);
  Reader str_reader(w.bytes());
  EXPECT_EQ(kind_of([&] { (void)str_reader.str(); }), ErrorKind::kCorrupt);
}

TEST(Codec, TrailingBytesAreDetected) {
  Writer w;
  w.u32(1);
  w.u8(0);
  Reader r(w.bytes());
  (void)r.u32();
  EXPECT_EQ(kind_of([&] { r.expect_done(); }), ErrorKind::kCorrupt);
}

// ------------------------------------------------------- component states

TEST(StateCodec, RngRoundTripContinuesIdentically) {
  util::Rng original(0xABCD);
  for (int i = 0; i < 17; ++i) (void)original.uniform();
  (void)original.normal();  // loads the Box-Muller cache

  Writer w;
  save_state(w, original);
  Reader r(w.bytes());
  util::Rng restored(1);
  restore_state(r, restored);
  r.expect_done();
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(original.uniform(), restored.uniform());
}

TEST(StateCodec, RngAllZeroEngineIsCorrupt) {
  util::RngState zero;  // all-zero engine: outside xoshiro's orbit
  Writer w;
  save_state(w, zero);
  Reader r(w.bytes());
  util::Rng rng(1);
  EXPECT_EQ(kind_of([&] { restore_state(r, rng); }), ErrorKind::kCorrupt);
}

TEST(StateCodec, BatteryRoundTripIsBitExact) {
  const battery::BatterySpec spec = battery::spec_for_max_rate(
      util::Kilowatts{400.0}, util::kFiveMinutes, 2.0);
  battery::Battery original(spec);
  (void)original.charge(util::Kilowatts{120.0}, util::Minutes{5.0});
  (void)original.discharge(util::Kilowatts{65.0}, util::Minutes{5.0});

  Writer w;
  save_state(w, original);
  Reader r(w.bytes());
  battery::Battery restored(spec);
  restore_state(r, restored);
  EXPECT_EQ(restored.energy().value(), original.energy().value());
  EXPECT_EQ(restored.total_charged().value(),
            original.total_charged().value());
  EXPECT_EQ(restored.total_discharged().value(),
            original.total_discharged().value());
}

TEST(StateCodec, BatteryEnergyOutsideTheCorridorIsCorrupt) {
  const battery::BatterySpec spec = battery::spec_for_max_rate(
      util::Kilowatts{400.0}, util::kFiveMinutes, 2.0);
  Writer w;
  w.f64(spec.max_energy().value() * 2.0);  // beyond any legal SoC
  w.f64(0.0);
  w.f64(0.0);
  Reader r(w.bytes());
  battery::Battery restored(spec);
  EXPECT_EQ(kind_of([&] { restore_state(r, restored); }),
            ErrorKind::kCorrupt);
}

TEST(StateCodec, HealthReportRoundTrips) {
  resilience::HealthReport original;
  original.samples_seen = 1234;
  original.samples_faulted = 56;
  original.faults[0] = 7;
  original.intervals_seen = 102;
  original.intervals_fallback = 9;
  original.fallbacks[1] = 4;
  original.degraded_entries = 2;
  original.recoveries = 1;

  Writer w;
  save_state(w, original);
  Reader r(w.bytes());
  resilience::HealthReport restored;
  restore_state(r, restored);
  EXPECT_EQ(restored.samples_seen, original.samples_seen);
  EXPECT_EQ(restored.samples_faulted, original.samples_faulted);
  EXPECT_EQ(restored.faults, original.faults);
  EXPECT_EQ(restored.intervals_seen, original.intervals_seen);
  EXPECT_EQ(restored.intervals_fallback, original.intervals_fallback);
  EXPECT_EQ(restored.fallbacks, original.fallbacks);
  EXPECT_EQ(restored.degraded_entries, original.degraded_entries);
  EXPECT_EQ(restored.recoveries, original.recoveries);
}

TEST(StateCodec, OnlineSmootherRoundTripContinuesByteIdentically) {
  // The tentpole contract end to end at the component level: checkpoint a
  // live smoother mid-interval, restore into a fresh one, feed both the
  // same remaining telemetry, and demand byte-identical interval records
  // and output samples. Warm starts stay off — their iterates are
  // deliberately not persisted (DESIGN.md §4i).
  core::OnlineSmootherConfig config;
  config.rated_power = util::Kilowatts{800.0};
  config.warmup_intervals = 4;
  config.history_intervals = 24;
  config.flexible_smoothing.warm_start = false;

  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const util::TimeSeries series =
      power::TurbineCurve::enercon_e48().power_series(
          model.generate(util::days(4.0), util::kFiveMinutes, 99));
  const std::size_t points = config.flexible_smoothing.points_per_interval;

  const auto oracle = [&series, points](std::size_t k) {
    std::vector<double> forecast(points, 0.0);
    for (std::size_t j = 0; j < points; ++j)
      if (k * points + j < series.size()) forecast[j] = series[k * points + j];
    return forecast;
  };
  const battery::BatterySpec spec = battery::spec_for_max_rate(
      util::Kilowatts{400.0}, util::kFiveMinutes, 2.0);
  const auto make_smoother = [&] {
    core::OnlineSmoother::Hooks hooks;
    hooks.forecast_oracle = oracle;
    return core::OnlineSmoother(config, battery::Battery(spec),
                                std::move(hooks));
  };

  core::OnlineSmoother original = make_smoother();
  const std::size_t checkpoint_at = 10 * points + 7;  // mid-interval
  ASSERT_LT(checkpoint_at, series.size());
  for (std::size_t i = 0; i < checkpoint_at; ++i)
    (void)original.push(series[i]);

  Writer w;
  save_state(w, original);
  Reader r(w.bytes());
  core::OnlineSmoother restored = make_smoother();
  restore_state(r, restored);
  r.expect_done();
  EXPECT_EQ(restored.intervals_completed(), original.intervals_completed());

  std::size_t records = 0;
  for (std::size_t i = checkpoint_at; i < series.size(); ++i) {
    const auto a = original.push(series[i]);
    const auto b = restored.push(series[i]);
    ASSERT_EQ(a.has_value(), b.has_value()) << "sample " << i;
    if (!a) continue;
    ++records;
    EXPECT_EQ(a->index, b->index);
    EXPECT_EQ(a->region, b->region);
    EXPECT_EQ(a->smoothed, b->smoothed);
    EXPECT_EQ(a->warmup, b->warmup);
    EXPECT_EQ(a->degraded, b->degraded);
    EXPECT_EQ(a->fallback, b->fallback);
    EXPECT_EQ(a->cf_variance, b->cf_variance);
    EXPECT_EQ(a->variance_before, b->variance_before);
    EXPECT_EQ(a->variance_after, b->variance_after);
    EXPECT_EQ(a->solver_iterations, b->solver_iterations);
  }
  EXPECT_GT(records, 50u);

  // Post-restore output samples must match the uninterrupted run's tail.
  const util::TimeSeries& out_a = original.output();
  const util::TimeSeries& out_b = restored.output();
  ASSERT_LE(out_b.size(), out_a.size());
  for (std::size_t i = 0; i < out_b.size(); ++i)
    EXPECT_EQ(out_b[out_b.size() - 1 - i], out_a[out_a.size() - 1 - i])
        << "output sample " << i << " from the end";
}

// ----------------------------------------------------------------- engine

TEST(AtomicWrite, ReplacesTheWholeFile) {
  const std::string dir = test_dir("atomic");
  fs::create_directories(dir);
  const std::string path = (fs::path(dir) / "metrics.json").string();
  atomic_write_file(path, "first version, long enough to leave a tail");
  atomic_write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(Engine, FreshDirectoryRecoversNothing) {
  PersistConfig config;
  config.directory = test_dir("fresh");
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_FALSE(recovered.found);
  EXPECT_EQ(recovered.wal_records_replayed, 0u);
  EXPECT_EQ(engine.next_sequence(), 1u);
}

TEST(Engine, AppendThenRecoverReturnsTheNewestPayload) {
  PersistConfig config;
  config.directory = test_dir("roundtrip");
  config.snapshot_every_records = 0;  // no compaction in this test
  {
    PersistEngine engine(config);
    engine.append("alpha");
    engine.append("beta");
    engine.append("gamma");
  }
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_TRUE(recovered.found);
  EXPECT_EQ(recovered.state, "gamma");
  EXPECT_EQ(recovered.sequence, 3u);
  EXPECT_FALSE(recovered.from_snapshot);
  EXPECT_EQ(recovered.wal_records_replayed, 3u);
  EXPECT_EQ(recovered.wal_bytes_truncated, 0u);
  EXPECT_EQ(engine.next_sequence(), 4u);
}

TEST(Engine, TornFinalRecordIsTruncatedToTheLastValidOne) {
  PersistConfig config;
  config.directory = test_dir("torn");
  config.snapshot_every_records = 0;
  {
    PersistEngine engine(config);
    engine.append("alpha");
    engine.append("beta");
    engine.append("gamma");
  }
  const std::string wal =
      (fs::path(config.directory) / "wal.bin").string();
  const auto full_size = fs::file_size(wal);
  fs::resize_file(wal, full_size - 3);  // tear into "gamma"'s payload

  {
    PersistEngine engine(config);
    const RecoveredState recovered = engine.recover();
    EXPECT_TRUE(recovered.found);
    EXPECT_EQ(recovered.state, "beta");
    EXPECT_EQ(recovered.wal_records_replayed, 2u);
    EXPECT_GT(recovered.wal_bytes_truncated, 0u);
    // The torn tail is gone from disk and appending resumes cleanly (the
    // buffered append becomes durable when the engine closes).
    engine.append("delta");
  }
  PersistEngine again(config);
  const RecoveredState after = again.recover();
  EXPECT_EQ(after.state, "delta");
  EXPECT_EQ(after.wal_records_replayed, 3u);
}

TEST(Engine, BitFlippedPayloadFailsItsCrcAndTruncatesThere) {
  PersistConfig config;
  config.directory = test_dir("bitflip");
  config.snapshot_every_records = 0;
  {
    PersistEngine engine(config);
    engine.append("alpha");
    engine.append("beta");
    engine.append("gamma");
  }
  const std::string wal =
      (fs::path(config.directory) / "wal.bin").string();
  std::string bytes = read_file(wal);
  // Offset of "beta"'s payload: 8 header + (16 + 5) for "alpha" + 16.
  const std::size_t flip_at = 8 + 21 + 16 + 1;
  ASSERT_LT(flip_at, bytes.size());
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x40);
  write_file(wal, bytes);

  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  // Scanning stops at the checksum failure: "gamma", though intact on
  // disk after the damaged record, is unreachable and must not resurface.
  EXPECT_TRUE(recovered.found);
  EXPECT_EQ(recovered.state, "alpha");
  EXPECT_EQ(recovered.wal_records_replayed, 1u);
  EXPECT_GT(recovered.wal_bytes_truncated, 0u);
  EXPECT_EQ(fs::file_size(wal), 8u + 21u);
}

TEST(Engine, EmptyAndHeaderlessWalsRecoverNothing) {
  PersistConfig config;
  config.directory = test_dir("emptywal");
  fs::create_directories(config.directory);
  const std::string wal =
      (fs::path(config.directory) / "wal.bin").string();
  write_file(wal, "");  // zero-length file
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_FALSE(recovered.found);
  // A half-written header (shorter than magic + version) is equally void.
  write_file(wal, "SMW");
  PersistEngine again(config);
  EXPECT_FALSE(again.recover().found);
}

TEST(Engine, FutureFormatVersionIsRejectedWithTheTypedError) {
  PersistConfig config;
  config.directory = test_dir("future");
  fs::create_directories(config.directory);
  write_file((fs::path(config.directory) / "snapshot.bin").string(),
             file_header("SMSN", kFormatVersion + 1) +
                 framed_record(1, "from the future"));
  PersistEngine engine(config);
  EXPECT_EQ(kind_of([&] { (void)engine.recover(); }),
            ErrorKind::kFutureVersion);

  PersistConfig wal_config;
  wal_config.directory = test_dir("future_wal");
  fs::create_directories(wal_config.directory);
  write_file((fs::path(wal_config.directory) / "wal.bin").string(),
             file_header("SMWL", kFormatVersion + 1) + framed_record(1, "x"));
  PersistEngine wal_engine(wal_config);
  EXPECT_EQ(kind_of([&] { (void)wal_engine.recover(); }),
            ErrorKind::kFutureVersion);
}

TEST(Engine, ForeignFileIsRejectedAsBadMagic) {
  PersistConfig config;
  config.directory = test_dir("magic");
  fs::create_directories(config.directory);
  write_file((fs::path(config.directory) / "snapshot.bin").string(),
             "PK\x03\x04 definitely not ours, padded past the header");
  PersistEngine engine(config);
  EXPECT_EQ(kind_of([&] { (void)engine.recover(); }), ErrorKind::kBadMagic);
}

TEST(Engine, CorruptSnapshotSurfacesAsChecksumError) {
  PersistConfig config;
  config.directory = test_dir("snapcrc");
  fs::create_directories(config.directory);
  std::string snapshot =
      file_header("SMSN", kFormatVersion) + framed_record(4, "state");
  snapshot[snapshot.size() - 2] =
      static_cast<char>(snapshot[snapshot.size() - 2] ^ 0x01);  // bit rot
  write_file((fs::path(config.directory) / "snapshot.bin").string(),
             snapshot);
  PersistEngine engine(config);
  // Snapshots are written atomically, so unlike a WAL tail this is not a
  // torn write to shrug off — it must fail loudly.
  EXPECT_EQ(kind_of([&] { (void)engine.recover(); }), ErrorKind::kChecksum);
}

TEST(Engine, AutoCompactionSnapshotsAndTruncatesTheWal) {
  PersistConfig config;
  config.directory = test_dir("compact");
  config.snapshot_every_records = 2;
  {
    PersistEngine engine(config);
    engine.append("p1");
    engine.append("p2");  // compaction: snapshot(p2), WAL truncated
    engine.append("p3");
    EXPECT_EQ(engine.wal_records(), 1u);
    EXPECT_TRUE(fs::exists(engine.snapshot_path()));
  }
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_TRUE(recovered.found);
  EXPECT_EQ(recovered.state, "p3");
  EXPECT_FALSE(recovered.from_snapshot);  // the WAL record is newer
  EXPECT_EQ(recovered.wal_records_replayed, 1u);
}

TEST(Engine, RecoveryFromSnapshotAloneWorks) {
  PersistConfig config;
  config.directory = test_dir("snaponly");
  config.snapshot_every_records = 2;
  {
    PersistEngine engine(config);
    engine.append("p1");
    engine.append("p2");  // compaction leaves snapshot(p2) + empty WAL
  }
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_TRUE(recovered.found);
  EXPECT_EQ(recovered.state, "p2");
  EXPECT_TRUE(recovered.from_snapshot);
  EXPECT_EQ(recovered.wal_records_replayed, 0u);
}

TEST(Engine, StaleWalRecordsBehindANewerSnapshotAreIgnored) {
  // The crash window between snapshot-rename and WAL-truncate: the WAL
  // still holds records the snapshot supersedes. Sequence numbers tie the
  // files together, so recovery must prefer the snapshot.
  PersistConfig config;
  config.directory = test_dir("stale");
  config.snapshot_every_records = 0;
  {
    PersistEngine engine(config);
    engine.append("old1");
    engine.append("old2");
  }
  write_file((fs::path(config.directory) / "snapshot.bin").string(),
             file_header("SMSN", kFormatVersion) +
                 framed_record(9, "newer than the wal"));
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_TRUE(recovered.found);
  EXPECT_EQ(recovered.state, "newer than the wal");
  EXPECT_TRUE(recovered.from_snapshot);
  EXPECT_EQ(recovered.wal_records_stale, 2u);
  EXPECT_EQ(recovered.wal_records_replayed, 0u);
  EXPECT_EQ(engine.next_sequence(), 10u);
}

// ------------------------------------------------- append fault injection
//
// The failure-atomicity contract: an append that throws leaves the engine
// exactly where it was — sequence unchanged, no partial bytes on disk — so
// the caller can retry, continue, or snapshot, and a later recovery never
// silently truncates records appended after the failure.

/// Config whose append faults fire exactly once, on the given sequence.
PersistConfig one_shot_fault(const std::string& dir, std::uint64_t target,
                             AppendFault kind) {
  PersistConfig config;
  config.directory = dir;
  config.snapshot_every_records = 0;
  auto fired = std::make_shared<bool>(false);
  config.append_fault = [fired, target, kind](std::uint64_t seq) {
    if (seq == target && !*fired) {
      *fired = true;
      return kind;
    }
    return AppendFault::kNone;
  };
  return config;
}

TEST(Engine, TornAppendRollsBackAndTheRetryReusesTheSequence) {
  const PersistConfig config = one_shot_fault(
      test_dir("append_torn"), 2, AppendFault::kTornWrite);
  {
    PersistEngine engine(config);
    engine.append("alpha");
    EXPECT_EQ(kind_of([&] { engine.append("beta"); }), ErrorKind::kIo);
    // The failed append is invisible: sequence did not advance and the
    // retry lands on the same slot.
    EXPECT_EQ(engine.next_sequence(), 2u);
    engine.append("beta");
    engine.append("gamma");
  }
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_TRUE(recovered.found);
  EXPECT_EQ(recovered.state, "gamma");
  EXPECT_EQ(recovered.sequence, 3u);
  EXPECT_EQ(recovered.wal_records_replayed, 3u);
  // Rollback removed the torn bytes at append time; recovery has nothing
  // left to repair.
  EXPECT_EQ(recovered.wal_bytes_truncated, 0u);
}

TEST(Engine, FsyncFailureLeavesNoPhantomRecord) {
  // The record's bytes reached the file, but durability was never
  // confirmed — it must be rolled back, not kept, or the retry would
  // write a duplicate sequence and recovery would stop at the first one.
  const PersistConfig config = one_shot_fault(
      test_dir("append_fsync"), 2, AppendFault::kFsyncFailure);
  {
    PersistEngine engine(config);
    engine.append("alpha");
    EXPECT_EQ(kind_of([&] { engine.append("beta"); }), ErrorKind::kIo);
    engine.append("beta");
  }
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_EQ(recovered.state, "beta");
  EXPECT_EQ(recovered.sequence, 2u);
  EXPECT_EQ(recovered.wal_records_replayed, 2u);
  EXPECT_EQ(recovered.wal_bytes_truncated, 0u);
}

TEST(Engine, AppendsAfterAFailureSurviveRecoveryIntact) {
  // The original bug shape: garbage from a failed append sitting mid-WAL
  // makes recovery truncate there, silently discarding every *valid*
  // record appended afterwards. Rollback-on-failure closes it.
  const PersistConfig config = one_shot_fault(
      test_dir("append_continue"), 2, AppendFault::kTornWrite);
  {
    PersistEngine engine(config);
    engine.append("alpha");
    EXPECT_EQ(kind_of([&] { engine.append("beta"); }), ErrorKind::kIo);
    // Continue WITHOUT retrying the failed payload: later appends must
    // still be recoverable in full.
    engine.append("gamma");
    engine.append("delta");
  }
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_EQ(recovered.state, "delta");
  EXPECT_EQ(recovered.sequence, 3u);
  EXPECT_EQ(recovered.wal_records_replayed, 3u);
  EXPECT_EQ(recovered.wal_bytes_truncated, 0u);
}

TEST(Engine, SnapshotAfterAFailedAppendCompactsCleanly) {
  // snapshot() is the escape hatch that re-establishes a clean WAL no
  // matter what the append path did; the sequence it claims is the next
  // unclaimed one, assigned only after the snapshot file is durable.
  const PersistConfig config = one_shot_fault(
      test_dir("append_snapshot"), 2, AppendFault::kTornWrite);
  {
    PersistEngine engine(config);
    engine.append("alpha");
    EXPECT_EQ(kind_of([&] { engine.append("beta"); }), ErrorKind::kIo);
    engine.snapshot("beta-snapshot");
    EXPECT_EQ(engine.next_sequence(), 3u);
    engine.append("gamma");
  }
  PersistEngine engine(config);
  const RecoveredState recovered = engine.recover();
  EXPECT_EQ(recovered.state, "gamma");
  EXPECT_EQ(recovered.sequence, 3u);
  EXPECT_FALSE(recovered.from_snapshot);
  EXPECT_EQ(recovered.wal_records_replayed, 1u);
}

TEST(Engine, FsyncPoliciesAllPersist) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kEveryAppend,
        FsyncPolicy::kSnapshotOnly}) {
    PersistConfig config;
    config.directory = test_dir("fsync_" + to_string(policy));
    config.fsync = policy;
    config.snapshot_every_records = 2;
    {
      PersistEngine engine(config);
      engine.append("a");
      engine.append("b");
      engine.append("c");
    }
    PersistEngine engine(config);
    EXPECT_EQ(engine.recover().state, "c") << to_string(policy);
  }
}

}  // namespace
}  // namespace smoother::persist
