#include "smoother/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace smoother::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 7 - 600);
    EXPECT_LT(c, draws / 7 + 600);
  }
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, WeibullMeanMatchesAnalytic) {
  // Weibull(k=2, lambda): mean = lambda * Gamma(1.5) = lambda * 0.8862.
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(2.0, 6.0);
  EXPECT_NEAR(sum / n, 6.0 * 0.886227, 0.05);
}

TEST(Rng, WeibullRejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(rng.weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.weibull(1.0, -1.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, LognormalMean) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  Rng rng(29);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(0.0, 0.5);
  EXPECT_NEAR(sum / n, std::exp(0.125), 0.02);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.fork();
  // Streams should not be identical.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform() == child.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(99), b(99);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(ca.uniform(), cb.uniform());
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(123), b(123);
  Rng sa = a.split(7);
  Rng sb = b.split(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(sa.uniform(), sb.uniform());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(55), b(55);
  (void)a.split(1);
  (void)a.split(2);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitOrderDoesNotMatter) {
  // split() is a pure function of (seed, stream_id): requesting streams in
  // any order — even interleaved with draws — yields the same streams.
  Rng forward(321);
  Rng s1 = forward.split(1);
  Rng s2 = forward.split(2);

  Rng backward(321);
  Rng t2 = backward.split(2);
  for (int i = 0; i < 10; ++i) (void)backward.uniform();
  Rng t1 = backward.split(1);

  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(s1.uniform(), t1.uniform());
    EXPECT_DOUBLE_EQ(s2.uniform(), t2.uniform());
  }
}

TEST(Rng, SplitStreamsDifferFromParentAndEachOther) {
  Rng parent(77);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int equal_parent = 0, equal_sibling = 0;
  for (int i = 0; i < 1000; ++i) {
    const double p = parent.uniform();
    const double u0 = s0.uniform();
    const double u1 = s1.uniform();
    if (p == u0) ++equal_parent;
    if (u0 == u1) ++equal_sibling;
  }
  EXPECT_LT(equal_parent, 5);
  EXPECT_LT(equal_sibling, 5);
}

TEST(Rng, SplitStreamsDoNotCorrelate) {
  // Pearson correlation between sibling streams (including the adjacent-id
  // pairs a weak mixer would couple) stays near zero.
  Rng root(2024);
  const int n = 20000;
  for (std::uint64_t id = 0; id < 4; ++id) {
    Rng a = root.split(id);
    Rng b = root.split(id + 1);
    double sum_a = 0.0, sum_b = 0.0, sum_ab = 0.0, sum_a2 = 0.0,
           sum_b2 = 0.0;
    for (int i = 0; i < n; ++i) {
      const double x = a.uniform();
      const double y = b.uniform();
      sum_a += x;
      sum_b += y;
      sum_ab += x * y;
      sum_a2 += x * x;
      sum_b2 += y * y;
    }
    const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
    const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
    const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
    const double correlation = cov / std::sqrt(var_a * var_b);
    EXPECT_NEAR(correlation, 0.0, 0.03)
        << "streams " << id << " and " << id + 1 << " correlate";
  }
}

TEST(Rng, SplitOfSplitIsIndependent) {
  // Nested splitting (task -> substream) keeps producing fresh streams.
  Rng root(11);
  Rng task = root.split(3);
  Rng sub0 = task.split(0);
  Rng sub1 = task.split(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (sub0.uniform() == sub1.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkedChildrenSplitIntoDistinctFamilies) {
  Rng parent(500);
  Rng child_a = parent.fork();
  Rng child_b = parent.fork();
  Rng sa = child_a.split(0);
  Rng sb = child_b.split(0);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (sa.uniform() == sb.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro, KnownBitsAreStable) {
  // Regression pin: the first outputs for a fixed seed must never change,
  // or every generated trace in the repo silently changes.
  Xoshiro256 engine(12345);
  const std::uint64_t first = engine();
  Xoshiro256 engine2(12345);
  EXPECT_EQ(first, engine2());
}

// Golden pins for the portability guarantee documented in rng.hpp: the
// integer/uniform tier is bit-exact on every platform (EXPECT_EQ); the
// transcendental tier consumes the same engine outputs everywhere but its
// values are only exact per libm (EXPECT_NEAR with tight tolerances).
// splitmix64(0)'s first output matches Vigna's published reference vector,
// which pins the whole derivation chain to the upstream algorithms.

TEST(RngGolden, SplitMix64MatchesReferenceVector) {
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 16294208416658607535ULL);  // 0xE220A8397B1DCDAF
  EXPECT_EQ(sm.next(), 7960286522194355700ULL);
  EXPECT_EQ(sm.next(), 487617019471545679ULL);
}

TEST(RngGolden, XoshiroOutputsArePinned) {
  Xoshiro256 engine(12345);
  EXPECT_EQ(engine(), 13720838825685603483ULL);
  EXPECT_EQ(engine(), 2398916695208396998ULL);
  EXPECT_EQ(engine(), 17770384849984869256ULL);
  EXPECT_EQ(engine(), 891717726879801395ULL);
}

TEST(RngGolden, UniformTierIsBitExact) {
  // uniform(): top 53 engine bits * 2^-53 — every operation is exact in
  // IEEE-754, so these are EXPECT_EQ on any platform.
  Rng uniform_rng(42);
  // 17-significant-digit literals round-trip exactly to the pinned doubles.
  EXPECT_EQ(uniform_rng.uniform(), 0.083862971059882163);
  EXPECT_EQ(uniform_rng.uniform(), 0.37898025066266861);
  EXPECT_EQ(uniform_rng.uniform(), 0.68004341102813937);

  Rng index_rng(42);
  EXPECT_EQ(index_rng.uniform_index(1000), 742u);
  EXPECT_EQ(index_rng.uniform_index(1000), 102u);
  EXPECT_EQ(index_rng.uniform_index(1000), 9u);
}

TEST(RngGolden, StreamDerivationIsPinned) {
  // derive_stream_seed is the identity every split stream in the repo —
  // sweeps, the fault injector, dsim — hangs off; integer-only, bit-exact.
  EXPECT_EQ(Rng::derive_stream_seed(42, 0), 4882731714671798318ULL);
  EXPECT_EQ(Rng::derive_stream_seed(42, 7), 1090120882629537808ULL);
  EXPECT_EQ(Rng::derive_stream_seed(0, 0), 13734107598367015650ULL);
}

TEST(RngGolden, TranscendentalTierIsPinnedPerLibm) {
  // Box-Muller / inverse-CDF draws route through libm (log, sin, cos, pow),
  // which is not correctly rounded — pin to a few ulps, not bytes.
  constexpr double kTol = 1e-12;
  Rng normal_rng(42);
  EXPECT_NEAR(normal_rng.normal(), -1.6132237513849161, kTol);
  EXPECT_NEAR(normal_rng.normal(), 1.5344873235334195, kTol);
  Rng exp_rng(42);
  EXPECT_NEAR(exp_rng.exponential(1.0), 2.4785711090585898, kTol);
  Rng weibull_rng(42);
  EXPECT_NEAR(weibull_rng.weibull(2.0, 8.0), 12.594782688865646, kTol);
}

// RngState: checkpoint/restore of the full generator position (engine
// words, stream seed, fork counter, Box-Muller cache) for the persistence
// layer. A restored generator must be indistinguishable from the original
// from the restore point on — draws, forks, and splits included.

TEST(RngState, RoundTripContinuesIdentically) {
  Rng original(0xFEED);
  // Park the generator at an awkward position: uniforms consumed, streams
  // split (no-ops on state), a fork (bumps the counter) and an odd number
  // of normals (loads the Box-Muller cache).
  for (int i = 0; i < 37; ++i) (void)original.uniform();
  (void)original.split(3);
  (void)original.fork();
  (void)original.normal();
  Rng restored(1);  // arbitrary seed; restore overwrites everything
  restored.restore(original.state());
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(original.uniform(), restored.uniform()) << "draw " << i;
}

TEST(RngState, CachedNormalSurvivesRoundTrip) {
  Rng original(7);
  (void)original.normal();  // odd draw: the second variate stays cached
  Rng restored(99);
  restored.restore(original.state());
  // First normal comes straight from the restored cache; the ones after it
  // re-enter Box-Muller with identical engine positions.
  for (int i = 0; i < 9; ++i) EXPECT_EQ(original.normal(), restored.normal());
}

TEST(RngState, ForkAndSplitContinueIdentically) {
  Rng original(2026);
  for (int i = 0; i < 5; ++i) (void)original.fork();
  Rng restored(0);
  restored.restore(original.state());
  // The fork counter is part of the state: the next fork of each must be
  // the same stream, and split derivation (pure in the stored seed) too.
  Rng fa = original.fork(), fb = restored.fork();
  Rng sa = original.split(17), sb = restored.split(17);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fa.uniform(), fb.uniform());
    EXPECT_EQ(sa.uniform(), sb.uniform());
  }
}

TEST(RngState, RejectsAllZeroEngine) {
  RngState zero;  // engine words default to zero — a dead xoshiro orbit
  Rng rng(1);
  EXPECT_THROW(rng.restore(zero), std::invalid_argument);
}

TEST(RngState, RejectsNonFiniteCachedNormal) {
  Rng rng(5);
  RngState state = rng.state();
  state.has_cached_normal = true;
  state.cached_normal = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(rng.restore(state), std::invalid_argument);
}

TEST(RngStateGolden, StateWordsAndResumedDrawsArePinned) {
  // Golden pin for the persistence format: the captured state of a fixed
  // (seed, position) and the draws that follow a restore must never change,
  // or checkpoints written by older builds would silently restore to
  // different streams.
  Rng rng(42);
  for (int i = 0; i < 3; ++i) (void)rng.uniform();
  const RngState state = rng.state();
  EXPECT_EQ(state.seed, 42u);
  EXPECT_EQ(state.forks, 0u);
  EXPECT_FALSE(state.has_cached_normal);
  EXPECT_EQ(state.engine[0], 14724789073754520473ULL);
  EXPECT_EQ(state.engine[1], 2590629650289322887ULL);
  EXPECT_EQ(state.engine[2], 7959817307922065030ULL);
  EXPECT_EQ(state.engine[3], 9375168587437865237ULL);

  Rng restored(7);
  restored.restore(state);
  // Continues the uniform tier of Rng(42) past the three consumed draws
  // (bit-exact on every platform, like RngGolden.UniformTierIsBitExact).
  EXPECT_EQ(restored.uniform(), 0.92469294532538759);
  EXPECT_EQ(restored.uniform(), 0.99180391428210279);
  EXPECT_EQ(restored.uniform(), 0.76973946043424246);
}

}  // namespace
}  // namespace smoother::util
