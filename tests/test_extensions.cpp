// Tests for the receding-horizon FS, the price-aware Active Delay and the
// ramp-rate (ROCOF-proxy) metric.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "smoother/core/active_delay.hpp"
#include "smoother/core/flexible_smoothing.hpp"
#include "smoother/core/metrics.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/stats/descriptive.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother::core {
namespace {

using util::Kilowatts;
using util::Minutes;

// --- max ramp rate -----------------------------------------------------------

TEST(MaxRampRate, HandComputed) {
  // 5-minute steps; largest jump 300 kW -> 60 kW/min.
  const auto series = test::series({100.0, 400.0, 350.0});
  EXPECT_DOUBLE_EQ(max_ramp_rate_kw_per_min(series), 60.0);
  EXPECT_DOUBLE_EQ(max_ramp_rate_kw_per_min(test::constant_series(5.0, 10)),
                   0.0);
  EXPECT_DOUBLE_EQ(max_ramp_rate_kw_per_min(util::TimeSeries{}), 0.0);
}

TEST(MaxRampRate, TypicalRampDropsAndLookaheadHelpsWorstCase) {
  // Per-hour FS flattens *within* intervals, so the typical (rms) ramp
  // drops, but a level step at an hour boundary can keep the single worst
  // ramp high — the receding-horizon planner exists to fix exactly that.
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(2.0), util::kFiveMinutes, 3));
  RegionClassifierConfig rc;
  rc.rated_power = Kilowatts{800.0};
  rc.thresholds.stable_below = 1e-8;
  rc.thresholds.extreme_above = 1.0;
  const RegionClassifier classifier(rc);
  auto spec = battery::spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes,
                                         4.0);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;

  battery::Battery hourly_battery(spec);
  const auto hourly =
      FlexibleSmoothing().smooth(supply, classifier, hourly_battery);
  EXPECT_LT(stats::rms_successive_diff(hourly.supply.values()),
            stats::rms_successive_diff(supply.values()));

  FlexibleSmoothingConfig mpc_config;
  mpc_config.lookahead_intervals = 3;
  battery::Battery mpc_battery(spec);
  const auto mpc = FlexibleSmoothing(mpc_config).smooth(supply, classifier,
                                                        mpc_battery);
  EXPECT_LE(max_ramp_rate_kw_per_min(mpc.supply),
            max_ramp_rate_kw_per_min(hourly.supply) + 1e-9);
}

// --- receding-horizon FS -----------------------------------------------------

battery::BatterySpec fs_battery() {
  auto spec = battery::spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes,
                                         4.0);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return spec;
}

RegionClassifier lenient_classifier() {
  RegionClassifierConfig rc;
  rc.rated_power = Kilowatts{800.0};
  rc.thresholds.stable_below = 1e-8;
  rc.thresholds.extreme_above = 1.0;
  return RegionClassifier(rc);
}

TEST(RecedingHorizon, ConfigValidation) {
  FlexibleSmoothingConfig config;
  config.lookahead_intervals = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.lookahead_intervals = 3;
  EXPECT_NO_THROW(config.validate());
}

TEST(RecedingHorizon, LookaheadOneMatchesBaseline) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(1.0), util::kFiveMinutes, 9));
  FlexibleSmoothingConfig base;
  FlexibleSmoothingConfig one;
  one.lookahead_intervals = 1;
  battery::Battery b1(fs_battery()), b2(fs_battery());
  const auto r1 = FlexibleSmoothing(base).smooth(supply, lenient_classifier(), b1);
  const auto r2 = FlexibleSmoothing(one).smooth(supply, lenient_classifier(), b2);
  EXPECT_EQ(r1.supply, r2.supply);
}

TEST(RecedingHorizon, ReducesBoundarySteps) {
  // The per-hour planner flattens each hour to its own level, leaving
  // steps at hour boundaries; the receding-horizon planner anticipates
  // the next hours and ramps between levels, lowering overall roughness.
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(3.0), util::kFiveMinutes, 17));
  const auto roughness_with = [&](std::size_t lookahead) {
    FlexibleSmoothingConfig config;
    config.lookahead_intervals = lookahead;
    battery::Battery battery(fs_battery());
    const auto result = FlexibleSmoothing(config).smooth(
        supply, lenient_classifier(), battery);
    return stats::rms_successive_diff(result.supply.values());
  };
  EXPECT_LT(roughness_with(3), roughness_with(1));
}

TEST(RecedingHorizon, SocCorridorStillHolds) {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto supply = power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(2.0), util::kFiveMinutes, 23));
  FlexibleSmoothingConfig config;
  config.lookahead_intervals = 4;
  battery::Battery battery(fs_battery());
  (void)FlexibleSmoothing(config).smooth(supply, lenient_classifier(),
                                         battery);
  EXPECT_GE(battery.soc_fraction(), 0.10 - 1e-9);
  EXPECT_LE(battery.soc_fraction(), 1.0 + 1e-9);
}

TEST(RecedingHorizon, HandlesSeriesEndGracefully) {
  // Lookahead longer than what is left must clamp, not throw.
  const auto supply = test::sawtooth_series(0.0, 500.0, 6, 24);  // 2 hours
  FlexibleSmoothingConfig config;
  config.lookahead_intervals = 6;
  battery::Battery battery(fs_battery());
  const auto result = FlexibleSmoothing(config).smooth(
      supply, lenient_classifier(), battery);
  EXPECT_EQ(result.supply.size(), supply.size());
  EXPECT_EQ(result.intervals.size(), 2u);
}

// --- price-aware Active Delay -------------------------------------------------

TEST(PriceAwareAd, ConfigValidation) {
  ActiveDelayConfig config;
  config.offpeak_weight = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.offpeak_weight = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = ActiveDelayConfig{};
  config.peak_start_hour = 23.0;
  config.peak_end_hour = 8.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_THROW(ActiveDelayScheduler{config}, std::invalid_argument);
}

sched::Job deferrable_job(double arrival, double runtime, double deadline) {
  sched::Job job;
  job.id = 1;
  job.arrival = Minutes{arrival};
  job.runtime = Minutes{runtime};
  job.deadline = Minutes{deadline};
  job.servers = 1;
  job.power = Kilowatts{10.0};
  return job;
}

TEST(PriceAwareAd, ZeroRenewableShiftsWorkOffPeak) {
  // No renewable at all: the plain Algorithm 1 sees every slot as equal
  // and starts at arrival (10:00, peak); the price-aware variant waits for
  // the 22:00 off-peak boundary.
  sched::ScheduleRequest request;
  request.renewable =
      test::constant_series(0.0, 24 * 60, util::kOneMinute);  // one day
  request.total_servers = 4;
  request.jobs = {deferrable_job(10.0 * 60.0, 60.0, 24.0 * 60.0)};

  const auto plain = ActiveDelayScheduler().schedule(request);
  EXPECT_DOUBLE_EQ(plain.outcome.placements[0].start.value(), 600.0);

  ActiveDelayConfig price;
  price.offpeak_weight = 0.3;
  const auto aware = ActiveDelayScheduler(price).schedule(request);
  EXPECT_DOUBLE_EQ(aware.outcome.placements[0].start.value(), 22.0 * 60.0);
  EXPECT_TRUE(aware.outcome.placements[0].met_deadline);
}

TEST(PriceAwareAd, RenewableStillDominates) {
  // A fully renewable window inside the peak beats an off-peak dry slot
  // as long as the weight stays below 1.
  sched::ScheduleRequest request;
  std::vector<double> values(24 * 60, 0.0);
  for (std::size_t t = 12 * 60; t < 13 * 60; ++t) values[t] = 50.0;  // noon
  request.renewable = util::TimeSeries(util::kOneMinute, std::move(values));
  request.total_servers = 4;
  request.jobs = {deferrable_job(9.0 * 60.0, 60.0, 24.0 * 60.0)};

  ActiveDelayConfig price;
  price.offpeak_weight = 0.5;
  const auto result = ActiveDelayScheduler(price).schedule(request);
  EXPECT_DOUBLE_EQ(result.outcome.placements[0].start.value(), 12.0 * 60.0);
}

TEST(PriceAwareAd, DefaultIsExactlyAlgorithmOne) {
  // offpeak_weight = 0 must reproduce the plain scheduler bit-for-bit.
  const trace::WindSpeedModel model(trace::WindSitePresets::colorado_11005());
  sched::ScheduleRequest request;
  request.renewable = power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(1.0), util::kOneMinute, 5));
  request.total_servers = 64;
  for (int j = 0; j < 20; ++j) {
    auto job = deferrable_job(30.0 * j, 45.0, 30.0 * j + 600.0);
    job.id = static_cast<std::uint64_t>(j + 1);
    request.jobs.push_back(job);
  }
  const auto a = ActiveDelayScheduler().schedule(request);
  const auto b = ActiveDelayScheduler(ActiveDelayConfig{}).schedule(request);
  ASSERT_EQ(a.outcome.placements.size(), b.outcome.placements.size());
  for (std::size_t i = 0; i < a.outcome.placements.size(); ++i)
    EXPECT_DOUBLE_EQ(a.outcome.placements[i].start.value(),
                     b.outcome.placements[i].start.value());
}

}  // namespace
}  // namespace smoother::core
