#include "smoother/core/flexible_smoothing.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "helpers.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/trace/wind_speed_model.hpp"

namespace smoother::core {
namespace {

using util::Kilowatts;
using util::KilowattHours;
using util::Minutes;

battery::BatterySpec fs_battery_spec() {
  // Paper sizing: max rate 488 kW, capacity = one 5-min point at that rate.
  battery::BatterySpec spec =
      battery::spec_for_max_rate(Kilowatts{488.0}, util::kFiveMinutes);
  spec.charge_efficiency = 1.0;
  spec.discharge_efficiency = 1.0;
  return spec;
}

RegionClassifier lenient_classifier() {
  RegionClassifierConfig config;
  config.rated_power = Kilowatts{800.0};
  config.points_per_interval = 12;
  config.thresholds.stable_below = 1e-8;
  config.thresholds.extreme_above = 1.0;  // smooth everything non-flat
  return RegionClassifier(config);
}

TEST(FlexibleSmoothingConfig, Validation) {
  FlexibleSmoothingConfig config;
  EXPECT_NO_THROW(config.validate());
  config.points_per_interval = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = FlexibleSmoothingConfig{};
  config.max_discharge_capacity_fraction = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.max_discharge_capacity_fraction = 1.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FlexibleSmoothing, PlanValidatesSampleCount) {
  // plan_interval accepts any window of >= 2 samples (the receding-horizon
  // path plans multi-interval windows); degenerate windows throw.
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const auto tiny = test::constant_series(100.0, 1);
  EXPECT_THROW(fs.plan_interval(tiny, battery), std::invalid_argument);
  const auto odd = test::constant_series(100.0, 7);
  EXPECT_NO_THROW(fs.plan_interval(odd, battery));
}

TEST(FlexibleSmoothing, PlanReducesVariance) {
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const auto generation = test::sawtooth_series(100.0, 500.0, 6, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  EXPECT_EQ(plan.solver_status, solver::QpStatus::kSolved);
  EXPECT_LT(plan.variance_after, plan.variance_before);
  EXPECT_GT(plan.variance_before, 0.0);
}

TEST(FlexibleSmoothing, PlanIsPureWithRespectToBattery) {
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const double soc_before = battery.soc_fraction();
  const auto generation = test::sawtooth_series(100.0, 500.0, 6, 12);
  (void)fs.plan_interval(generation, battery);
  EXPECT_DOUBLE_EQ(battery.soc_fraction(), soc_before);
}

TEST(FlexibleSmoothing, PlanHonoursEq10Box) {
  const FlexibleSmoothing fs;
  const auto spec = fs_battery_spec();
  battery::Battery battery(spec);
  const auto generation = test::sawtooth_series(0.0, 800.0, 12, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  const double dt_hours = 5.0 / 60.0;
  const double discharge_cap = std::min(
      spec.max_discharge_rate.value() * dt_hours, 0.9 * spec.capacity.value());
  for (std::size_t i = 0; i < plan.schedule_kwh.size(); ++i) {
    const double s = plan.schedule_kwh[i];
    EXPECT_LE(s, discharge_cap + 1e-6);
    // Charging cannot exceed the energy generated at that point.
    EXPECT_GE(s, -(generation[i] * dt_hours) - 1e-6);
  }
}

TEST(FlexibleSmoothing, PlanHonoursEq11SocCorridor) {
  const FlexibleSmoothing fs;
  const auto spec = fs_battery_spec();
  battery::Battery battery(spec, 0.55);
  const auto generation = test::sawtooth_series(0.0, 800.0, 4, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  double cumulative = 0.0;
  for (double s : plan.schedule_kwh) {
    cumulative += s;
    const double soc = battery.energy().value() - cumulative;
    EXPECT_GE(soc, spec.min_energy().value() - 1e-6);
    EXPECT_LE(soc, spec.max_energy().value() + 1e-6);
  }
}

TEST(FlexibleSmoothing, FlatGenerationNeedsNoAction) {
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const auto generation = test::constant_series(300.0, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  for (double s : plan.schedule_kwh) EXPECT_NEAR(s, 0.0, 1e-4);
  EXPECT_NEAR(plan.variance_after, 0.0, 1e-6);
}

TEST(FlexibleSmoothing, ExecutePlanDeliversSmoothedSupply) {
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const auto generation = test::sawtooth_series(100.0, 500.0, 6, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  const auto supply = fs.execute_plan(plan, generation, battery);
  ASSERT_EQ(supply.size(), 12u);
  // Lossless battery with a feasible plan: execution matches the plan.
  EXPECT_NEAR(supply.variance(), plan.variance_after,
              plan.variance_before * 0.05 + 1e-6);
  for (std::size_t i = 0; i < supply.size(); ++i) EXPECT_GE(supply[i], 0.0);
}

TEST(FlexibleSmoothing, ExecuteConservesEnergyWithLosslessBattery) {
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const double battery_before = battery.energy().value();
  const auto generation = test::sawtooth_series(100.0, 500.0, 6, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  const auto supply = fs.execute_plan(plan, generation, battery);
  const double battery_delta = battery.energy().value() - battery_before;
  // supply energy = generation energy - energy parked in the battery.
  EXPECT_NEAR(supply.total_energy().value(),
              generation.total_energy().value() - battery_delta, 1e-6);
}

TEST(FlexibleSmoothing, SmoothRequiresMatchingIntervalLength) {
  FlexibleSmoothingConfig config;
  config.points_per_interval = 6;
  const FlexibleSmoothing fs(config);
  battery::Battery battery(fs_battery_spec());
  const auto generation = test::constant_series(100.0, 24);
  EXPECT_THROW(fs.smooth(generation, lenient_classifier(), battery),
               std::invalid_argument);
}

TEST(FlexibleSmoothing, SmoothOnlyTouchesSmoothableIntervals) {
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  // Interval 1 flat (Region-I), interval 2 wavy (Region-II-1).
  std::vector<double> values(12, 250.0);
  const auto wavy = test::sawtooth_series(50.0, 450.0, 6, 12);
  values.insert(values.end(), wavy.values().begin(), wavy.values().end());
  const auto generation = test::series(std::move(values));

  const auto result = fs.smooth(generation, lenient_classifier(), battery);
  EXPECT_EQ(result.smoothed_intervals, 1u);
  ASSERT_EQ(result.intervals.size(), 2u);
  EXPECT_EQ(result.intervals[0].region, Region::kStable);
  EXPECT_EQ(result.intervals[1].region, Region::kSmoothable);
  // Region-I passes through bit-identically.
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_DOUBLE_EQ(result.supply[i], generation[i]);
  // Region-II-1 is altered and smoother.
  const auto before = generation.slice(12, 12);
  const auto after = result.supply.slice(12, 12);
  EXPECT_LT(after.variance(), before.variance());
}

TEST(FlexibleSmoothing, SmoothTracksRequiredMaxRate) {
  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const auto generation = test::sawtooth_series(0.0, 700.0, 6, 48);
  const auto result = fs.smooth(generation, lenient_classifier(), battery);
  EXPECT_GT(result.required_max_rate_kw, 0.0);
  EXPECT_LE(result.required_max_rate_kw, 488.0 + 1e-6);
  double plan_max = 0.0;
  for (const auto& plan : result.plans)
    plan_max = std::max(plan_max, plan.max_rate_kw);
  EXPECT_DOUBLE_EQ(result.required_max_rate_kw, plan_max);
}

TEST(FlexibleSmoothing, MeanVarianceReduction) {
  SmoothingResult result;
  result.plans.resize(2);
  result.plans[0].schedule_kwh = {1.0};
  result.plans[0].variance_before = 100.0;
  result.plans[0].variance_after = 25.0;
  result.plans[1].schedule_kwh = {1.0};
  result.plans[1].variance_before = 10.0;
  result.plans[1].variance_after = 5.0;
  EXPECT_NEAR(result.mean_variance_reduction(), (0.75 + 0.5) / 2.0, 1e-12);
  SmoothingResult empty;
  EXPECT_DOUBLE_EQ(empty.mean_variance_reduction(), 0.0);
}

TEST(FlexibleSmoothing, PlanSurfacesMaxIterationsStatus) {
  // A starved iteration budget must surface as kMaxIterations on the plan,
  // not as a throw or a silently-wrong schedule.
  FlexibleSmoothingConfig config;
  config.qp.max_iterations = 1;
  config.qp.check_interval = 10;  // never reaches a convergence check
  const FlexibleSmoothing fs(config);
  battery::Battery battery(fs_battery_spec());
  const auto generation = test::sawtooth_series(100.0, 500.0, 6, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  EXPECT_EQ(plan.solver_status, solver::QpStatus::kMaxIterations);
  ASSERT_EQ(plan.schedule_kwh.size(), 12u);
}

TEST(FlexibleSmoothing, PlanSurfacesNumericalErrorStatus) {
  // A negative ADMM penalty makes the KKT system indefinite, so the
  // Cholesky factorization fails: the status must say so.
  FlexibleSmoothingConfig config;
  config.qp.sigma = -1e3;
  const FlexibleSmoothing fs(config);
  battery::Battery battery(fs_battery_spec());
  const auto generation = test::sawtooth_series(100.0, 500.0, 6, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  EXPECT_EQ(plan.solver_status, solver::QpStatus::kNumericalError);
}

TEST(FlexibleSmoothing, ExecutingUnconvergedPlanKeepsBatterySafe) {
  // Even a garbage schedule from an unconverged solve must not push the
  // battery outside its SoC corridor or rate limits — execute_plan clamps
  // every step through the Battery model.
  FlexibleSmoothingConfig config;
  config.qp.max_iterations = 1;
  config.qp.check_interval = 10;
  const FlexibleSmoothing fs(config);
  const auto spec = fs_battery_spec();
  battery::Battery battery(spec, 0.15);
  const auto generation = test::sawtooth_series(0.0, 800.0, 4, 12);
  const IntervalPlan plan = fs.plan_interval(generation, battery);
  ASSERT_NE(plan.solver_status, solver::QpStatus::kSolved);
  const auto supply = fs.execute_plan(plan, generation, battery);
  ASSERT_EQ(supply.size(), generation.size());
  EXPECT_GE(battery.soc_fraction(), spec.min_soc_fraction - 1e-9);
  EXPECT_LE(battery.soc_fraction(), spec.max_soc_fraction + 1e-9);
  for (std::size_t i = 0; i < supply.size(); ++i) {
    EXPECT_GE(supply[i], -1e-9);  // never delivers negative power
    // Delivered power never exceeds generation + the discharge rate limit.
    EXPECT_LE(supply[i],
              generation[i] + spec.max_discharge_rate.value() + 1e-9);
  }
}

TEST(FlexibleSmoothing, EndToEndOnSyntheticWind) {
  // Property: over a volatile synthetic day, smoothing must not violate the
  // battery corridor and must cut the mean within-interval variance.
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  const auto speed = model.generate_day(33);
  const auto generation =
      power::TurbineCurve::enercon_e48().power_series(speed);

  const FlexibleSmoothing fs;
  battery::Battery battery(fs_battery_spec());
  const auto result = fs.smooth(generation, lenient_classifier(), battery);
  EXPECT_GT(result.smoothed_intervals, 0u);
  EXPECT_GT(result.mean_variance_reduction(), 0.2);
  EXPECT_GE(battery.soc_fraction(), 0.10 - 1e-9);
  EXPECT_LE(battery.soc_fraction(), 1.0 + 1e-9);
}

util::TimeSeries volatile_wind() {
  const trace::WindSpeedModel model(trace::WindSitePresets::texas_10());
  return power::TurbineCurve::enercon_e48().power_series(
      model.generate(util::days(2.0), util::kFiveMinutes, 33));
}

TEST(FlexibleSmoothingSolverCache, ReusesOneFactorizationAcrossIntervals) {
  const FlexibleSmoothing fs;  // reuse_solver on, warm_start off (defaults)
  battery::Battery battery(fs_battery_spec());
  const auto result = fs.smooth(volatile_wind(), lenient_classifier(), battery);
  ASSERT_GT(result.smoothed_intervals, 1u);

  const SolverCacheStats stats = fs.solver_cache_stats();
  EXPECT_EQ(stats.solvers, 1u);  // one horizon length (m = 12)
  EXPECT_EQ(stats.setups, 1u);   // the KKT factorization was built once
  EXPECT_EQ(stats.solves, result.smoothed_intervals);
  EXPECT_EQ(stats.factorization_reuse, stats.solves - 1);
  EXPECT_EQ(stats.warm_starts, 0u);  // batch default: cold iterates
}

TEST(FlexibleSmoothingSolverCache, CacheIsBitwiseNeutral) {
  // The cached factor is the same matrix a one-shot solve would build, so
  // enabling the cache must not change a single output bit.
  const auto wind = volatile_wind();
  FlexibleSmoothingConfig cold_config;
  cold_config.reuse_solver = false;
  const FlexibleSmoothing cold(cold_config);
  const FlexibleSmoothing cached;
  battery::Battery b1(fs_battery_spec()), b2(fs_battery_spec());
  const auto without = cold.smooth(wind, lenient_classifier(), b1);
  const auto with = cached.smooth(wind, lenient_classifier(), b2);
  EXPECT_EQ(without.supply, with.supply);
  EXPECT_EQ(without.required_max_rate_kw, with.required_max_rate_kw);
  EXPECT_EQ(cold.solver_cache_stats().solves, 0u);
}

TEST(FlexibleSmoothingSolverCache, WarmStartStaysOptimalAndDeterministic) {
  const auto wind = volatile_wind();
  FlexibleSmoothingConfig warm_config;
  warm_config.warm_start = true;
  const FlexibleSmoothing warm(warm_config);
  const FlexibleSmoothing cold;
  battery::Battery b1(fs_battery_spec()), b2(fs_battery_spec());
  const auto warm_result = warm.smooth(wind, lenient_classifier(), b1);
  const auto cold_result = cold.smooth(wind, lenient_classifier(), b2);

  // The warm schedule is a different point on the same optimal set: the
  // achieved smoothing quality must match the cold run closely.
  EXPECT_EQ(warm_result.smoothed_intervals, cold_result.smoothed_intervals);
  EXPECT_NEAR(warm_result.mean_variance_reduction(),
              cold_result.mean_variance_reduction(), 0.02);
  EXPECT_GT(warm.solver_cache_stats().warm_starts, 0u);

  // A full-series run starts cold, so repeated runs on one instance are
  // bit-identical despite the intra-run warm-starting.
  battery::Battery b3(fs_battery_spec());
  const auto replay = warm.smooth(wind, lenient_classifier(), b3);
  EXPECT_EQ(replay.supply, warm_result.supply);
}

TEST(FlexibleSmoothingSolverCache, WarmStartRequiresReuseSolver) {
  FlexibleSmoothingConfig config;
  config.warm_start = true;
  config.reuse_solver = false;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FlexibleSmoothingSolverCache, OverrideBypassesCacheAndWarmState) {
  FlexibleSmoothingConfig config;
  config.warm_start = true;
  const FlexibleSmoothing fs(config);
  battery::Battery battery(fs_battery_spec());
  const auto window = volatile_wind().slice(0, 12);

  const auto first = fs.plan_interval(window, battery);
  ASSERT_EQ(first.solver_status, solver::QpStatus::kSolved);
  const SolverCacheStats before = fs.solver_cache_stats();
  EXPECT_EQ(before.solves, 1u);

  // An override (live retuning / fault injection) must not run through the
  // cache: the cached solver's state is untouched.
  solver::QpSettings retuned;
  retuned.max_iterations = 2;
  retuned.check_interval = 1;
  const auto overridden = fs.plan_interval(window, battery, &retuned);
  EXPECT_EQ(overridden.solver_status, solver::QpStatus::kMaxIterations);
  const SolverCacheStats after = fs.solver_cache_stats();
  EXPECT_EQ(after.solves, before.solves);
  EXPECT_EQ(after.setups, before.setups);

  // reset_solver_warm_starts drops the iterates; the factorization stays.
  fs.reset_solver_warm_starts();
  const auto replanned = fs.plan_interval(window, battery);
  EXPECT_EQ(replanned.solver_iterations, first.solver_iterations);
  EXPECT_EQ(fs.solver_cache_stats().setups, 1u);
}

}  // namespace
}  // namespace smoother::core
