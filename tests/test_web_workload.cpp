#include "smoother/trace/web_workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smoother::trace {
namespace {

TEST(WebWorkloadParams, Validation) {
  WebWorkloadParams p;
  EXPECT_NO_THROW(p.validate());
  p.mean_utilization = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = WebWorkloadParams{};
  p.mean_utilization = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = WebWorkloadParams{};
  p.diurnal_amplitude = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = WebWorkloadParams{};
  p.weekend_factor = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = WebWorkloadParams{};
  p.peak_hour = 24.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WebWorkloadModel, Deterministic) {
  const WebWorkloadModel model(WebWorkloadPresets::nasa());
  EXPECT_EQ(model.generate_week(9), model.generate_week(9));
  EXPECT_NE(model.generate_week(9), model.generate_week(10));
}

TEST(WebWorkloadModel, BoundedInUnitInterval) {
  const WebWorkloadModel model(WebWorkloadPresets::ucb());
  const auto week = model.generate_week(3);
  for (std::size_t i = 0; i < week.size(); ++i) {
    EXPECT_GE(week[i], 0.0);
    EXPECT_LE(week[i], 1.0);
  }
}

TEST(WebWorkloadModel, WeekShape) {
  const WebWorkloadModel model(WebWorkloadPresets::calgary());
  const auto week = model.generate_week(1);
  EXPECT_EQ(week.size(), 7u * 24u * 60u);
  EXPECT_DOUBLE_EQ(week.step().value(), 1.0);
}

class WebPresetTest : public testing::TestWithParam<WebWorkloadParams> {};

TEST_P(WebPresetTest, MeanMatchesTableI) {
  const WebWorkloadModel model(GetParam());
  const auto week = model.generate_week(123);
  // The generator rescales to the Table I mean; clamping residue is the
  // only slack, and it is tiny for all presets.
  EXPECT_NEAR(week.mean(), GetParam().mean_utilization,
              GetParam().mean_utilization * 0.02)
      << GetParam().name;
}

TEST_P(WebPresetTest, DiurnalSwingPresent) {
  const WebWorkloadModel model(GetParam());
  const auto week = model.generate_week(5);
  // Hour-of-day averages must swing by at least 30 % of the overall mean.
  std::array<double, 24> hourly{};
  std::array<std::size_t, 24> counts{};
  for (std::size_t i = 0; i < week.size(); ++i) {
    const auto hour = static_cast<std::size_t>(
        std::fmod(week.time_at(i).value() / 60.0, 24.0));
    hourly[hour] += week[i];
    ++counts[hour];
  }
  double lo = 1e9, hi = -1e9;
  for (std::size_t h = 0; h < 24; ++h) {
    const double avg = hourly[h] / static_cast<double>(counts[h]);
    lo = std::min(lo, avg);
    hi = std::max(hi, avg);
  }
  EXPECT_GT(hi - lo, 0.3 * week.mean()) << GetParam().name;
}

TEST_P(WebPresetTest, WeekendsAreQuieter) {
  WebWorkloadParams params = GetParam();
  params.noise_sd = 0.0;
  params.spikes_per_week = 0.0;
  const WebWorkloadModel model(params);
  const auto week = model.generate_week(5);
  double weekday = 0.0, weekend = 0.0;
  std::size_t weekday_n = 0, weekend_n = 0;
  for (std::size_t i = 0; i < week.size(); ++i) {
    const double day = std::floor(week.time_at(i).value() / (24.0 * 60.0));
    if (day >= 5.0) {
      weekend += week[i];
      ++weekend_n;
    } else {
      weekday += week[i];
      ++weekday_n;
    }
  }
  EXPECT_LT(weekend / static_cast<double>(weekend_n),
            weekday / static_cast<double>(weekday_n))
      << params.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableI, WebPresetTest,
    testing::Values(WebWorkloadPresets::calgary(), WebWorkloadPresets::u_of_s(),
                    WebWorkloadPresets::nasa(), WebWorkloadPresets::clark(),
                    WebWorkloadPresets::ucb()),
    [](const testing::TestParamInfo<WebWorkloadParams>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(WebPresets, TableIValues) {
  const auto all = WebWorkloadPresets::all();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_DOUBLE_EQ(all[0].mean_utilization, 0.0363);
  EXPECT_DOUBLE_EQ(all[1].mean_utilization, 0.0721);
  EXPECT_DOUBLE_EQ(all[2].mean_utilization, 0.2889);
  EXPECT_DOUBLE_EQ(all[3].mean_utilization, 0.3578);
  EXPECT_DOUBLE_EQ(all[4].mean_utilization, 0.4604);
}

}  // namespace
}  // namespace smoother::trace
