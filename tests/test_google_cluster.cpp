#include "smoother/trace/google_cluster.hpp"

#include <gtest/gtest.h>

#include "smoother/power/datacenter.hpp"

namespace smoother::trace {
namespace {

TEST(GoogleClusterParams, Validation) {
  GoogleClusterParams p;
  EXPECT_NO_THROW(p.validate());
  p.mean_utilization = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = GoogleClusterParams{};
  p.diurnal_amplitude = 0.7;
  p.weekly_amplitude = 0.4;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = GoogleClusterParams{};
  p.noise_reversion_per_hour = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(GoogleClusterModel, MonthShape) {
  const GoogleClusterModel model;
  const auto month = model.generate_month(1);
  EXPECT_EQ(month.size(), 30u * 288u);
  EXPECT_DOUBLE_EQ(month.step().value(), 5.0);
}

TEST(GoogleClusterModel, Deterministic) {
  const GoogleClusterModel model;
  EXPECT_EQ(model.generate_month(4), model.generate_month(4));
  EXPECT_NE(model.generate_month(4), model.generate_month(5));
}

TEST(GoogleClusterModel, MeanAndBounds) {
  const GoogleClusterModel model;
  const auto month = model.generate_month(2);
  EXPECT_NEAR(month.mean(), model.params().mean_utilization, 0.01);
  for (std::size_t i = 0; i < month.size(); ++i) {
    EXPECT_GE(month[i], 0.0);
    EXPECT_LE(month[i], 1.0);
  }
}

TEST(GoogleClusterModel, Fig9PowerBandIsPlausible) {
  // Through the paper's Eq. 3-5 model (11,000 servers) the month's power
  // should live between the idle floor and the full-load ceiling, with a
  // visible ripple (Fig. 9's band).
  const GoogleClusterModel model;
  const power::DatacenterPowerModel dc;
  const auto power = dc.power_series(model.generate_month(3));
  EXPECT_GT(power.min(), dc.min_system_power().value() - 1e-9);
  EXPECT_LT(power.max(), dc.max_system_power().value() + 1e-9);
  EXPECT_GT(power.max() - power.min(), 100.0);  // >100 kW ripple
  // Level around 1.2-2.2 MW as in Fig. 9.
  EXPECT_GT(power.mean(), 1200.0);
  EXPECT_LT(power.mean(), 2200.0);
}

TEST(GoogleClusterModel, RejectsDegenerateRequests) {
  const GoogleClusterModel model;
  EXPECT_THROW(model.generate(util::Minutes{0.0}, util::kFiveMinutes, 1),
               std::invalid_argument);
  EXPECT_THROW(model.generate(util::Minutes{1.0}, util::kFiveMinutes, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace smoother::trace
