// End-to-end tests of the smoother_cli subcommands (through the library
// entry points, with real files in the test temp dir).
#include "smoother/cli/commands.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "smoother/trace/swf.hpp"
#include "smoother/trace/trace_io.hpp"

namespace smoother::cli {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

struct CliRun {
  int code = -1;
  std::string out;
  std::string err;
};

CliRun run(const std::string& command, const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = run_command(command, args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(Cli, UnknownCommand) {
  const auto result = run("frobnicate", {});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, CommandNamesListed) {
  const auto names = command_names();
  EXPECT_EQ(names.size(), 7u);
  const std::string usage = main_usage();
  for (const auto& name : names)
    EXPECT_NE(usage.find(name), std::string::npos) << name;
}

TEST(Cli, GenWindWritesLoadableSeries) {
  const std::string path = temp_path("cli_wind.csv");
  const auto result = run("gen-wind", {"--site", "CO", "--days", "1",
                                       "--seed", "5", "--out", path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("288 samples"), std::string::npos);
  const auto series = trace::load_series(path, "wind_kw");
  EXPECT_EQ(series.size(), 288u);
  EXPECT_GE(series.min(), 0.0);
}

TEST(Cli, GenWindRejectsBadSite) {
  const auto result =
      run("gen-wind", {"--site", "ZZ", "--out", temp_path("x.csv")});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown wind site"), std::string::npos);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
}

TEST(Cli, GenWindRequiresOut) {
  const auto result = run("gen-wind", {"--site", "TX"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--out"), std::string::npos);
}

TEST(Cli, GenSolarWritesSeries) {
  const std::string path = temp_path("cli_solar.csv");
  const auto result =
      run("gen-solar", {"--site", "desert", "--days", "1", "--out", path});
  EXPECT_EQ(result.code, 0) << result.err;
  const auto series = trace::load_series(path, "solar_kw");
  EXPECT_EQ(series.size(), 288u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);  // midnight
}

TEST(Cli, GenWebMeanMatchesPreset) {
  const std::string path = temp_path("cli_web.csv");
  const auto result = run(
      "gen-web", {"--preset", "clark", "--days", "2", "--out", path});
  EXPECT_EQ(result.code, 0) << result.err;
  const auto series = trace::load_series(path, "cpu_utilization");
  EXPECT_NEAR(series.mean(), 0.3578, 0.02);
}

TEST(Cli, GenBatchWritesJobsAndSwf) {
  const std::string jobs_path = temp_path("cli_jobs.csv");
  const std::string swf_path = temp_path("cli_jobs.swf");
  const auto result =
      run("gen-batch", {"--preset", "ross", "--days", "2", "--out", jobs_path,
                        "--swf", swf_path});
  EXPECT_EQ(result.code, 0) << result.err;
  const auto jobs = trace::load_jobs(jobs_path);
  EXPECT_FALSE(jobs.empty());
  const auto records = trace::load_swf(swf_path);
  EXPECT_EQ(records.size(), jobs.size());
}

TEST(Cli, SmoothPipeline) {
  const std::string wind = temp_path("cli_wind2.csv");
  ASSERT_EQ(run("gen-wind", {"--site", "TX", "--days", "2", "--out", wind})
                .code,
            0);
  const std::string smoothed = temp_path("cli_smoothed.csv");
  const auto result = run("smooth", {"--supply", wind, "--out", smoothed});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("variance reduction"), std::string::npos);
  const auto before = trace::load_series(wind, "wind_kw");
  const auto after = trace::load_series(smoothed, "smoothed_kw");
  ASSERT_EQ(before.size(), after.size());
  EXPECT_LT(after.variance(), before.variance() * 1.01);
}

TEST(Cli, SmoothTrendFlag) {
  const std::string solar = temp_path("cli_solar2.csv");
  ASSERT_EQ(
      run("gen-solar", {"--site", "coastal", "--days", "2", "--out", solar})
          .code,
      0);
  const std::string smoothed = temp_path("cli_solar_smoothed.csv");
  const auto result =
      run("smooth", {"--supply", solar, "--out", smoothed, "--trend"});
  EXPECT_EQ(result.code, 0) << result.err;
}

TEST(Cli, SchedulePoliciesRankAsExpected) {
  const std::string wind = temp_path("cli_wind3.csv");
  const std::string jobs = temp_path("cli_jobs3.csv");
  ASSERT_EQ(run("gen-wind", {"--site", "CO", "--days", "3", "--out", wind})
                .code,
            0);
  ASSERT_EQ(run("gen-batch",
                {"--preset", "hpc2n", "--days", "3", "--out", jobs})
                .code,
            0);
  const auto ad = run("schedule", {"--supply", wind, "--jobs", jobs,
                                   "--policy", "ad"});
  const auto fifo = run("schedule", {"--supply", wind, "--jobs", jobs,
                                     "--policy", "fifo"});
  EXPECT_EQ(ad.code, 0) << ad.err;
  EXPECT_EQ(fifo.code, 0) << fifo.err;
  // Extract the "renewable used X/Y" figure and compare.
  const auto used = [](const std::string& text) {
    const auto pos = text.find("renewable used ");
    return std::stod(text.substr(pos + 15));
  };
  EXPECT_GE(used(ad.out), used(fifo.out));
}

TEST(Cli, ScheduleRejectsBadPolicy) {
  const auto result = run("schedule", {"--supply", "a", "--jobs", "b",
                                       "--policy", "lifo"});
  EXPECT_EQ(result.code, 2);
}

TEST(Cli, MetricsOnGeneratedPair) {
  const std::string wind = temp_path("cli_wind4.csv");
  ASSERT_EQ(run("gen-wind", {"--site", "TX", "--days", "1", "--out", wind})
                .code,
            0);
  const auto result = run("metrics", {"--supply", wind, "--demand", wind});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("switching times: 0"), std::string::npos);
  EXPECT_NE(result.out.find("utilization: 1.000"), std::string::npos);
}

TEST(Cli, MetricsMissingFileFailsCleanly) {
  const auto result =
      run("metrics", {"--supply", "/nonexistent.csv", "--demand", "/n2.csv"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

}  // namespace
}  // namespace smoother::cli
