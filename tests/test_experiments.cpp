#include "smoother/sim/experiments.hpp"

#include <gtest/gtest.h>

namespace smoother::sim {
namespace {

using util::Kilowatts;

TEST(DefaultConfig, FollowsPaperSizing) {
  const auto config = default_config(Kilowatts{976.0});
  EXPECT_DOUBLE_EQ(config.rated_power.value(), 976.0);
  EXPECT_DOUBLE_EQ(config.battery.max_charge_rate.value(), 488.0);
  // Capacity sustains one 5-minute point at the max rate.
  EXPECT_NEAR(config.battery.capacity.value(), 488.0 / 12.0, 1e-9);
  EXPECT_DOUBLE_EQ(config.battery.charge_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(config.extreme_cdf, 0.95);
  EXPECT_NO_THROW(config.validate());
}

class SwitchingExperimentTest : public testing::TestWithParam<int> {};

TEST_P(SwitchingExperimentTest, FsBeatsRawAndComp) {
  // On high-volatility wind the paper's ordering must hold:
  // raw > comp > fs (FS best). Several seeds guard against flakiness being
  // hidden by one lucky draw.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Kilowatts capacity{976.0};
  const auto scenario = make_web_scenario(
      trace::WebWorkloadPresets::nasa(), trace::WindSitePresets::texas_10(),
      capacity, util::days(7.0), seed);
  const auto comparison = run_switching_comparison(
      scenario.supply, scenario.demand, default_config(capacity));
  EXPECT_LT(comparison.with_fs, comparison.without_fs);
  EXPECT_LT(comparison.with_fs, comparison.with_comp);
  EXPECT_GT(comparison.fs_required_max_rate_kw, 0.0);
  EXPECT_GT(comparison.fs_smoothed_intervals, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchingExperimentTest,
                         testing::Values(1, 99, 2024));

TEST(SwitchingExperiment, LowVolatilityRoughlyNeutral) {
  // On an already-smooth trace FS has little to do (paper Fig. 10, May 2):
  // it must not make switching meaningfully worse. Interval-boundary steps
  // can add a couple of crossings, hence the small tolerance.
  const Kilowatts capacity{976.0};
  const auto scenario = make_web_scenario(
      trace::WebWorkloadPresets::nasa(),
      trace::WindSitePresets::california_9122(), capacity, util::days(7.0),
      42);
  const auto comparison = run_switching_comparison(
      scenario.supply, scenario.demand, default_config(capacity));
  EXPECT_LE(comparison.with_fs,
            static_cast<std::size_t>(
                static_cast<double>(comparison.without_fs) * 1.15 + 2.0));
}

TEST(UtilizationExperiment, AdImprovesRenewableUse) {
  const auto scenario = make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(),
      trace::WindSitePresets::colorado_11005(), 0.5, util::days(3.0), 11000,
      77);
  const auto comparison = run_utilization_comparison(
      scenario, default_config(Kilowatts{scenario.supply.max()}));
  EXPECT_GT(comparison.with_ad, comparison.without_ad);
  EXPECT_GT(comparison.improvement_percent(), 10.0);
  EXPECT_GE(comparison.with_ad, 0.0);
  EXPECT_LE(comparison.with_ad, 1.0);
}

TEST(UtilizationExperiment, ImprovementPercentHelper) {
  UtilizationComparison c;
  c.without_ad = 0.2;
  c.with_ad = 0.6;
  EXPECT_NEAR(c.improvement_percent(), 200.0, 1e-9);
  c.without_ad = 0.0;
  EXPECT_DOUBLE_EQ(c.improvement_percent(), 0.0);
}

TEST(CombinedExperiment, FsPlusAdReducesSwitching) {
  const auto scenario = make_batch_scenario(
      trace::BatchWorkloadPresets::lanl_cm5(),
      trace::WindSitePresets::texas_10(), 1.0, util::days(3.0), 11000, 5);
  const auto comparison = run_combined_comparison(
      scenario, default_config(Kilowatts{scenario.supply.max()}));
  EXPECT_LT(comparison.with_fs, comparison.without_fs);
  // The paper's Fig. 18 claim: more than 25 % reduction.
  EXPECT_GT(comparison.reduction_percent(), 25.0);
}

TEST(ParallelExperiments, SwitchingMatchesSerialArmForArm) {
  // The parallel variant must agree with per-scenario serial calls, keep
  // input order, and do so for any thread count.
  const Kilowatts capacity{976.0};
  const auto config = default_config(capacity);
  std::vector<WebScenario> scenarios;
  for (const auto& web : trace::WebWorkloadPresets::all())
    scenarios.push_back(make_web_scenario(web,
                                          trace::WindSitePresets::texas_10(),
                                          capacity, util::days(2.0), 7));
  const auto serial = run_switching_comparisons(scenarios, config, 1);
  const auto parallel = run_switching_comparisons(scenarios, config, 4);
  ASSERT_EQ(serial.size(), scenarios.size());
  ASSERT_EQ(parallel.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(serial[i].name, scenarios[i].name);
    EXPECT_EQ(parallel[i].name, scenarios[i].name);
    EXPECT_EQ(parallel[i].comparison.without_fs,
              serial[i].comparison.without_fs);
    EXPECT_EQ(parallel[i].comparison.with_comp,
              serial[i].comparison.with_comp);
    EXPECT_EQ(parallel[i].comparison.with_fs, serial[i].comparison.with_fs);
    EXPECT_GE(parallel[i].wall_ms, 0.0);

    const auto direct = run_switching_comparison(scenarios[i].supply,
                                                 scenarios[i].demand, config);
    EXPECT_EQ(serial[i].comparison.with_fs, direct.with_fs);
  }
}

TEST(ParallelExperiments, UtilizationMatchesSerial) {
  std::vector<BatchScenario> scenarios;
  scenarios.push_back(make_batch_scenario(
      trace::BatchWorkloadPresets::hpc2n(),
      trace::WindSitePresets::colorado_11005(), 0.5, util::days(1.0), 11000,
      77));
  scenarios.push_back(make_batch_scenario(
      trace::BatchWorkloadPresets::lanl_cm5(),
      trace::WindSitePresets::texas_10(), 1.0, util::days(1.0), 11000, 5));
  const auto config = default_config(Kilowatts{scenarios[0].supply.max()});
  const auto serial = run_utilization_comparisons(scenarios, config, 1);
  const auto parallel = run_utilization_comparisons(scenarios, config, 2);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(serial[i].name, scenarios[i].name);
    EXPECT_DOUBLE_EQ(parallel[i].comparison.with_ad,
                     serial[i].comparison.with_ad);
    EXPECT_DOUBLE_EQ(parallel[i].comparison.without_ad,
                     serial[i].comparison.without_ad);
    EXPECT_EQ(parallel[i].comparison.deadline_misses_with,
              serial[i].comparison.deadline_misses_with);
  }
}

TEST(CombinedExperiment, ReductionPercentHelper) {
  CombinedComparison c;
  c.without_fs = 100;
  c.with_fs = 60;
  EXPECT_NEAR(c.reduction_percent(), 40.0, 1e-9);
  c.without_fs = 0;
  EXPECT_DOUBLE_EQ(c.reduction_percent(), 0.0);
}

}  // namespace
}  // namespace smoother::sim
