#include "smoother/solver/batch_solver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "smoother/solver/qp.hpp"
#include "smoother/solver/qp_solver.hpp"
#include "smoother/util/rng.hpp"

// Binary-wide allocation counter for the steady-state zero-allocation
// assertion. BatchSolver's workspace is AlignedVector-backed, so the
// aligned operator new overloads must be counted too — an uncounted
// aligned path would let workspace churn hide from the test.
namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (size + align - 1) / align * align))
    return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace smoother::solver {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// The FS interval problem exactly as FlexibleSmoothing builds it: centered
/// q from a jittered generation profile, per-step charge/discharge bounds,
/// a symmetric energy corridor.
QpProblem structured_interval(std::size_t m, util::Rng& rng) {
  const double dt_hours = 5.0 / 60.0;
  std::vector<double> u(m);
  for (double& v : u) v = std::max(rng.normal(450.0, 140.0), 0.0) * dt_hours;
  QpProblem problem;
  problem.structure = QpStructure::kSmoothing;
  double u_sum = 0.0;
  for (const double v : u) u_sum += v;
  const double u_mean = u_sum / static_cast<double>(m);
  problem.q.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    problem.q[i] = 2.0 / static_cast<double>(m) * (u[i] - u_mean);
  problem.lower.assign(2 * m, 0.0);
  problem.upper.assign(2 * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    problem.lower[i] = -std::min(u[i], 40.0 * dt_hours);
    problem.upper[i] = 80.0 * dt_hours;
    problem.lower[m + i] = -400.0;
    problem.upper[m + i] = 400.0;
  }
  return problem;
}

std::vector<BatchSolver::Lane> lane_views(
    const std::vector<QpProblem>& problems) {
  std::vector<BatchSolver::Lane> lanes;
  lanes.reserve(problems.size());
  for (const auto& p : problems) lanes.push_back({p.q, p.lower, p.upper});
  return lanes;
}

/// The oracle: a cold scalar solve of the same problem (what the fleet
/// would have run with batching off).
QpResult cold_scalar_solve(const QpProblem& problem,
                           const QpSettings& settings) {
  QpSolver solver;
  EXPECT_EQ(solver.setup(problem, settings), QpStatus::kSolved);
  solver.reset_warm_start();
  return solver.solve(problem, settings);
}

void expect_lane_matches_scalar(const QpResult& batched,
                                const QpResult& scalar, std::size_t lane) {
  EXPECT_EQ(batched.status, scalar.status) << "lane " << lane;
  if (!simd::kReassociates) {
    // The bit-exactness contract: same iterate, same iteration count, same
    // residuals, bit for bit.
    EXPECT_EQ(batched.iterations, scalar.iterations) << "lane " << lane;
    EXPECT_EQ(bits(batched.primal_residual), bits(scalar.primal_residual))
        << "lane " << lane;
    EXPECT_EQ(bits(batched.dual_residual), bits(scalar.dual_residual))
        << "lane " << lane;
    EXPECT_EQ(bits(batched.objective), bits(scalar.objective))
        << "lane " << lane;
    ASSERT_EQ(batched.x.size(), scalar.x.size()) << "lane " << lane;
    for (std::size_t i = 0; i < scalar.x.size(); ++i)
      EXPECT_EQ(bits(batched.x[i]), bits(scalar.x[i]))
          << "lane " << lane << " x[" << i << "]";
    ASSERT_EQ(batched.z.size(), scalar.z.size()) << "lane " << lane;
    for (std::size_t i = 0; i < scalar.z.size(); ++i)
      EXPECT_EQ(bits(batched.z[i]), bits(scalar.z[i]))
          << "lane " << lane << " z[" << i << "]";
  } else {
    ASSERT_EQ(batched.x.size(), scalar.x.size()) << "lane " << lane;
    for (std::size_t i = 0; i < scalar.x.size(); ++i)
      EXPECT_NEAR(batched.x[i], scalar.x[i], 1e-6)
          << "lane " << lane << " x[" << i << "]";
  }
}

TEST(BatchSolver, SetupRequiredBeforeSolveAndShapesAreChecked) {
  BatchSolver batch;
  util::Rng rng(1);
  const auto problem = structured_interval(24, rng);
  std::vector<BatchSolver::Lane> lanes = {{problem.q, problem.lower,
                                           problem.upper}};
  std::vector<QpResult> results(1);
  EXPECT_THROW(batch.solve(lanes, results), std::invalid_argument);

  ASSERT_EQ(batch.setup(24, QpSettings{}), QpStatus::kSolved);
  std::vector<QpResult> wrong_count(2);
  EXPECT_THROW(batch.solve(lanes, wrong_count), std::invalid_argument);

  BatchSolver wrong_m;
  ASSERT_EQ(wrong_m.setup(25, QpSettings{}), QpStatus::kSolved);
  EXPECT_THROW(wrong_m.solve(lanes, results), std::invalid_argument);
}

TEST(BatchSolver, MatchesColdScalarSolvesAcrossRandomizedGrid) {
  // The differential sweep the exactness contract is stated over:
  // (m, K, rho) grid, fresh random problems per cell, every lane compared
  // against a cold scalar solve.
  util::Rng rng(20190701);
  QpSettings settings;
  settings.max_iterations = 4000;
  for (const std::size_t m : {24u, 72u, 160u}) {
    for (const std::size_t lanes_count : {1u, 3u, 8u}) {
      for (const double rho : {0.05, 0.1, 0.4}) {
        settings.rho = rho;
        std::vector<QpProblem> problems;
        for (std::size_t l = 0; l < lanes_count; ++l)
          problems.push_back(structured_interval(m, rng));

        BatchSolver batch;
        ASSERT_EQ(batch.setup(m, settings), QpStatus::kSolved);
        const auto lanes = lane_views(problems);
        std::vector<QpResult> results(lanes_count);
        batch.solve(lanes, results);

        for (std::size_t l = 0; l < lanes_count; ++l) {
          SCOPED_TRACE("m=" + std::to_string(m) +
                       " K=" + std::to_string(lanes_count) +
                       " rho=" + std::to_string(rho));
          expect_lane_matches_scalar(results[l],
                                     cold_scalar_solve(problems[l], settings),
                                     l);
        }
      }
    }
  }
}

TEST(BatchSolver, ChunksBatchesLargerThanMaxLanes) {
  // kMaxLanes + 6 lanes forces two chunks; every lane must still match its
  // scalar oracle and the chunking must be invisible in the results.
  util::Rng rng(77);
  QpSettings settings;
  settings.max_iterations = 1500;
  const std::size_t m = 36;
  const std::size_t lanes_count = BatchSolver::kMaxLanes + 6;
  std::vector<QpProblem> problems;
  for (std::size_t l = 0; l < lanes_count; ++l)
    problems.push_back(structured_interval(m, rng));

  BatchSolver batch;
  ASSERT_EQ(batch.setup(m, settings), QpStatus::kSolved);
  const auto lanes = lane_views(problems);
  std::vector<QpResult> results(lanes_count);
  batch.solve(lanes, results);

  EXPECT_EQ(batch.solve_count(), 2u);  // two SoA chunks
  EXPECT_EQ(batch.lane_count(), lanes_count);
  for (std::size_t l = 0; l < lanes_count; ++l)
    expect_lane_matches_scalar(results[l],
                               cold_scalar_solve(problems[l], settings), l);
}

TEST(BatchSolver, InfeasibleLanesFreezeWithoutPoisoningNeighbors) {
  util::Rng rng(5);
  QpSettings settings;
  settings.max_iterations = 1500;
  const std::size_t m = 30;
  std::vector<QpProblem> problems;
  for (std::size_t l = 0; l < 4; ++l)
    problems.push_back(structured_interval(m, rng));
  // Lane 1: inconsistent bounds (lower > upper) — the scalar path returns
  // kInfeasible without iterating.
  problems[1].lower[3] = 1.0;
  problems[1].upper[3] = -1.0;

  BatchSolver batch;
  ASSERT_EQ(batch.setup(m, settings), QpStatus::kSolved);
  const auto lanes = lane_views(problems);
  std::vector<QpResult> results(4);
  batch.solve(lanes, results);

  EXPECT_EQ(results[1].status, QpStatus::kInfeasible);
  EXPECT_TRUE(results[1].x.empty());
  for (const std::size_t l : {0u, 2u, 3u})
    expect_lane_matches_scalar(results[l],
                               cold_scalar_solve(problems[l], settings), l);
}

TEST(BatchSolver, AdoptSettingsRejectsFactorChangesAndAdoptsKnobs) {
  BatchSolver batch;
  QpSettings settings;
  ASSERT_EQ(batch.setup(48, settings), QpStatus::kSolved);

  QpSettings new_rho = settings;
  new_rho.rho = settings.rho * 2.0;
  EXPECT_THROW(batch.adopt_settings(new_rho), std::invalid_argument);

  QpSettings new_caps = settings;
  new_caps.max_iterations = 123;
  new_caps.eps_abs = 1e-4;
  batch.adopt_settings(new_caps);
  EXPECT_EQ(batch.settings().max_iterations, 123u);
  EXPECT_EQ(batch.setup_count(), 1u);  // no refactorization
}

TEST(BatchSolver, SteadyStateSolvesAreAllocationFree) {
  // Warm-up: one solve grows the workspace to the chunk size and sizes the
  // result vectors. Every solve after that must not touch the allocator —
  // the fleet calls this on the shard hot path.
  util::Rng rng(11);
  QpSettings settings;
  settings.max_iterations = 800;
  const std::size_t m = 48;
  const std::size_t lanes_count = 8;
  std::vector<QpProblem> problems;
  for (std::size_t l = 0; l < lanes_count; ++l)
    problems.push_back(structured_interval(m, rng));

  BatchSolver batch;
  ASSERT_EQ(batch.setup(m, settings), QpStatus::kSolved);
  const auto lanes = lane_views(problems);
  std::vector<QpResult> results(lanes_count);
  batch.solve(lanes, results);  // warm-up populates workspace + results

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  batch.solve(lanes, results);
  batch.solve(lanes, results);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state BatchSolver::solve allocated " << (after - before)
      << " times";
}

TEST(BatchSolver, CountersTrackSolvesAndLanes)
{
  util::Rng rng(3);
  QpSettings settings;
  settings.max_iterations = 400;
  BatchSolver batch;
  ASSERT_EQ(batch.setup(24, settings), QpStatus::kSolved);
  EXPECT_EQ(batch.setup_count(), 1u);

  std::vector<QpProblem> problems;
  for (std::size_t l = 0; l < 5; ++l)
    problems.push_back(structured_interval(24, rng));
  const auto lanes = lane_views(problems);
  std::vector<QpResult> results(5);
  batch.solve(lanes, results);
  batch.solve(lanes, results);
  EXPECT_EQ(batch.solve_count(), 2u);
  EXPECT_EQ(batch.lane_count(), 10u);
  EXPECT_EQ(batch.dimension(), 24u);
}

}  // namespace
}  // namespace smoother::solver
