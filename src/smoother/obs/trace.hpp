// Structured tracing: RAII spans serialized as JSON-lines events.
//
// A Span marks one unit of middleware work — an interval plan, a QP
// solve, an Active Delay schedule, a sweep task. Spans nest via a
// per-thread stack: a span opened while another is live on the same
// thread records that span as its parent. On destruction each span emits
// one JSON object on its own line:
//
//   {"type":"span","name":"qp-solve","seq":3,"parent":2,"depth":1,
//    "fields":{"iterations":181,"status":"solved"},"wall_ms":0.412}
//
// Event-log determinism contract: every field except `wall_ms` is a
// deterministic function of the computation (indices, counts, enum
// names). Two runs of the same deterministic workload produce identical
// logs once `wall_ms` values are masked — test_obs asserts exactly this,
// and tools/check_metrics_json.py validates the schema. `seq` numbering
// and emit order are deterministic for single-threaded tracing; spans
// emitted concurrently from pool workers (e.g. sweep-task spans) are
// deterministic per-span but interleave in an unspecified order, so
// parallel trace logs should be compared as multisets of lines.
//
// Log capture: LogCaptureSink adapts util::Logger's sink interface so
// WARN+ log records appear in the same event stream as
// {"type":"log",...} lines (see util/logging.hpp for the sink contract).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "smoother/util/logging.hpp"

namespace smoother::obs {

/// Collects JSON-lines events. Thread-safe; events append under a mutex.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// All events emitted so far, one JSON object per line.
  [[nodiscard]] std::string events() const;
  /// The same events as individual lines (for embedding in a JSON array).
  [[nodiscard]] std::vector<std::string> lines() const;
  [[nodiscard]] std::size_t event_count() const;
  void clear();

  /// Writes the buffered events to a stream (JSON-lines file).
  void write(std::ostream& os) const;

  /// Appends one raw JSON-lines event (must be a single line). Span and
  /// LogCaptureSink use this; tests may too.
  void emit(std::string line);

  /// Next event sequence number (atomically incremented per span open).
  std::uint64_t next_seq();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
  std::atomic<std::uint64_t> seq_{0};
};

/// Process-global tracer for deep call sites; null = tracing off.
[[nodiscard]] Tracer* global_tracer();
void install_global_tracer(Tracer* tracer);

/// RAII tracer installer (restores the previous tracer on destruction).
class GlobalTracerScope {
 public:
  explicit GlobalTracerScope(Tracer* tracer) : previous_(global_tracer()) {
    install_global_tracer(tracer);
  }
  ~GlobalTracerScope() { install_global_tracer(previous_); }
  GlobalTracerScope(const GlobalTracerScope&) = delete;
  GlobalTracerScope& operator=(const GlobalTracerScope&) = delete;

 private:
  Tracer* previous_;
};

/// One traced unit of work. Construct with the tracer (null = no-op);
/// add fields while the work runs; the event is emitted on destruction.
/// Fields keep insertion order so the serialized form is reproducible.
class Span {
 public:
  Span(Tracer* tracer, std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// No-op when the tracer is null — fields cost nothing with tracing off.
  Span& field(std::string_view key, std::uint64_t value);
  Span& field(std::string_view key, std::int64_t value);
  Span& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  Span& field(std::string_view key, double value);
  Span& field(std::string_view key, std::string_view value);

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }
  [[nodiscard]] std::uint64_t seq() const { return seq_; }

 private:
  /// Appends `"key":` (escaped, comma-separated) to the field buffer.
  void append_key(std::string_view key);

  Tracer* tracer_;
  std::string name_;
  std::uint64_t seq_ = 0;
  std::int64_t parent_ = -1;
  std::size_t depth_ = 0;
  /// Comma-joined `"key":value` pairs, built in place — one growing buffer
  /// instead of per-field string allocations (this runs per QP solve).
  std::string fields_json_;
  std::chrono::steady_clock::time_point start_;
  const Span* enclosing_ = nullptr;  // per-thread stack link
};

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

/// util::LogSink adapter: forwards every record at or above `min_level`
/// into the tracer as {"type":"log","level":...,"component":...,
/// "message":...} events. Install with util::Logger::set_capture_sink to
/// tee records into the trace while the primary sink keeps printing.
class LogCaptureSink final : public util::LogSink {
 public:
  explicit LogCaptureSink(Tracer& tracer,
                          util::LogLevel min_level = util::LogLevel::kWarn)
      : tracer_(tracer), min_level_(min_level) {}

  void write(util::LogLevel level, std::string_view component,
             std::string_view message) override;

 private:
  Tracer& tracer_;
  util::LogLevel min_level_;
};

}  // namespace smoother::obs
