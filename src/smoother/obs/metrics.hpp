// MetricsRegistry: the lock-cheap counter/gauge/histogram store behind
// Smoother's observability layer (smoother::obs).
//
// Design rules, in descending order of importance:
//
//   * Recording must never perturb the computation being observed. All
//     instruments are write-only from the hot path's point of view; the
//     *values* recorded are deterministic functions of the run (counts,
//     iteration totals, residuals) — wall-clock time may only enter
//     through histograms explicitly created with `timing_histogram`,
//     which are marked `"timing": true` in every export so consumers can
//     exclude them from determinism comparisons.
//   * Updates are lock-free: counters and histogram buckets are single
//     atomic fetch-adds, gauges a single atomic store. The registry mutex
//     is only taken to *create or look up* an instrument by name; hot
//     paths cache the returned reference (instrument addresses are stable
//     for the registry's lifetime).
//   * Export order is deterministic: instruments serialize sorted by name
//     regardless of registration order or thread interleaving.
//
// A process-global registry pointer (install_global_metrics) lets deep
// call sites — the QP solver, the thread pool — record without threading
// a registry through every signature. It defaults to null, in which case
// every instrumentation site is a single relaxed atomic load and a
// branch: observability off costs nothing measurable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "smoother/util/csv.hpp"

namespace smoother::obs {

/// Adds `delta` to an atomic double (CAS loop; std::atomic<double>::fetch_add
/// is C++20 but not yet reliably lowered on every libstdc++ we build on).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (queue depth, configured thread count, ...).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at creation and
/// never change, so recording is one binary search plus one atomic add.
/// An implicit overflow bucket catches values past the last bound.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; they are inclusive upper edges.
  Histogram(std::vector<double> bounds, bool timing);

  void record(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket counts; size is bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Wall-clock histograms are excluded from determinism comparisons.
  [[nodiscard]] bool timing() const { return timing_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds+overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  bool timing_ = false;
};

/// The default bucket ladder for timing histograms, in milliseconds.
[[nodiscard]] const std::vector<double>& default_latency_bounds_ms();

/// A full point-in-time copy of one registry, for exporters and tests.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    bool timing = false;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Named instrument store. Thread-safe; see the header comment for the
/// locking discipline.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-unique generation id. Hot call sites cache instrument handles
  /// keyed on (registry pointer, id); the id makes the cache immune to a
  /// new registry reusing a freed one's address.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime — hot paths should call once and cache.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation; a later lookup with
  /// different bounds returns the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Histogram whose recorded values are wall-clock milliseconds; marked
  /// `"timing": true` in exports (the only place wall time may appear).
  Histogram& timing_histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// sorted; histograms carry bounds/buckets/count/sum/timing.
  [[nodiscard]] std::string to_json() const;

  /// Flat three-column table: metric, field, value. Counter rows use
  /// field "count"; gauge rows "value"; histogram rows one per bucket
  /// ("le_<bound>", "overflow") plus "count" and "sum".
  [[nodiscard]] util::CsvTable to_csv() const;

 private:
  static std::uint64_t next_id();

  const std::uint64_t id_ = next_id();
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-global registry used by call sites too deep to thread a
/// registry into (solver, thread pool). Null by default = off.
[[nodiscard]] MetricsRegistry* global_metrics();
void install_global_metrics(MetricsRegistry* registry);

/// RAII installer: installs a registry (and restores the previous one on
/// destruction), so tests and benches can scope observability.
class GlobalMetricsScope {
 public:
  explicit GlobalMetricsScope(MetricsRegistry* registry)
      : previous_(global_metrics()) {
    install_global_metrics(registry);
  }
  ~GlobalMetricsScope() { install_global_metrics(previous_); }
  GlobalMetricsScope(const GlobalMetricsScope&) = delete;
  GlobalMetricsScope& operator=(const GlobalMetricsScope&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace smoother::obs
