// The observer half of OnlineSmoother's hooks API.
//
// core::OnlineSmoother::Hooks carries an IntervalObserver*; after every
// completed interval the smoother converts its OnlineIntervalRecord into
// the layer-neutral IntervalEvent below and invokes the observer. The
// indirection keeps the dependency arrow pointing one way (core -> obs):
// obs defines the event vocabulary, core translates into it, and any
// observer — the bundled TracingIntervalObserver, a test probe, a live
// dashboard feed — plugs in without core knowing its type.
//
// Observer contract: called synchronously on the thread driving push(),
// once per completed interval, after the interval's output is committed.
// Implementations must not throw (the streaming hot path is no-throw);
// exceptions are swallowed and counted under
// `core.online.observer_errors`.
#pragma once

#include <cstddef>
#include <string>

#include "smoother/obs/metrics.hpp"
#include "smoother/obs/trace.hpp"

namespace smoother::obs {

/// Layer-neutral snapshot of one completed streaming interval. Region and
/// fallback are carried as the names core::to_string produces, so the
/// event is self-describing in serialized logs.
struct IntervalEvent {
  std::size_t index = 0;
  std::string region;    ///< "stable" / "smoothable" / "extreme"
  std::string fallback;  ///< "none" or the FallbackReason name
  bool smoothed = false;
  bool warmup = false;
  bool degraded = false;
  double cf_variance = 0.0;
  double variance_before = 0.0;
  double variance_after = 0.0;
  std::size_t solver_iterations = 0;  ///< 0 when no QP ran
  double plan_wall_ms = 0.0;  ///< wall-clock (timing field; see obs rules)
};

class IntervalObserver {
 public:
  virtual ~IntervalObserver() = default;
  virtual void on_interval(const IntervalEvent& event) = 0;
};

/// The bundled observer: mirrors each interval event into a tracer span
/// ("interval-observe") and/or per-region & per-fallback counters.
/// Either sink may be null.
class TracingIntervalObserver final : public IntervalObserver {
 public:
  TracingIntervalObserver(Tracer* tracer, MetricsRegistry* metrics)
      : tracer_(tracer), metrics_(metrics) {}

  void on_interval(const IntervalEvent& event) override;

 private:
  Tracer* tracer_;
  MetricsRegistry* metrics_;
};

}  // namespace smoother::obs
