// ScopedTimer: the profiling hook feeding timing histograms.
//
// Wraps one scope's wall time and records it (in milliseconds) into a
// timing histogram on destruction. This is the *only* sanctioned route
// for wall-clock time into the metrics layer — timing histograms are
// marked `"timing": true` in every export, so determinism checks can
// mask them (see obs/metrics.hpp).
//
//   void hot_path() {
//     obs::ScopedTimer timer(registry, "core.online.plan_ms");
//     ...work...
//   }                      // records elapsed ms into the histogram
//
// With a null registry the timer never reads the clock: observability
// off means genuinely zero work, not just discarded samples.
#pragma once

#include <chrono>
#include <string_view>

#include "smoother/obs/metrics.hpp"

namespace smoother::obs {

class ScopedTimer {
 public:
  /// Looks up (or creates) the timing histogram once; null registry = no-op.
  ScopedTimer(MetricsRegistry* registry, std::string_view histogram_name)
      : histogram_(registry != nullptr
                       ? &registry->timing_histogram(histogram_name)
                       : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  /// Pre-resolved-handle variant for call sites that cache the histogram.
  explicit ScopedTimer(Histogram* timing_histogram)
      : histogram_(timing_histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    histogram_->record(elapsed.count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace smoother::obs
