#include "smoother/obs/trace.hpp"

#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "smoother/util/format.hpp"

namespace smoother::obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};

/// Innermost live span of the current thread (the parent of a new span).
thread_local const Span* tl_span_top = nullptr;

/// In-place escape: appends `text` to `out` JSON-escaped. The common case
/// (no specials) is a single bulk append — spans serialize per QP solve,
/// so this path avoids the temporary a return-by-value escape would make.
void append_escaped(std::string& out, std::string_view text) {
  std::size_t plain_start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20)
      continue;
    out.append(text.substr(plain_start, i - plain_start));
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += util::strfmt(
            "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
    }
    plain_start = i + 1;
  }
  out.append(text.substr(plain_start));
}

template <class Int>
void append_int(std::string& out, Int value) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, result.ptr);
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    append_int(out, static_cast<long long>(value));
    return;
  }
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%.10g", value);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::string> Tracer::lines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
  seq_.store(0, std::memory_order_relaxed);
}

void Tracer::write(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& line : lines_) os << line << '\n';
}

void Tracer::emit(std::string line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
}

std::uint64_t Tracer::next_seq() {
  return seq_.fetch_add(1, std::memory_order_relaxed);
}

Tracer* global_tracer() { return g_tracer.load(std::memory_order_acquire); }

void install_global_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_escaped(out, text);
  return out;
}

Span::Span(Tracer* tracer, std::string_view name)
    : tracer_(tracer), name_(name) {
  if (!tracer_) return;
  seq_ = tracer_->next_seq();
  if (tl_span_top != nullptr) {
    parent_ = static_cast<std::int64_t>(tl_span_top->seq_);
    depth_ = tl_span_top->depth_ + 1;
  }
  enclosing_ = tl_span_top;
  tl_span_top = this;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!tracer_) return;
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start_;
  tl_span_top = enclosing_;

  std::string line;
  line.reserve(64 + name_.size() + fields_json_.size());
  line += "{\"type\":\"span\",\"name\":\"";
  append_escaped(line, name_);
  line += "\",\"seq\":";
  append_int(line, seq_);
  line += ",\"parent\":";
  append_int(line, parent_);
  line += ",\"depth\":";
  append_int(line, depth_);
  line += ",\"fields\":{";
  line += fields_json_;
  // wall_ms is the one wall-clock field in the schema; consumers mask it
  // when comparing runs (determinism contract, see header).
  char buf[48];
  const int n =
      std::snprintf(buf, sizeof buf, "},\"wall_ms\":%.3f}", elapsed.count());
  if (n > 0) line.append(buf, static_cast<std::size_t>(n));
  tracer_->emit(std::move(line));
}

void Span::append_key(std::string_view key) {
  if (!fields_json_.empty()) fields_json_ += ',';
  fields_json_ += '"';
  append_escaped(fields_json_, key);
  fields_json_ += "\":";
}

Span& Span::field(std::string_view key, std::uint64_t value) {
  if (!tracer_) return *this;
  append_key(key);
  append_int(fields_json_, value);
  return *this;
}

Span& Span::field(std::string_view key, std::int64_t value) {
  if (!tracer_) return *this;
  append_key(key);
  append_int(fields_json_, value);
  return *this;
}

Span& Span::field(std::string_view key, double value) {
  if (!tracer_) return *this;
  append_key(key);
  append_number(fields_json_, value);
  return *this;
}

Span& Span::field(std::string_view key, std::string_view value) {
  if (!tracer_) return *this;
  append_key(key);
  fields_json_ += '"';
  append_escaped(fields_json_, value);
  fields_json_ += '"';
  return *this;
}

void LogCaptureSink::write(util::LogLevel level, std::string_view component,
                           std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
  tracer_.emit("{\"type\":\"log\",\"level\":\"" +
               std::string(util::log_level_name(level)) +
               "\",\"component\":\"" + json_escape(component) +
               "\",\"message\":\"" + json_escape(message) + "\"}");
}

}  // namespace smoother::obs
