#include "smoother/obs/interval_observer.hpp"

namespace smoother::obs {

void TracingIntervalObserver::on_interval(const IntervalEvent& event) {
  if (metrics_ != nullptr) {
    metrics_->counter("obs.observer.intervals").add(1);
    metrics_->counter("obs.observer.region." + event.region).add(1);
    if (event.fallback != "none")
      metrics_->counter("obs.observer.fallback." + event.fallback).add(1);
  }
  if (tracer_ != nullptr) {
    Span span(tracer_, "interval-observe");
    span.field("index", event.index)
        .field("region", event.region)
        .field("fallback", event.fallback)
        .field("smoothed", std::uint64_t{event.smoothed ? 1u : 0u})
        .field("warmup", std::uint64_t{event.warmup ? 1u : 0u})
        .field("degraded", std::uint64_t{event.degraded ? 1u : 0u})
        .field("cf_variance", event.cf_variance)
        .field("variance_before", event.variance_before)
        .field("variance_after", event.variance_after)
        .field("solver_iterations", event.solver_iterations);
  }
}

}  // namespace smoother::obs
