#include "smoother/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "smoother/util/format.hpp"

namespace smoother::obs {

namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};

/// Numbers in exports: integers print bare, doubles with enough digits to
/// round-trip counters-as-doubles and residual-scale values alike.
std::string json_number(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15)
    return util::strfmt("%lld", static_cast<long long>(value));
  return util::strfmt("%.10g", value);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds, bool timing)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      timing_(timing) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size => overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_)
    counts.push_back(bucket.load(std::memory_order_relaxed));
  return counts;
}

const std::vector<double>& default_latency_bounds_ms() {
  static const std::vector<double> bounds = {
      0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,   2.5,
      5.0,  10.0,  25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};
  return bounds;
}

std::uint64_t MetricsRegistry::next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds), false))
             .first;
  return *it->second;
}

Histogram& MetricsRegistry::timing_histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(default_latency_bounds_ms(),
                                                  true))
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.emplace(name, gauge->value());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.buckets = histogram->bucket_counts();
    data.count = histogram->count();
    data.sum = histogram->sum();
    data.timing = histogram->timing();
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << util::strfmt("%llu", static_cast<unsigned long long>(value));
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << json_number(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snap.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"timing\": "
       << (data.timing ? "true" : "false") << ", \"count\": "
       << util::strfmt("%llu", static_cast<unsigned long long>(data.count))
       << ", \"sum\": " << json_number(data.sum) << ", \"bounds\": [";
    for (std::size_t i = 0; i < data.bounds.size(); ++i)
      os << (i ? ", " : "") << json_number(data.bounds[i]);
    os << "], \"buckets\": [";
    for (std::size_t i = 0; i < data.buckets.size(); ++i)
      os << (i ? ", " : "")
         << util::strfmt("%llu",
                         static_cast<unsigned long long>(data.buckets[i]));
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

util::CsvTable MetricsRegistry::to_csv() const {
  // Numeric-only payload (the CSV layer rejects text cells), so the metric
  // and field names live in the header: one column per (metric, field).
  const MetricsSnapshot snap = snapshot();
  std::vector<std::string> header;
  std::vector<double> row;
  for (const auto& [name, value] : snap.counters) {
    header.push_back(name + ".count");
    row.push_back(static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    header.push_back(name + ".value");
    row.push_back(value);
  }
  for (const auto& [name, data] : snap.histograms) {
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      header.push_back(
          i < data.bounds.size()
              ? name + util::strfmt(".le_%g", data.bounds[i])
              : name + ".overflow");
      row.push_back(static_cast<double>(data.buckets[i]));
    }
    header.push_back(name + ".count");
    row.push_back(static_cast<double>(data.count));
    header.push_back(name + ".sum");
    row.push_back(data.sum);
  }
  util::CsvTable table(std::move(header));
  table.add_row(std::move(row));
  return table;
}

MetricsRegistry* global_metrics() {
  return g_metrics.load(std::memory_order_acquire);
}

void install_global_metrics(MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

}  // namespace smoother::obs
