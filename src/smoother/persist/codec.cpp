#include "smoother/persist/codec.hpp"

#include <array>
#include <bit>

namespace smoother::persist {

std::string to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTruncated: return "truncated";
    case ErrorKind::kBadMagic: return "bad-magic";
    case ErrorKind::kFutureVersion: return "future-version";
    case ErrorKind::kChecksum: return "checksum-mismatch";
    case ErrorKind::kCorrupt: return "corrupt";
    case ErrorKind::kIo: return "io-error";
  }
  return "unknown";
}

namespace {

/// Byte-at-a-time table for the reflected Castagnoli polynomial. Built once;
/// the table contents are a pure function of the polynomial, so checksums
/// are identical on every platform.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82f63b78u : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

/// Raw update over the un-inverted state (pre/post xor lives in
/// crc32c_extend so both implementations can be chained byte-for-byte).
std::uint32_t crc32c_update_table(std::uint32_t state,
                                  std::string_view bytes) {
  for (char c : bytes)
    state = (state >> 8) ^
            kCrc32cTable[(state ^ static_cast<std::uint8_t>(c)) & 0xffu];
  return state;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SMOOTHER_CRC32C_HW 1
/// SSE4.2 crc32 instruction: same reflected Castagnoli polynomial, ~8
/// bytes per cycle vs ~1 byte per table lookup. Values are identical to
/// the table path (the golden-vector test pins both).
__attribute__((target("sse4.2"))) std::uint32_t crc32c_update_hw(
    std::uint32_t state, std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  std::uint64_t wide = state;
  for (; n >= 8; p += 8, n -= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, sizeof word);
    wide = __builtin_ia32_crc32di(wide, word);
  }
  state = static_cast<std::uint32_t>(wide);
  for (; n > 0; ++p, --n)
    state = __builtin_ia32_crc32qi(state, static_cast<std::uint8_t>(*p));
  return state;
}
#endif

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, std::string_view bytes) {
  std::uint32_t state = crc ^ 0xffffffffu;
#ifdef SMOOTHER_CRC32C_HW
  static const bool kHaveHw = __builtin_cpu_supports("sse4.2");
  state = kHaveHw ? crc32c_update_hw(state, bytes)
                  : crc32c_update_table(state, bytes);
#else
  state = crc32c_update_table(state, bytes);
#endif
  return state ^ 0xffffffffu;
}

std::uint32_t crc32c(std::string_view bytes) {
  return crc32c_extend(0, bytes);
}

void Writer::u32(std::uint32_t v) {
  // One append of a stack buffer, not four push_backs: this encoder sits on
  // the per-interval checkpoint hot path (see macro_recovery's overhead
  // gate). The byte order stays explicitly little-endian.
  char bytes[4];
  for (int i = 0; i < 4; ++i)
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  buffer_.append(bytes, sizeof bytes);
}

void Writer::u64(std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  buffer_.append(bytes, sizeof bytes);
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::doubles(std::span<const double> values) {
  buffer_.reserve(buffer_.size() + 8 * (values.size() + 1));
  u64(values.size());
  for (double v : values) f64(v);
}

void Writer::u64s(std::span<const std::uint64_t> values) {
  buffer_.reserve(buffer_.size() + 8 * (values.size() + 1));
  u64(values.size());
  for (std::uint64_t v : values) u64(v);
}

void Writer::str(std::string_view s) {
  u64(s.size());
  buffer_.append(s);
}

void Reader::require(std::size_t n) const {
  if (bytes_.size() - offset_ < n)
    throw PersistError(ErrorKind::kTruncated,
                       "need " + std::to_string(n) + " bytes, have " +
                           std::to_string(bytes_.size() - offset_));
}

std::uint8_t Reader::u8() {
  require(1);
  return static_cast<std::uint8_t>(bytes_[offset_++]);
}

std::uint32_t Reader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(bytes_[offset_++]))
         << shift;
  return v;
}

std::uint64_t Reader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes_[offset_++]))
         << shift;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1)
    throw PersistError(ErrorKind::kCorrupt,
                       "boolean byte is " + std::to_string(v));
  return v == 1;
}

std::vector<double> Reader::doubles() {
  const std::uint64_t count = u64();
  // Each element takes 8 bytes: a count beyond the remaining input cannot
  // be satisfied, and catching it here avoids a pathological allocation.
  if (count > remaining() / 8)
    throw PersistError(ErrorKind::kCorrupt,
                       "double count " + std::to_string(count) +
                           " exceeds the remaining input");
  std::vector<double> values(static_cast<std::size_t>(count));
  for (double& v : values) v = f64();
  return values;
}

std::vector<std::uint64_t> Reader::u64s() {
  const std::uint64_t count = u64();
  if (count > remaining() / 8)
    throw PersistError(ErrorKind::kCorrupt,
                       "u64 count " + std::to_string(count) +
                           " exceeds the remaining input");
  std::vector<std::uint64_t> values(static_cast<std::size_t>(count));
  for (std::uint64_t& v : values) v = u64();
  return values;
}

std::string Reader::str() {
  const std::uint64_t length = u64();
  if (length > remaining())
    throw PersistError(ErrorKind::kCorrupt,
                       "string length " + std::to_string(length) +
                           " exceeds the remaining input");
  std::string s(bytes_.substr(offset_, static_cast<std::size_t>(length)));
  offset_ += static_cast<std::size_t>(length);
  return s;
}

void Reader::expect_done() const {
  if (!done())
    throw PersistError(ErrorKind::kCorrupt,
                       std::to_string(remaining()) +
                           " trailing bytes after the decoded value");
}

}  // namespace smoother::persist
