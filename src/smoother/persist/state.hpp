// save_state / restore_state: component states through the canonical codec.
//
// Each overload pair serializes one component's complete dynamic state —
// util::Rng engine/stream positions, battery::Battery energy and throughput
// totals, resilience::HealthReport counters, and the whole
// core::OnlineSmoother streaming state (interval cursor, degraded-mode
// state machine, recovery streak, threshold-learning window, persistence
// forecast source, guard state). The components expose their state as plain
// data (Rng::state(), Battery::state(), OnlineSmoother::export_state());
// this layer owns the byte layout, so the core stays free of any format
// knowledge and the format stays in one reviewable place.
//
// restore_state validates as it decodes: structural problems (truncation,
// impossible lengths) and semantic ones (a component rejecting the decoded
// state) both surface as PersistError{kCorrupt or kTruncated} — a
// checkpoint either restores completely or fails loudly; it never
// half-applies.
//
// What is deliberately NOT here: solver warm-start iterates and the KKT
// factorization cache (OnlineSmoother::import_state cold-starts the
// planner; see DESIGN.md §4i), and the FaultInjector/forecast-oracle
// decision streams — those are pure functions of (seed, stream, index), so
// persisting the index cursor (the smoother's interval/sample counters)
// reconstructs them exactly.
#pragma once

#include "smoother/battery/battery.hpp"
#include "smoother/core/online.hpp"
#include "smoother/persist/codec.hpp"
#include "smoother/resilience/health.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::persist {

void save_state(Writer& writer, const util::RngState& state);
void save_state(Writer& writer, const util::Rng& rng);
/// Decodes into `rng`; throws PersistError on malformed input (including a
/// state the Rng itself rejects, e.g. the all-zero engine).
void restore_state(Reader& reader, util::Rng& rng);
[[nodiscard]] util::RngState read_rng_state(Reader& reader);

void save_state(Writer& writer, const battery::Battery& battery);
/// Restores energy and throughput totals; the spec stays as constructed and
/// the decoded energy is validated against its SoC corridor.
void restore_state(Reader& reader, battery::Battery& battery);

void save_state(Writer& writer, const resilience::HealthReport& health);
void restore_state(Reader& reader, resilience::HealthReport& health);

void save_state(Writer& writer, const core::OnlineSmoother& smoother);
/// Same encoding from an already-captured StreamState; checkpoint loops
/// pair this with OnlineSmoother::export_state_into to reuse buffers.
void save_state(Writer& writer,
                const core::OnlineSmoother::StreamState& state);
/// Applies the decoded state via OnlineSmoother::import_state (wholesale,
/// validated, cold-starts the solver). Configuration is not serialized:
/// the caller reconstructs the smoother from config, then restores state.
void restore_state(Reader& reader, core::OnlineSmoother& smoother);

}  // namespace smoother::persist
