#include "smoother/persist/engine.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <utility>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace smoother::persist {

namespace {

constexpr std::string_view kWalMagic = "SMWL";
constexpr std::string_view kSnapshotMagic = "SMSN";
constexpr std::size_t kHeaderBytes = 8;   // magic + u32 version
constexpr std::size_t kRecordHeaderBytes = 16;  // u32 len + u32 crc + u64 seq
/// stdio buffer for the WAL stream: at ~1 KB per checkpoint record, 64 KB
/// turns one write syscall per few records into one per few dozen.
constexpr std::size_t kWalBufferBytes = 64 * 1024;

std::string header_bytes(std::string_view magic) {
  std::string bytes(magic);
  Writer version;
  version.u32(kFormatVersion);
  bytes += version.bytes();
  return bytes;
}

std::string errno_detail(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

void sync_file(std::FILE* file, const std::string& path) {
#ifdef _WIN32
  if (_commit(_fileno(file)) != 0)
#else
  if (fsync(fileno(file)) != 0)
#endif
    throw PersistError(ErrorKind::kIo, errno_detail("fsync", path));
}

std::string read_whole_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    throw PersistError(ErrorKind::kIo, errno_detail("open", path));
  std::string bytes;
  char chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0)
    bytes.append(chunk, got);
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) throw PersistError(ErrorKind::kIo, errno_detail("read", path));
  return bytes;
}

/// Validates a file header in place: magic match, version <= ours.
void check_header(std::string_view bytes, std::string_view magic,
                  const std::string& path) {
  if (bytes.size() < kHeaderBytes)
    throw PersistError(ErrorKind::kTruncated,
                       path + ": header cut short at " +
                           std::to_string(bytes.size()) + " bytes");
  if (bytes.substr(0, magic.size()) != magic)
    throw PersistError(ErrorKind::kBadMagic,
                       path + ": not a Smoother persistence file");
  Reader reader(bytes.substr(magic.size(), 4));
  const std::uint32_t version = reader.u32();
  if (version > kFormatVersion)
    throw PersistError(ErrorKind::kFutureVersion,
                       path + ": format version " + std::to_string(version) +
                           " is newer than this build's " +
                           std::to_string(kFormatVersion));
}

/// One parsed WAL/snapshot record.
struct ParsedRecord {
  std::uint64_t seq = 0;
  std::string_view payload;
  std::size_t end_offset = 0;  ///< offset just past this record
};

/// Parses the record starting at `offset`; returns nullopt when the bytes
/// from `offset` do not contain one complete, checksum-valid record (a torn
/// or corrupt tail — recovery truncates there).
std::optional<ParsedRecord> parse_record(std::string_view bytes,
                                         std::size_t offset) {
  if (bytes.size() - offset < kRecordHeaderBytes) return std::nullopt;
  Reader header(bytes.substr(offset, kRecordHeaderBytes));
  const std::uint32_t len = header.u32();
  const std::uint32_t stored_crc = header.u32();
  const std::uint64_t seq = header.u64();
  if (bytes.size() - offset - kRecordHeaderBytes < len) return std::nullopt;
  // The CRC covers seq + payload, so a record whose length field was torn
  // into pointing at other records' bytes still fails verification.
  const std::string_view seq_and_payload =
      bytes.substr(offset + kRecordHeaderBytes - 8, 8 + len);
  if (crc32c(seq_and_payload) != stored_crc) return std::nullopt;
  ParsedRecord record;
  record.seq = seq;
  record.payload = bytes.substr(offset + kRecordHeaderBytes, len);
  record.end_offset = offset + kRecordHeaderBytes + len;
  return record;
}

std::string encode_record(std::string_view payload, std::uint64_t seq) {
  Writer seq_bytes;
  seq_bytes.u64(seq);
  std::string checksummed = seq_bytes.bytes() + std::string(payload);
  Writer record;
  record.u32(static_cast<std::uint32_t>(payload.size()));
  record.u32(crc32c(checksummed));
  std::string bytes = record.take() + checksummed;
  return bytes;
}

}  // namespace

std::string to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kEveryAppend: return "every-append";
    case FsyncPolicy::kSnapshotOnly: return "snapshot-only";
  }
  return "unknown";
}

void PersistConfig::validate() const {
  if (directory.empty())
    throw std::invalid_argument("PersistConfig: directory must be set");
}

void atomic_write_file(const std::string& path, std::string_view content,
                       bool sync) {
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr)
    throw PersistError(ErrorKind::kIo, errno_detail("open", temp));
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(),
                                        file);
  if (written != content.size() || std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(temp.c_str());
    throw PersistError(ErrorKind::kIo, errno_detail("write", temp));
  }
  if (sync) {
    try {
      sync_file(file, temp);
    } catch (...) {
      std::fclose(file);
      std::remove(temp.c_str());
      throw;
    }
  }
  if (std::fclose(file) != 0) {
    std::remove(temp.c_str());
    throw PersistError(ErrorKind::kIo, errno_detail("close", temp));
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::remove(temp.c_str());
    throw PersistError(ErrorKind::kIo,
                       "rename " + temp + " -> " + path + ": " + ec.message());
  }
}

PersistEngine::PersistEngine(PersistConfig config)
    : config_(std::move(config)) {
  config_.validate();
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec)
    throw PersistError(ErrorKind::kIo,
                       "create " + config_.directory + ": " + ec.message());
  open_wal_for_append();
}

PersistEngine::~PersistEngine() {
  if (wal_ != nullptr) std::fclose(wal_);
}

std::string PersistEngine::wal_path() const {
  return (std::filesystem::path(config_.directory) / "wal.bin").string();
}

std::string PersistEngine::snapshot_path() const {
  return (std::filesystem::path(config_.directory) / "snapshot.bin").string();
}

void PersistEngine::open_wal_for_append() {
  const std::string path = wal_path();
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size < kHeaderBytes) {
    // Fresh (or torn-below-the-header) WAL: write a clean header. The torn
    // case only arises when a crash cut the very first header write short,
    // in which case there is nothing after it to preserve.
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
      throw PersistError(ErrorKind::kIo, errno_detail("open", path));
    static_cast<void>(std::setvbuf(file, nullptr, _IOFBF, kWalBufferBytes));
    const std::string header = header_bytes(kWalMagic);
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
        std::fflush(file) != 0) {
      std::fclose(file);
      throw PersistError(ErrorKind::kIo, errno_detail("write", path));
    }
    wal_ = file;
    durable_wal_bytes_ = kHeaderBytes;
    return;
  }
  wal_ = std::fopen(path.c_str(), "ab");
  if (wal_ == nullptr)
    throw PersistError(ErrorKind::kIo, errno_detail("open", path));
  static_cast<void>(std::setvbuf(wal_, nullptr, _IOFBF, kWalBufferBytes));
  // Everything on disk at open is the verified tail: the constructor opens
  // after recover()'s truncation (or a fresh header), and rollback reopens
  // after truncating back to the previous tail.
  durable_wal_bytes_ = size;
}

void PersistEngine::write_record(std::string_view payload, std::uint64_t seq) {
  const AppendFault fault =
      config_.append_fault ? config_.append_fault(seq) : AppendFault::kNone;
  // Framing identical to encode_record, assembled in a stack header with a
  // streaming CRC so the per-interval append allocates nothing.
  char header[kRecordHeaderBytes];
  for (std::size_t i = 0; i < 4; ++i)
    header[i] = static_cast<char>((payload.size() >> (8 * i)) & 0xffu);
  for (std::size_t i = 0; i < 8; ++i)
    header[8 + i] = static_cast<char>((seq >> (8 * i)) & 0xffu);
  const std::uint32_t crc =
      crc32c_extend(crc32c(std::string_view(header + 8, 8)), payload);
  for (std::size_t i = 0; i < 4; ++i)
    header[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xffu);
  if (fault == AppendFault::kTornWrite) {
    // Half the record reaches the file (flushed so it is really there, like
    // a kernel that accepted the first iovec and died on the second), then
    // the write "fails".
    static_cast<void>(std::fwrite(header, 1, sizeof header, wal_));
    static_cast<void>(
        std::fwrite(payload.data(), 1, payload.size() / 2, wal_));
    static_cast<void>(std::fflush(wal_));
    throw PersistError(ErrorKind::kIo, "injected torn write at seq " +
                                           std::to_string(seq));
  }
  if (std::fwrite(header, 1, sizeof header, wal_) != sizeof header ||
      std::fwrite(payload.data(), 1, payload.size(), wal_) != payload.size())
    throw PersistError(ErrorKind::kIo, errno_detail("append", wal_path()));
  if (fault == AppendFault::kFsyncFailure) {
    // The record is complete and flushed — but "fsync failed", so the
    // caller must treat it as not durable and will retry the sequence.
    static_cast<void>(std::fflush(wal_));
    throw PersistError(ErrorKind::kIo, "injected fsync failure at seq " +
                                           std::to_string(seq));
  }
  // The user->kernel flush follows the fsync policy: under kEveryAppend the
  // record must reach the kernel before fdatasync can make it durable;
  // under kNone/kSnapshotOnly appends ride the stdio buffer (flushed on
  // spill, snapshot, and close) — an abrupt death can cost the buffered
  // tail, which is exactly the torn/missing-suffix shape recovery truncates.
  if (config_.fsync == FsyncPolicy::kEveryAppend) {
    if (std::fflush(wal_) != 0)
      throw PersistError(ErrorKind::kIo, errno_detail("append", wal_path()));
    sync_file(wal_, wal_path());
  }
}

void PersistEngine::append(std::string_view payload) {
  if (poisoned_)
    throw PersistError(
        ErrorKind::kIo,
        "append: WAL tail is unverified after a failed rollback; "
        "compact with snapshot() to re-establish a clean WAL");
  try {
    write_record(payload, next_seq_);
  } catch (...) {
    // The record may be partly on disk (torn write) or fully on disk but
    // not durable (failed fsync). Either way: roll the file back to the
    // verified tail so the in-memory position never runs ahead of what
    // recovery would accept, then rethrow. Without this, every later
    // successful append lands beyond bytes recovery rejects and gets
    // silently truncated with them.
    rollback_wal_to_durable_tail();
    throw;
  }
  durable_wal_bytes_ += kRecordHeaderBytes + payload.size();
  ++next_seq_;
  ++wal_records_;
  last_payload_.assign(payload.data(), payload.size());
  if (config_.snapshot_every_records > 0 &&
      wal_records_ >= config_.snapshot_every_records)
    snapshot(last_payload_);
}

void PersistEngine::rollback_wal_to_durable_tail() {
  // fclose first: it flushes any buffered *good* records ahead of the
  // failed one, so the file holds at least durable_wal_bytes_ bytes unless
  // that flush also failed.
  if (wal_ != nullptr) {
    static_cast<void>(std::fclose(wal_));
    wal_ = nullptr;
  }
  std::error_code ec;
  const auto size = std::filesystem::file_size(wal_path(), ec);
  if (!ec && size >= durable_wal_bytes_) {
    std::filesystem::resize_file(wal_path(), durable_wal_bytes_, ec);
    if (!ec) {
      try {
        open_wal_for_append();
        return;  // clean rollback: the failed append never happened
      } catch (const PersistError&) {
        // fall through to poison
      }
    }
  }
  // The file is shorter than the verified tail (a buffered good record was
  // lost) or the truncate/reopen failed: the tail is unverified. Poison
  // until snapshot() rebuilds durable state from scratch.
  poisoned_ = true;
}

void PersistEngine::snapshot(std::string_view payload) {
  // Order matters for crash safety: (1) the snapshot lands atomically with
  // a seq newer than every WAL record, then (2) the WAL is truncated. A
  // crash between the two leaves stale WAL records that recovery ignores
  // by sequence number. The sequence advances only after the atomic write
  // succeeds — a failed snapshot must not leave next_seq_ pointing past
  // anything durable.
  const std::uint64_t seq = next_seq_;
  std::string bytes = header_bytes(kSnapshotMagic);
  bytes += encode_record(payload, seq);
  atomic_write_file(snapshot_path(), bytes,
                    config_.fsync != FsyncPolicy::kNone);
  next_seq_ = seq + 1;
  truncate_wal_to_header();
  // The snapshot now holds the newest durable state and the WAL is a bare
  // header again: any earlier unverified tail is gone.
  poisoned_ = false;
  last_payload_.assign(payload.data(), payload.size());
}

void PersistEngine::truncate_wal_to_header() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
  std::error_code ec;
  std::filesystem::resize_file(wal_path(), kHeaderBytes, ec);
  if (ec)
    throw PersistError(ErrorKind::kIo,
                       "truncate " + wal_path() + ": " + ec.message());
  wal_records_ = 0;
  open_wal_for_append();
}

RecoveredState PersistEngine::recover() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
  RecoveredState recovered;

  // --- snapshot: atomic writes make it all-or-nothing, so unlike the WAL
  // tail, damage here is an error to surface, not to silently truncate.
  std::error_code ec;
  const std::string snap_path = snapshot_path();
  const auto snap_size = std::filesystem::file_size(snap_path, ec);
  if (!ec && snap_size > 0) {
    const std::string bytes = read_whole_file(snap_path);
    check_header(bytes, kSnapshotMagic, snap_path);
    const auto record = parse_record(bytes, kHeaderBytes);
    if (!record)
      throw PersistError(ErrorKind::kChecksum,
                         snap_path + ": snapshot record failed verification");
    if (record->end_offset != bytes.size())
      throw PersistError(ErrorKind::kCorrupt,
                         snap_path + ": trailing bytes after the snapshot");
    recovered.found = true;
    recovered.from_snapshot = true;
    recovered.state.assign(record->payload.data(), record->payload.size());
    recovered.sequence = record->seq;
  }

  // --- WAL: scan forward, stop at the first torn/CRC-failing record,
  // truncate the tail back to the end of the valid prefix.
  const std::string path = wal_path();
  const auto wal_size = std::filesystem::file_size(path, ec);
  std::size_t valid_end = kHeaderBytes;
  std::uint64_t last_seq = recovered.sequence;
  bool any_valid_record = false;
  if (!ec && wal_size >= kHeaderBytes) {
    const std::string bytes = read_whole_file(path);
    check_header(bytes, kWalMagic, path);
    std::size_t offset = kHeaderBytes;
    std::uint64_t previous_seq = 0;
    while (offset < bytes.size()) {
      const auto record = parse_record(bytes, offset);
      if (!record) break;  // torn or corrupt tail starts here
      // Sequence numbers must strictly increase; a repeat or regression
      // means the framing resynchronized on garbage that happened to
      // checksum — stop trusting the file there.
      if (any_valid_record && record->seq <= previous_seq) break;
      previous_seq = record->seq;
      any_valid_record = true;
      valid_end = record->end_offset;
      if (record->seq <= recovered.sequence && recovered.from_snapshot) {
        // Older than the snapshot: a crash landed between snapshot-rename
        // and WAL-truncate. Durable, but superseded.
        ++recovered.wal_records_stale;
      } else {
        ++recovered.wal_records_replayed;
        recovered.found = true;
        recovered.state.assign(record->payload.data(),
                               record->payload.size());
        recovered.sequence = record->seq;
        recovered.from_snapshot = false;
      }
      last_seq = std::max(last_seq, record->seq);
      offset = record->end_offset;
    }
    recovered.wal_bytes_truncated = bytes.size() - valid_end;
    if (recovered.wal_bytes_truncated > 0) {
      std::filesystem::resize_file(path, valid_end, ec);
      if (ec)
        throw PersistError(ErrorKind::kIo,
                           "truncate " + path + ": " + ec.message());
    }
  } else if (ec || wal_size < kHeaderBytes) {
    // Missing or header-torn WAL: nothing durable in it. open_wal_for_append
    // rewrites a clean header below.
    recovered.wal_bytes_truncated = ec ? 0 : wal_size;
  }

  next_seq_ = std::max<std::uint64_t>(last_seq, recovered.sequence) + 1;
  wal_records_ =
      recovered.wal_records_replayed + recovered.wal_records_stale;
  poisoned_ = false;  // the scan just re-verified the tail
  open_wal_for_append();
  return recovered;
}

}  // namespace smoother::persist
