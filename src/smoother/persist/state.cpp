#include "smoother/persist/state.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace smoother::persist {

namespace {

/// Components validate restored state with std::invalid_argument; at the
/// persistence boundary that is corrupt input, not a programming error.
/// core::StateMismatchError is the exception to the mapping: the bytes are
/// perfectly coherent — they were written under a different configuration
/// — and callers (a fleet restoring thousands of tenants) distinguish
/// "config drift" from "corrupt checkpoint" by the type, so it passes
/// through unwrapped.
template <typename Fn>
void apply_or_corrupt(Fn&& fn) {
  try {
    fn();
  } catch (const core::StateMismatchError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    throw PersistError(ErrorKind::kCorrupt, e.what());
  }
}

}  // namespace

void save_state(Writer& writer, const util::RngState& state) {
  for (std::uint64_t word : state.engine) writer.u64(word);
  writer.u64(state.seed);
  writer.u64(state.forks);
  writer.f64(state.cached_normal);
  writer.boolean(state.has_cached_normal);
}

void save_state(Writer& writer, const util::Rng& rng) {
  save_state(writer, rng.state());
}

util::RngState read_rng_state(Reader& reader) {
  util::RngState state;
  for (std::uint64_t& word : state.engine) word = reader.u64();
  state.seed = reader.u64();
  state.forks = reader.u64();
  state.cached_normal = reader.f64();
  state.has_cached_normal = reader.boolean();
  return state;
}

void restore_state(Reader& reader, util::Rng& rng) {
  const util::RngState state = read_rng_state(reader);
  apply_or_corrupt([&] { rng.restore(state); });
}

void save_state(Writer& writer, const battery::Battery& battery) {
  const battery::BatteryState state = battery.state();
  writer.f64(state.energy_kwh);
  writer.f64(state.total_charged_kwh);
  writer.f64(state.total_discharged_kwh);
}

void restore_state(Reader& reader, battery::Battery& battery) {
  battery::BatteryState state;
  state.energy_kwh = reader.f64();
  state.total_charged_kwh = reader.f64();
  state.total_discharged_kwh = reader.f64();
  apply_or_corrupt([&] { battery.restore(state); });
}

void save_state(Writer& writer, const resilience::HealthReport& health) {
  writer.u64(health.samples_seen);
  writer.u64(health.samples_faulted);
  writer.u64s(health.faults);
  writer.u64(health.intervals_seen);
  writer.u64(health.intervals_fallback);
  writer.u64s(health.fallbacks);
  writer.u64(health.degraded_entries);
  writer.u64(health.recoveries);
}

void restore_state(Reader& reader, resilience::HealthReport& health) {
  resilience::HealthReport decoded;
  decoded.samples_seen = reader.u64();
  decoded.samples_faulted = reader.u64();
  const std::vector<std::uint64_t> faults = reader.u64s();
  if (faults.size() != decoded.faults.size())
    throw PersistError(ErrorKind::kCorrupt,
                       "fault counter array has " +
                           std::to_string(faults.size()) + " entries, want " +
                           std::to_string(decoded.faults.size()));
  std::copy(faults.begin(), faults.end(), decoded.faults.begin());
  decoded.intervals_seen = reader.u64();
  decoded.intervals_fallback = reader.u64();
  const std::vector<std::uint64_t> fallbacks = reader.u64s();
  if (fallbacks.size() != decoded.fallbacks.size())
    throw PersistError(ErrorKind::kCorrupt,
                       "fallback counter array has " +
                           std::to_string(fallbacks.size()) +
                           " entries, want " +
                           std::to_string(decoded.fallbacks.size()));
  std::copy(fallbacks.begin(), fallbacks.end(), decoded.fallbacks.begin());
  decoded.degraded_entries = reader.u64();
  decoded.recoveries = reader.u64();
  health = decoded;
}

void save_state(Writer& writer, const core::OnlineSmoother& smoother) {
  save_state(writer, smoother.export_state());
}

void save_state(Writer& writer,
                const core::OnlineSmoother::StreamState& state) {
  writer.boolean(state.degraded);
  writer.u64(state.healthy_streak);
  writer.u64(state.pending_faulted);
  writer.doubles(state.pending);
  writer.doubles(state.previous_interval);
  writer.doubles(state.variance_history);
  writer.f64(state.stable_below);
  writer.f64(state.extreme_above);
  writer.boolean(state.calibrated);
  writer.u64(state.intervals_completed);
  writer.u64(state.output_samples);
  writer.doubles(state.output_tail);
  writer.f64(state.guard_last_good_kw);
  writer.f64(state.battery.energy_kwh);
  writer.f64(state.battery.total_charged_kwh);
  writer.f64(state.battery.total_discharged_kwh);
  save_state(writer, state.health);
}

void restore_state(Reader& reader, core::OnlineSmoother& smoother) {
  core::OnlineSmoother::StreamState state;
  state.degraded = reader.boolean();
  state.healthy_streak = reader.u64();
  state.pending_faulted = reader.u64();
  state.pending = reader.doubles();
  state.previous_interval = reader.doubles();
  state.variance_history = reader.doubles();
  state.stable_below = reader.f64();
  state.extreme_above = reader.f64();
  state.calibrated = reader.boolean();
  state.intervals_completed = reader.u64();
  state.output_samples = reader.u64();
  state.output_tail = reader.doubles();
  state.guard_last_good_kw = reader.f64();
  state.battery.energy_kwh = reader.f64();
  state.battery.total_charged_kwh = reader.f64();
  state.battery.total_discharged_kwh = reader.f64();
  restore_state(reader, state.health);
  apply_or_corrupt([&] { smoother.import_state(state); });
}

}  // namespace smoother::persist
