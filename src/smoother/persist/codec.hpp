// Canonical binary codec for crash-safe state persistence.
//
// Every persisted artifact in Smoother — snapshots, WAL records, the
// component states inside them — is encoded through this one Writer/Reader
// pair so the on-disk format has a single definition:
//
//   * canonical little-endian byte order, assembled bytewise (the encoding
//     does not depend on host endianness or struct layout);
//   * doubles as their IEEE-754 bit patterns (bit_cast), so a round trip is
//     bit-exact — including negative zero and the NaNs a checkpoint must
//     never contain but a corrupted file might;
//   * length-prefixed containers (u64 count, then payloads);
//   * CRC32C (Castagnoli) over whole records — hardware-accelerated where
//     the CPU offers it (SSE4.2), with a table fallback computing the same
//     reflected polynomial, so the checksum value is platform-independent.
//
// Failures are typed: every decode error throws PersistError with an
// ErrorKind the recovery path can dispatch on — a torn tail is recoverable
// (truncate and resume), a future format version is not (refuse loudly
// rather than misinterpret newer state).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace smoother::persist {

/// Current on-disk format version. Bump on any incompatible layout change;
/// readers accept versions <= theirs and reject newer ones with
/// ErrorKind::kFutureVersion.
inline constexpr std::uint32_t kFormatVersion = 1;

enum class ErrorKind {
  kTruncated,      ///< input ended mid-value (torn write)
  kBadMagic,       ///< not a Smoother persistence file
  kFutureVersion,  ///< written by a newer format than this reader knows
  kChecksum,       ///< CRC32C mismatch (bit rot / partial overwrite)
  kCorrupt,        ///< structurally invalid content
  kIo,             ///< filesystem operation failed
};

[[nodiscard]] std::string to_string(ErrorKind kind);

/// The one exception type of the persistence layer. kind() lets recovery
/// code distinguish "truncate and carry on" (kTruncated/kChecksum on a WAL
/// tail) from "refuse to start" (kFutureVersion, kBadMagic).
class PersistError : public std::runtime_error {
 public:
  PersistError(ErrorKind kind, const std::string& what)
      : std::runtime_error(to_string(kind) + ": " + what), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected). Golden vector:
/// crc32c("123456789") == 0xE3069283.
[[nodiscard]] std::uint32_t crc32c(std::string_view bytes);

/// Streaming form: crc32c_extend(crc32c(a), b) == crc32c(a || b), so a
/// record's checksum over seq || payload never needs the two contiguous.
/// crc32c(bytes) == crc32c_extend(0, bytes).
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t crc,
                                          std::string_view bytes);

/// Appends values to a byte buffer in the canonical encoding.
class Writer {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern; bit-exact round trip.
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u64 count followed by the doubles.
  void doubles(std::span<const double> values);
  /// u64 count followed by the values.
  void u64s(std::span<const std::uint64_t> values);
  /// u64 length followed by the raw bytes.
  void str(std::string_view s);

  /// Capacity hint for hot paths that know their encoded size (the
  /// per-interval checkpoint); purely an optimization.
  void reserve(std::size_t total_bytes) { buffer_.reserve(total_bytes); }

  /// Empties the buffer but keeps its capacity, so one Writer can encode a
  /// stream of records with a single allocation.
  void clear() { buffer_.clear(); }

  [[nodiscard]] const std::string& bytes() const { return buffer_; }
  [[nodiscard]] std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Decodes a byte buffer written by Writer. Reads past the end throw
/// PersistError{kTruncated}; domain violations (a boolean byte that is
/// neither 0 nor 1, a container longer than the remaining input) throw
/// PersistError{kCorrupt}.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::vector<double> doubles();
  [[nodiscard]] std::vector<std::uint64_t> u64s();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool done() const { return offset_ == bytes_.size(); }

  /// Decoders call this when they finish: trailing bytes mean the payload
  /// was written by something this decoder does not fully understand.
  void expect_done() const;

 private:
  void require(std::size_t n) const;

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

}  // namespace smoother::persist
