// Snapshot + write-ahead-log engine for crash-safe state.
//
// One PersistEngine owns one directory holding two files:
//
//   wal.bin       header [magic "SMWL"][u32 version], then records
//                 [u32 payload_len][u32 crc32c(seq || payload)][u64 seq]
//                 [payload]
//   snapshot.bin  header [magic "SMSN"][u32 version], then one record in
//                 the same framing
//
// The caller appends one opaque payload per durable step (the dsim pipeline
// appends one per committed interval). Payloads are whole-state, not
// deltas: recovery needs only the *last* valid record, so compaction is
// trivial — write the newest payload as the snapshot (temp file + fsync +
// atomic rename, so a crash mid-snapshot leaves the old one intact), then
// truncate the WAL. The monotone sequence number ties the two files
// together: a crash between snapshot-rename and WAL-truncate leaves stale
// WAL records behind, and recovery ignores any record whose seq is not
// newer than the snapshot's.
//
// Recovery scans the WAL front to back and stops at the first record that
// is torn (fewer bytes than its header promises, or a header cut short) or
// fails its CRC — everything before it is durable, everything after never
// happened. The file is truncated back to the valid prefix so the next
// append continues from a clean tail. A missing directory or empty files
// recover to "nothing found" (found == false), which callers treat as a
// cold start; a bad magic or a future format version is an error — that
// file is not ours to rewrite.
//
// Fsync policy is configurable: kEveryAppend flushes and fdatasyncs each
// record for power-loss durability; kNone and kSnapshotOnly let appends
// ride the stdio buffer (reaching the kernel on spill, compaction, and
// close), with kSnapshotOnly additionally fsyncing snapshot writes. Under
// the buffered policies an abrupt death can lose the buffered tail — the
// same torn/missing-suffix shape recovery already truncates, so the
// guarantee degrades to "some durable prefix", never a corrupt state.
//
// Failed appends roll back. A torn fwrite leaves garbage bytes mid-WAL,
// and a failed fsync leaves a record the caller will retry with the same
// sequence number; either way the in-memory position (next_sequence) would
// run ahead of the durable tail, and every *later* successful append would
// land beyond bytes that recovery rejects — silently truncating them. So
// append() tracks the byte offset of the verified tail and, when a write
// step throws, truncates the WAL back to it before rethrowing: the failed
// record never happened, and a retry reuses its sequence number at the
// same offset. If the rollback itself fails, the engine poisons itself —
// further appends throw until a successful snapshot() re-establishes a
// clean, truncated WAL.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "smoother/persist/codec.hpp"

namespace smoother::persist {

/// Writes `content` to `path` via a temp file in the same directory plus an
/// atomic rename: readers (and crashes) see either the old file or the
/// complete new one, never a truncated hybrid. Throws PersistError{kIo} on
/// filesystem failure. When `sync` is true the data is fsynced before the
/// rename, so the atomicity also holds across power loss.
void atomic_write_file(const std::string& path, std::string_view content,
                       bool sync = false);

enum class FsyncPolicy {
  kNone,         ///< buffered appends, no explicit syncs; fastest
  kEveryAppend,  ///< flush + fdatasync per append; durable per record
  kSnapshotOnly, ///< buffered appends, but snapshots are fsynced
};

[[nodiscard]] std::string to_string(FsyncPolicy policy);

/// Injectable append failure modes (test hook; see
/// PersistConfig::append_fault).
enum class AppendFault {
  kNone,          ///< append proceeds normally
  kTornWrite,     ///< half the record reaches the file, then the write fails
  kFsyncFailure,  ///< the record is written and flushed, then fsync fails
};

struct PersistConfig {
  /// Directory for wal.bin / snapshot.bin; created if absent.
  std::string directory;

  FsyncPolicy fsync = FsyncPolicy::kNone;

  /// Appends between automatic compactions (snapshot + WAL truncate).
  /// 0 disables automatic compaction; the WAL then grows until the caller
  /// compacts explicitly with snapshot().
  std::size_t snapshot_every_records = 288;

  /// Test hook: consulted once per append with the record's sequence
  /// number, before anything touches the file. Returning kTornWrite or
  /// kFsyncFailure makes that append fail the way a dying disk would
  /// (partial bytes on disk / written-but-not-durable), exercising the
  /// rollback path. Leave empty in production.
  std::function<AppendFault(std::uint64_t)> append_fault;

  /// Throws std::invalid_argument on an empty directory.
  void validate() const;
};

/// What recover() found on disk.
struct RecoveredState {
  bool found = false;        ///< any durable state at all
  std::string state;         ///< newest durable payload (when found)
  std::uint64_t sequence = 0;           ///< its sequence number
  bool from_snapshot = false;           ///< state came from snapshot.bin
  std::size_t wal_records_replayed = 0; ///< valid WAL records scanned
  std::size_t wal_records_stale = 0;    ///< seq <= snapshot seq (ignored)
  std::uint64_t wal_bytes_truncated = 0;  ///< torn/corrupt tail removed
};

class PersistEngine {
 public:
  /// Opens (creating the directory and an empty WAL as needed) without
  /// reading existing state; call recover() first to resume from disk.
  /// Throws std::invalid_argument on bad config, PersistError{kIo} on
  /// filesystem failure.
  explicit PersistEngine(PersistConfig config);
  ~PersistEngine();

  PersistEngine(const PersistEngine&) = delete;
  PersistEngine& operator=(const PersistEngine&) = delete;

  /// Loads the newest durable state: snapshot, then any newer WAL records;
  /// truncates a torn/CRC-failing WAL tail; positions this engine to append
  /// after what survived. Safe to call on a fresh directory (found=false).
  /// Throws PersistError on bad magic / future version / unreadable files.
  RecoveredState recover();

  /// Appends one payload as a WAL record (applying the fsync policy), then
  /// compacts when the record count reaches snapshot_every_records.
  ///
  /// Failure-atomic: if the write or fsync throws, the WAL is rolled back
  /// to the last verified tail and neither next_sequence() nor
  /// wal_records() advances — the caller may retry the same payload (it
  /// reuses the sequence number) or carry on; durable state is exactly
  /// what it was before the call. If the rollback itself fails the engine
  /// is poisoned: appends throw PersistError{kIo} until a successful
  /// snapshot() rebuilds a clean WAL.
  void append(std::string_view payload);

  /// Explicit compaction: writes `payload` as the snapshot and truncates
  /// the WAL. Crash-ordering-safe (see file comment).
  void snapshot(std::string_view payload);

  [[nodiscard]] const PersistConfig& config() const { return config_; }
  /// WAL records appended since the last compaction (or recovery).
  [[nodiscard]] std::size_t wal_records() const { return wal_records_; }
  /// Next sequence number an append will use.
  [[nodiscard]] std::uint64_t next_sequence() const { return next_seq_; }

  [[nodiscard]] std::string wal_path() const;
  [[nodiscard]] std::string snapshot_path() const;

 private:
  void open_wal_for_append();
  void write_record(std::string_view payload, std::uint64_t seq);
  void truncate_wal_to_header();
  void rollback_wal_to_durable_tail();

  PersistConfig config_;
  std::FILE* wal_ = nullptr;
  std::size_t wal_records_ = 0;
  std::uint64_t next_seq_ = 1;
  std::string last_payload_;  ///< newest appended payload (compaction source)
  /// Byte offset of the end of the last fully-written record (or the
  /// header): where a failed append rolls the file back to.
  std::uint64_t durable_wal_bytes_ = 0;
  /// Set when a rollback failed and the WAL tail is unverified; cleared by
  /// the truncate inside a successful snapshot().
  bool poisoned_ = false;
};

}  // namespace smoother::persist
