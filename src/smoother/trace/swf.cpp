#include "smoother/trace/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smoother::trace {

namespace {

/// Parses the 18 SWF fields from one line; returns std::nullopt when the
/// line has too few fields or a non-numeric token.
std::optional<SwfRecord> parse_line(const std::string& line) {
  std::istringstream tokens(line);
  double fields[18];
  for (double& f : fields)
    if (!(tokens >> f)) return std::nullopt;
  SwfRecord r;
  r.job_number = static_cast<std::int64_t>(fields[0]);
  r.submit_time_s = fields[1];
  r.wait_time_s = fields[2];
  r.run_time_s = fields[3];
  r.allocated_processors = static_cast<std::int64_t>(fields[4]);
  r.average_cpu_time_s = fields[5];
  r.used_memory_kb = fields[6];
  r.requested_processors = static_cast<std::int64_t>(fields[7]);
  r.requested_time_s = fields[8];
  r.requested_memory_kb = fields[9];
  r.status = static_cast<std::int64_t>(fields[10]);
  r.user_id = static_cast<std::int64_t>(fields[11]);
  r.group_id = static_cast<std::int64_t>(fields[12]);
  r.application = static_cast<std::int64_t>(fields[13]);
  r.queue = static_cast<std::int64_t>(fields[14]);
  r.partition = static_cast<std::int64_t>(fields[15]);
  r.preceding_job = static_cast<std::int64_t>(fields[16]);
  r.think_time_s = fields[17];
  return r;
}

}  // namespace

std::vector<SwfRecord> parse_swf(std::istream& is, bool lenient) {
  std::vector<SwfRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip leading whitespace to detect comments robustly.
    const auto first =
        std::find_if(line.begin(), line.end(),
                     [](unsigned char c) { return !std::isspace(c); });
    if (first == line.end() || *first == ';') continue;
    auto record = parse_line(line);
    if (!record) {
      if (lenient) continue;
      throw std::runtime_error("parse_swf: malformed line " +
                               std::to_string(line_no));
    }
    records.push_back(*record);
  }
  return records;
}

std::vector<SwfRecord> load_swf(const std::string& path, bool lenient) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_swf: cannot open " + path);
  return parse_swf(in, lenient);
}

void write_swf(std::ostream& os, const std::vector<SwfRecord>& records) {
  os << "; SWF written by smoother::trace::write_swf\n";
  for (const auto& r : records) {
    os << r.job_number << ' ' << r.submit_time_s << ' ' << r.wait_time_s << ' '
       << r.run_time_s << ' ' << r.allocated_processors << ' '
       << r.average_cpu_time_s << ' ' << r.used_memory_kb << ' '
       << r.requested_processors << ' ' << r.requested_time_s << ' '
       << r.requested_memory_kb << ' ' << r.status << ' ' << r.user_id << ' '
       << r.group_id << ' ' << r.application << ' ' << r.queue << ' '
       << r.partition << ' ' << r.preceding_job << ' ' << r.think_time_s
       << '\n';
  }
}

std::vector<sched::Job> swf_to_jobs(
    const std::vector<SwfRecord>& records,
    const power::DatacenterPowerModel& power_model,
    const SwfConversionOptions& options) {
  if (options.deadline_slack_factor < 1.0)
    throw std::invalid_argument("swf_to_jobs: slack factor must be >= 1");
  std::vector<sched::Job> jobs;
  jobs.reserve(records.size());
  std::uint64_t next_id = 0;
  for (const auto& r : records) {
    if (!r.schedulable()) continue;
    sched::Job job;
    job.id = r.job_number >= 0 ? static_cast<std::uint64_t>(r.job_number)
                               : next_id;
    ++next_id;
    job.arrival = util::Minutes{std::max(r.submit_time_s, 0.0) / 60.0};
    double runtime_min = r.run_time_s / 60.0;
    if (options.max_runtime_minutes > 0.0)
      runtime_min = std::min(runtime_min, options.max_runtime_minutes);
    job.runtime = util::Minutes{runtime_min};
    const std::int64_t procs = r.allocated_processors > 0
                                   ? r.allocated_processors
                                   : r.requested_processors;
    job.servers = static_cast<std::size_t>(procs);
    // Average CPU time per processor over the runtime gives utilization.
    if (r.average_cpu_time_s > 0.0 && r.run_time_s > 0.0)
      job.cpu_utilization =
          std::clamp(r.average_cpu_time_s / r.run_time_s, 0.0, 1.0);
    else
      job.cpu_utilization = options.default_utilization;
    job.deadline =
        job.arrival + job.runtime * options.deadline_slack_factor;
    job.power = power_model.job_power(job.servers, job.cpu_utilization);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace smoother::trace
