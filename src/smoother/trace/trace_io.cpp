#include "smoother/trace/trace_io.hpp"

#include <cmath>
#include <stdexcept>

namespace smoother::trace {

util::CsvTable series_to_csv(const util::TimeSeries& series,
                             const std::string& value_column) {
  util::CsvTable table({"minute", value_column});
  for (std::size_t i = 0; i < series.size(); ++i)
    table.add_row({series.time_at(i).value(), series[i]});
  return table;
}

util::TimeSeries series_from_csv(const util::CsvTable& table,
                                 const std::string& value_column) {
  const auto minutes = table.column("minute");
  const auto values = table.column(value_column);
  if (minutes.size() < 2)
    throw std::runtime_error("series_from_csv: need at least two rows");
  const double step = minutes[1] - minutes[0];
  if (step <= 0.0)
    throw std::runtime_error("series_from_csv: non-increasing time column");
  for (std::size_t i = 1; i < minutes.size(); ++i) {
    const double gap = minutes[i] - minutes[i - 1];
    if (std::abs(gap - step) > 1e-6 * std::max(step, 1.0))
      throw std::runtime_error("series_from_csv: non-uniform time grid");
  }
  return util::TimeSeries(util::Minutes{step}, values);
}

void save_series(const util::TimeSeries& series, const std::string& path,
                 const std::string& value_column) {
  series_to_csv(series, value_column).save(path);
}

util::TimeSeries load_series(const std::string& path,
                             const std::string& value_column) {
  return series_from_csv(util::CsvTable::load(path), value_column);
}

util::CsvTable jobs_to_csv(const std::vector<sched::Job>& jobs) {
  util::CsvTable table({"id", "arrival_min", "runtime_min", "deadline_min",
                        "servers", "cpu_utilization", "power_kw"});
  for (const auto& job : jobs)
    table.add_row({static_cast<double>(job.id), job.arrival.value(),
                   job.runtime.value(), job.deadline.value(),
                   static_cast<double>(job.servers), job.cpu_utilization,
                   job.power.value()});
  return table;
}

std::vector<sched::Job> jobs_from_csv(const util::CsvTable& table) {
  std::vector<sched::Job> jobs;
  jobs.reserve(table.rows());
  const std::size_t id_col = table.column_index("id");
  const std::size_t arrival_col = table.column_index("arrival_min");
  const std::size_t runtime_col = table.column_index("runtime_min");
  const std::size_t deadline_col = table.column_index("deadline_min");
  const std::size_t servers_col = table.column_index("servers");
  const std::size_t cpu_col = table.column_index("cpu_utilization");
  const std::size_t power_col = table.column_index("power_kw");
  for (std::size_t r = 0; r < table.rows(); ++r) {
    sched::Job job;
    job.id = static_cast<std::uint64_t>(table.cell(r, id_col));
    job.arrival = util::Minutes{table.cell(r, arrival_col)};
    job.runtime = util::Minutes{table.cell(r, runtime_col)};
    job.deadline = util::Minutes{table.cell(r, deadline_col)};
    job.servers = static_cast<std::size_t>(table.cell(r, servers_col));
    job.cpu_utilization = table.cell(r, cpu_col);
    job.power = util::Kilowatts{table.cell(r, power_col)};
    job.validate();
    jobs.push_back(job);
  }
  return jobs;
}

void save_jobs(const std::vector<sched::Job>& jobs, const std::string& path) {
  jobs_to_csv(jobs).save(path);
}

std::vector<sched::Job> load_jobs(const std::string& path) {
  return jobs_from_csv(util::CsvTable::load(path));
}

}  // namespace smoother::trace
