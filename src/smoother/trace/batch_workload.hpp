// Synthetic batch workload generator (paper Table II).
//
// The paper's Active Delay evaluation uses four Parallel Workloads Archive
// logs differing in average CPU utilization (LLNL Thunder 86.7 %, LANL CM5
// 74.4 %, HPC2N 60.1 %, Sandia Ross 49.9 %). Those logs are not shipped
// here, so this generator produces SWF-compatible job streams with the
// classic production-log statistics — Poisson arrivals with a diurnal rate
// profile, log-normal runtimes, roughly geometric parallelism — calibrated
// so the offered cluster utilization matches the Table II figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smoother/power/datacenter.hpp"
#include "smoother/sched/job.hpp"
#include "smoother/trace/swf.hpp"
#include "smoother/util/units.hpp"

namespace smoother::trace {

/// Parameters of one synthetic batch workload.
///
/// `target_utilization` is the Table II number: the average CPU utilization
/// of the *source machine* the log came from (`source_processors` CPUs).
/// Replaying the stream on a larger evaluation cluster leaves that cluster
/// mostly idle with bursty daytime job waves — which is what gives Active
/// Delay room to move work into windy windows.
struct BatchWorkloadParams {
  std::string name = "batch";
  double target_utilization = 0.60;   ///< Table II: source-machine load
  std::size_t source_processors = 1024;  ///< CPUs of the original system
  double mean_runtime_minutes = 120.0;
  double runtime_sigma = 1.0;         ///< log-normal shape of runtimes
  double mean_servers_per_job = 48.0;
  double max_servers_fraction = 0.5;  ///< cap on one job's source share
  double per_job_cpu_utilization = 0.90;
  double deadline_slack_min = 6.0;    ///< deadline = arrival + runtime * U[min,max]
  double deadline_slack_max = 24.0;
  double arrival_diurnal_amplitude = 0.90;  ///< day/night submission swing

  void validate() const;
};

/// The four Table II presets.
struct BatchWorkloadPresets {
  static BatchWorkloadParams llnl_thunder();  ///< 86.7 %
  static BatchWorkloadParams lanl_cm5();      ///< 74.4 %
  static BatchWorkloadParams hpc2n();         ///< 60.1 %
  static BatchWorkloadParams sandia_ross();   ///< 49.9 %
  static std::vector<BatchWorkloadParams> all();
};

/// Generator for deferrable batch job streams.
class BatchWorkloadModel {
 public:
  explicit BatchWorkloadModel(BatchWorkloadParams params);

  [[nodiscard]] const BatchWorkloadParams& params() const { return params_; }

  /// Generates jobs arriving within [0, horizon), costed with
  /// `power_model`. Job sizes are drawn against the workload's
  /// source-machine size (`params().source_processors`), capped at
  /// `total_servers` (the evaluation cluster). Deterministic in
  /// (params, seed, horizon). The realized offered utilization on the
  /// source machine (sum servers*runtime*cpu / source capacity) is steered
  /// to the Table II target by trimming or extending the arrival stream.
  [[nodiscard]] std::vector<sched::Job> generate(
      util::Minutes horizon, std::size_t total_servers,
      const power::DatacenterPowerModel& power_model,
      std::uint64_t seed) const;

  /// The same stream as SWF records (for round-trip/export tests).
  [[nodiscard]] std::vector<SwfRecord> generate_swf(
      util::Minutes horizon, std::size_t total_servers,
      std::uint64_t seed) const;

  /// Offered utilization of a job set on an N-processor machine over a
  /// horizon: sum_j servers_j * runtime_j * cpu_j / (N * horizon).
  static double offered_utilization(const std::vector<sched::Job>& jobs,
                                    std::size_t processors,
                                    util::Minutes horizon);

 private:
  BatchWorkloadParams params_;
};

}  // namespace smoother::trace
