#include "smoother/trace/solar_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "smoother/util/rng.hpp"

namespace smoother::trace {

void SolarSiteParams::validate() const {
  if (peak_irradiance_wm2 <= 0.0)
    throw std::invalid_argument("SolarSiteParams: peak must be > 0");
  if (!(0.0 <= sunrise_hour && sunrise_hour < sunset_hour &&
        sunset_hour <= 24.0))
    throw std::invalid_argument("SolarSiteParams: bad sunrise/sunset");
  if (envelope_exponent <= 0.0)
    throw std::invalid_argument("SolarSiteParams: envelope exponent > 0");
  if (mean_cloud_cover < 0.0 || mean_cloud_cover >= 1.0)
    throw std::invalid_argument("SolarSiteParams: cloud cover in [0,1)");
  if (cloud_reversion_per_hour <= 0.0 || cloud_volatility < 0.0)
    throw std::invalid_argument("SolarSiteParams: bad cloud dynamics");
  if (cloud_dips_per_day < 0.0 || dip_depth < 0.0 || dip_depth > 1.0 ||
      dip_duration_minutes <= 0.0)
    throw std::invalid_argument("SolarSiteParams: bad dip parameters");
}

SolarIrradianceModel::SolarIrradianceModel(SolarSiteParams params)
    : params_(std::move(params)) {
  params_.validate();
}

namespace {

double logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }

struct Dip {
  double center_minute;
  double depth;
  double half_width;
};

}  // namespace

util::TimeSeries SolarIrradianceModel::generate(util::Minutes duration,
                                                util::Minutes step,
                                                std::uint64_t seed) const {
  if (duration <= util::Minutes{0.0} || step <= util::Minutes{0.0})
    throw std::invalid_argument("SolarIrradianceModel: duration/step > 0");
  const auto count = static_cast<std::size_t>(duration.value() / step.value());
  if (count == 0)
    throw std::invalid_argument(
        "SolarIrradianceModel: duration shorter than step");

  util::Rng rng(seed);

  // Fast cloud-edge dips, daytime-weighted via thinning against the
  // clear-sky envelope later (we simply draw over the whole horizon; a dip
  // landing at night has no effect anyway).
  std::vector<Dip> dips;
  {
    const double rate_per_minute = params_.cloud_dips_per_day / (24.0 * 60.0);
    if (rate_per_minute > 0.0 && params_.dip_depth > 0.0) {
      double t = rng.exponential(rate_per_minute);
      while (t < duration.value()) {
        dips.push_back(Dip{t, params_.dip_depth * rng.uniform(0.5, 1.5),
                           0.5 * params_.dip_duration_minutes *
                               rng.uniform(0.6, 1.4)});
        t += rng.exponential(rate_per_minute);
      }
    }
  }

  // Cloud cover: OU in logit space, mean-reverting to logit(mean_cover).
  const double theta = params_.cloud_reversion_per_hour / 60.0;
  const double dt = step.value();
  const double decay = std::exp(-theta * dt);
  const double innovation_sd =
      params_.cloud_volatility * std::sqrt(std::max(1.0 - decay * decay, 0.0));
  const double mean_logit =
      std::log(std::max(params_.mean_cloud_cover, 1e-6) /
               std::max(1.0 - params_.mean_cloud_cover, 1e-6));
  double cloud_logit = mean_logit + rng.normal() * params_.cloud_volatility;

  const double day_length = params_.sunset_hour - params_.sunrise_hour;
  util::TimeSeries series(step, count);
  std::size_t next_dip = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = dt * static_cast<double>(i);
    const double hour = std::fmod(t / 60.0, 24.0);

    double envelope = 0.0;
    if (hour > params_.sunrise_hour && hour < params_.sunset_hour) {
      const double phase =
          (hour - params_.sunrise_hour) / day_length;  // in (0,1)
      envelope = std::pow(std::sin(std::numbers::pi * phase),
                          params_.envelope_exponent);
    }

    const double cover = logistic(cloud_logit);  // fraction of light blocked
    double transmitted = 1.0 - cover;

    while (next_dip < dips.size() &&
           dips[next_dip].center_minute + dips[next_dip].half_width < t)
      ++next_dip;
    for (std::size_t d = next_dip; d < dips.size(); ++d) {
      if (dips[d].center_minute - dips[d].half_width > t) break;
      const double dist = std::abs(t - dips[d].center_minute);
      const double strength =
          std::min(dips[d].depth * (1.0 - dist / dips[d].half_width), 1.0);
      transmitted *= (1.0 - strength);
    }

    series[i] = std::max(
        params_.peak_irradiance_wm2 * envelope * transmitted, 0.0);
    cloud_logit =
        mean_logit + (cloud_logit - mean_logit) * decay +
        innovation_sd * rng.normal();
  }
  return series;
}

SolarSiteParams SolarSitePresets::desert() {
  SolarSiteParams p;
  p.name = "desert";
  p.mean_cloud_cover = 0.06;
  p.cloud_reversion_per_hour = 0.2;
  p.cloud_volatility = 0.4;
  p.cloud_dips_per_day = 1.0;
  p.dip_depth = 0.3;
  return p;
}

SolarSiteParams SolarSitePresets::coastal() {
  SolarSiteParams p;
  p.name = "coastal";
  p.mean_cloud_cover = 0.35;
  p.cloud_reversion_per_hour = 1.2;
  p.cloud_volatility = 1.1;
  p.cloud_dips_per_day = 25.0;
  p.dip_depth = 0.7;
  p.dip_duration_minutes = 20.0;
  return p;
}

}  // namespace smoother::trace
