// Synthetic time-sensitive web workload (paper Table I).
//
// The paper converts request logs from the Internet Traffic Archive into a
// CPU-utilization series with a linear analog (100 % at peak request rate,
// 0 % at the minimum). The five traces differ mainly in average utilization
// (Calgary 3.63 % ... UCB 46.04 %) and share the classic diurnal/weekly
// request shape. The generator reproduces that shape — day/night swing,
// weekday/weekend drop, Poisson sampling noise, occasional flash spikes —
// and then rescales so the series mean equals the Table I average exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::trace {

/// Parameters of one synthetic web workload.
struct WebWorkloadParams {
  std::string name = "web";
  double mean_utilization = 0.20;     ///< Table I column, as a fraction
  double diurnal_amplitude = 0.55;    ///< relative day/night swing
  double weekend_factor = 0.65;       ///< weekend level vs weekday
  double peak_hour = 14.0;            ///< local time of the daily peak
  double noise_sd = 0.06;             ///< relative sampling noise
  double spikes_per_week = 2.0;       ///< flash-crowd events
  double spike_magnitude = 0.8;       ///< relative jump at a spike peak
  double spike_duration_minutes = 45.0;

  void validate() const;
};

/// The five Table I presets.
struct WebWorkloadPresets {
  static WebWorkloadParams calgary();  ///< CS dept server, 3.63 %
  static WebWorkloadParams u_of_s();   ///< university server, 7.21 %
  static WebWorkloadParams nasa();     ///< Kennedy Space Center, 28.89 %
  static WebWorkloadParams clark();    ///< ClarkNet, 35.78 %
  static WebWorkloadParams ucb();      ///< UC Berkeley IP, 46.04 %
  static std::vector<WebWorkloadParams> all();
};

/// Generator for CPU-utilization series in [0, 1].
class WebWorkloadModel {
 public:
  explicit WebWorkloadModel(WebWorkloadParams params);

  [[nodiscard]] const WebWorkloadParams& params() const { return params_; }

  /// Generates a utilization series; the mean equals
  /// params().mean_utilization up to clamping residue (exact in practice
  /// for the presets). Deterministic in (params, seed, duration, step).
  [[nodiscard]] util::TimeSeries generate(util::Minutes duration,
                                          util::Minutes step,
                                          std::uint64_t seed) const;

  /// One week at 1-minute resolution (the paper's evaluation window).
  [[nodiscard]] util::TimeSeries generate_week(std::uint64_t seed) const {
    return generate(util::days(7.0), util::kOneMinute, seed);
  }

 private:
  WebWorkloadParams params_;
};

}  // namespace smoother::trace
