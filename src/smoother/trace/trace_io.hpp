// Trace persistence: TimeSeries and job sets as CSV.
//
// Lets users export generated traces (or import their own measured ones)
// and feed them back into the pipeline — the repo equivalent of pointing
// the paper's MATLAB scripts at NREL/ITA files.
#pragma once

#include <string>
#include <vector>

#include "smoother/sched/job.hpp"
#include "smoother/util/csv.hpp"
#include "smoother/util/time_series.hpp"

namespace smoother::trace {

/// Series -> CSV table with columns (minute, value).
[[nodiscard]] util::CsvTable series_to_csv(const util::TimeSeries& series,
                                           const std::string& value_column);

/// CSV table -> series; expects a "minute" column with a uniform step and
/// the named value column. Throws std::runtime_error on a non-uniform grid.
[[nodiscard]] util::TimeSeries series_from_csv(const util::CsvTable& table,
                                               const std::string& value_column);

/// Saves/loads a series to/from a CSV file.
void save_series(const util::TimeSeries& series, const std::string& path,
                 const std::string& value_column = "value");
[[nodiscard]] util::TimeSeries load_series(
    const std::string& path, const std::string& value_column = "value");

/// Jobs -> CSV (id, arrival_min, runtime_min, deadline_min, servers,
/// cpu_utilization, power_kw) and back.
[[nodiscard]] util::CsvTable jobs_to_csv(const std::vector<sched::Job>& jobs);
[[nodiscard]] std::vector<sched::Job> jobs_from_csv(
    const util::CsvTable& table);

void save_jobs(const std::vector<sched::Job>& jobs, const std::string& path);
[[nodiscard]] std::vector<sched::Job> load_jobs(const std::string& path);

}  // namespace smoother::trace
