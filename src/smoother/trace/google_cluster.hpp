// Synthetic Google cluster utilization (paper Fig. 9).
//
// The paper derives a month-long power trace from the 2011 Google
// cluster-data (a 12,500-machine cell) by converting CPU utilization into
// power with Eq. 3-5. The published trace's aggregate utilization has a
// fairly high base load with mild diurnal ripple and slow weekly drift; the
// power plotted in Fig. 9 moves inside roughly a 1.2-2.1 MW band for the
// 11,000-server model. This generator reproduces that shape.
#pragma once

#include <cstdint>
#include <string>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::trace {

/// Parameters of the synthetic cluster utilization.
struct GoogleClusterParams {
  std::string name = "google-cluster-2011";
  double mean_utilization = 0.45;
  double diurnal_amplitude = 0.18;  ///< relative daily ripple
  double weekly_amplitude = 0.08;   ///< relative weekly drift
  double noise_sd = 0.035;          ///< OU fluctuation (absolute utilization)
  double noise_reversion_per_hour = 0.8;

  void validate() const;
};

/// Generator for the month-long cluster utilization series.
class GoogleClusterModel {
 public:
  explicit GoogleClusterModel(GoogleClusterParams params = {});

  [[nodiscard]] const GoogleClusterParams& params() const { return params_; }

  /// Utilization series in [0, 1]; mean matches params exactly (rescaled).
  [[nodiscard]] util::TimeSeries generate(util::Minutes duration,
                                          util::Minutes step,
                                          std::uint64_t seed) const;

  /// The paper's window: about a month (May 2011) at 5-minute resolution.
  [[nodiscard]] util::TimeSeries generate_month(std::uint64_t seed) const {
    return generate(util::days(30.0), util::kFiveMinutes, seed);
  }

 private:
  GoogleClusterParams params_;
};

}  // namespace smoother::trace
