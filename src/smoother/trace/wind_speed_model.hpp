// Synthetic wind-speed process.
//
// The paper drives its evaluation with 5-minute wind power traces from the
// NREL Western Wind dataset (Table III: three low-volatility sites with
// capacity factors around 18-19 % and three high-volatility sites around
// 30-32 %). Those raw traces are not redistributable, so this model
// synthesizes statistically matching wind-speed series:
//
//   * the long-run marginal distribution is Weibull (shape ~2, the standard
//     wind model), obtained by pushing a stationary Ornstein-Uhlenbeck
//     process through the probability integral transform, so the series has
//     BOTH the right marginal and tunable temporal correlation;
//   * slow diurnal and synoptic (weather-front) modulation;
//   * Poisson gust bursts with triangular pulses;
//   * optional high-frequency jitter (turbulence).
//
// Volatility presets differ in OU mean-reversion speed, gust intensity and
// jitter, which is exactly what separates NREL's "smooth" and "volatile"
// sites once mapped through a turbine curve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::trace {

/// Parameters of one synthetic wind site.
struct WindSiteParams {
  std::string name = "synthetic";
  double weibull_shape = 2.0;   ///< marginal shape k
  double weibull_scale = 6.5;   ///< marginal scale lambda (m/s)
  double reversion_per_hour = 0.4;  ///< OU mean-reversion theta
  double diurnal_amplitude = 0.10;  ///< relative daily modulation
  /// Local hour at which the daily modulation peaks; negative = random
  /// phase per seed. Great-Plains sites peak at night (nocturnal jet),
  /// which is the supply/demand anti-correlation behind paper Fig. 7.
  double diurnal_peak_hour = -1.0;
  double synoptic_amplitude = 0.25; ///< relative weather-front modulation
  double synoptic_period_hours = 60.0;
  double gusts_per_day = 4.0;
  double gust_magnitude = 1.5;      ///< peak added speed (m/s)
  double gust_duration_minutes = 25.0;
  double jitter_sd = 0.1;           ///< white high-frequency noise (m/s)

  /// Throws std::invalid_argument on non-physical values.
  void validate() const;
};

/// Named presets calibrated (through the ENERCON E48 curve) to the Table III
/// sites: capacity factor ~18-19 % for the low-volatility group and
/// ~30-32 % for the high-volatility group, with clearly separated
/// capacity-factor variance.
struct WindSitePresets {
  static WindSiteParams california_9122();  ///< low volatility, CF ~17.9 %
  static WindSiteParams oregon_24258();     ///< low volatility, CF ~19.0 %
  static WindSiteParams washington_29359(); ///< low volatility, CF ~17.9 %
  static WindSiteParams texas_10();         ///< high volatility, CF ~32.4 %
  static WindSiteParams colorado_11005();   ///< high volatility, CF ~29.9 %
  static WindSiteParams wyoming_16419();    ///< high volatility, CF ~29.6 %

  /// The two Table III groups in order.
  static std::vector<WindSiteParams> low_volatility_group();
  static std::vector<WindSiteParams> high_volatility_group();
  static std::vector<WindSiteParams> all();
};

/// Generator for wind-speed series.
class WindSpeedModel {
 public:
  /// Throws std::invalid_argument when params are invalid.
  explicit WindSpeedModel(WindSiteParams params);

  [[nodiscard]] const WindSiteParams& params() const { return params_; }

  /// Generates a wind-speed series (m/s) of the given duration and step.
  /// Deterministic in (params, seed, duration, step).
  [[nodiscard]] util::TimeSeries generate(util::Minutes duration,
                                          util::Minutes step,
                                          std::uint64_t seed) const;

  /// Convenience: one day at 5-minute resolution.
  [[nodiscard]] util::TimeSeries generate_day(std::uint64_t seed) const {
    return generate(util::kOneDay, util::kFiveMinutes, seed);
  }

 private:
  WindSiteParams params_;
};

/// Four single-day volatility presets mirroring paper Fig. 10 (May 2, 14,
/// 18 and 23, 2011: from smoothest to most fluctuating). Index 0..3.
[[nodiscard]] WindSiteParams fig10_day_params(std::size_t day_index);

}  // namespace smoother::trace
