#include "smoother/trace/google_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "smoother/util/rng.hpp"

namespace smoother::trace {

void GoogleClusterParams::validate() const {
  if (mean_utilization <= 0.0 || mean_utilization >= 1.0)
    throw std::invalid_argument("GoogleClusterParams: mean in (0,1)");
  if (diurnal_amplitude < 0.0 || weekly_amplitude < 0.0 ||
      diurnal_amplitude + weekly_amplitude >= 1.0)
    throw std::invalid_argument("GoogleClusterParams: amplitudes sum < 1");
  if (noise_sd < 0.0)
    throw std::invalid_argument("GoogleClusterParams: noise >= 0");
  if (noise_reversion_per_hour <= 0.0)
    throw std::invalid_argument("GoogleClusterParams: reversion > 0");
}

GoogleClusterModel::GoogleClusterModel(GoogleClusterParams params)
    : params_(std::move(params)) {
  params_.validate();
}

util::TimeSeries GoogleClusterModel::generate(util::Minutes duration,
                                              util::Minutes step,
                                              std::uint64_t seed) const {
  if (duration <= util::Minutes{0.0} || step <= util::Minutes{0.0})
    throw std::invalid_argument("GoogleClusterModel: duration/step > 0");
  const auto count = static_cast<std::size_t>(duration.value() / step.value());
  if (count == 0)
    throw std::invalid_argument("GoogleClusterModel: duration shorter than step");

  util::Rng rng(seed);
  const double diurnal_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double weekly_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  const double theta = params_.noise_reversion_per_hour / 60.0;
  const double decay = std::exp(-theta * step.value());
  const double innovation_sd =
      params_.noise_sd * std::sqrt(std::max(1.0 - decay * decay, 0.0));
  double noise = 0.0;

  util::TimeSeries series(step, count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = step.value() * static_cast<double>(i);
    double level =
        1.0 +
        params_.diurnal_amplitude *
            std::sin(2.0 * std::numbers::pi * t / (24.0 * 60.0) +
                     diurnal_phase) +
        params_.weekly_amplitude *
            std::sin(2.0 * std::numbers::pi * t / (7.0 * 24.0 * 60.0) +
                     weekly_phase);
    level = level * params_.mean_utilization + noise;
    series[i] = std::clamp(level, 0.0, 1.0);
    noise = noise * decay + innovation_sd * rng.normal();
  }

  const double raw_mean = series.mean();
  if (raw_mean <= 0.0)
    throw std::logic_error("GoogleClusterModel: degenerate series");
  const double scale = params_.mean_utilization / raw_mean;
  return series.map(
      [scale](double v) { return std::clamp(v * scale, 0.0, 1.0); });
}

}  // namespace smoother::trace
