// Synthetic plane-of-array irradiance.
//
// Complements the wind model so the "variety of renewable energy" claim is
// exercised end-to-end. The model composes:
//
//   * a clear-sky envelope: a day-length-aware half-sine raised to a power
//     (accounting for air mass near the horizon), scaled by a seasonal
//     peak;
//   * a slow cloud-cover state (mean-reverting OU pushed through a logistic
//     squash, so attenuation stays in (0, 1]);
//   * fast cloud-edge transients (Poisson dips with triangular profiles) —
//     the solar analog of wind gusts, and the thing FS has to smooth.
//
// Presets: a desert site (rare clouds, low volatility) and a coastal site
// (broken clouds, high volatility).
#pragma once

#include <cstdint>
#include <string>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::trace {

/// Parameters of one synthetic solar site.
struct SolarSiteParams {
  std::string name = "solar";
  double peak_irradiance_wm2 = 1000.0;  ///< clear-sky noon value
  double sunrise_hour = 6.0;
  double sunset_hour = 18.0;
  double envelope_exponent = 1.2;       ///< half-sine shaping
  double mean_cloud_cover = 0.25;       ///< long-run attenuation level [0,1)
  double cloud_reversion_per_hour = 0.5;
  double cloud_volatility = 0.8;        ///< OU innovation scale (logit space)
  double cloud_dips_per_day = 0.0;      ///< fast transients
  double dip_depth = 0.6;               ///< fractional attenuation at a dip
  double dip_duration_minutes = 15.0;

  void validate() const;
};

/// Named presets.
struct SolarSitePresets {
  static SolarSiteParams desert();   ///< low volatility, CF ~ 24 %
  static SolarSiteParams coastal();  ///< high volatility, CF ~ 17 %
};

/// Generator for irradiance series (W/m^2).
class SolarIrradianceModel {
 public:
  explicit SolarIrradianceModel(SolarSiteParams params);

  [[nodiscard]] const SolarSiteParams& params() const { return params_; }

  /// Deterministic in (params, seed, duration, step). Zero at night.
  [[nodiscard]] util::TimeSeries generate(util::Minutes duration,
                                          util::Minutes step,
                                          std::uint64_t seed) const;

  /// Convenience: one day at 5-minute resolution.
  [[nodiscard]] util::TimeSeries generate_day(std::uint64_t seed) const {
    return generate(util::kOneDay, util::kFiveMinutes, seed);
  }

 private:
  SolarSiteParams params_;
};

}  // namespace smoother::trace
