#include "smoother/trace/wind_speed_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "smoother/util/rng.hpp"

namespace smoother::trace {

void WindSiteParams::validate() const {
  if (weibull_shape <= 0.0 || weibull_scale <= 0.0)
    throw std::invalid_argument("WindSiteParams: Weibull params must be > 0");
  if (reversion_per_hour <= 0.0)
    throw std::invalid_argument("WindSiteParams: reversion must be > 0");
  if (diurnal_amplitude < 0.0 || synoptic_amplitude < 0.0 ||
      diurnal_amplitude + synoptic_amplitude >= 1.0)
    throw std::invalid_argument(
        "WindSiteParams: modulation amplitudes must be >= 0 and sum < 1");
  if (synoptic_period_hours <= 0.0)
    throw std::invalid_argument("WindSiteParams: synoptic period must be > 0");
  if (gusts_per_day < 0.0 || gust_magnitude < 0.0 ||
      gust_duration_minutes <= 0.0)
    throw std::invalid_argument("WindSiteParams: bad gust parameters");
  if (jitter_sd < 0.0)
    throw std::invalid_argument("WindSiteParams: jitter must be >= 0");
}

WindSpeedModel::WindSpeedModel(WindSiteParams params)
    : params_(std::move(params)) {
  params_.validate();
}

namespace {

/// Standard normal CDF.
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

/// Weibull quantile function.
double weibull_quantile(double u, double shape, double scale) {
  u = std::clamp(u, 1e-12, 1.0 - 1e-12);
  return scale * std::pow(-std::log1p(-u), 1.0 / shape);
}

struct Gust {
  double center_minute;
  double magnitude;
  double half_width;
};

/// Triangular pulse contribution of a gust at time t.
double gust_speed(const Gust& g, double t) {
  const double distance = std::abs(t - g.center_minute);
  if (distance >= g.half_width) return 0.0;
  return g.magnitude * (1.0 - distance / g.half_width);
}

}  // namespace

util::TimeSeries WindSpeedModel::generate(util::Minutes duration,
                                          util::Minutes step,
                                          std::uint64_t seed) const {
  if (duration <= util::Minutes{0.0} || step <= util::Minutes{0.0})
    throw std::invalid_argument("WindSpeedModel: duration/step must be > 0");
  const auto count = static_cast<std::size_t>(duration.value() / step.value());
  if (count == 0)
    throw std::invalid_argument("WindSpeedModel: duration shorter than step");

  util::Rng rng(seed);
  // Random phases decorrelate the deterministic modulation across seeds;
  // a configured peak hour pins the diurnal phase instead.
  const double random_diurnal_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double diurnal_phase =
      params_.diurnal_peak_hour < 0.0
          ? random_diurnal_phase
          : std::numbers::pi / 2.0 -
                2.0 * std::numbers::pi * params_.diurnal_peak_hour / 24.0;
  const double synoptic_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  // Pre-draw gusts over the horizon (Poisson process).
  std::vector<Gust> gusts;
  {
    const double rate_per_minute = params_.gusts_per_day / (24.0 * 60.0);
    if (rate_per_minute > 0.0 && params_.gust_magnitude > 0.0) {
      double t = rng.exponential(rate_per_minute);
      while (t < duration.value()) {
        Gust g;
        g.center_minute = t;
        g.magnitude = params_.gust_magnitude * rng.uniform(0.5, 1.5);
        g.half_width = 0.5 * params_.gust_duration_minutes * rng.uniform(0.6, 1.4);
        gusts.push_back(g);
        t += rng.exponential(rate_per_minute);
      }
    }
  }

  // Stationary OU with unit variance: z' = z e^{-theta dt} + sqrt(1-e^{-2 theta dt}) N(0,1).
  const double theta = params_.reversion_per_hour / 60.0;  // per minute
  const double dt = step.value();
  const double decay = std::exp(-theta * dt);
  const double innovation_sd = std::sqrt(std::max(1.0 - decay * decay, 0.0));
  double z = rng.normal();

  util::TimeSeries series(step, count);
  std::size_t next_gust = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = dt * static_cast<double>(i);
    // Marginal transform: OU -> uniform -> Weibull.
    const double base =
        weibull_quantile(normal_cdf(z), params_.weibull_shape,
                         params_.weibull_scale);
    // Slow multiplicative modulation (diurnal + synoptic).
    const double modulation =
        1.0 +
        params_.diurnal_amplitude *
            std::sin(2.0 * std::numbers::pi * t / (24.0 * 60.0) +
                     diurnal_phase) +
        params_.synoptic_amplitude *
            std::sin(2.0 * std::numbers::pi * t /
                         (params_.synoptic_period_hours * 60.0) +
                     synoptic_phase);
    // Gusts active around t (gusts are sorted by construction).
    double gust_total = 0.0;
    while (next_gust < gusts.size() &&
           gusts[next_gust].center_minute + gusts[next_gust].half_width < t)
      ++next_gust;
    for (std::size_t g = next_gust; g < gusts.size(); ++g) {
      if (gusts[g].center_minute - gusts[g].half_width > t) break;
      gust_total += gust_speed(gusts[g], t);
    }
    const double jitter =
        params_.jitter_sd > 0.0 ? rng.normal(0.0, params_.jitter_sd) : 0.0;
    series[i] = std::max(base * modulation + gust_total + jitter, 0.0);
    z = z * decay + innovation_sd * rng.normal();
  }
  return series;
}

// ---------------------------------------------------------------------------
// Presets. Scales are calibrated so the ENERCON E48 curve yields the
// Table III capacity factors; volatility knobs separate the two groups'
// capacity-factor variance by roughly an order of magnitude.

WindSiteParams WindSitePresets::california_9122() {
  WindSiteParams p;
  p.name = "CA(9122)";
  p.weibull_scale = 5.95;
  p.reversion_per_hour = 0.15;
  p.gusts_per_day = 2.0;
  p.gust_magnitude = 1.0;
  p.jitter_sd = 0.05;
  return p;
}

WindSiteParams WindSitePresets::oregon_24258() {
  WindSiteParams p;
  p.name = "OR(24258)";
  p.weibull_scale = 6.15;
  p.reversion_per_hour = 0.18;
  p.gusts_per_day = 2.5;
  p.gust_magnitude = 1.1;
  p.jitter_sd = 0.06;
  return p;
}

WindSiteParams WindSitePresets::washington_29359() {
  WindSiteParams p;
  p.name = "WA(29359)";
  p.weibull_scale = 5.95;
  p.reversion_per_hour = 0.20;
  p.gusts_per_day = 3.0;
  p.gust_magnitude = 1.0;
  p.jitter_sd = 0.07;
  return p;
}

WindSiteParams WindSitePresets::texas_10() {
  WindSiteParams p;
  p.name = "TX(10)";
  p.weibull_scale = 7.75;
  p.reversion_per_hour = 1.6;
  p.gusts_per_day = 18.0;
  p.gust_magnitude = 3.0;
  p.gust_duration_minutes = 20.0;
  p.jitter_sd = 0.55;
  return p;
}

WindSiteParams WindSitePresets::colorado_11005() {
  WindSiteParams p;
  p.name = "CO(11005)";
  p.weibull_scale = 7.35;
  p.reversion_per_hour = 1.4;
  p.gusts_per_day = 15.0;
  p.gust_magnitude = 2.8;
  p.gust_duration_minutes = 22.0;
  p.jitter_sd = 0.50;
  return p;
}

WindSiteParams WindSitePresets::wyoming_16419() {
  WindSiteParams p;
  p.name = "WY(16419)";
  p.weibull_scale = 7.50;
  p.reversion_per_hour = 1.5;
  p.gusts_per_day = 16.0;
  p.gust_magnitude = 2.9;
  p.gust_duration_minutes = 18.0;
  p.jitter_sd = 0.52;
  return p;
}

std::vector<WindSiteParams> WindSitePresets::low_volatility_group() {
  return {california_9122(), oregon_24258(), washington_29359()};
}

std::vector<WindSiteParams> WindSitePresets::high_volatility_group() {
  return {texas_10(), colorado_11005(), wyoming_16419()};
}

std::vector<WindSiteParams> WindSitePresets::all() {
  auto out = low_volatility_group();
  const auto high = high_volatility_group();
  out.insert(out.end(), high.begin(), high.end());
  return out;
}

WindSiteParams fig10_day_params(std::size_t day_index) {
  // Fig. 10 uses four days of increasing volatility: May 2 (smooth),
  // May 14, May 23, May 18 (most fluctuating). Ordered here smooth->rough.
  switch (day_index) {
    case 0: {  // "May 2": calm, slow drift
      WindSiteParams p = WindSitePresets::california_9122();
      p.name = "May-02";
      p.reversion_per_hour = 0.08;
      p.gusts_per_day = 1.0;
      p.jitter_sd = 0.03;
      return p;
    }
    case 1: {  // "May 14": mildly variable
      WindSiteParams p = WindSitePresets::oregon_24258();
      p.name = "May-14";
      p.weibull_scale = 6.8;
      p.reversion_per_hour = 0.5;
      p.gusts_per_day = 6.0;
      p.gust_magnitude = 1.8;
      p.jitter_sd = 0.2;
      return p;
    }
    case 2: {  // "May 23": clearly volatile
      WindSiteParams p = WindSitePresets::colorado_11005();
      p.name = "May-23";
      p.weibull_scale = 7.2;
      return p;
    }
    case 3: {  // "May 18": most fluctuating day
      WindSiteParams p = WindSitePresets::texas_10();
      p.name = "May-18";
      p.reversion_per_hour = 2.4;
      p.gusts_per_day = 30.0;
      p.gust_magnitude = 3.5;
      p.jitter_sd = 0.8;
      return p;
    }
    default:
      throw std::out_of_range("fig10_day_params: day index 0..3");
  }
}

}  // namespace smoother::trace
