// Standard Workload Format (SWF) support.
//
// The Parallel Workloads Archive logs the paper cites (LLNL Thunder,
// LANL CM5, HPC2N, Sandia Ross) are distributed in SWF: one job per line,
// 18 whitespace-separated fields, ';'-prefixed header comments. This parser
// lets real archive logs drive the Active Delay experiments; the synthetic
// batch generator (batch_workload.hpp) emits the same record type, so both
// paths share the conversion into scheduler jobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "smoother/power/datacenter.hpp"
#include "smoother/sched/job.hpp"

namespace smoother::trace {

/// One SWF record. Field meanings follow the SWF v2.2 definition; -1 means
/// "unknown" throughout, as in the archive files.
struct SwfRecord {
  std::int64_t job_number = -1;
  double submit_time_s = -1.0;   ///< seconds from log start
  double wait_time_s = -1.0;
  double run_time_s = -1.0;
  std::int64_t allocated_processors = -1;
  double average_cpu_time_s = -1.0;
  double used_memory_kb = -1.0;
  std::int64_t requested_processors = -1;
  double requested_time_s = -1.0;
  double requested_memory_kb = -1.0;
  std::int64_t status = -1;
  std::int64_t user_id = -1;
  std::int64_t group_id = -1;
  std::int64_t application = -1;
  std::int64_t queue = -1;
  std::int64_t partition = -1;
  std::int64_t preceding_job = -1;
  double think_time_s = -1.0;

  /// True when the record has the minimum data to schedule (positive
  /// runtime and processor count).
  [[nodiscard]] bool schedulable() const {
    return run_time_s > 0.0 &&
           (allocated_processors > 0 || requested_processors > 0);
  }
};

/// Parses an SWF stream. Comment lines (leading ';') and blank lines are
/// skipped; short/malformed lines throw std::runtime_error with the line
/// number unless `lenient` is set, in which case they are dropped.
[[nodiscard]] std::vector<SwfRecord> parse_swf(std::istream& is,
                                               bool lenient = false);

/// Loads an SWF file; throws std::runtime_error when unreadable.
[[nodiscard]] std::vector<SwfRecord> load_swf(const std::string& path,
                                              bool lenient = false);

/// Serializes records back to SWF (one line each) for round-tripping.
void write_swf(std::ostream& os, const std::vector<SwfRecord>& records);

/// Options for converting SWF records into scheduler jobs.
struct SwfConversionOptions {
  /// Soft deadline = submit + runtime * slack_factor (the archives carry no
  /// deadlines; the paper takes them "provided by users or estimated").
  double deadline_slack_factor = 4.0;
  /// Per-job CPU utilization when the record has no average CPU time.
  double default_utilization = 0.85;
  /// Records longer than this are clipped (0 disables clipping).
  double max_runtime_minutes = 0.0;
};

/// Converts schedulable SWF records into jobs, costing each with
/// `power_model.job_power`. Unschedulable records are skipped.
[[nodiscard]] std::vector<sched::Job> swf_to_jobs(
    const std::vector<SwfRecord>& records,
    const power::DatacenterPowerModel& power_model,
    const SwfConversionOptions& options = {});

}  // namespace smoother::trace
