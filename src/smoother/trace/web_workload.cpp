#include "smoother/trace/web_workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "smoother/util/rng.hpp"

namespace smoother::trace {

void WebWorkloadParams::validate() const {
  if (mean_utilization <= 0.0 || mean_utilization >= 1.0)
    throw std::invalid_argument("WebWorkloadParams: mean must be in (0,1)");
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0)
    throw std::invalid_argument("WebWorkloadParams: amplitude in [0,1)");
  if (weekend_factor <= 0.0 || weekend_factor > 1.0)
    throw std::invalid_argument("WebWorkloadParams: weekend factor in (0,1]");
  if (peak_hour < 0.0 || peak_hour >= 24.0)
    throw std::invalid_argument("WebWorkloadParams: peak hour in [0,24)");
  if (noise_sd < 0.0)
    throw std::invalid_argument("WebWorkloadParams: noise must be >= 0");
  if (spikes_per_week < 0.0 || spike_magnitude < 0.0 ||
      spike_duration_minutes <= 0.0)
    throw std::invalid_argument("WebWorkloadParams: bad spike parameters");
}

WebWorkloadModel::WebWorkloadModel(WebWorkloadParams params)
    : params_(std::move(params)) {
  params_.validate();
}

namespace {
struct Spike {
  double center_minute;
  double magnitude;  // relative
  double half_width;
};
}  // namespace

util::TimeSeries WebWorkloadModel::generate(util::Minutes duration,
                                            util::Minutes step,
                                            std::uint64_t seed) const {
  if (duration <= util::Minutes{0.0} || step <= util::Minutes{0.0})
    throw std::invalid_argument("WebWorkloadModel: duration/step must be > 0");
  const auto count = static_cast<std::size_t>(duration.value() / step.value());
  if (count == 0)
    throw std::invalid_argument("WebWorkloadModel: duration shorter than step");

  util::Rng rng(seed);

  std::vector<Spike> spikes;
  {
    const double rate_per_minute = params_.spikes_per_week / (7.0 * 24.0 * 60.0);
    if (rate_per_minute > 0.0 && params_.spike_magnitude > 0.0) {
      double t = rng.exponential(rate_per_minute);
      while (t < duration.value()) {
        spikes.push_back(Spike{
            t, params_.spike_magnitude * rng.uniform(0.5, 1.5),
            0.5 * params_.spike_duration_minutes * rng.uniform(0.7, 1.3)});
        t += rng.exponential(rate_per_minute);
      }
    }
  }

  util::TimeSeries series(step, count);
  std::size_t next_spike = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = step.value() * static_cast<double>(i);
    const double hour_of_day = std::fmod(t / 60.0, 24.0);
    const double day_index = std::floor(t / (24.0 * 60.0));
    const bool weekend = std::fmod(day_index, 7.0) >= 5.0;

    // Daily shape peaking at peak_hour.
    const double phase =
        2.0 * std::numbers::pi * (hour_of_day - params_.peak_hour) / 24.0;
    double level = 1.0 + params_.diurnal_amplitude * std::cos(phase);
    if (weekend) level *= params_.weekend_factor;

    // Flash-crowd spikes (triangular pulses).
    while (next_spike < spikes.size() &&
           spikes[next_spike].center_minute + spikes[next_spike].half_width < t)
      ++next_spike;
    for (std::size_t s = next_spike; s < spikes.size(); ++s) {
      if (spikes[s].center_minute - spikes[s].half_width > t) break;
      const double dist = std::abs(t - spikes[s].center_minute);
      level += spikes[s].magnitude * (1.0 - dist / spikes[s].half_width);
    }

    // Relative Poisson-like sampling noise.
    level *= std::max(1.0 + rng.normal(0.0, params_.noise_sd), 0.0);
    series[i] = std::max(level, 0.0);
  }

  // Rescale so the mean matches the Table I average exactly, then clamp.
  const double raw_mean = series.mean();
  if (raw_mean <= 0.0)
    throw std::logic_error("WebWorkloadModel: degenerate series");
  const double scale = params_.mean_utilization / raw_mean;
  return series.map([scale](double v) { return std::clamp(v * scale, 0.0, 1.0); });
}

WebWorkloadParams WebWorkloadPresets::calgary() {
  WebWorkloadParams p;
  p.name = "Calgary";
  p.mean_utilization = 0.0363;
  p.diurnal_amplitude = 0.70;  // small departmental server: strong day/night
  p.weekend_factor = 0.45;
  p.peak_hour = 15.0;
  return p;
}

WebWorkloadParams WebWorkloadPresets::u_of_s() {
  WebWorkloadParams p;
  p.name = "U of S";
  p.mean_utilization = 0.0721;
  p.diurnal_amplitude = 0.65;
  p.weekend_factor = 0.50;
  p.peak_hour = 14.0;
  return p;
}

WebWorkloadParams WebWorkloadPresets::nasa() {
  WebWorkloadParams p;
  p.name = "NASA";
  p.mean_utilization = 0.2889;
  p.diurnal_amplitude = 0.50;
  p.weekend_factor = 0.75;
  p.peak_hour = 13.0;
  p.spikes_per_week = 3.0;  // launch-day flash crowds
  p.spike_magnitude = 1.0;
  return p;
}

WebWorkloadParams WebWorkloadPresets::clark() {
  WebWorkloadParams p;
  p.name = "Clark";
  p.mean_utilization = 0.3578;
  p.diurnal_amplitude = 0.45;
  p.weekend_factor = 0.80;
  p.peak_hour = 20.0;  // ISP: evening peak
  return p;
}

WebWorkloadParams WebWorkloadPresets::ucb() {
  WebWorkloadParams p;
  p.name = "UCB";
  p.mean_utilization = 0.4604;
  p.diurnal_amplitude = 0.40;
  p.weekend_factor = 0.85;
  p.peak_hour = 16.0;
  return p;
}

std::vector<WebWorkloadParams> WebWorkloadPresets::all() {
  return {calgary(), u_of_s(), nasa(), clark(), ucb()};
}

}  // namespace smoother::trace
