#include "smoother/trace/batch_workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "smoother/util/rng.hpp"

namespace smoother::trace {

void BatchWorkloadParams::validate() const {
  if (target_utilization <= 0.0 || target_utilization > 1.0)
    throw std::invalid_argument("BatchWorkloadParams: target in (0,1]");
  if (source_processors == 0)
    throw std::invalid_argument("BatchWorkloadParams: source machine empty");
  if (mean_runtime_minutes <= 0.0)
    throw std::invalid_argument("BatchWorkloadParams: runtime > 0");
  if (runtime_sigma <= 0.0)
    throw std::invalid_argument("BatchWorkloadParams: sigma > 0");
  if (mean_servers_per_job < 1.0)
    throw std::invalid_argument("BatchWorkloadParams: servers >= 1");
  if (max_servers_fraction <= 0.0 || max_servers_fraction > 1.0)
    throw std::invalid_argument("BatchWorkloadParams: cap in (0,1]");
  if (per_job_cpu_utilization <= 0.0 || per_job_cpu_utilization > 1.0)
    throw std::invalid_argument("BatchWorkloadParams: cpu in (0,1]");
  if (deadline_slack_min < 1.0 || deadline_slack_max < deadline_slack_min)
    throw std::invalid_argument("BatchWorkloadParams: bad slack range");
  if (arrival_diurnal_amplitude < 0.0 || arrival_diurnal_amplitude >= 1.0)
    throw std::invalid_argument("BatchWorkloadParams: amplitude in [0,1)");
}

BatchWorkloadModel::BatchWorkloadModel(BatchWorkloadParams params)
    : params_(std::move(params)) {
  params_.validate();
}

namespace {

struct DrawnJob {
  double arrival_min;
  double runtime_min;
  std::size_t servers;
  double cpu;
  double slack_factor;
};

double job_work(const DrawnJob& j) {
  return static_cast<double>(j.servers) * j.runtime_min * j.cpu;
}

}  // namespace

std::vector<sched::Job> BatchWorkloadModel::generate(
    util::Minutes horizon, std::size_t total_servers,
    const power::DatacenterPowerModel& power_model,
    std::uint64_t seed) const {
  if (horizon <= util::Minutes{0.0})
    throw std::invalid_argument("BatchWorkloadModel: horizon must be > 0");
  if (total_servers == 0)
    throw std::invalid_argument("BatchWorkloadModel: empty cluster");

  util::Rng rng(seed);
  // Load is defined against the source machine; sizes are additionally
  // capped by the evaluation cluster.
  const double n = static_cast<double>(params_.source_processors);
  const double horizon_min = horizon.value();

  // Log-normal runtime with the requested mean: mu = ln(mean) - sigma^2/2.
  const double runtime_mu = std::log(params_.mean_runtime_minutes) -
                            0.5 * params_.runtime_sigma * params_.runtime_sigma;
  const std::size_t servers_cap = std::min(
      std::max<std::size_t>(
          1, static_cast<std::size_t>(params_.max_servers_fraction * n)),
      total_servers);

  auto draw_job = [&](double arrival) {
    DrawnJob j;
    j.arrival_min = arrival;
    j.runtime_min =
        std::max(rng.lognormal(runtime_mu, params_.runtime_sigma), 1.0);
    const double raw_servers =
        rng.exponential(1.0 / params_.mean_servers_per_job);
    j.servers = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::ceil(raw_servers)), 1, servers_cap);
    j.cpu = std::clamp(
        params_.per_job_cpu_utilization * rng.uniform(0.85, 1.15), 0.05, 1.0);
    j.slack_factor =
        rng.uniform(params_.deadline_slack_min, params_.deadline_slack_max);
    return j;
  };

  // Mean work per job approximates E[servers]*E[runtime]*cpu; the arrival
  // rate offering `target` utilization follows from it. The exact level is
  // then steered by trimming/extending below.
  const double approx_mean_servers =
      std::min(params_.mean_servers_per_job, 0.7 * static_cast<double>(servers_cap));
  const double mean_work_per_job = approx_mean_servers *
                                   params_.mean_runtime_minutes *
                                   params_.per_job_cpu_utilization;
  const double base_rate = params_.target_utilization * n / mean_work_per_job;

  // Submission-rate day profile: production logs concentrate submissions in
  // working hours. A Gaussian bump centred at 13:00 over a small night
  // floor; `arrival_diurnal_amplitude` sets how deep the night trough is.
  const double night_floor = 1.0 - params_.arrival_diurnal_amplitude;
  auto rate_profile = [&](double minute) {
    const double hour = std::fmod(minute / 60.0, 24.0);
    const double z = (hour - 13.0) / 3.5;
    return night_floor + (1.0 - night_floor) * 3.0 * std::exp(-z * z);
  };

  // Nonhomogeneous Poisson arrivals via thinning.
  std::vector<DrawnJob> drawn;
  const double rate_max = base_rate * (night_floor + (1.0 - night_floor) * 3.0);
  double t = rate_max > 0.0 ? rng.exponential(rate_max) : horizon_min;
  while (t < horizon_min) {
    if (rng.uniform() < base_rate * rate_profile(t) / rate_max)
      drawn.push_back(draw_job(t));
    t += rng.exponential(rate_max);
  }

  // Steer the realized offered work to the target.
  const double target_work = params_.target_utilization * n * horizon_min;
  double work = 0.0;
  for (const auto& j : drawn) work += job_work(j);
  while (work > target_work && !drawn.empty()) {
    const std::size_t victim = rng.uniform_index(drawn.size());
    work -= job_work(drawn[victim]);
    drawn.erase(drawn.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  const double profile_max = night_floor + (1.0 - night_floor) * 3.0;
  while (work < target_work - 0.5 * mean_work_per_job) {
    // Extra arrivals follow the same day profile (rejection sampling).
    double arrival = rng.uniform(0.0, horizon_min);
    while (rng.uniform() >= rate_profile(arrival) / profile_max)
      arrival = rng.uniform(0.0, horizon_min);
    DrawnJob j = draw_job(arrival);
    work += job_work(j);
    drawn.push_back(std::move(j));
  }
  std::sort(drawn.begin(), drawn.end(),
            [](const DrawnJob& a, const DrawnJob& b) {
              return a.arrival_min < b.arrival_min;
            });

  std::vector<sched::Job> jobs;
  jobs.reserve(drawn.size());
  std::uint64_t id = 1;
  for (const auto& d : drawn) {
    sched::Job job;
    job.id = id++;
    job.arrival = util::Minutes{d.arrival_min};
    job.runtime = util::Minutes{d.runtime_min};
    job.servers = d.servers;
    job.cpu_utilization = d.cpu;
    job.deadline = job.arrival + job.runtime * d.slack_factor;
    job.power = power_model.job_power(job.servers, job.cpu_utilization);
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<SwfRecord> BatchWorkloadModel::generate_swf(
    util::Minutes horizon, std::size_t total_servers,
    std::uint64_t seed) const {
  power::DatacenterSpec spec;
  spec.server_count = total_servers;
  const power::DatacenterPowerModel model(spec);
  const auto jobs = generate(horizon, total_servers, model, seed);
  std::vector<SwfRecord> records;
  records.reserve(jobs.size());
  for (const auto& job : jobs) {
    SwfRecord r;
    r.job_number = static_cast<std::int64_t>(job.id);
    r.submit_time_s = job.arrival.value() * 60.0;
    r.wait_time_s = 0.0;
    r.run_time_s = job.runtime.value() * 60.0;
    r.allocated_processors = static_cast<std::int64_t>(job.servers);
    r.average_cpu_time_s = job.cpu_utilization * r.run_time_s;
    r.requested_processors = r.allocated_processors;
    r.requested_time_s = r.run_time_s * 1.2;
    r.status = 1;
    records.push_back(r);
  }
  return records;
}

double BatchWorkloadModel::offered_utilization(
    const std::vector<sched::Job>& jobs, std::size_t processors,
    util::Minutes horizon) {
  if (processors == 0 || horizon <= util::Minutes{0.0}) return 0.0;
  double work = 0.0;
  for (const auto& job : jobs)
    work += static_cast<double>(job.servers) * job.runtime.value() *
            job.cpu_utilization;
  return work / (static_cast<double>(processors) * horizon.value());
}

// ---------------------------------------------------------------------------
// Table II presets. The four logs differ in load level and in job mix:
// Thunder (capability machine, large long jobs), CM5 (many mid-size jobs),
// HPC2N (smaller jobs, moderate load), Ross (light load).

BatchWorkloadParams BatchWorkloadPresets::llnl_thunder() {
  BatchWorkloadParams p;
  p.name = "LLNL Thunder";
  p.target_utilization = 0.867;
  p.source_processors = 4008;  // Thunder's CPU count in the archive
  p.mean_runtime_minutes = 240.0;
  p.runtime_sigma = 1.2;
  p.mean_servers_per_job = 128.0;
  return p;
}

BatchWorkloadParams BatchWorkloadPresets::lanl_cm5() {
  BatchWorkloadParams p;
  p.name = "LANL CM5";
  p.target_utilization = 0.744;
  p.source_processors = 1024;  // the CM-5's node count
  p.mean_runtime_minutes = 150.0;
  p.runtime_sigma = 1.1;
  p.mean_servers_per_job = 64.0;
  return p;
}

BatchWorkloadParams BatchWorkloadPresets::hpc2n() {
  BatchWorkloadParams p;
  p.name = "HPC2N";
  p.target_utilization = 0.601;
  p.source_processors = 240;  // HPC2N Linux cluster size
  p.mean_runtime_minutes = 90.0;
  p.runtime_sigma = 1.3;
  p.mean_servers_per_job = 12.0;
  return p;
}

BatchWorkloadParams BatchWorkloadPresets::sandia_ross() {
  BatchWorkloadParams p;
  p.name = "Sandia Ross";
  p.target_utilization = 0.499;
  p.source_processors = 1524;  // Ross's CPU count in the archive
  p.mean_runtime_minutes = 60.0;
  p.runtime_sigma = 1.0;
  p.mean_servers_per_job = 32.0;
  return p;
}

std::vector<BatchWorkloadParams> BatchWorkloadPresets::all() {
  return {llnl_thunder(), lanl_cm5(), hpc2n(), sandia_ross()};
}

}  // namespace smoother::trace
