#include "smoother/power/wind_farm.hpp"

#include <stdexcept>

namespace smoother::power {

WindFarm::WindFarm(const TurbineCurve& turbine,
                   util::Kilowatts installed_capacity)
    : turbine_(&turbine),
      capacity_(installed_capacity),
      scale_(installed_capacity / turbine.spec().rated_power) {
  if (installed_capacity <= util::Kilowatts{0.0})
    throw std::invalid_argument("WindFarm: capacity must be positive");
}

util::Kilowatts WindFarm::output(util::MetresPerSecond speed) const {
  return turbine_->output(speed) * scale_;
}

util::TimeSeries WindFarm::power_series(
    const util::TimeSeries& wind_speed) const {
  return turbine_->power_series(wind_speed) * scale_;
}

}  // namespace smoother::power
