// Wind farm: a bank of identical turbines exposed as one aggregate source.
//
// The paper's experiments set the "total installed wind turbine capacity" to
// 976 kW and 1525 kW; WindFarm scales a single turbine curve to an arbitrary
// installed capacity (fractional turbine counts are allowed — the farm is an
// aggregate, not a discrete inventory).
#pragma once

#include "smoother/power/turbine.hpp"
#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::power {

/// Aggregate wind generation for a given installed capacity.
class WindFarm {
 public:
  /// A farm of `turbine` units totalling `installed_capacity` of rated
  /// power. Throws std::invalid_argument when the capacity is not positive.
  WindFarm(const TurbineCurve& turbine, util::Kilowatts installed_capacity);

  /// Farm output at a single wind speed (all turbines see the same wind).
  [[nodiscard]] util::Kilowatts output(util::MetresPerSecond speed) const;

  /// Farm power series for a wind-speed series (kW).
  [[nodiscard]] util::TimeSeries power_series(
      const util::TimeSeries& wind_speed) const;

  [[nodiscard]] util::Kilowatts installed_capacity() const {
    return capacity_;
  }

  /// Number of turbine-equivalents (capacity / turbine rating).
  [[nodiscard]] double turbine_count() const { return scale_; }

  [[nodiscard]] const TurbineCurve& turbine() const { return *turbine_; }

 private:
  const TurbineCurve* turbine_;  // non-owning; presets live forever
  util::Kilowatts capacity_;
  double scale_;
};

}  // namespace smoother::power
