#include "smoother/power/solar.hpp"

#include <algorithm>
#include <stdexcept>

namespace smoother::power {

void PvArraySpec::validate() const {
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("PvArraySpec: rated power must be > 0");
  if (stc_irradiance_wm2 <= 0.0)
    throw std::invalid_argument("PvArraySpec: STC irradiance must be > 0");
  if (temperature_coefficient_per_c > 0.0)
    throw std::invalid_argument(
        "PvArraySpec: temperature coefficient must be <= 0 (power drops "
        "with heat)");
  if (noct_celsius <= 20.0)
    throw std::invalid_argument("PvArraySpec: NOCT must exceed 20 C");
  if (system_losses < 0.0 || system_losses >= 1.0)
    throw std::invalid_argument("PvArraySpec: losses in [0,1)");
}

PvArray::PvArray(PvArraySpec spec) : spec_(spec) { spec_.validate(); }

double PvArray::cell_temperature(double ambient_celsius,
                                 double irradiance_wm2) const {
  return ambient_celsius +
         (spec_.noct_celsius - 20.0) * std::max(irradiance_wm2, 0.0) / 800.0;
}

util::Kilowatts PvArray::output(double irradiance_wm2,
                                double ambient_celsius) const {
  const double g = std::max(irradiance_wm2, 0.0);
  if (g == 0.0) return util::Kilowatts{0.0};
  const double t_cell = cell_temperature(ambient_celsius, g);
  const double thermal =
      1.0 + spec_.temperature_coefficient_per_c * (t_cell - 25.0);
  const double raw = spec_.rated_power.value() * (g / spec_.stc_irradiance_wm2) *
                     std::max(thermal, 0.0) * (1.0 - spec_.system_losses);
  return util::Kilowatts{
      std::clamp(raw, 0.0, spec_.rated_power.value())};
}

util::TimeSeries PvArray::power_series(const util::TimeSeries& irradiance,
                                       double ambient_celsius) const {
  return irradiance.map([this, ambient_celsius](double g) {
    return output(g, ambient_celsius).value();
  });
}

util::TimeSeries PvArray::power_series(
    const util::TimeSeries& irradiance,
    const util::TimeSeries& ambient_celsius) const {
  if (irradiance.step() != ambient_celsius.step() ||
      irradiance.size() != ambient_celsius.size())
    throw std::invalid_argument("PvArray::power_series: shape mismatch");
  util::TimeSeries out(irradiance.step(), irradiance.size());
  for (std::size_t i = 0; i < irradiance.size(); ++i)
    out[i] = output(irradiance[i], ambient_celsius[i]).value();
  return out;
}

}  // namespace smoother::power
