// Capacity factor and capacity-factor variance (paper Eq. 6-7).
//
// The capacity factor of a power sample is P(t) / P_rate; the paper measures
// wind fluctuation within an interval [0, T] as the population variance of
// the capacity factors over that interval, and classifies intervals into
// fluctuation regions by thresholding the CDF of these variances.
#pragma once

#include <cstddef>
#include <vector>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::power {

/// Capacity-factor series: each power sample divided by the rated power.
/// Throws std::invalid_argument when rated_power <= 0.
[[nodiscard]] util::TimeSeries capacity_factor_series(
    const util::TimeSeries& power, util::Kilowatts rated_power);

/// Average capacity factor of the whole series (paper Eq. 7 over one
/// interval; here over the full series).
[[nodiscard]] double average_capacity_factor(const util::TimeSeries& power,
                                             util::Kilowatts rated_power);

/// Capacity-factor variance over one interval (paper Eq. 6): population
/// variance of P(t)/P_rate across the samples.
[[nodiscard]] double capacity_factor_variance(const util::TimeSeries& power,
                                              util::Kilowatts rated_power);

/// Per-interval capacity-factor variances: the series is cut into disjoint
/// intervals of `points_per_interval` samples (a trailing partial interval
/// is dropped) and Eq. 6 is evaluated on each. With 5-minute samples and
/// points_per_interval = 12 this is the paper's hourly variance sequence
/// whose CDF appears in Fig. 3.
[[nodiscard]] std::vector<double> interval_capacity_factor_variances(
    const util::TimeSeries& power, util::Kilowatts rated_power,
    std::size_t points_per_interval);

}  // namespace smoother::power
