#include "smoother/power/turbine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "smoother/solver/least_squares.hpp"

namespace smoother::power {

GaussianSumCurve::GaussianSumCurve(std::vector<GaussianTerm> terms)
    : terms_(std::move(terms)) {
  if (terms_.empty() || terms_.size() > 5)
    throw std::invalid_argument("GaussianSumCurve: need 1..5 terms (Eq. 2)");
  for (const auto& t : terms_)
    if (t.width == 0.0)
      throw std::invalid_argument("GaussianSumCurve: zero width");
}

double GaussianSumCurve::operator()(double wind_speed) const {
  double acc = 0.0;
  for (const auto& t : terms_) {
    const double z = (wind_speed - t.center) / t.width;
    acc += t.amplitude * std::exp(-z * z);
  }
  return acc;
}

GaussianSumCurve GaussianSumCurve::fit(std::span<const double> speeds,
                                       std::span<const double> powers,
                                       std::size_t num_terms) {
  if (speeds.empty() || speeds.size() != powers.size())
    throw std::invalid_argument("GaussianSumCurve::fit: bad samples");
  if (num_terms == 0 || num_terms > 5)
    throw std::invalid_argument("GaussianSumCurve::fit: 1..5 terms");

  const auto [lo_it, hi_it] = std::minmax_element(speeds.begin(), speeds.end());
  const double lo = *lo_it, hi = *hi_it;
  const double span = std::max(hi - lo, 1.0);
  const double peak = *std::max_element(powers.begin(), powers.end());

  // Parameters packed as [a1, b1, c1, a2, b2, c2, ...].
  solver::Vector theta;
  theta.reserve(num_terms * 3);
  for (std::size_t i = 0; i < num_terms; ++i) {
    const double frac =
        num_terms == 1 ? 1.0
                       : static_cast<double>(i + 1) / static_cast<double>(num_terms);
    theta.push_back(peak * frac);           // amplitude, biased to the peak
    theta.push_back(lo + span * frac);      // centers spread over the range
    theta.push_back(span / static_cast<double>(num_terms));  // width
  }

  const auto residual = [&](std::span<const double> p) {
    solver::Vector r(speeds.size());
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      double model = 0.0;
      for (std::size_t t = 0; t < num_terms; ++t) {
        const double a = p[3 * t];
        const double b = p[3 * t + 1];
        const double c = p[3 * t + 2];
        const double z = (speeds[i] - b) / (c == 0.0 ? 1e-9 : c);
        model += a * std::exp(-z * z);
      }
      r[i] = model - powers[i];
    }
    return r;
  };

  const auto fit_result = solver::levenberg_marquardt(residual, theta);
  if (fit_result.status == solver::LeastSquaresStatus::kStalled &&
      fit_result.cost > 0.5 * peak * peak)
    throw std::runtime_error("GaussianSumCurve::fit: LM failed to fit");

  std::vector<GaussianTerm> terms;
  terms.reserve(num_terms);
  for (std::size_t t = 0; t < num_terms; ++t) {
    GaussianTerm term;
    term.amplitude = fit_result.parameters[3 * t];
    term.center = fit_result.parameters[3 * t + 1];
    term.width = fit_result.parameters[3 * t + 2];
    if (term.width == 0.0) term.width = 1e-9;
    terms.push_back(term);
  }
  return GaussianSumCurve(std::move(terms));
}

double GaussianSumCurve::rms_error(std::span<const double> speeds,
                                   std::span<const double> powers) const {
  if (speeds.empty() || speeds.size() != powers.size())
    throw std::invalid_argument("GaussianSumCurve::rms_error: bad samples");
  double acc = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    const double d = (*this)(speeds[i]) - powers[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(speeds.size()));
}

void TurbineSpec::validate() const {
  if (!(util::MetresPerSecond{0.0} < cut_in && cut_in < rated_speed &&
        rated_speed < cut_out))
    throw std::invalid_argument(
        "TurbineSpec: need 0 < cut-in < rated < cut-out");
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("TurbineSpec: rated power must be positive");
}

TurbineCurve::TurbineCurve(TurbineSpec spec, GaussianSumCurve partial_load)
    : spec_(spec), partial_(std::move(partial_load)) {
  spec_.validate();
}

util::Kilowatts TurbineCurve::output(util::MetresPerSecond speed) const {
  const double v = speed.value();
  if (v <= spec_.cut_in.value() || v > spec_.cut_out.value())
    return util::Kilowatts{0.0};  // Eq. 1 rows 1 and 4
  if (v > spec_.rated_speed.value())
    return spec_.rated_power;  // Eq. 1 row 3
  // Eq. 1 row 2: partial-load Gaussian curve, clamped into [0, rated].
  const double raw = partial_(v);
  return util::Kilowatts{std::clamp(raw, 0.0, spec_.rated_power.value())};
}

util::TimeSeries TurbineCurve::power_series(
    const util::TimeSeries& wind_speed) const {
  return wind_speed.map([this](double v) {
    return output(util::MetresPerSecond{v}).value();
  });
}

std::span<const std::pair<double, double>>
TurbineCurve::e48_reference_points() {
  // ENERCON E48 published power table in the partial-load band [23];
  // speeds in m/s, power in kW (rated 800 kW at 14 m/s).
  static constexpr std::array<std::pair<double, double>, 12> kPoints = {{
      {3.0, 5.0},
      {4.0, 25.0},
      {5.0, 60.0},
      {6.0, 110.0},
      {7.0, 180.0},
      {8.0, 275.0},
      {9.0, 400.0},
      {10.0, 555.0},
      {11.0, 671.0},
      {12.0, 750.0},
      {13.0, 790.0},
      {14.0, 800.0},
  }};
  return kPoints;
}

const TurbineCurve& TurbineCurve::enercon_e48() {
  static const TurbineCurve curve = [] {
    const auto points = e48_reference_points();
    std::vector<double> speeds, powers;
    speeds.reserve(points.size());
    powers.reserve(points.size());
    for (const auto& [v, p] : points) {
      speeds.push_back(v);
      powers.push_back(p);
    }
    GaussianSumCurve g = GaussianSumCurve::fit(speeds, powers, 3);
    return TurbineCurve(TurbineSpec{}, std::move(g));
  }();
  return curve;
}

}  // namespace smoother::power
