// Wind turbine output power models (paper Section II-B).
//
// The output power of a turbine is the piecewise function of Eq. 1:
// zero below cut-in and above cut-out, the fitted curve G(v) between cut-in
// and rated speed, and the rated power between rated and cut-out speed.
// G(v) is a Gaussian sum (Eq. 2) fitted to measured (speed, power) samples
// with the Levenberg-Marquardt solver, mirroring the paper's use of Gaussian
// regression from "Optimal Harvesting Wind Power" [22].
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::power {

/// One Gaussian term a * exp(-((v - b)/c)^2).
struct GaussianTerm {
  double amplitude = 0.0;  ///< a, in kW
  double center = 0.0;     ///< b, in m/s
  double width = 1.0;      ///< c, in m/s (must be nonzero)
};

/// Gaussian-sum curve G(v) = sum_i a_i exp(-((v-b_i)/c_i)^2), 1 <= n <= 5
/// (paper Eq. 2).
class GaussianSumCurve {
 public:
  /// Throws std::invalid_argument when terms is empty, has more than 5
  /// entries, or any width is zero.
  explicit GaussianSumCurve(std::vector<GaussianTerm> terms);

  [[nodiscard]] double operator()(double wind_speed) const;
  [[nodiscard]] const std::vector<GaussianTerm>& terms() const {
    return terms_;
  }

  /// Fits an n-term Gaussian sum to samples by Levenberg-Marquardt with a
  /// deterministic initialization (centers spread over the sample range).
  /// Throws std::invalid_argument on empty/mismatched samples or n outside
  /// [1, 5]; throws std::runtime_error when the fit fails to improve on the
  /// initialization.
  static GaussianSumCurve fit(std::span<const double> speeds,
                              std::span<const double> powers,
                              std::size_t num_terms);

  /// Root-mean-square error of the curve against samples.
  [[nodiscard]] double rms_error(std::span<const double> speeds,
                                 std::span<const double> powers) const;

 private:
  std::vector<GaussianTerm> terms_;
};

/// Static parameters of a turbine type.
struct TurbineSpec {
  util::MetresPerSecond cut_in{3.0};
  util::MetresPerSecond rated_speed{14.0};
  util::MetresPerSecond cut_out{25.0};
  util::Kilowatts rated_power{800.0};

  /// Throws std::invalid_argument unless 0 < cut_in < rated < cut_out and
  /// rated_power > 0.
  void validate() const;
};

/// Complete turbine output model: Eq. 1 with a Gaussian-sum G(v).
///
/// The partial-load curve is clamped into [0, rated] so a slightly
/// over/under-shooting fit can never produce negative power or exceed the
/// rating, and scaled so that it meets the rated power continuously at the
/// rated speed.
class TurbineCurve {
 public:
  /// Throws std::invalid_argument if spec is invalid.
  TurbineCurve(TurbineSpec spec, GaussianSumCurve partial_load);

  /// Output power at the given wind speed (Eq. 1).
  [[nodiscard]] util::Kilowatts output(util::MetresPerSecond speed) const;

  /// Maps a wind-speed series (m/s) to a power series (kW).
  [[nodiscard]] util::TimeSeries power_series(
      const util::TimeSeries& wind_speed) const;

  [[nodiscard]] const TurbineSpec& spec() const { return spec_; }
  [[nodiscard]] const GaussianSumCurve& partial_load() const {
    return partial_;
  }

  /// The ENERCON E48 preset of paper Fig. 1: cut-in 3 m/s, rated 14 m/s at
  /// 800 kW, cut-out 25 m/s; its G(v) is LM-fitted once (cached) to the
  /// published E48 power table.
  static const TurbineCurve& enercon_e48();

  /// Reference (speed, power) samples of the E48 partial-load region used
  /// both by the preset fit and the tests.
  static std::span<const std::pair<double, double>> e48_reference_points();

 private:
  TurbineSpec spec_;
  GaussianSumCurve partial_;
};

}  // namespace smoother::power
