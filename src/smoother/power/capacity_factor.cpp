#include "smoother/power/capacity_factor.hpp"

#include <stdexcept>

#include "smoother/stats/rolling.hpp"

namespace smoother::power {

namespace {
void require_rated(util::Kilowatts rated_power) {
  if (rated_power <= util::Kilowatts{0.0})
    throw std::invalid_argument("capacity factor: rated power must be > 0");
}
}  // namespace

util::TimeSeries capacity_factor_series(const util::TimeSeries& power,
                                        util::Kilowatts rated_power) {
  require_rated(rated_power);
  const double rate = rated_power.value();
  return power.map([rate](double p) { return p / rate; });
}

double average_capacity_factor(const util::TimeSeries& power,
                               util::Kilowatts rated_power) {
  return capacity_factor_series(power, rated_power).mean();
}

double capacity_factor_variance(const util::TimeSeries& power,
                                util::Kilowatts rated_power) {
  return capacity_factor_series(power, rated_power).variance();
}

std::vector<double> interval_capacity_factor_variances(
    const util::TimeSeries& power, util::Kilowatts rated_power,
    std::size_t points_per_interval) {
  if (points_per_interval == 0)
    throw std::invalid_argument(
        "interval_capacity_factor_variances: interval must be >= 1 point");
  const util::TimeSeries cf = capacity_factor_series(power, rated_power);
  return stats::windowed_variances(cf.values(), points_per_interval);
}

}  // namespace smoother::power
