// Photovoltaic array model.
//
// The paper's contribution #3 claims Smoother "can be used for a variety of
// renewable power sources, while executing similar operations" and works
// wind out in detail. This module provides the solar leg of that claim: a
// PV array that maps plane-of-array irradiance (W/m^2) and ambient
// temperature to AC output power, using the standard single-point
// efficiency model with NOCT cell-temperature correction:
//
//   P = P_rated * (G / G_stc) * [1 + gamma * (T_cell - 25 C)] * (1 - losses)
//   T_cell = T_ambient + (NOCT - 20) * G / 800
//
// The same capacity-factor/region/FS machinery then applies unchanged —
// which is exactly the "similar operations" the paper asserts.
#pragma once

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::power {

/// Static parameters of a PV array.
struct PvArraySpec {
  util::Kilowatts rated_power{800.0};  ///< DC rating at STC
  double stc_irradiance_wm2 = 1000.0;  ///< standard test condition
  double temperature_coefficient_per_c = -0.004;  ///< gamma (power/°C)
  double noct_celsius = 45.0;          ///< nominal operating cell temp
  double system_losses = 0.14;         ///< inverter, wiring, soiling

  /// Throws std::invalid_argument on non-physical parameters.
  void validate() const;
};

/// Irradiance/temperature to power conversion.
class PvArray {
 public:
  explicit PvArray(PvArraySpec spec = {});

  [[nodiscard]] const PvArraySpec& spec() const { return spec_; }

  /// Cell temperature for the given ambient and irradiance (NOCT model).
  [[nodiscard]] double cell_temperature(double ambient_celsius,
                                        double irradiance_wm2) const;

  /// AC output power; clamped into [0, rated].
  [[nodiscard]] util::Kilowatts output(double irradiance_wm2,
                                       double ambient_celsius = 20.0) const;

  /// Maps an irradiance series (W/m^2) to a power series (kW) at a fixed
  /// ambient temperature.
  [[nodiscard]] util::TimeSeries power_series(
      const util::TimeSeries& irradiance,
      double ambient_celsius = 20.0) const;

  /// Same with a per-sample ambient-temperature series (shapes must match).
  [[nodiscard]] util::TimeSeries power_series(
      const util::TimeSeries& irradiance,
      const util::TimeSeries& ambient_celsius) const;

 private:
  PvArraySpec spec_;
};

}  // namespace smoother::power
