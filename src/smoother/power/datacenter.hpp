// Datacenter power consumption model (paper Eq. 3-5).
//
//   P_system(t) = P_IT(t) * R_pue                       (Eq. 3)
//   P_IT(t)     = P_server(t) + P_network(t)            (Eq. 4)
//   P_server(t) = N * (p_idle + (p_full - p_idle) * mu) (Eq. 5, summed)
//
// with networking modelled as a constant fraction of total server peak power
// (the paper: "approximately less than 10% of the total peak power of all
// servers ... usually can be estimated as a constant").
#pragma once

#include <cstddef>

#include "smoother/util/time_series.hpp"
#include "smoother/util/units.hpp"

namespace smoother::power {

/// Parameters of a homogeneous server fleet. Defaults are the paper's
/// evaluation setup: 11,000 servers at 186 W peak / 62 W idle.
struct DatacenterSpec {
  std::size_t server_count = 11000;
  double server_peak_watts = 186.0;
  double server_idle_watts = 62.0;
  double pue = 1.3;               ///< R_pue (cooling ~30% of total, §II-A)
  double network_fraction = 0.10; ///< networking as a fraction of server peak

  /// Throws std::invalid_argument on non-physical parameters (no servers,
  /// idle above peak, PUE below 1, fraction outside [0,1]).
  void validate() const;
};

/// Converts between cluster CPU utilization and electrical power.
class DatacenterPowerModel {
 public:
  explicit DatacenterPowerModel(DatacenterSpec spec = {});

  [[nodiscard]] const DatacenterSpec& spec() const { return spec_; }

  /// Total server power at average utilization mu in [0, 1] (Eq. 5 summed
  /// over N machines). Utilization is clamped into [0, 1].
  [[nodiscard]] util::Kilowatts server_power(double utilization) const;

  /// Constant networking power (Eq. 4's second term).
  [[nodiscard]] util::Kilowatts network_power() const;

  /// IT power: servers + network (Eq. 4).
  [[nodiscard]] util::Kilowatts it_power(double utilization) const;

  /// Whole-system power including cooling via PUE (Eq. 3).
  [[nodiscard]] util::Kilowatts system_power(double utilization) const;

  /// System power at zero and full utilization (the feasible power band).
  [[nodiscard]] util::Kilowatts min_system_power() const {
    return system_power(0.0);
  }
  [[nodiscard]] util::Kilowatts max_system_power() const {
    return system_power(1.0);
  }

  /// Inverse of system_power: the utilization that would draw `power`,
  /// clamped into [0, 1].
  [[nodiscard]] double utilization_for(util::Kilowatts power) const;

  /// Maps a utilization series (fractions in [0,1]) to a system power
  /// series in kW.
  [[nodiscard]] util::TimeSeries power_series(
      const util::TimeSeries& utilization) const;

  /// Power drawn by a job occupying `servers` machines at utilization `mu`
  /// (its share of networking and cooling included). Used by Active Delay
  /// to cost individual batch jobs.
  [[nodiscard]] util::Kilowatts job_power(std::size_t servers,
                                          double utilization) const;

 private:
  DatacenterSpec spec_;
};

}  // namespace smoother::power
