#include "smoother/power/datacenter.hpp"

#include <algorithm>
#include <stdexcept>

namespace smoother::power {

void DatacenterSpec::validate() const {
  if (server_count == 0)
    throw std::invalid_argument("DatacenterSpec: no servers");
  if (server_idle_watts < 0.0 || server_peak_watts < server_idle_watts)
    throw std::invalid_argument("DatacenterSpec: need 0 <= idle <= peak");
  if (pue < 1.0) throw std::invalid_argument("DatacenterSpec: PUE < 1");
  if (network_fraction < 0.0 || network_fraction > 1.0)
    throw std::invalid_argument("DatacenterSpec: network fraction in [0,1]");
}

DatacenterPowerModel::DatacenterPowerModel(DatacenterSpec spec) : spec_(spec) {
  spec_.validate();
}

util::Kilowatts DatacenterPowerModel::server_power(double utilization) const {
  const double mu = std::clamp(utilization, 0.0, 1.0);
  const double per_server_watts =
      spec_.server_idle_watts +
      (spec_.server_peak_watts - spec_.server_idle_watts) * mu;
  return util::Kilowatts{per_server_watts *
                         static_cast<double>(spec_.server_count) / 1000.0};
}

util::Kilowatts DatacenterPowerModel::network_power() const {
  return util::Kilowatts{spec_.network_fraction * spec_.server_peak_watts *
                         static_cast<double>(spec_.server_count) / 1000.0};
}

util::Kilowatts DatacenterPowerModel::it_power(double utilization) const {
  return server_power(utilization) + network_power();
}

util::Kilowatts DatacenterPowerModel::system_power(double utilization) const {
  return it_power(utilization) * spec_.pue;
}

double DatacenterPowerModel::utilization_for(util::Kilowatts power) const {
  const double lo = min_system_power().value();
  const double hi = max_system_power().value();
  if (hi <= lo) return 0.0;  // degenerate: idle == peak
  return std::clamp((power.value() - lo) / (hi - lo), 0.0, 1.0);
}

util::TimeSeries DatacenterPowerModel::power_series(
    const util::TimeSeries& utilization) const {
  return utilization.map(
      [this](double mu) { return system_power(mu).value(); });
}

util::Kilowatts DatacenterPowerModel::job_power(std::size_t servers,
                                                double utilization) const {
  const double mu = std::clamp(utilization, 0.0, 1.0);
  const std::size_t used = std::min(servers, spec_.server_count);
  // The job's servers run at mu above idle; idle power is the fleet's
  // baseline and is not attributed to the job. Networking and cooling are
  // attributed proportionally via the PUE and network fraction.
  const double dynamic_watts =
      (spec_.server_peak_watts - spec_.server_idle_watts) * mu *
      static_cast<double>(used);
  const double idle_watts =
      spec_.server_idle_watts * static_cast<double>(used);
  return util::Kilowatts{(dynamic_watts + idle_watts) * spec_.pue / 1000.0};
}

}  // namespace smoother::power
