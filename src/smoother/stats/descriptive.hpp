// Descriptive statistics: streaming accumulator and one-shot summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smoother::stats {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);

  /// Merge another accumulator (Chan et al. parallel combination).
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }

  /// Population variance (divide by n); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const;

  /// Sample variance (divide by n-1); 0 when fewer than 2 samples.
  [[nodiscard]] double sample_variance() const;

  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes the summary of `xs` (all-zero summary for empty input).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Population variance of `xs`.
[[nodiscard]] double variance(std::span<const double> xs);

/// Mean of `xs`; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Linear-interpolated quantile (q in [0,1]) of a sample; the input need not
/// be sorted. Throws std::invalid_argument for empty input or q outside
/// [0,1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Pearson correlation of two equally sized samples; 0 when either side is
/// constant. Throws std::invalid_argument on size mismatch or empty input.
[[nodiscard]] double correlation(std::span<const double> xs,
                                 std::span<const double> ys);

/// Root-mean-square of successive differences: a simple fluctuation
/// (roughness) measure used to compare raw vs smoothed supply.
[[nodiscard]] double rms_successive_diff(std::span<const double> xs);

/// Population variance of the residuals around the sample's least-squares
/// line over the index axis: "noise" variance with any linear trend (e.g.
/// a sunrise ramp) removed. 0 for fewer than 3 samples.
[[nodiscard]] double detrended_variance(std::span<const double> xs);

}  // namespace smoother::stats
