// Rolling (windowed) statistics over a series.
//
// The region classifier computes the capacity-factor variance over each
// fixed-length interval (one hour of 5-minute points); RollingVariance and
// `windowed_variances` provide that in O(n).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace smoother::stats {

/// Fixed-capacity sliding-window mean/variance.
///
/// add() pushes a sample and evicts the oldest once the window is full.
/// The window itself is the single source of truth: mean and variance are
/// computed exactly from the samples currently held (windows here are tiny,
/// 12-60 points). There are deliberately no running accumulators — a
/// sum/sum-of-squares pair drifts from the window under cancellation and is
/// poisoned forever by one non-finite sample (NaN - NaN stays NaN after the
/// sample is evicted), while the exact pass recovers as soon as the bad
/// sample leaves the window.
class RollingVariance {
 public:
  /// Window of `capacity` samples; capacity must be >= 1.
  explicit RollingVariance(std::size_t capacity);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return window_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return window_.size() == capacity_; }
  [[nodiscard]] double mean() const;

  /// Population variance of the current window; 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const;

 private:
  std::size_t capacity_;
  std::deque<double> window_;
};

/// Variance of each *disjoint* window of `window` consecutive samples.
/// A final partial window (if any) is dropped, matching the paper's
/// per-interval (hourly) variance computation.
[[nodiscard]] std::vector<double> windowed_variances(
    std::span<const double> xs, std::size_t window);

/// Mean of each disjoint window of `window` consecutive samples.
[[nodiscard]] std::vector<double> windowed_means(std::span<const double> xs,
                                                 std::size_t window);

/// Centered moving average with the given odd window; endpoints use the
/// available shorter windows. Used for trend extraction in trace synthesis.
[[nodiscard]] std::vector<double> moving_average(std::span<const double> xs,
                                                 std::size_t window);

}  // namespace smoother::stats
