// Fixed-bin histogram, used by the bench harness to summarize trace shapes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace smoother::stats {

/// Equal-width histogram over [lo, hi] with saturating edge bins: samples
/// below lo land in the first bin, above hi in the last.
class Histogram {
 public:
  /// Throws std::invalid_argument when bins == 0 or lo >= hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const;

  /// Fraction of samples in `bin` (0 when the histogram is empty).
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Center value of `bin`.
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Index of the bin that would receive x.
  [[nodiscard]] std::size_t bin_of(double x) const;

  /// Multi-line ASCII rendering (one row per bin) for bench output.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace smoother::stats
