#include "smoother/stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smoother::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty())
    throw std::invalid_argument("EmpiricalCdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::probability_at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::value_at(double p) const {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("EmpiricalCdf::value_at: p not in [0,1]");
  if (p == 0.0) return sorted_.front();
  const double rank = p * static_cast<double>(sorted_.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;  // 1-based rank -> 0-based
  index = std::min(index, sorted_.size() - 1);
  return sorted_[index];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  if (points < 2) throw std::invalid_argument("EmpiricalCdf::curve: points < 2");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, probability_at(x));
  }
  return out;
}

}  // namespace smoother::stats
