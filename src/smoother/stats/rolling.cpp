#include "smoother/stats/rolling.hpp"

#include <algorithm>
#include <stdexcept>

#include "smoother/stats/descriptive.hpp"

namespace smoother::stats {

RollingVariance::RollingVariance(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("RollingVariance: capacity must be >= 1");
}

void RollingVariance::add(double x) {
  window_.push_back(x);
  if (window_.size() > capacity_) window_.pop_front();
}

double RollingVariance::mean() const {
  if (window_.empty()) return 0.0;
  double acc = 0.0;
  for (double v : window_) acc += v;
  return acc / static_cast<double>(window_.size());
}

double RollingVariance::variance() const {
  const std::size_t n = window_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  // Exact two-pass over the window — see the class comment for why there is
  // no running-accumulator shortcut.
  double acc = 0.0;
  for (double v : window_) acc += (v - m) * (v - m);
  return std::max(acc / static_cast<double>(n), 0.0);
}

std::vector<double> windowed_variances(std::span<const double> xs,
                                       std::size_t window) {
  if (window == 0)
    throw std::invalid_argument("windowed_variances: window must be >= 1");
  std::vector<double> out;
  out.reserve(xs.size() / window);
  for (std::size_t start = 0; start + window <= xs.size(); start += window)
    out.push_back(variance(xs.subspan(start, window)));
  return out;
}

std::vector<double> windowed_means(std::span<const double> xs,
                                   std::size_t window) {
  if (window == 0)
    throw std::invalid_argument("windowed_means: window must be >= 1");
  std::vector<double> out;
  out.reserve(xs.size() / window);
  for (std::size_t start = 0; start + window <= xs.size(); start += window)
    out.push_back(mean(xs.subspan(start, window)));
  return out;
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
  if (window == 0 || window % 2 == 0)
    throw std::invalid_argument("moving_average: window must be odd and >= 1");
  std::vector<double> out(xs.size());
  const std::size_t half = window / 2;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half, xs.size() - 1);
    double acc = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) acc += xs[j];
    out[i] = acc / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace smoother::stats
