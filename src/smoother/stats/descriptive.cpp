#include "smoother/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smoother::stats {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Accumulator::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  if (count_ == 0) throw std::logic_error("Accumulator::min: no samples");
  return min_;
}

double Accumulator::max() const {
  if (count_ == 0) throw std::logic_error("Accumulator::max: no samples");
  return max_;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  Accumulator acc;
  for (double x : xs) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance = acc.variance();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

double variance(std::span<const double> xs) { return summarize(xs).variance; }

double mean(std::span<const double> xs) { return summarize(xs).mean; }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("correlation: size mismatch");
  if (xs.empty()) throw std::invalid_argument("correlation: empty sample");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double detrended_variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 3) return 0.0;
  // Least-squares line y = a + b*i over i = 0..n-1.
  const double nn = static_cast<double>(n);
  const double mean_i = (nn - 1.0) / 2.0;
  const double mean_y = mean(xs);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double di = static_cast<double>(i) - mean_i;
    sxy += di * (xs[i] - mean_y);
    sxx += di * di;
  }
  const double slope = sxx > 0.0 ? sxy / sxx : 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double fitted =
        mean_y + slope * (static_cast<double>(i) - mean_i);
    acc += (xs[i] - fitted) * (xs[i] - fitted);
  }
  return acc / nn;
}

double rms_successive_diff(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double d = xs[i] - xs[i - 1];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

}  // namespace smoother::stats
