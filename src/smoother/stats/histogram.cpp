#include "smoother/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/util/format.hpp"

namespace smoother::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
  ++counts_[bin_of(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(bin) + 0.5);
}

std::size_t Histogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const auto bin = static_cast<std::size_t>((x - lo_) / width);
  return std::min(bin, counts_.size() - 1);
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar_len =
        peak == 0 ? 0
                  : (counts_[b] * width + peak / 2) / peak;
    out += util::strfmt("%12.4g | %s (%zu)\n", bin_center(b),
                        std::string(bar_len, '#').c_str(), counts_[b]);
  }
  return out;
}

}  // namespace smoother::stats
