// Empirical cumulative distribution function.
//
// The paper classifies wind-power intervals into fluctuation regions by
// thresholding the CDF of the per-interval capacity-factor variance
// (Fig. 3 / Fig. 6): "CDF value 0.95" means the variance below which 95 % of
// intervals fall. EmpiricalCdf provides exactly that quantile lookup.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace smoother::stats {

/// Empirical CDF of a scalar sample.
class EmpiricalCdf {
 public:
  /// Builds from a (not necessarily sorted) sample; throws
  /// std::invalid_argument when the sample is empty.
  explicit EmpiricalCdf(std::span<const double> sample);

  /// F(x): fraction of samples <= x.
  [[nodiscard]] double probability_at(double x) const;

  /// Smallest sample value v with F(v) >= p (the p-quantile, p in [0,1]).
  [[nodiscard]] double value_at(double p) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }

  /// The sorted sample (support of the CDF).
  [[nodiscard]] std::span<const double> sorted_sample() const {
    return sorted_;
  }

  /// Evenly spaced (x, F(x)) points for plotting; `points` >= 2.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace smoother::stats
