// Compact binary wire format for fleet requests and events.
//
// A fleet front-end batches tenant telemetry into request streams and
// reads interval-plan events back; both directions use one little-endian
// framing built on the persist codec so the byte layout has a single
// definition and the same CRC32C implementation guards disk and wire:
//
//   stream  := header frame*
//   header  := magic "SMFW" | u32 version        (8 bytes)
//   frame   := u32 payload_len                   (type byte + body)
//            | u32 crc32c(type || body)
//            | u8  type                          (MessageType)
//            | body
//
// The CRC covers the type byte and the body, so a frame whose length field
// was torn into pointing at another frame's bytes still fails verification
// — the same trick the WAL records use. Decoding distinguishes the two
// failure shapes a reader cares about:
//
//   * a *torn tail* (stream ends mid-frame): FrameCursor::next() returns
//     nullopt with torn() == true — the producer died mid-write; everything
//     decoded so far is intact;
//   * *corruption* (CRC mismatch, unknown type, body that does not decode):
//     throws persist::PersistError — the stream cannot be trusted past the
//     previous frame.
//
// Bodies are fixed-layout (no containers), so every encode is
// allocation-free after the buffer warms up and every decode is a handful
// of bounded reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "smoother/persist/codec.hpp"

namespace smoother::fleet {

/// Wire format version, independent of the persist file format (the two
/// evolve separately; both start at 1).
inline constexpr std::uint32_t kWireVersion = 1;

enum class MessageType : std::uint8_t {
  kAddTenant = 1,      ///< request: admit a tenant (idempotent identity)
  kSample = 2,         ///< request: one telemetry sample for a tenant
  kMissingSample = 3,  ///< request: telemetry gap for a tenant
  kIntervalEvent = 4,  ///< event: one completed interval plan
};

/// Admit a tenant. The engine derives everything else (battery sizing,
/// RNG stream, shard) from its config and the tenant id.
struct AddTenantRequest {
  std::uint64_t tenant_id = 0;
};

/// One telemetry sample (or gap, via kMissingSample) for a tenant.
struct SampleRequest {
  std::uint64_t tenant_id = 0;
  double generation_kw = 0.0;  ///< ignored for kMissingSample
  bool missing = false;        ///< encoded via the frame type, not a field
};

/// One completed interval plan, the event a request batch produces.
/// Mirrors core::OnlineIntervalRecord plus the tenant identity.
struct IntervalEvent {
  std::uint64_t tenant_id = 0;
  std::uint64_t interval_index = 0;
  std::uint8_t region = 0;       ///< core::Region
  std::uint8_t fallback = 0;     ///< resilience::FallbackReason
  bool smoothed = false;
  bool warmup = false;
  bool degraded = false;
  double variance_before = 0.0;
  double variance_after = 0.0;
  std::uint64_t solver_iterations = 0;

  friend bool operator==(const IntervalEvent&, const IntervalEvent&) =
      default;
};

/// Appends the stream header / frames to a caller-owned byte buffer. The
/// buffer is plain std::string so it can go straight to a socket, a file,
/// or FrameCursor in a test; reusing one FrameWriter across batches reuses
/// its scratch capacity.
class FrameWriter {
 public:
  /// Starts a stream: clears `out` and writes the header.
  void begin_stream(std::string& out) const;

  /// Appends one frame. `body` is the encoded message body (no type byte).
  void append_frame(std::string& out, MessageType type,
                    std::string_view body);

  void append(std::string& out, const AddTenantRequest& request);
  void append(std::string& out, const SampleRequest& request);
  void append(std::string& out, const IntervalEvent& event);

 private:
  persist::Writer scratch_;
};

/// One decoded frame; `body` points into the cursor's underlying bytes.
struct Frame {
  MessageType type = MessageType::kAddTenant;
  std::string_view body;
};

/// Forward scanner over a wire stream. Construction validates the header
/// (throws PersistError on bad magic / future version / header cut short).
class FrameCursor {
 public:
  explicit FrameCursor(std::string_view bytes);

  /// The next frame, or nullopt at end of stream. A cleanly terminated
  /// stream ends with torn() == false; a stream that stops mid-frame ends
  /// with torn() == true. Throws PersistError{kChecksum} on a CRC
  /// mismatch and {kCorrupt} on an unknown message type.
  std::optional<Frame> next();

  /// True once next() hit an incomplete trailing frame.
  [[nodiscard]] bool torn() const { return torn_; }

  /// Byte offset just past the last fully decoded frame (the resume point
  /// after a torn tail).
  [[nodiscard]] std::size_t valid_end() const { return offset_; }

 private:
  std::string_view bytes_;
  std::size_t offset_ = 0;
  bool torn_ = false;
};

/// Body decoders for the typed messages. Throw PersistError{kCorrupt or
/// kTruncated} on malformed bodies (including trailing bytes).
[[nodiscard]] AddTenantRequest decode_add_tenant(std::string_view body);
[[nodiscard]] SampleRequest decode_sample(std::string_view body,
                                          bool missing);
[[nodiscard]] IntervalEvent decode_interval_event(std::string_view body);

}  // namespace smoother::fleet
