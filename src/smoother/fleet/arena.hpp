// Bump-pointer slab arena for per-tenant fleet state.
//
// A shard hosting thousands of tenants allocates each tenant's control
// block once, at admission, and never frees it individually — tenants
// live until the shard does. That lifetime pattern is exactly what a bump
// arena serves best: allocation is a pointer increment into a large slab,
// tenants admitted together sit adjacent in memory (the shard's steady-
// state sweep walks them in admission order), and there is no per-object
// heap metadata to thrash the allocator with at 100k tenants.
//
// Deliberately NOT a general allocator:
//   * no deallocate — memory is reclaimed all at once when the arena is
//     destroyed (or reset); the owner of a non-trivially-destructible
//     object placed here must run its destructor itself before that;
//   * not thread-safe — one arena per shard, touched only by whichever
//     worker is processing that shard (the same single-threaded-domain
//     discipline as solver::SolverPool);
//   * allocations that do not fit the slab size get a dedicated slab, so
//     an oversized request degrades to malloc, never fails artificially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace smoother::fleet {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes == 0 ? kDefaultSlabBytes : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage aligned to `alignment` (any power of two), valid until
  /// the arena is destroyed or reset(). Alignment is done by over-
  /// allocating and rounding the pointer up, so plain new[]/delete[] pair
  /// correctly regardless of how strict the request is.
  void* allocate(std::size_t size, std::size_t alignment) {
    if (size == 0) size = 1;
    if (alignment == 0) alignment = 1;
    bytes_used_ += size;
    // Worst case the bump cursor needs alignment-1 padding; a request that
    // might not fit an empty slab gets its own dedicated slab instead.
    if (size + alignment - 1 > slab_bytes_) {
      Slab slab;
      slab.size = size + alignment - 1;
      slab.bytes = std::make_unique<std::byte[]>(slab.size);
      bytes_reserved_ += slab.size;
      void* aligned = align_pointer(slab.bytes.get(), alignment);
      // Keep the current small slab (and its cursor) live at the back. If
      // there is none, the dedicated slab lands at the back fully consumed
      // (cursor at the small-slab bound) so no later bump reuses its bytes.
      if (slabs_.empty()) {
        slabs_.push_back(std::move(slab));
        offset_ = slab_bytes_;
      } else {
        slabs_.insert(slabs_.end() - 1, std::move(slab));
      }
      return aligned;
    }
    if (!slabs_.empty()) {
      std::byte* base = slabs_.back().bytes.get();
      std::byte* cursor =
          static_cast<std::byte*>(align_pointer(base + offset_, alignment));
      if (static_cast<std::size_t>(cursor - base) + size <= slab_bytes_) {
        offset_ = static_cast<std::size_t>(cursor - base) + size;
        return cursor;
      }
    }
    Slab slab;
    slab.size = slab_bytes_;
    slab.bytes = std::make_unique<std::byte[]>(slab_bytes_);
    bytes_reserved_ += slab_bytes_;
    slabs_.push_back(std::move(slab));
    std::byte* cursor = static_cast<std::byte*>(
        align_pointer(slabs_.back().bytes.get(), alignment));
    offset_ = static_cast<std::size_t>(cursor - slabs_.back().bytes.get()) +
              size;
    return cursor;
  }

  /// Placement-constructs a T in arena storage. The arena never runs
  /// destructors: the caller owns the object's end of life (call destroy()
  /// or the destructor explicitly before the arena goes away if T is not
  /// trivially destructible).
  template <class T, class... Args>
  T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Runs the destructor of an object created with create(). The storage
  /// is not reclaimed (bump arenas do not free individually).
  template <class T>
  static void destroy(T* object) {
    if (object != nullptr) object->~T();
  }

  /// Drops every slab. Only callable when every object placed in the arena
  /// has already been destroyed (or is trivially destructible).
  void reset() {
    slabs_.clear();
    offset_ = 0;
    bytes_used_ = 0;
    bytes_reserved_ = 0;
  }

  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  /// Sum of requested allocation sizes (excludes alignment padding).
  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static void* align_pointer(void* p, std::size_t alignment) {
    const auto value = reinterpret_cast<std::uintptr_t>(p);
    const auto aligned = (value + alignment - 1) & ~(alignment - 1);
    return reinterpret_cast<void*>(aligned);
  }

  struct Slab {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t size = 0;
  };

  std::vector<Slab> slabs_;
  std::size_t offset_ = 0;  ///< bump cursor within slabs_.back()
  std::size_t slab_bytes_;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace smoother::fleet
