#include "smoother/fleet/fleet.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "smoother/battery/battery.hpp"
#include "smoother/obs/metrics.hpp"
#include "smoother/persist/state.hpp"

namespace smoother::fleet {

namespace {

/// Checkpoint payload version (inside whatever framing the caller's
/// PersistEngine adds).
constexpr std::uint32_t kCheckpointVersion = 1;

}  // namespace

std::size_t shard_of(std::uint64_t tenant_id, std::size_t shard_count) {
  // splitmix64 scrambles dense id ranges (0..n, site codes) into a uniform
  // 64-bit space before the mod, so real-world id schemes spread evenly.
  util::SplitMix64 mix(tenant_id);
  return static_cast<std::size_t>(mix.next() %
                                  static_cast<std::uint64_t>(shard_count));
}

void FleetConfig::validate() const {
  smoother.validate();
  if (shards == 0)
    throw std::invalid_argument("FleetConfig: shards must be >= 1");
  if (smoother.flexible_smoothing.warm_start)
    throw std::invalid_argument(
        "FleetConfig: warm starts are incompatible with the shared solver "
        "pool (ADMM iterates are per-stream state; see SolverPool)");
  if (battery_rate_fraction <= 0.0)
    throw std::invalid_argument(
        "FleetConfig: battery_rate_fraction must be positive");
  if (battery_headroom < 1.0)
    throw std::invalid_argument("FleetConfig: battery_headroom must be >= 1");
  if (keep_records == 0)
    throw std::invalid_argument("FleetConfig: keep_records must be >= 1");
}

/// One tenant's control block, placement-constructed in the shard arena.
struct FleetEngine::Tenant {
  Tenant(std::uint64_t id_, core::OnlineSmootherConfig config,
         battery::Battery battery, core::OnlineSmoother::Hooks hooks)
      : id(id_),
        smoother(std::move(config), std::move(battery), std::move(hooks)) {}

  std::uint64_t id;
  /// Running CRC32C over every interval this tenant has completed (record
  /// fields + the interval's output sample bit patterns). Survives
  /// checkpoints, so it witnesses the tenant's *entire* output history.
  std::uint32_t digest = 0;
  /// An interval parked at the QP-solve boundary (push_prepare ran, the
  /// commit is pending in the shard's flush). At most one per tenant; any
  /// further request for this tenant flushes the shard first.
  bool in_flight = false;
  core::OnlineSmoother::PendingInterval pending;
  core::OnlineSmoother smoother;
};

/// One shard: a single-threaded domain. Everything here is touched only by
/// whichever thread is processing this shard — tenants, the shared solver
/// pool, the arena, and the per-batch scratch all stay unsynchronized.
/// `arena` is declared first so it outlives the tenant map during
/// destruction (~Shard runs the tenant destructors explicitly; the arena
/// frees the storage afterwards).
struct FleetEngine::Shard {
  Arena arena;
  solver::SolverPool pool;
  /// Ordered by id: the deterministic iteration order for checkpoints and
  /// digests.
  std::map<std::uint64_t, Tenant*> tenants;
  /// The requests routed here this batch, in submission order, with the
  /// tenant resolved up front (routing is serial; processing must not
  /// touch the map).
  std::vector<std::pair<Tenant*, const SampleRequest*>> batch;
  std::vector<IntervalEvent> events;
  /// Tenants with a parked interval this batch, in completion (submission)
  /// order — the commit and event-emission order flush_pending preserves.
  std::vector<Tenant*> pending_slots;
  persist::Writer digest_scratch;
  core::OnlineSmoother::StreamState state_scratch;

  ~Shard() {
    for (auto& [id, tenant] : tenants) Arena::destroy(tenant);
  }
};

FleetEngine::FleetEngine(FleetConfig config, runtime::ThreadPool* pool)
    : config_(std::move(config)), pool_(pool) {
  config_.validate();
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

FleetEngine::~FleetEngine() = default;

void FleetEngine::add_tenant(std::uint64_t tenant_id) {
  add_tenant(tenant_id, core::OnlineSmoother::Hooks{});
}

void FleetEngine::add_tenant(std::uint64_t tenant_id,
                             core::OnlineSmoother::Hooks hooks) {
  Shard& shard = *shards_[shard_of(tenant_id, shards_.size())];
  if (shard.tenants.contains(tenant_id))
    throw std::invalid_argument("FleetEngine: tenant " +
                                std::to_string(tenant_id) +
                                " is already admitted");
  const battery::BatterySpec spec = battery::spec_for_max_rate(
      config_.smoother.rated_power * config_.battery_rate_fraction,
      config_.smoother.sample_step, config_.battery_headroom);
  Tenant* tenant = shard.arena.create<Tenant>(
      tenant_id, config_.smoother, battery::Battery(spec), std::move(hooks));
  tenant->smoother.set_shared_solver_pool(&shard.pool);
  shard.tenants.emplace(tenant_id, tenant);
  ++tenant_count_;
}

const core::OnlineSmoother* FleetEngine::find_tenant(
    std::uint64_t tenant_id) const {
  const Shard& shard = *shards_[shard_of(tenant_id, shards_.size())];
  const auto it = shard.tenants.find(tenant_id);
  return it == shard.tenants.end() ? nullptr : &it->second->smoother;
}

std::vector<IntervalEvent> FleetEngine::submit(
    std::span<const SampleRequest> requests) {
  // Route serially (cheap map lookups, fail-fast on unknown tenants), then
  // process shards as units — under the pool when one is attached.
  for (const SampleRequest& request : requests) {
    Shard& shard = *shards_[shard_of(request.tenant_id, shards_.size())];
    const auto it = shard.tenants.find(request.tenant_id);
    if (it == shard.tenants.end())
      throw std::invalid_argument("FleetEngine: unknown tenant " +
                                  std::to_string(request.tenant_id));
    shard.batch.emplace_back(it->second, &request);
  }
  return run_batch();
}

std::vector<IntervalEvent> FleetEngine::run_batch() {
  if (pool_ != nullptr) {
    pool_->parallel_for(shards_.size(), [this](std::size_t i) {
      process_shard(*shards_[i]);
    });
  } else {
    for (auto& shard : shards_) process_shard(*shard);
  }
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->events.size();
  std::vector<IntervalEvent> events;
  events.reserve(total);
  // Shard-major concatenation: the deterministic order the documentation
  // (and the serial-vs-parallel tests) promise.
  for (auto& shard : shards_) {
    events.insert(events.end(), shard->events.begin(), shard->events.end());
    shard->events.clear();
  }
  plans_total_ += events.size();
  publish_metrics();
  return events;
}

void FleetEngine::process_shard(Shard& shard) {
  const std::size_t points =
      config_.smoother.flexible_smoothing.points_per_interval;
  const std::size_t keep_output = config_.keep_output_samples > 0
                                      ? config_.keep_output_samples
                                      : 2 * points;
  // Two-pass drain: feed requests in submission order, parking every
  // completed interval at the QP-solve boundary; flush (batch-solve +
  // commit in completion order) when the scan ends or a parked tenant
  // receives its next request — the open-interval state a further push
  // would touch belongs to the uncommitted interval.
  for (auto& [tenant, request] : shard.batch) {
    if (tenant->in_flight) flush_pending(shard, points, keep_output);
    const bool completed =
        request->missing
            ? tenant->smoother.push_missing_prepare(tenant->pending)
            : tenant->smoother.push_prepare(request->generation_kw,
                                            tenant->pending);
    if (!completed) continue;
    tenant->in_flight = true;
    shard.pending_slots.push_back(tenant);
  }
  flush_pending(shard, points, keep_output);
  shard.batch.clear();
}

void FleetEngine::flush_pending(Shard& shard, std::size_t points,
                                std::size_t keep_output) {
  if (shard.pending_slots.empty()) return;

  if (config_.batched_solves) {
    // Group the batchable parked intervals by everything that must match
    // for lanes to share one BatchSolver pass: the horizon and every QP
    // settings field, bitwise (the solve runs all lanes under one
    // QpSettings). std::map keys keep the grouping deterministic; lanes
    // within a group stay in completion order.
    struct BatchKey {
      std::size_t m;
      std::uint64_t rho, sigma, alpha, eps_abs, eps_rel;
      std::uint64_t max_iterations, check_interval;
      bool polish;
      auto operator<=>(const BatchKey&) const = default;
    };
    std::map<BatchKey, std::vector<Tenant*>> groups;
    for (Tenant* tenant : shard.pending_slots) {
      const core::OnlineSmoother::PendingInterval& pending = tenant->pending;
      if (!pending.batchable()) continue;
      const solver::QpSettings& qp = pending.qp_settings();
      groups[BatchKey{pending.horizon(),
                      std::bit_cast<std::uint64_t>(qp.rho),
                      std::bit_cast<std::uint64_t>(qp.sigma),
                      std::bit_cast<std::uint64_t>(qp.alpha),
                      std::bit_cast<std::uint64_t>(qp.eps_abs),
                      std::bit_cast<std::uint64_t>(qp.eps_rel),
                      static_cast<std::uint64_t>(qp.max_iterations),
                      static_cast<std::uint64_t>(qp.check_interval),
                      qp.polish}]
          .push_back(tenant);
    }
    std::vector<solver::BatchSolver::Lane> lanes;
    std::vector<solver::QpResult> results;
    for (auto& [key, members] : groups) {
      solver::BatchSolver& batch = shard.pool.batch_solver_for(
          key.m, members.front()->pending.qp_settings());
      // Factorization failure: leave the lanes unsolved — each commit then
      // runs the scalar route and reports the error per tenant.
      if (!batch.is_setup()) continue;
      lanes.clear();
      lanes.reserve(members.size());
      for (Tenant* tenant : members) {
        const solver::QpProblem& problem = tenant->pending.problem();
        lanes.push_back({problem.q, problem.lower, problem.upper});
      }
      results.assign(members.size(), solver::QpResult{});
      try {
        batch.solve(lanes, results);
      } catch (...) {
        continue;  // scalar fallback per lane, as above
      }
      for (std::size_t i = 0; i < members.size(); ++i)
        members[i]->pending.provide_solution(std::move(results[i]));
    }
  }

  for (Tenant* tenant : shard.pending_slots) {
    const core::OnlineIntervalRecord record =
        tenant->smoother.push_commit(tenant->pending);
    tenant->in_flight = false;
    emit_event(shard, *tenant, record, points, keep_output);
  }
  shard.pending_slots.clear();
}

void FleetEngine::emit_event(Shard& shard, Tenant& tenant,
                             const core::OnlineIntervalRecord& record,
                             std::size_t points, std::size_t keep_output) {
  IntervalEvent event;
  event.tenant_id = tenant.id;
  event.interval_index = record.index;
  event.region = static_cast<std::uint8_t>(record.region);
  event.fallback = static_cast<std::uint8_t>(record.fallback);
  event.smoothed = record.smoothed;
  event.warmup = record.warmup;
  event.degraded = record.degraded;
  event.variance_before = record.variance_before;
  event.variance_after = record.variance_after;
  event.solver_iterations = record.solver_iterations;

  // Fold the interval into the tenant digest before compaction trims the
  // tail: record fields plus the interval's output bit patterns.
  persist::Writer& scratch = shard.digest_scratch;
  scratch.clear();
  scratch.u64(event.interval_index);
  scratch.u8(event.region);
  scratch.u8(event.fallback);
  scratch.boolean(event.smoothed);
  scratch.boolean(event.warmup);
  scratch.boolean(event.degraded);
  scratch.f64(event.variance_before);
  scratch.f64(event.variance_after);
  scratch.u64(event.solver_iterations);
  const util::TimeSeries& output = tenant.smoother.output();
  const std::size_t tail = std::min(points, output.size());
  for (std::size_t i = output.size() - tail; i < output.size(); ++i)
    scratch.f64(output[i]);
  tenant.digest = persist::crc32c_extend(tenant.digest, scratch.bytes());

  tenant.smoother.compact(keep_output, config_.keep_records);
  shard.events.push_back(event);
}

WireApplyResult FleetEngine::apply_wire(std::string_view requests,
                                        std::string& events_out) {
  FrameCursor cursor(requests);
  std::vector<SampleRequest> samples;
  WireApplyResult result;
  while (const std::optional<Frame> frame = cursor.next()) {
    ++result.frames_applied;
    switch (frame->type) {
      case MessageType::kAddTenant: {
        const AddTenantRequest request = decode_add_tenant(frame->body);
        // Idempotent on the wire: re-admitting an existing tenant is a
        // no-op, so a replayed request stream converges instead of dying.
        if (find_tenant(request.tenant_id) == nullptr)
          add_tenant(request.tenant_id);
        break;
      }
      case MessageType::kSample:
        samples.push_back(decode_sample(frame->body, false));
        break;
      case MessageType::kMissingSample:
        samples.push_back(decode_sample(frame->body, true));
        break;
      case MessageType::kIntervalEvent:
        throw persist::PersistError(
            persist::ErrorKind::kCorrupt,
            "wire stream: event frame in a request stream");
    }
  }
  result.torn = cursor.torn();
  const std::vector<IntervalEvent> events = submit(samples);
  result.events = events.size();
  FrameWriter writer;
  writer.begin_stream(events_out);
  for (const IntervalEvent& event : events) writer.append(events_out, event);
  return result;
}

std::uint64_t FleetEngine::output_digest() const {
  std::uint32_t crc = 0;
  persist::Writer scratch;
  for (const auto& shard : shards_) {
    for (const auto& [id, tenant] : shard->tenants) {
      scratch.clear();
      scratch.u64(id);
      scratch.u32(tenant->digest);
      crc = persist::crc32c_extend(crc, scratch.bytes());
    }
  }
  return (static_cast<std::uint64_t>(tenant_count_) << 32) |
         static_cast<std::uint64_t>(crc);
}

std::string FleetEngine::encode_checkpoint() const {
  persist::Writer writer;
  writer.u32(kCheckpointVersion);
  writer.u64(tenant_count_);
  for (const auto& shard : shards_) {
    for (const auto& [id, tenant] : shard->tenants) {
      writer.u64(id);
      writer.u32(tenant->digest);
      tenant->smoother.export_state_into(shard->state_scratch);
      persist::save_state(writer, shard->state_scratch);
    }
  }
  return writer.take();
}

void FleetEngine::restore_checkpoint(std::string_view bytes) {
  persist::Reader reader(bytes);
  const std::uint32_t version = reader.u32();
  if (version > kCheckpointVersion)
    throw persist::PersistError(
        persist::ErrorKind::kFutureVersion,
        "fleet checkpoint: version " + std::to_string(version) +
            " is newer than this build's " +
            std::to_string(kCheckpointVersion));
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = reader.u64();
    const std::uint32_t digest = reader.u32();
    Shard& shard = *shards_[shard_of(id, shards_.size())];
    auto it = shard.tenants.find(id);
    if (it == shard.tenants.end()) {
      add_tenant(id);
      it = shard.tenants.find(id);
    }
    persist::restore_state(reader, it->second->smoother);
    it->second->digest = digest;
  }
  reader.expect_done();
}

FleetStats FleetEngine::stats() const {
  FleetStats stats;
  stats.tenants = tenant_count_;
  stats.shards = shards_.size();
  stats.plans = plans_total_;
  stats.min_shard_tenants = tenant_count_;  // min over shards, seeded high
  for (const auto& shard : shards_) {
    const solver::SolverPoolStats pool = shard->pool.stats();
    stats.batched_factorizations += pool.setups;
    stats.shared_solvers += pool.solvers + pool.batch_solvers;
    stats.batched_solves += pool.batched_solves;
    stats.batched_lanes += pool.batched_lanes;
    stats.max_shard_tenants =
        std::max(stats.max_shard_tenants, shard->tenants.size());
    stats.min_shard_tenants =
        std::min(stats.min_shard_tenants, shard->tenants.size());
    stats.arena_bytes += shard->arena.bytes_reserved();
  }
  return stats;
}

void FleetEngine::publish_metrics() {
  obs::MetricsRegistry* metrics = obs::global_metrics();
  if (metrics == nullptr) return;
  const FleetStats current = stats();
  metrics->counter("fleet.plans").add(current.plans - published_plans_);
  published_plans_ = current.plans;
  metrics->counter("fleet.batched_factorizations")
      .add(current.batched_factorizations - published_factorizations_);
  published_factorizations_ = current.batched_factorizations;
  if (current.batched_solves > published_batched_solves_) {
    metrics->counter("fleet.batched_solves")
        .add(current.batched_solves - published_batched_solves_);
    published_batched_solves_ = current.batched_solves;
  }
  metrics->gauge("fleet.shard_imbalance")
      .set(static_cast<double>(current.max_shard_tenants) -
           static_cast<double>(current.min_shard_tenants));
  // Mean lanes per SoA solve over the fleet's lifetime: how full the
  // batches actually run. 0 until a batched solve happened.
  metrics->gauge("fleet.batch_occupancy")
      .set(current.batched_solves == 0
               ? 0.0
               : static_cast<double>(current.batched_lanes) /
                     static_cast<double>(current.batched_solves));
}

}  // namespace smoother::fleet
