// FleetEngine: many independent OnlineSmoothers behind one sharded,
// deterministic service layer.
//
// A renewable-smoothing middleware deployed as a service does not run one
// stream — it runs one per site, per turbine cluster, per tenant: 1k-100k
// independent OnlineSmoother instances fed by batched telemetry. The
// FleetEngine is that multi-tenant layer:
//
//   * Sharding is a pure function of the tenant id (splitmix64 hash mod a
//     *fixed* shard count), never of the thread count. A batch is routed
//     shard by shard, each shard is processed as one sequential unit
//     (possibly on a ThreadPool worker), and events concatenate in shard-
//     major order — so serial and parallel runs of the same batch produce
//     byte-identical outputs, the same discipline as runtime's sweeps.
//
//   * Batched planning shares factorizations. Tenants with the same
//     horizon length and QP settings hit one cached structured-KKT setup
//     per (m, rho, sigma) key in the shard's solver::SolverPool instead of
//     one solver per tenant; the pool contract forces warm starts off
//     (ADMM iterates are per-stream state), so sharing never couples
//     tenants. fleet.batched_factorizations counts pool setups — at 10k
//     same-shaped tenants it stays at shard-count, not tenant-count.
//
//   * Batched planning shares the iteration work too. Within a shard,
//     requests that complete an interval park at the QP-solve boundary
//     (OnlineSmoother::push_prepare); once the shard's batch is scanned —
//     or a parked tenant receives another request — every group of parked
//     intervals with the same (horizon, QP settings) solves as one
//     solver::BatchSolver SoA batch and the intervals commit in submission
//     order. Lanes are bit-identical to the scalar solves they replace on
//     non-reassociating SIMD tiers (the default build), so the events and
//     digests are unchanged; see FleetConfig::batched_solves.
//
//   * Per-tenant state is slab-allocated. Each shard owns an Arena;
//     tenant control blocks are placement-constructed into it in admission
//     order, and after every completed interval the smoother is
//     compact()ed back to a bounded tail — steady state allocates nothing
//     and the per-tenant footprint is fixed, which is what makes 100k
//     tenants a memory-plausible deployment.
//
//   * The wire boundary is binary. Request streams (admissions, samples,
//     gaps) and event streams (interval plans) use the length-prefixed,
//     CRC32C-framed format in wire.hpp; checkpoints serialize every
//     tenant's StreamState through the persist codec, so a fleet restores
//     through the same PersistEngine WAL/snapshot machinery as a single
//     stream — and a tenant whose checkpoint disagrees with the engine's
//     config fails loudly (core::StateMismatchError), never silently.
//
// Determinism contract: submit() output (events, per-tenant digests,
// checkpoint bytes) is a pure function of (config, admission sequence,
// request sequence) — independent of the thread pool, its size, or
// scheduling. Per-tenant randomness, where a caller wants it (synthetic
// traces, fault streams), derives from Rng::split(tenant_id) off the
// fleet seed, so it is reproducible per tenant no matter the batch order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "smoother/core/online.hpp"
#include "smoother/fleet/arena.hpp"
#include "smoother/fleet/wire.hpp"
#include "smoother/persist/codec.hpp"
#include "smoother/runtime/thread_pool.hpp"
#include "smoother/solver/solver_pool.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::fleet {

/// Deterministic tenant-to-shard assignment: splitmix64 of the tenant id
/// mod the shard count. Pure in (tenant_id, shard_count); independent of
/// admission order, thread count, and everything else.
[[nodiscard]] std::size_t shard_of(std::uint64_t tenant_id,
                                   std::size_t shard_count);

struct FleetConfig {
  /// Per-tenant streaming config. Warm starts default OFF here (unlike the
  /// single-stream default): every tenant's solves route through the
  /// shard's shared SolverPool, whose sharing contract requires cold
  /// starts. validate() rejects a config that re-enables them.
  core::OnlineSmootherConfig smoother = [] {
    core::OnlineSmootherConfig config;
    config.flexible_smoothing.warm_start = false;
    return config;
  }();

  /// Fixed shard count — the unit of parallelism AND the unit of
  /// determinism. Independent of how many threads process a batch.
  std::size_t shards = 16;

  /// Base seed for per-tenant derived streams (tenant_rng()).
  std::uint64_t seed = 20190701;

  /// Battery sizing per tenant, as in the dsim pipeline: max rate as a
  /// fraction of rated power, capacity headroom over the one-step sizing.
  double battery_rate_fraction = 0.5;
  double battery_headroom = 2.0;

  /// Post-interval compaction bounds (see OnlineSmoother::compact).
  /// keep_output_samples == 0 means two full intervals.
  std::size_t keep_output_samples = 0;
  std::size_t keep_records = 4;

  /// Drain same-shaped tenant solves through solver::BatchSolver: within a
  /// shard, completed intervals park at the QP-solve boundary
  /// (OnlineSmoother::push_prepare) and every batchable group with the same
  /// (horizon, QP settings) is solved as one SoA ADMM batch before the
  /// intervals commit in submission order. On SIMD tiers whose kernels do
  /// not reassociate (the default build — see solver/simd.hpp) a batched
  /// lane is bit-identical to the scalar solve it replaces, so events,
  /// digests and checkpoints are byte-identical with this on or off; on the
  /// avx2 tier results agree within solver tolerance instead. Off = the
  /// scalar one-solve-per-tenant path.
  bool batched_solves = true;

  /// Throws std::invalid_argument on zero shards or warm starts on.
  void validate() const;
};

/// Aggregate fleet counters, also published to obs::global_metrics() (when
/// installed) as fleet.plans, fleet.batched_factorizations,
/// fleet.batched_solves and the fleet.shard_imbalance /
/// fleet.batch_occupancy gauges after every batch.
struct FleetStats {
  std::size_t tenants = 0;
  std::size_t shards = 0;
  std::uint64_t plans = 0;  ///< completed interval plans (events emitted)
  /// KKT setups across all shard pools. Factorization sharing working
  /// means this stays near shards * distinct-(m,settings) keys — far below
  /// the tenant count.
  std::uint64_t batched_factorizations = 0;
  std::uint64_t shared_solvers = 0;  ///< live pooled solvers across shards
  /// Batched solving (FleetConfig::batched_solves): SoA chunk solves run
  /// and lanes (tenant intervals) they carried. lanes/solves is the mean
  /// batch occupancy, published as the fleet.batch_occupancy gauge.
  std::uint64_t batched_solves = 0;
  std::uint64_t batched_lanes = 0;
  std::size_t max_shard_tenants = 0;
  std::size_t min_shard_tenants = 0;
  std::size_t arena_bytes = 0;  ///< slab bytes reserved across shards
};

/// Result of applying one wire request stream.
struct WireApplyResult {
  std::size_t frames_applied = 0;
  std::size_t events = 0;
  /// The request stream ended mid-frame; every complete frame before the
  /// tear was applied.
  bool torn = false;
};

class FleetEngine {
 public:
  /// `pool` is non-owning and optional: null processes shards serially on
  /// the calling thread; with a pool, shards run under parallel_for. The
  /// output is byte-identical either way.
  explicit FleetEngine(FleetConfig config,
                       runtime::ThreadPool* pool = nullptr);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Admits a tenant (battery sized from config, solves routed through the
  /// shard pool). Throws std::invalid_argument on a duplicate id.
  void add_tenant(std::uint64_t tenant_id);

  /// Admits a tenant with per-tenant hooks (forecast oracle, battery
  /// monitor — e.g. a FaultInjector-backed nemesis keyed off
  /// tenant_rng(tenant_id)).
  void add_tenant(std::uint64_t tenant_id, core::OnlineSmoother::Hooks hooks);

  [[nodiscard]] std::size_t tenant_count() const { return tenant_count_; }

  /// Processes one batch of requests: routes by shard, runs shards
  /// (in parallel when a pool is attached), returns every completed
  /// interval event in shard-major, submission order. Per-tenant request
  /// order within the batch is preserved. Throws std::invalid_argument on
  /// an unknown tenant id.
  std::vector<IntervalEvent> submit(std::span<const SampleRequest> requests);

  /// Wire boundary: decodes a request stream, applies admissions (at scan
  /// time, so a batch may admit and feed the same tenant) and samples (as
  /// one submit() batch), and appends the resulting event stream (with
  /// header) to `events_out`. A torn trailing frame stops the scan
  /// gracefully (result.torn); corruption throws persist::PersistError.
  WireApplyResult apply_wire(std::string_view requests,
                             std::string& events_out);

  /// Running digest over everything every tenant has output: folds the
  /// per-tenant interval digests (updated after each completed interval
  /// over the record fields and the interval's output samples, bit
  /// patterns included) in shard-major, tenant-id order. Two engines fed
  /// the same batches agree here iff every tenant's full output history
  /// matches byte for byte — the serial-vs-parallel witness.
  [[nodiscard]] std::uint64_t output_digest() const;

  /// Serializes every tenant's StreamState (plus digest) through the
  /// persist codec — the payload to hand to PersistEngine::append /
  /// snapshot. Deterministic: shard-major, tenant-id order.
  [[nodiscard]] std::string encode_checkpoint() const;

  /// Restores a checkpoint: missing tenants are admitted, existing ones
  /// wholesale-replaced via OnlineSmoother::import_state (which validates
  /// and cold-starts; config mismatch throws core::StateMismatchError).
  /// Throws persist::PersistError on malformed bytes.
  void restore_checkpoint(std::string_view bytes);

  /// The tenant's smoother, or null when not admitted.
  [[nodiscard]] const core::OnlineSmoother* find_tenant(
      std::uint64_t tenant_id) const;

  /// The tenant's derived random stream: Rng::split(tenant_id) off the
  /// fleet seed. Pure — same tenant, same stream, regardless of admission
  /// or batch order.
  [[nodiscard]] util::Rng tenant_rng(std::uint64_t tenant_id) const {
    return util::Rng(config_.seed).split(tenant_id);
  }

  [[nodiscard]] FleetStats stats() const;
  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  struct Tenant;
  struct Shard;

  Tenant& require_tenant(Shard& shard, std::uint64_t tenant_id);
  void process_shard(Shard& shard);
  /// Solves the batchable parked intervals (grouped by horizon + settings)
  /// through the shard pool's BatchSolvers, then commits every parked
  /// interval in completion order, emitting its event.
  void flush_pending(Shard& shard, std::size_t points,
                     std::size_t keep_output);
  /// Event emission + digest fold + compaction for one committed interval.
  void emit_event(Shard& shard, Tenant& tenant,
                  const core::OnlineIntervalRecord& record,
                  std::size_t points, std::size_t keep_output);
  void publish_metrics();
  /// Routes the batch, runs every shard, gathers shard-major events.
  std::vector<IntervalEvent> run_batch();

  FleetConfig config_;
  runtime::ThreadPool* pool_;  ///< non-owning; null = serial
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t tenant_count_ = 0;
  std::uint64_t plans_total_ = 0;
  /// Cumulative values already published to the global metrics counters
  /// (counters are monotone; we add deltas).
  std::uint64_t published_plans_ = 0;
  std::uint64_t published_factorizations_ = 0;
  std::uint64_t published_batched_solves_ = 0;
};

}  // namespace smoother::fleet
