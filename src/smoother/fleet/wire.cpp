#include "smoother/fleet/wire.hpp"

namespace smoother::fleet {

namespace {

constexpr std::string_view kWireMagic = "SMFW";
constexpr std::size_t kHeaderBytes = 8;        // magic + u32 version
constexpr std::size_t kFrameHeaderBytes = 8;   // u32 len + u32 crc

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MessageType::kAddTenant) &&
         type <= static_cast<std::uint8_t>(MessageType::kIntervalEvent);
}

}  // namespace

void FrameWriter::begin_stream(std::string& out) const {
  out.clear();
  out.append(kWireMagic);
  persist::Writer version;
  version.u32(kWireVersion);
  out += version.bytes();
}

void FrameWriter::append_frame(std::string& out, MessageType type,
                               std::string_view body) {
  // len counts the type byte + body; the CRC covers the same bytes, so a
  // frame re-framed by a torn length field still fails verification.
  const auto len = static_cast<std::uint32_t>(1 + body.size());
  const char type_byte = static_cast<char>(type);
  const std::uint32_t crc = persist::crc32c_extend(
      persist::crc32c(std::string_view(&type_byte, 1)), body);
  scratch_.clear();
  scratch_.u32(len);
  scratch_.u32(crc);
  out += scratch_.bytes();
  out.push_back(type_byte);
  out.append(body);
}

void FrameWriter::append(std::string& out, const AddTenantRequest& request) {
  scratch_.clear();
  scratch_.u64(request.tenant_id);
  const std::string body = scratch_.take();
  append_frame(out, MessageType::kAddTenant, body);
}

void FrameWriter::append(std::string& out, const SampleRequest& request) {
  scratch_.clear();
  scratch_.u64(request.tenant_id);
  if (!request.missing) scratch_.f64(request.generation_kw);
  const std::string body = scratch_.take();
  append_frame(
      out, request.missing ? MessageType::kMissingSample : MessageType::kSample,
      body);
}

void FrameWriter::append(std::string& out, const IntervalEvent& event) {
  scratch_.clear();
  scratch_.u64(event.tenant_id);
  scratch_.u64(event.interval_index);
  scratch_.u8(event.region);
  scratch_.u8(event.fallback);
  scratch_.boolean(event.smoothed);
  scratch_.boolean(event.warmup);
  scratch_.boolean(event.degraded);
  scratch_.f64(event.variance_before);
  scratch_.f64(event.variance_after);
  scratch_.u64(event.solver_iterations);
  const std::string body = scratch_.take();
  append_frame(out, MessageType::kIntervalEvent, body);
}

FrameCursor::FrameCursor(std::string_view bytes) : bytes_(bytes) {
  if (bytes_.size() < kHeaderBytes)
    throw persist::PersistError(
        persist::ErrorKind::kTruncated,
        "wire stream: header cut short at " + std::to_string(bytes_.size()) +
            " bytes");
  if (bytes_.substr(0, kWireMagic.size()) != kWireMagic)
    throw persist::PersistError(persist::ErrorKind::kBadMagic,
                                "wire stream: not a fleet wire stream");
  persist::Reader reader(bytes_.substr(kWireMagic.size(), 4));
  const std::uint32_t version = reader.u32();
  if (version > kWireVersion)
    throw persist::PersistError(
        persist::ErrorKind::kFutureVersion,
        "wire stream: version " + std::to_string(version) +
            " is newer than this build's " + std::to_string(kWireVersion));
  offset_ = kHeaderBytes;
}

std::optional<Frame> FrameCursor::next() {
  if (offset_ == bytes_.size()) return std::nullopt;  // clean end
  if (bytes_.size() - offset_ < kFrameHeaderBytes) {
    torn_ = true;
    return std::nullopt;
  }
  persist::Reader header(bytes_.substr(offset_, kFrameHeaderBytes));
  const std::uint32_t len = header.u32();
  const std::uint32_t stored_crc = header.u32();
  if (len == 0)
    throw persist::PersistError(persist::ErrorKind::kCorrupt,
                                "wire frame: zero-length frame");
  if (bytes_.size() - offset_ - kFrameHeaderBytes < len) {
    torn_ = true;
    return std::nullopt;
  }
  const std::string_view typed_body =
      bytes_.substr(offset_ + kFrameHeaderBytes, len);
  if (persist::crc32c(typed_body) != stored_crc)
    throw persist::PersistError(persist::ErrorKind::kChecksum,
                                "wire frame: CRC mismatch at offset " +
                                    std::to_string(offset_));
  const auto type = static_cast<std::uint8_t>(typed_body[0]);
  if (!known_type(type))
    throw persist::PersistError(
        persist::ErrorKind::kCorrupt,
        "wire frame: unknown message type " + std::to_string(type));
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.body = typed_body.substr(1);
  offset_ += kFrameHeaderBytes + len;
  return frame;
}

AddTenantRequest decode_add_tenant(std::string_view body) {
  persist::Reader reader(body);
  AddTenantRequest request;
  request.tenant_id = reader.u64();
  reader.expect_done();
  return request;
}

SampleRequest decode_sample(std::string_view body, bool missing) {
  persist::Reader reader(body);
  SampleRequest request;
  request.missing = missing;
  request.tenant_id = reader.u64();
  if (!missing) request.generation_kw = reader.f64();
  reader.expect_done();
  return request;
}

IntervalEvent decode_interval_event(std::string_view body) {
  persist::Reader reader(body);
  IntervalEvent event;
  event.tenant_id = reader.u64();
  event.interval_index = reader.u64();
  event.region = reader.u8();
  event.fallback = reader.u8();
  event.smoothed = reader.boolean();
  event.warmup = reader.boolean();
  event.degraded = reader.boolean();
  event.variance_before = reader.f64();
  event.variance_after = reader.f64();
  event.solver_iterations = reader.u64();
  reader.expect_done();
  return event;
}

}  // namespace smoother::fleet
