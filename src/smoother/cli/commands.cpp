#include "smoother/cli/commands.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <ostream>

#include "smoother/core/active_delay.hpp"
#include "smoother/core/metrics.hpp"
#include "smoother/core/smoother.hpp"
#include "smoother/power/solar.hpp"
#include "smoother/power/turbine.hpp"
#include "smoother/power/wind_farm.hpp"
#include "smoother/sim/experiments.hpp"
#include "smoother/sim/scenario.hpp"
#include "smoother/trace/batch_workload.hpp"
#include "smoother/trace/solar_model.hpp"
#include "smoother/trace/swf.hpp"
#include "smoother/trace/trace_io.hpp"
#include "smoother/trace/web_workload.hpp"
#include "smoother/trace/wind_speed_model.hpp"
#include "smoother/util/args.hpp"
#include "smoother/util/format.hpp"

namespace smoother::cli {

namespace {

using util::ArgError;
using util::ArgParser;
using util::ParsedArgs;

/// Loads a series from a 2-column CSV regardless of the value column name.
util::TimeSeries load_series_any(const std::string& path) {
  const util::CsvTable table = util::CsvTable::load(path);
  if (table.columns() < 2)
    throw std::runtime_error(path + ": expected (minute, value) columns");
  return trace::series_from_csv(table, table.header()[1]);
}

trace::WindSiteParams wind_site_by_name(const std::string& name) {
  for (const auto& site : trace::WindSitePresets::all()) {
    if (site.name.rfind(name, 0) == 0) return site;  // prefix match: "TX"
  }
  throw ArgError("unknown wind site '" + name +
                 "' (use CA, OR, WA, TX, CO or WY)");
}

trace::WebWorkloadParams web_preset_by_name(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "calgary") return trace::WebWorkloadPresets::calgary();
  if (name == "uofs") return trace::WebWorkloadPresets::u_of_s();
  if (name == "nasa") return trace::WebWorkloadPresets::nasa();
  if (name == "clark") return trace::WebWorkloadPresets::clark();
  if (name == "ucb") return trace::WebWorkloadPresets::ucb();
  throw ArgError("unknown web preset '" + name +
                 "' (calgary, uofs, nasa, clark, ucb)");
}

trace::BatchWorkloadParams batch_preset_by_name(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "thunder") return trace::BatchWorkloadPresets::llnl_thunder();
  if (name == "cm5") return trace::BatchWorkloadPresets::lanl_cm5();
  if (name == "hpc2n") return trace::BatchWorkloadPresets::hpc2n();
  if (name == "ross") return trace::BatchWorkloadPresets::sandia_ross();
  throw ArgError("unknown batch preset '" + name +
                 "' (thunder, cm5, hpc2n, ross)");
}

/// Shared wrapper: parse, run, map errors to exit codes.
int with_parser(const ArgParser& parser, const std::vector<std::string>& args,
                std::ostream& err,
                const std::function<void(const ParsedArgs&)>& body) {
  try {
    const ParsedArgs parsed = parser.parse(args);
    body(parsed);
    return 0;
  } catch (const ArgError& e) {
    err << "error: " << e.what() << "\n\n" << parser.usage();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace

int cmd_gen_wind(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  ArgParser parser("smoother_cli gen-wind",
                   "synthesize a wind power trace (Table III sites)");
  parser.add_option("site", "wind site: CA, OR, WA, TX, CO or WY", "TX")
      .add_option("capacity", "installed capacity in kW", "976")
      .add_option("days", "trace length in days", "7")
      .add_option("step-min", "sample step in minutes", "5")
      .add_option("seed", "random seed", "1")
      .add_required("out", "output CSV path");
  return with_parser(parser, args, err, [&](const ParsedArgs& a) {
    const auto site = wind_site_by_name(a.get("site"));
    const auto supply = sim::wind_power_series(
        site, util::Kilowatts{a.number("capacity")},
        util::days(a.number("days")), util::Minutes{a.number("step-min")},
        a.unsigned_integer("seed"));
    trace::save_series(supply, a.get("out"), "wind_kw");
    out << util::strfmt(
        "wrote %zu samples to %s (site %s, mean %.1f kW, peak %.1f kW)\n",
        supply.size(), a.get("out").c_str(), site.name.c_str(), supply.mean(),
        supply.max());
  });
}

int cmd_gen_solar(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  ArgParser parser("smoother_cli gen-solar",
                   "synthesize a PV power trace (desert/coastal presets)");
  parser.add_option("site", "solar site: desert or coastal", "coastal")
      .add_option("rated", "array DC rating in kW", "800")
      .add_option("days", "trace length in days", "7")
      .add_option("step-min", "sample step in minutes", "5")
      .add_option("seed", "random seed", "1")
      .add_required("out", "output CSV path");
  return with_parser(parser, args, err, [&](const ParsedArgs& a) {
    const auto site = a.get("site") == "desert"
                          ? trace::SolarSitePresets::desert()
                          : trace::SolarSitePresets::coastal();
    power::PvArraySpec spec;
    spec.rated_power = util::Kilowatts{a.number("rated")};
    const power::PvArray array(spec);
    const trace::SolarIrradianceModel model(site);
    const auto supply = array.power_series(
        model.generate(util::days(a.number("days")),
                       util::Minutes{a.number("step-min")},
                       a.unsigned_integer("seed")));
    trace::save_series(supply, a.get("out"), "solar_kw");
    out << util::strfmt(
        "wrote %zu samples to %s (site %s, mean %.1f kW, peak %.1f kW)\n",
        supply.size(), a.get("out").c_str(), site.name.c_str(), supply.mean(),
        supply.max());
  });
}

int cmd_gen_web(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("smoother_cli gen-web",
                   "synthesize a web CPU-utilization trace (Table I)");
  parser
      .add_option("preset", "calgary, uofs, nasa, clark or ucb", "nasa")
      .add_option("days", "trace length in days", "7")
      .add_option("step-min", "sample step in minutes", "1")
      .add_option("seed", "random seed", "1")
      .add_required("out", "output CSV path");
  return with_parser(parser, args, err, [&](const ParsedArgs& a) {
    const auto preset = web_preset_by_name(a.get("preset"));
    const trace::WebWorkloadModel model(preset);
    const auto mu = model.generate(util::days(a.number("days")),
                                   util::Minutes{a.number("step-min")},
                                   a.unsigned_integer("seed"));
    trace::save_series(mu, a.get("out"), "cpu_utilization");
    out << util::strfmt("wrote %zu samples to %s (%s, mean %.2f%%)\n",
                        mu.size(), a.get("out").c_str(), preset.name.c_str(),
                        100.0 * mu.mean());
  });
}

int cmd_gen_batch(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  ArgParser parser("smoother_cli gen-batch",
                   "synthesize a batch job set (Table II presets)");
  parser.add_option("preset", "thunder, cm5, hpc2n or ross", "hpc2n")
      .add_option("days", "horizon in days", "4")
      .add_option("servers", "evaluation cluster size", "11000")
      .add_option("seed", "random seed", "1")
      .add_option("swf", "also write this SWF file", "")
      .add_required("out", "output jobs CSV path");
  return with_parser(parser, args, err, [&](const ParsedArgs& a) {
    const auto preset = batch_preset_by_name(a.get("preset"));
    const auto servers =
        static_cast<std::size_t>(a.unsigned_integer("servers"));
    power::DatacenterSpec dc_spec;
    dc_spec.server_count = servers;
    const power::DatacenterPowerModel dc(dc_spec);
    const trace::BatchWorkloadModel model(preset);
    const auto horizon = util::days(a.number("days"));
    const auto jobs =
        model.generate(horizon, servers, dc, a.unsigned_integer("seed"));
    trace::save_jobs(jobs, a.get("out"));
    if (!a.get("swf").empty()) {
      const auto records =
          model.generate_swf(horizon, servers, a.unsigned_integer("seed"));
      std::ofstream swf(a.get("swf"));
      if (!swf) throw std::runtime_error("cannot open " + a.get("swf"));
      trace::write_swf(swf, records);
    }
    out << util::strfmt(
        "wrote %zu jobs to %s (%s, offered source utilization %.1f%%)\n",
        jobs.size(), a.get("out").c_str(), preset.name.c_str(),
        100.0 * trace::BatchWorkloadModel::offered_utilization(
                    jobs, preset.source_processors, horizon));
  });
}

int cmd_smooth(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  ArgParser parser("smoother_cli smooth",
                   "run Flexible Smoothing over a supply trace");
  parser.add_required("supply", "input supply CSV (minute,kW)")
      .add_required("out", "output smoothed CSV path")
      .add_option("capacity", "rated power in kW (0 = use trace max)", "0")
      .add_option("stable-cdf", "Region-I CDF level", "0.25")
      .add_option("extreme-cdf", "Region-II-2 CDF level", "0.95")
      .add_flag("trend", "trend-aware objective (for solar-like ramps)");
  return with_parser(parser, args, err, [&](const ParsedArgs& a) {
    const auto supply = load_series_any(a.get("supply"));
    double capacity = a.number("capacity");
    if (capacity <= 0.0) capacity = supply.max();
    auto config = sim::default_config(util::Kilowatts{capacity});
    config.stable_cdf = a.number("stable-cdf");
    config.extreme_cdf = a.number("extreme-cdf");
    if (a.flag("trend"))
      config.flexible_smoothing.objective =
          core::SmoothingObjective::kAroundTrend;
    const core::Smoother middleware(config);
    double cycles = 0.0;
    const auto result = middleware.smooth_supply(supply, &cycles);
    trace::save_series(result.supply, a.get("out"), "smoothed_kw");
    out << util::strfmt(
        "smoothed %zu/%zu intervals; mean variance reduction %.0f%%; "
        "required max rate %.0f kW; battery cycles %.1f\nwrote %s\n",
        result.smoothed_intervals, result.intervals.size(),
        100.0 * result.mean_variance_reduction(), result.required_max_rate_kw,
        cycles, a.get("out").c_str());
  });
}

int cmd_schedule(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  ArgParser parser("smoother_cli schedule",
                   "schedule a job set against a supply trace");
  parser.add_required("supply", "input supply CSV (minute,kW)")
      .add_required("jobs", "input jobs CSV (from gen-batch)")
      .add_option("policy", "ad, fifo or edf", "ad")
      .add_option("servers", "cluster size", "11000")
      .add_option("step-min", "scheduling slot in minutes", "1")
      .add_option("demand-out", "write the demand series CSV here", "");
  return with_parser(parser, args, err, [&](const ParsedArgs& a) {
    // Validate the policy before touching any files (fail fast on typos).
    std::unique_ptr<sched::Scheduler> scheduler;
    const std::string policy = a.get("policy");
    if (policy == "ad")
      scheduler = std::make_unique<core::ActiveDelayScheduler>();
    else if (policy == "fifo")
      scheduler = std::make_unique<sched::ImmediateScheduler>();
    else if (policy == "edf")
      scheduler = std::make_unique<sched::EdfScheduler>();
    else
      throw ArgError("unknown policy '" + policy + "' (ad, fifo, edf)");

    sched::ScheduleRequest request;
    request.renewable = load_series_any(a.get("supply"))
                            .resample(util::Minutes{a.number("step-min")});
    request.jobs = trace::load_jobs(a.get("jobs"));
    request.total_servers =
        static_cast<std::size_t>(a.unsigned_integer("servers"));

    const auto result = scheduler->schedule(request);
    const double generated = request.renewable.total_energy().value();
    out << util::strfmt(
        "policy %s: %zu jobs, renewable used %.1f/%.1f kWh (%.1f%%), "
        "deadline misses %zu, switching times %zu\n",
        scheduler->name().c_str(), request.jobs.size(),
        result.outcome.renewable_energy_used.value(), generated,
        100.0 * result.outcome.renewable_energy_used.value() /
            std::max(generated, 1e-9),
        result.outcome.deadline_misses,
        core::energy_switching_times(request.renewable, result.demand));
    if (!a.get("demand-out").empty())
      trace::save_series(result.demand, a.get("demand-out"), "demand_kw");
  });
}

int cmd_metrics(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("smoother_cli metrics",
                   "supply/demand metrics: switching, utilization, energy");
  parser.add_required("supply", "supply CSV (minute,kW)")
      .add_required("demand", "demand CSV (minute,kW)")
      .add_option("deadband", "hysteresis fraction for switching", "0");
  return with_parser(parser, args, err, [&](const ParsedArgs& a) {
    const auto supply = load_series_any(a.get("supply"));
    const auto demand = load_series_any(a.get("demand"));
    const double deadband = a.number("deadband");
    out << util::strfmt(
        "switching times: %zu\nrenewable utilization: %.3f\n"
        "renewable used: %.1f kWh\nunusable renewable: %.1f kWh\n"
        "grid energy needed: %.1f kWh\n",
        core::energy_switching_times_hysteresis(supply, demand, deadband),
        core::renewable_utilization(supply, demand),
        core::renewable_energy_used(supply, demand).value(),
        core::unusable_renewable(supply, demand).value(),
        core::grid_energy_needed(supply, demand).value());
  });
}

std::vector<std::string> command_names() {
  return {"gen-wind", "gen-solar", "gen-web", "gen-batch",
          "smooth",   "schedule",  "metrics"};
}

std::string main_usage() {
  std::string out =
      "usage: smoother_cli <command> [options]\n\n"
      "Smoother: smooth renewable power-aware middleware (ICDCS'19 "
      "reproduction)\n\ncommands:\n";
  out += "  gen-wind    synthesize a wind power trace (Table III sites)\n";
  out += "  gen-solar   synthesize a PV power trace\n";
  out += "  gen-web     synthesize a web utilization trace (Table I)\n";
  out += "  gen-batch   synthesize a batch job set (Table II)\n";
  out += "  smooth      run Flexible Smoothing over a supply trace\n";
  out += "  schedule    schedule jobs against a supply (ad/fifo/edf)\n";
  out += "  metrics     switching/utilization metrics of a supply,demand pair\n";
  out += "\nrun 'smoother_cli <command> --help' equivalent: any bad option "
         "prints that command's usage.\n";
  return out;
}

int run_command(const std::string& command,
                const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (command == "gen-wind") return cmd_gen_wind(args, out, err);
  if (command == "gen-solar") return cmd_gen_solar(args, out, err);
  if (command == "gen-web") return cmd_gen_web(args, out, err);
  if (command == "gen-batch") return cmd_gen_batch(args, out, err);
  if (command == "smooth") return cmd_smooth(args, out, err);
  if (command == "schedule") return cmd_schedule(args, out, err);
  if (command == "metrics") return cmd_metrics(args, out, err);
  err << "unknown command '" << command << "'\n\n" << main_usage();
  return 2;
}

}  // namespace smoother::cli
