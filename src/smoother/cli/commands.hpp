// Implementation of the `smoother_cli` subcommands.
//
// Kept as a library (rather than code in main) so the commands are unit
// tested end-to-end: each command reads/writes CSV files and prints a
// human-readable summary to `out`.
//
//   gen-wind    synthesize a wind power trace for a Table III site
//   gen-solar   synthesize a PV power trace (desert/coastal preset)
//   gen-web     synthesize a Table I web utilization trace
//   gen-batch   synthesize a Table II batch job set (CSV and/or SWF)
//   smooth      run Flexible Smoothing over a supply trace
//   schedule    schedule a job set against a supply trace (ad/fifo/edf)
//   metrics     switching times / utilization / energy split of a pair
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace smoother::cli {

/// Dispatches one subcommand. Returns a process exit code (0 on success);
/// usage/errors are written to `err`. Unknown commands return 2.
int run_command(const std::string& command,
                const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// Names of all subcommands (for help text).
[[nodiscard]] std::vector<std::string> command_names();

/// Top-level help text.
[[nodiscard]] std::string main_usage();

// Individual commands (exposed for tests).
int cmd_gen_wind(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_gen_solar(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err);
int cmd_gen_web(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
int cmd_gen_batch(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err);
int cmd_smooth(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
int cmd_schedule(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_metrics(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

}  // namespace smoother::cli
