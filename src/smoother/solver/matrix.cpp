#include "smoother/solver/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/util/format.hpp"

namespace smoother::solver {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::require_same_shape(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix: shape mismatch");
}

Matrix Matrix::operator+(const Matrix& other) const {
  require_same_shape(other);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  require_same_shape(other);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("Matrix::operator*: inner dim mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += v * other(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Vector Matrix::operator*(std::span<const double> x) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix*vector: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

void Matrix::times_into(std::span<const double> x,
                        std::span<double> out) const {
  if (x.size() != cols_ || out.size() != rows_)
    throw std::invalid_argument("Matrix::times_into: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
}

Vector Matrix::transpose_times(std::span<const double> x) const {
  if (x.size() != rows_)
    throw std::invalid_argument("Matrix::transpose_times: size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = x[r];
    if (v == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += v * row[c];
  }
  return y;
}

void Matrix::transpose_times_into(std::span<const double> x,
                                  std::span<double> out) const {
  if (x.size() != rows_ || out.size() != cols_)
    throw std::invalid_argument(
        "Matrix::transpose_times_into: size mismatch");
  for (double& v : out) v = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double v = x[r];
    if (v == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += v * row[c];
  }
}

Matrix Matrix::gram() const {
  Matrix out(cols_, cols_);
  // Upper triangle (i <= j): out(i, j) = Σ_r A(r, i) A(r, j), accumulated
  // in row order and skipping A(r, i) == 0 — the exact arithmetic of the
  // i-th row of transpose() * (*this). The lower triangle mirrors it.
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const double v = (*this)(r, i);
      if (v == 0.0) continue;
      const double* row = data_.data() + r * cols_;
      for (std::size_t j = i; j < cols_; ++j) out(i, j) += v * row[j];
    }
    for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

void Matrix::add_diagonal(double s) {
  if (rows_ != cols_)
    throw std::logic_error("Matrix::add_diagonal: matrix not square");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += s;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  require_same_shape(other);
  double out = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    out = std::max(out, std::abs(data_[i] - other.data_[i]));
  return out;
}

std::string Matrix::to_string() const {
  std::string out;
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c)
      out += util::strfmt("%10.4g ", (*this)(r, c));
    out += "]\n";
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double out = 0.0;
  for (double v : a) out = std::max(out, std::abs(v));
  return out;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scale(double alpha, std::span<const double> a) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = alpha * a[i];
  return out;
}

}  // namespace smoother::solver
