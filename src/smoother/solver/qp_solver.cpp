#include "smoother/solver/qp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "smoother/obs/metrics.hpp"
#include "smoother/obs/profile.hpp"
#include "smoother/obs/trace.hpp"
#include "smoother/solver/simd.hpp"

namespace smoother::solver {

namespace {

/// The solver's instrument handles, resolved once per (registry, thread)
/// instead of by-name on every solve — the name lookup is a mutex + map
/// walk, far more than the relaxed add it guards. Keyed on the registry's
/// generation id so a new registry at a recycled address re-resolves.
struct SolverInstruments {
  obs::MetricsRegistry* registry = nullptr;
  std::uint64_t registry_id = 0;
  obs::Counter* solves = nullptr;
  obs::Counter* infeasible = nullptr;
  obs::Counter* factorizations = nullptr;
  obs::Counter* numerical_errors = nullptr;
  obs::Counter* iterations = nullptr;
  obs::Counter* reuse_hits = nullptr;
  obs::Counter* not_converged = nullptr;
  obs::Counter* setups = nullptr;
  obs::Counter* warm_starts = nullptr;
  obs::Counter* factor_reuse = nullptr;
  obs::Counter* structured_setups = nullptr;
  obs::Counter* structured_solves = nullptr;
  obs::Gauge* last_primal = nullptr;
  obs::Gauge* last_dual = nullptr;
  obs::Histogram* solve_ms = nullptr;
  obs::Histogram* iterations_hist = nullptr;
};

SolverInstruments* solver_instruments(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return nullptr;
  thread_local SolverInstruments cache;
  if (cache.registry != metrics || cache.registry_id != metrics->id()) {
    cache.registry = metrics;
    cache.registry_id = metrics->id();
    cache.solves = &metrics->counter("solver.qp.solves");
    cache.infeasible = &metrics->counter("solver.qp.infeasible");
    cache.factorizations = &metrics->counter("solver.qp.factorizations");
    cache.numerical_errors = &metrics->counter("solver.qp.numerical_errors");
    cache.iterations = &metrics->counter("solver.qp.iterations");
    cache.reuse_hits = &metrics->counter("solver.qp.factorization_reuse_hits");
    cache.not_converged = &metrics->counter("solver.qp.not_converged");
    cache.setups = &metrics->counter("solver.qp.setup_count");
    cache.warm_starts = &metrics->counter("solver.qp.warmstart_count");
    cache.factor_reuse = &metrics->counter("solver.qp.factorization_reuse");
    cache.structured_setups =
        &metrics->counter("solver.qp.structured_setups");
    cache.structured_solves =
        &metrics->counter("solver.qp.structured_solves");
    cache.last_primal = &metrics->gauge("solver.qp.last_primal_residual");
    cache.last_dual = &metrics->gauge("solver.qp.last_dual_residual");
    cache.solve_ms = &metrics->timing_histogram("solver.qp.solve_ms");
    cache.iterations_hist = &metrics->histogram(
        "solver.qp.iterations_hist",
        {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 20000});
  }
  return &cache;
}

}  // namespace

void QpSolver::Workspace::resize(std::size_t n, std::size_t m) {
  x.assign(n, 0.0);
  rhs.assign(n, 0.0);
  x_tilde.assign(n, 0.0);
  px.assign(n, 0.0);
  aty.assign(n, 0.0);
  chol_y.assign(n, 0.0);
  scratch.assign(n, 0.0);
  z.assign(m, 0.0);
  y.assign(m, 0.0);
  rz.assign(m, 0.0);
  ax_tilde.assign(m, 0.0);
  z_next.assign(m, 0.0);
  ax.assign(m, 0.0);
}

QpStatus QpSolver::setup(QpProblem problem, QpSettings settings) {
  problem.validate();
  problem_ = std::move(problem);
  settings_ = settings;
  reset_warm_start();
  factor_used_ = false;
  factor_.reset();
  structured_.reset();
  ++setup_count_;

  SolverInstruments* inst = solver_instruments(obs::global_metrics());
  obs::Span span(obs::global_tracer(), "qp-setup");
  span.field("variables", problem_.num_variables())
      .field("constraints", problem_.num_constraints());
  if (inst != nullptr) {
    inst->setups->add(1);
    inst->factorizations->add(1);
  }

  const std::size_t n = problem_.num_variables();
  ws_.resize(n, problem_.num_constraints());

  if (problem_.structure == QpStructure::kSmoothing) {
    // Structured fast path: K = cI + rho LᵀL - beta 11ᵀ reduces to one
    // tridiagonal factorization plus a rank-one correction — O(n) setup,
    // no dense matrices formed (see structured_kkt.hpp).
    span.field("structured", 1);
    if (inst != nullptr) inst->structured_setups->add(1);
    structured_ =
        StructuredKkt::factorize(n, settings_.sigma, settings_.rho);
    if (!structured_) {
      span.field("status", to_string(QpStatus::kNumericalError));
      return QpStatus::kNumericalError;
    }
    span.field("status", to_string(QpStatus::kSolved));
    return QpStatus::kSolved;
  }

  // KKT matrix K = P + sigma I + rho AᵀA, factorized once per structure.
  Matrix kkt = problem_.p;
  kkt.add_diagonal(settings_.sigma);
  const Matrix ata = problem_.a.gram();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      kkt(r, c) += settings_.rho * ata(r, c);
  factor_ = Cholesky::factorize(kkt);
  if (!factor_) {
    span.field("status", to_string(QpStatus::kNumericalError));
    return QpStatus::kNumericalError;
  }
  span.field("status", to_string(QpStatus::kSolved));
  return QpStatus::kSolved;
}

void QpSolver::update(Vector q, Vector lower, Vector upper) {
  if (!is_setup())
    throw std::invalid_argument("QpSolver::update: setup() has not run");
  if (q.size() != problem_.num_variables())
    throw std::invalid_argument("QpSolver::update: q size mismatch");
  if (lower.size() != problem_.num_constraints() ||
      upper.size() != problem_.num_constraints())
    throw std::invalid_argument("QpSolver::update: bound size mismatch");
  problem_.q = std::move(q);
  problem_.lower = std::move(lower);
  problem_.upper = std::move(upper);
}

void QpSolver::reset_warm_start() {
  warm_x_.clear();
  warm_y_.clear();
  warm_z_.clear();
  warm_valid_ = false;
}

bool QpSolver::structure_matches(const QpProblem& problem,
                                 const QpSettings& settings) const {
  return is_setup() && problem.structure == problem_.structure &&
         problem.num_variables() == problem_.num_variables() &&
         problem.num_constraints() == problem_.num_constraints() &&
         settings.rho == settings_.rho && settings.sigma == settings_.sigma &&
         problem.p == problem_.p && problem.a == problem_.a;
}

QpResult QpSolver::solve(const QpProblem& problem,
                         const QpSettings& settings) {
  if (structure_matches(problem, settings)) {
    // Vector-only change: keep the factorization and the warm-start state,
    // adopt the (non-structural) settings.
    update(problem.q, problem.lower, problem.upper);
    settings_ = settings;
  } else {
    // Structure or a KKT-relevant setting changed: full re-setup, never a
    // silent reuse. setup() validates and reports factorization failure
    // through the solve below (no factor cached).
    (void)setup(problem, settings);
  }
  return solve();
}

QpResult QpSolver::solve() {
  const std::size_t n = problem_.num_variables();
  const std::size_t m = problem_.num_constraints();

  // Observability (off = one relaxed load each): the qp-solve span and the
  // solver counters that would otherwise die inside QpResult.
  SolverInstruments* inst = solver_instruments(obs::global_metrics());
  obs::Span span(obs::global_tracer(), "qp-solve");
  span.field("variables", n).field("constraints", m);
  obs::ScopedTimer solve_timer(inst ? inst->solve_ms : nullptr);
  if (inst != nullptr) inst->solves->add(1);
  ++solve_count_;

  QpResult result;
  if (!is_setup()) {
    result.status = QpStatus::kNumericalError;
    span.field("status", to_string(result.status));
    if (inst != nullptr) inst->numerical_errors->add(1);
    return result;
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (problem_.lower[i] > problem_.upper[i]) {
      result.status = QpStatus::kInfeasible;
      span.field("status", to_string(result.status));
      if (inst != nullptr) inst->infeasible->add(1);
      return result;
    }
  }
  if (factor_used_) {
    ++factorization_reuse_count_;
    if (inst != nullptr) inst->factor_reuse->add(1);
  }
  factor_used_ = true;

  const bool structured = structured_.has_value();
  if (structured && inst != nullptr) inst->structured_solves->add(1);

  // The iterate and scratch vectors live in the member workspace (sized by
  // setup()), so the loop below never allocates — on either path.
  Vector& x = ws_.x;
  Vector& z = ws_.z;
  Vector& y = ws_.y;
  const bool warm = warm_valid_ && warm_x_.size() == n &&
                    warm_y_.size() == m && warm_z_.size() == m;
  if (warm) {
    // Previous solution as the starting iterate; z is projected into the
    // current bounds so the first residuals are meaningful.
    x = warm_x_;
    y = warm_y_;
    z = warm_z_;
    simd::clamp_spans(z.data(), problem_.lower.data(), problem_.upper.data(),
                      m);
    ++warm_start_count_;
    if (inst != nullptr) inst->warm_starts->add(1);
  } else {
    // Cold start: z inside the bounds so the first iterations are sensible.
    std::fill(x.begin(), x.end(), 0.0);
    std::fill(y.begin(), y.end(), 0.0);
    simd::clamp_value(0.0, problem_.lower.data(), problem_.upper.data(),
                      z.data(), m);
  }
  span.field("warm", warm ? 1 : 0).field("structured", structured ? 1 : 0);

  const double alpha = settings_.alpha;
  const double rho = settings_.rho;
  // A zero cadence would never check (and divide by zero); treat it as
  // check-every-iteration.
  const std::size_t check_interval =
      std::max<std::size_t>(settings_.check_interval, 1);

  auto clamp_bounds = [&](Vector& v) {
    simd::clamp_spans(v.data(), problem_.lower.data(), problem_.upper.data(),
                      m);
  };
  // The path-dependent kernels: dense matvecs vs the implicit O(n) FS
  // operators. Both write fully into preallocated outputs.
  auto apply_a = [&](std::span<const double> v, std::span<double> out) {
    if (structured)
      fs_ops::apply_a(v, out);
    else
      problem_.a.times_into(v, out);
  };
  auto apply_at = [&](std::span<const double> v, std::span<double> out) {
    if (structured)
      fs_ops::apply_at(v, out);
    else
      problem_.a.transpose_times_into(v, out);
  };
  auto apply_p = [&](std::span<const double> v, std::span<double> out) {
    if (structured)
      fs_ops::apply_p(v, out);
    else
      problem_.p.times_into(v, out);
  };
  auto kkt_solve = [&](std::span<const double> b, std::span<double> out) {
    if (structured)
      structured_->solve_into(b, out, ws_.scratch);
    else
      factor_->solve_into(b, ws_.chol_y, out);
  };

  std::size_t iter = 0;
  for (; iter < settings_.max_iterations; ++iter) {
    // rhs = sigma x - q + Aᵀ (rho z - y)
    Vector& rz = ws_.rz;
    simd::scale_sub(rho, z.data(), y.data(), rz.data(), m);
    Vector& rhs = ws_.rhs;
    apply_at(rz, rhs);
    simd::add_scaled_sub(settings_.sigma, x.data(), problem_.q.data(),
                         rhs.data(), n);

    Vector& x_tilde = ws_.x_tilde;
    kkt_solve(rhs, x_tilde);
    Vector& ax_tilde = ws_.ax_tilde;
    apply_a(x_tilde, ax_tilde);

    // Over-relaxed updates.
    simd::axpby(alpha, x_tilde.data(), 1.0 - alpha, x.data(), x.data(), n);

    Vector& z_next = ws_.z_next;
    simd::relaxed_step_add_scaled(alpha, ax_tilde.data(), 1.0 - alpha,
                                  z.data(), y.data(), rho, z_next.data(), m);
    clamp_bounds(z_next);

    simd::dual_update(rho, alpha, ax_tilde.data(), 1.0 - alpha, z.data(),
                      z_next.data(), y.data(), m);
    std::swap(z, z_next);

    if ((iter + 1) % check_interval != 0) continue;

    // Residuals (OSQP eq. 24-25).
    apply_a(x, ws_.ax);
    apply_p(x, ws_.px);
    apply_at(y, ws_.aty);
    const double prim = simd::max_abs_diff(ws_.ax.data(), z.data(), m);
    const double dual = simd::max_abs_sum3(ws_.px.data(), problem_.q.data(),
                                           ws_.aty.data(), n);

    const double eps_prim =
        settings_.eps_abs +
        settings_.eps_rel * std::max(simd::max_abs(ws_.ax.data(), m),
                                     simd::max_abs(z.data(), m));
    const double eps_dual =
        settings_.eps_abs +
        settings_.eps_rel *
            std::max({simd::max_abs(ws_.px.data(), n),
                      simd::max_abs(problem_.q.data(), n),
                      simd::max_abs(ws_.aty.data(), n)});
    if (prim <= eps_prim && dual <= eps_dual) {
      ++iter;
      result.status = QpStatus::kSolved;
      break;
    }
  }

  if (result.status != QpStatus::kSolved)
    result.status = QpStatus::kMaxIterations;

  // Residuals are recomputed unconditionally at loop exit: the in-loop
  // values exist only on check iterations, so a max_iterations exit between
  // checks would otherwise report stale (or never-computed) residuals.
  {
    apply_a(x, ws_.ax);
    apply_p(x, ws_.px);
    apply_at(y, ws_.aty);
    result.primal_residual = simd::max_abs_diff(ws_.ax.data(), z.data(), m);
    result.dual_residual = simd::max_abs_sum3(
        ws_.px.data(), problem_.q.data(), ws_.aty.data(), n);
  }

  // Stash the iterates (pre-polish z: the ADMM state, not the report) so
  // the next solve over the same structure warm-starts.
  warm_x_ = x;
  warm_y_ = y;
  warm_z_ = z;
  warm_valid_ = true;

  result.iterations = iter;
  result.x = x;
  result.z = z;
  if (settings_.polish) clamp_bounds(result.z);
  result.objective = problem_.objective(result.x);

  span.field("status", to_string(result.status))
      .field("iterations", result.iterations)
      .field("primal_residual", result.primal_residual)
      .field("dual_residual", result.dual_residual);
  if (inst != nullptr) {
    inst->iterations->add(result.iterations);
    // The KKT factor is computed once and reused by every ADMM iteration
    // after the first — the reuse count is what makes the one-factorization
    // design pay.
    if (result.iterations > 1)
      inst->reuse_hits->add(result.iterations - 1);
    if (result.status == QpStatus::kMaxIterations)
      inst->not_converged->add(1);
    inst->last_primal->set(result.primal_residual);
    inst->last_dual->set(result.dual_residual);
    inst->iterations_hist->record(static_cast<double>(result.iterations));
  }
  return result;
}

}  // namespace smoother::solver
