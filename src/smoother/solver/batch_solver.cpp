#include "smoother/solver/batch_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "smoother/obs/metrics.hpp"
#include "smoother/obs/trace.hpp"

namespace smoother::solver {

namespace {

/// Batched-path instrument handles, cached per (registry, thread) like the
/// scalar solver's (see qp_solver.cpp). The batched counters are additive
/// to the scalar ones: each lane also counts as a solver.qp.solves so
/// fleet dashboards stay comparable when batching toggles.
struct BatchInstruments {
  obs::MetricsRegistry* registry = nullptr;
  std::uint64_t registry_id = 0;
  obs::Counter* batched_solves = nullptr;
  obs::Counter* batched_lanes = nullptr;
  obs::Counter* solves = nullptr;
  obs::Counter* structured_solves = nullptr;
  obs::Counter* infeasible = nullptr;
  obs::Counter* iterations = nullptr;
  obs::Counter* not_converged = nullptr;
  obs::Histogram* iterations_hist = nullptr;
};

BatchInstruments* batch_instruments(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return nullptr;
  thread_local BatchInstruments cache;
  if (cache.registry != metrics || cache.registry_id != metrics->id()) {
    cache.registry = metrics;
    cache.registry_id = metrics->id();
    cache.batched_solves = &metrics->counter("solver.qp.batched_solves");
    cache.batched_lanes = &metrics->counter("solver.qp.batched_lanes");
    cache.solves = &metrics->counter("solver.qp.solves");
    cache.structured_solves =
        &metrics->counter("solver.qp.structured_solves");
    cache.infeasible = &metrics->counter("solver.qp.infeasible");
    cache.iterations = &metrics->counter("solver.qp.iterations");
    cache.not_converged = &metrics->counter("solver.qp.not_converged");
    cache.iterations_hist = &metrics->histogram(
        "solver.qp.iterations_hist",
        {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 20000});
  }
  return &cache;
}

constexpr std::size_t round_up(std::size_t n, std::size_t w) {
  return (n + w - 1) / w * w;
}

}  // namespace

QpStatus BatchSolver::setup(std::size_t m, const QpSettings& settings) {
  m_ = m;
  settings_ = settings;
  stride_ = round_up(kMaxLanes, simd::kWidth);
  ++setup_count_;
  structured_ = StructuredKkt::factorize(m, settings.sigma, settings.rho);
  if (!structured_) return QpStatus::kNumericalError;
  ensure_workspace();
  return QpStatus::kSolved;
}

void BatchSolver::adopt_settings(const QpSettings& settings) {
  if (settings.rho != settings_.rho || settings.sigma != settings_.sigma)
    throw std::invalid_argument(
        "BatchSolver::adopt_settings: rho/sigma differ from the factorized "
        "system; run setup() instead");
  settings_ = settings;
}

void BatchSolver::ensure_workspace() {
  const std::size_t n_elems = m_ * stride_;
  const std::size_t c_elems = 2 * n_elems;
  q_.assign(n_elems, 0.0);
  x_.assign(n_elems, 0.0);
  x_tilde_.assign(n_elems, 0.0);
  rhs_.assign(n_elems, 0.0);
  px_.assign(n_elems, 0.0);
  aty_.assign(n_elems, 0.0);
  scratch_.assign(n_elems, 0.0);
  lower_.assign(c_elems, 0.0);
  upper_.assign(c_elems, 0.0);
  z_.assign(c_elems, 0.0);
  z_next_.assign(c_elems, 0.0);
  y_.assign(c_elems, 0.0);
  rz_.assign(c_elems, 0.0);
  ax_tilde_.assign(c_elems, 0.0);
  ax_.assign(c_elems, 0.0);
  prim_.assign(stride_, 0.0);
  dual_.assign(stride_, 0.0);
  eps_prim_.assign(stride_, 0.0);
  eps_dual_.assign(stride_, 0.0);
}

void BatchSolver::lanes_apply_a(const double* src, double* dst) const {
  using simd::VecD;
  constexpr std::size_t kW = simd::kWidth;
  const std::size_t S = chunk_stride_;
  std::memcpy(dst, src, m_ * S * sizeof(double));
  for (std::size_t c = 0; c < S; c += kW) {
    VecD running = VecD::zero();
    for (std::size_t i = 0; i < m_; ++i) {
      running = running + VecD::load(src + i * S + c);
      running.store(dst + (m_ + i) * S + c);
    }
  }
}

void BatchSolver::lanes_apply_at(const double* src, double* dst) const {
  using simd::VecD;
  constexpr std::size_t kW = simd::kWidth;
  const std::size_t S = chunk_stride_;
  for (std::size_t c = 0; c < S; c += kW) {
    VecD suffix = VecD::zero();
    for (std::size_t i = m_; i-- > 0;) {
      suffix = suffix + VecD::load(src + (m_ + i) * S + c);
      (VecD::load(src + i * S + c) + suffix)
          .store(dst + i * S + c);
    }
  }
}

void BatchSolver::lanes_apply_p(const double* src, double* dst) const {
  using simd::VecD;
  constexpr std::size_t kW = simd::kWidth;
  const double md = static_cast<double>(m_);
  const VecD vm = VecD::broadcast(md);
  const VecD vscale = VecD::broadcast(2.0 / md);
  const std::size_t S = chunk_stride_;
  for (std::size_t c = 0; c < S; c += kW) {
    VecD acc = VecD::zero();
    for (std::size_t i = 0; i < m_; ++i)
      acc = acc + VecD::load(src + i * S + c);
    const VecD mean = acc / vm;
    for (std::size_t i = 0; i < m_; ++i) {
      (vscale * (VecD::load(src + i * S + c) - mean))
          .store(dst + i * S + c);
    }
  }
}

void BatchSolver::lanes_residuals(const double* q_soa) {
  using simd::VecD;
  constexpr std::size_t kW = simd::kWidth;
  const VecD veps_abs = VecD::broadcast(settings_.eps_abs);
  const VecD veps_rel = VecD::broadcast(settings_.eps_rel);
  const std::size_t S = chunk_stride_;
  for (std::size_t c = 0; c < S; c += kW) {
    VecD prim = VecD::zero(), norm_ax = VecD::zero(), norm_z = VecD::zero();
    for (std::size_t i = 0; i < 2 * m_; ++i) {
      const VecD ax = VecD::load(ax_.data() + i * S + c);
      const VecD z = VecD::load(z_.data() + i * S + c);
      prim = simd::max_std(prim, VecD::abs(ax - z));
      norm_ax = simd::max_std(norm_ax, VecD::abs(ax));
      norm_z = simd::max_std(norm_z, VecD::abs(z));
    }
    VecD dual = VecD::zero(), norm_px = VecD::zero(), norm_q = VecD::zero(),
         norm_aty = VecD::zero();
    for (std::size_t i = 0; i < m_; ++i) {
      const VecD px = VecD::load(px_.data() + i * S + c);
      const VecD q = VecD::load(q_soa + i * S + c);
      const VecD aty = VecD::load(aty_.data() + i * S + c);
      dual = simd::max_std(dual, VecD::abs(px + q + aty));
      norm_px = simd::max_std(norm_px, VecD::abs(px));
      norm_q = simd::max_std(norm_q, VecD::abs(q));
      norm_aty = simd::max_std(norm_aty, VecD::abs(aty));
    }
    prim.store(prim_.data() + c);
    dual.store(dual_.data() + c);
    (veps_abs + veps_rel * simd::max_std(norm_ax, norm_z))
        .store(eps_prim_.data() + c);
    (veps_abs +
     veps_rel * simd::max_std(simd::max_std(norm_px, norm_q), norm_aty))
        .store(eps_dual_.data() + c);
  }
}

void BatchSolver::solve(std::span<const Lane> lanes,
                        std::span<QpResult> results) {
  if (!is_setup())
    throw std::invalid_argument("BatchSolver::solve: setup() has not run");
  if (lanes.size() != results.size())
    throw std::invalid_argument(
        "BatchSolver::solve: lanes/results size mismatch");
  for (std::size_t off = 0; off < lanes.size(); off += kMaxLanes) {
    const std::size_t count = std::min(kMaxLanes, lanes.size() - off);
    solve_chunk(lanes.subspan(off, count), results.subspan(off, count));
  }
}

void BatchSolver::solve_chunk(std::span<const Lane> lanes,
                              std::span<QpResult> results) {
  const std::size_t count = lanes.size();
  chunk_stride_ = (count + simd::kWidth - 1) / simd::kWidth * simd::kWidth;
  std::size_t S = chunk_stride_;
  std::size_t n_elems = m_ * S;
  std::size_t c_elems = 2 * n_elems;

  BatchInstruments* inst = batch_instruments(obs::global_metrics());
  obs::Span span(obs::global_tracer(), "qp-batch-solve");
  span.field("lanes", count).field("variables", m_);
  ++solve_count_;
  lane_count_ += count;
  if (inst != nullptr) {
    inst->batched_solves->add(1);
    inst->batched_lanes->add(count);
    inst->solves->add(count);
  }

  for (const Lane& lane : lanes) {
    if (lane.q.size() != m_ || lane.lower.size() != 2 * m_ ||
        lane.upper.size() != 2 * m_)
      throw std::invalid_argument("BatchSolver::solve: lane shape mismatch");
  }

  // Pack AoS lanes into the SoA workspace; padding lanes stay zero (their
  // zero q and zero bounds pin every padding iterate at exactly 0.0).
  std::fill_n(q_.data(), n_elems, 0.0);
  std::fill_n(lower_.data(), c_elems, 0.0);
  std::fill_n(upper_.data(), c_elems, 0.0);
  for (std::size_t l = 0; l < count; ++l) {
    for (std::size_t i = 0; i < m_; ++i) q_[i * S + l] = lanes[l].q[i];
    for (std::size_t i = 0; i < 2 * m_; ++i) {
      lower_[i * S + l] = lanes[l].lower[i];
      upper_[i * S + l] = lanes[l].upper[i];
    }
  }

  // Per-lane lifecycle state, indexed by *column* of the current chunk;
  // orig[] maps a column back to its results slot (columns move when the
  // chunk compacts, below). kMaxLanes is small enough for the stack.
  QpStatus status[kMaxLanes];
  std::size_t iters[kMaxLanes];
  bool frozen[kMaxLanes];
  std::size_t orig[kMaxLanes];
  std::size_t cols = count;    // columns currently in the chunk
  std::size_t active = count;  // columns still iterating
  for (std::size_t l = 0; l < count; ++l) {
    status[l] = QpStatus::kMaxIterations;
    iters[l] = 0;
    frozen[l] = false;
    orig[l] = l;
    for (std::size_t i = 0; i < 2 * m_; ++i) {
      if (lanes[l].lower[i] > lanes[l].upper[i]) {
        // Same early-out as the scalar solver: default (empty) result with
        // the infeasible status, lane never enters the iteration.
        status[l] = QpStatus::kInfeasible;
        frozen[l] = true;
        --active;
        results[l] = QpResult{};
        results[l].status = QpStatus::kInfeasible;
        if (inst != nullptr) inst->infeasible->add(1);
        break;
      }
    }
  }
  const std::size_t feasible = active;
  if (inst != nullptr && feasible > 0)
    inst->structured_solves->add(feasible);

  // Cold start, exactly like the scalar path with warm starts off: x and y
  // zero, z projected into the bounds.
  std::fill(x_.begin(), x_.end(), 0.0);
  std::fill(y_.begin(), y_.end(), 0.0);
  simd::clamp_value(0.0, lower_.data(), upper_.data(), z_.data(), c_elems);

  const double alpha = settings_.alpha;
  const double rho = settings_.rho;
  const std::size_t check_interval =
      std::max<std::size_t>(settings_.check_interval, 1);

  // Column gather of a finished lane: the snapshot the scalar solver would
  // return from this exact iterate.
  auto capture = [&](std::size_t c) {
    QpResult& r = results[orig[c]];
    r.status = status[c];
    r.iterations = iters[c];
    r.primal_residual = prim_[c];
    r.dual_residual = dual_[c];
    r.x.resize(m_);
    r.z.resize(2 * m_);
    for (std::size_t i = 0; i < m_; ++i) r.x[i] = x_[i * S + c];
    for (std::size_t i = 0; i < 2 * m_; ++i) r.z[i] = z_[i * S + c];
  };

  // Left-pack the still-active columns into the narrowest stride that
  // holds them, so the remaining iterations pay for live lanes only (the
  // chunk would otherwise run every lane until its *slowest* lane
  // converges). Pure column moves of per-lane state — no surviving lane's
  // arithmetic sees a different value, so bit-identity is untouched.
  // Derived arrays (rhs_, x_tilde_, ax_*, z_next_, rz_, px_, aty_) are
  // rewritten before their next read and need no repacking.
  std::size_t keep[kMaxLanes];
  auto compact = [&]() {
    const std::size_t ns =
        std::max<std::size_t>((active + simd::kWidth - 1) / simd::kWidth,
                              1) *
        simd::kWidth;
    if (ns >= S) return;
    std::size_t j = 0;
    for (std::size_t c = 0; c < cols; ++c) {
      if (frozen[c]) continue;
      keep[j] = c;
      orig[j] = orig[c];  // j <= c: safe in place, ascending
      ++j;
    }
    // In place: within a row writes trail reads (k <= keep[k], ns < S),
    // and row i's writes end before row i+1's reads begin.
    auto pack = [&](double* a, std::size_t rows) {
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t k = 0; k < active; ++k)
          a[i * ns + k] = a[i * S + keep[k]];
        for (std::size_t k = active; k < ns; ++k) a[i * ns + k] = 0.0;
      }
    };
    pack(q_.data(), m_);       // problem data ...
    pack(lower_.data(), 2 * m_);
    pack(upper_.data(), 2 * m_);
    pack(x_.data(), m_);       // ... and iterate state
    pack(z_.data(), 2 * m_);
    pack(y_.data(), 2 * m_);
    for (std::size_t k = 0; k < active; ++k) {
      status[k] = QpStatus::kMaxIterations;
      iters[k] = 0;
      frozen[k] = false;
    }
    cols = active;
    S = ns;
    chunk_stride_ = ns;
    n_elems = m_ * S;
    c_elems = 2 * n_elems;
  };

  std::size_t iter = 0;
  for (; iter < settings_.max_iterations && active > 0; ++iter) {
    // One ADMM step over every lane at once; see QpSolver::solve for the
    // scalar original each line mirrors.
    simd::scale_sub(rho, z_.data(), y_.data(), rz_.data(), c_elems);
    lanes_apply_at(rz_.data(), rhs_.data());
    simd::add_scaled_sub(settings_.sigma, x_.data(), q_.data(), rhs_.data(),
                         n_elems);
    structured_->solve_lanes_into(rhs_.data(), x_tilde_.data(),
                                  scratch_.data(), S, S);
    lanes_apply_a(x_tilde_.data(), ax_tilde_.data());
    simd::axpby(alpha, x_tilde_.data(), 1.0 - alpha, x_.data(), x_.data(),
                n_elems);
    simd::relaxed_step_add_scaled(alpha, ax_tilde_.data(), 1.0 - alpha,
                                  z_.data(), y_.data(), rho, z_next_.data(),
                                  c_elems);
    simd::clamp_spans(z_next_.data(), lower_.data(), upper_.data(), c_elems);
    simd::dual_update(rho, alpha, ax_tilde_.data(), 1.0 - alpha, z_.data(),
                      z_next_.data(), y_.data(), c_elems);
    std::swap(z_, z_next_);

    if ((iter + 1) % check_interval != 0) continue;

    lanes_apply_a(x_.data(), ax_.data());
    lanes_apply_p(x_.data(), px_.data());
    lanes_apply_at(y_.data(), aty_.data());
    lanes_residuals(q_.data());
    for (std::size_t c = 0; c < cols; ++c) {
      if (frozen[c]) continue;
      if (prim_[c] <= eps_prim_[c] && dual_[c] <= eps_dual_[c]) {
        status[c] = QpStatus::kSolved;
        iters[c] = iter + 1;
        frozen[c] = true;
        --active;
        capture(c);
      }
    }
    compact();
  }

  // Lanes that hit the iteration cap: recompute residuals from the final
  // state (the scalar path's unconditional exit recompute) and snapshot.
  if (active > 0) {
    lanes_apply_a(x_.data(), ax_.data());
    lanes_apply_p(x_.data(), px_.data());
    lanes_apply_at(y_.data(), aty_.data());
    lanes_residuals(q_.data());
    for (std::size_t c = 0; c < cols; ++c) {
      if (frozen[c]) continue;
      status[c] = QpStatus::kMaxIterations;
      iters[c] = iter;
      capture(c);
      if (inst != nullptr) inst->not_converged->add(1);
    }
  }

  // Per-lane finish, identical to the scalar epilogue: optional polish of
  // the reported z, objective at x. Everything is in results[] by now, so
  // this runs over the caller's slots, not chunk columns.
  std::size_t converged = 0;
  for (std::size_t l = 0; l < count; ++l) {
    QpResult& r = results[l];
    if (r.status == QpStatus::kInfeasible) continue;
    if (r.status == QpStatus::kSolved) ++converged;
    if (settings_.polish)
      simd::clamp_spans(r.z.data(), lanes[l].lower.data(),
                        lanes[l].upper.data(), 2 * m_);
    r.objective = fs_ops::half_quadratic(r.x) + dot(lanes[l].q, r.x);
    if (inst != nullptr) {
      inst->iterations->add(r.iterations);
      inst->iterations_hist->record(static_cast<double>(r.iterations));
    }
  }
  span.field("converged", converged);
}

}  // namespace smoother::solver
