// BatchSolver: K same-(m, rho, sigma) structured FS solves in one pass.
//
// The fleet funnels thousands of same-horizon tenant intervals through the
// structured scalar path one tenant at a time (solver_pool.hpp shares the
// factorization, not the iteration work). BatchSolver shares both: one
// StructuredKkt factorization and a structure-of-arrays ADMM loop whose
// inner dimension is the *lane* (tenant), so every vector update, the
// tridiagonal substitution sweeps and the residual reductions vectorize
// across lanes with unit stride regardless of the horizon length m.
//
// Layout: lane-major SoA — element (i, lane) of an m-row quantity lives at
// [i * stride + lane] with stride rounded up to the SIMD width and the
// padding lanes zero-filled (zero bounds + zero q keep padding lanes at
// exactly 0.0, so they can ride along in every kernel without diverging).
//
// Exactness contract (DESIGN.md §4k): every lane performs the scalar ADMM's
// operation sequence exactly — elementwise kernels are shared with
// qp_solver.cpp, reductions run sequentially over i with one vector of
// per-lane accumulators, projection uses std::clamp semantics, and there is
// no cross-lane arithmetic anywhere. On tiers whose single-stream scan
// kernels do not reassociate (scalar/sse2/neon — see simd::kReassociates) a
// lane's result is bit-identical to a cold QpSolver::solve of the same
// problem, including the iteration count, residuals and statuses; on the
// avx2 tier the single-stream path reassociates its scans, so agreement is
// within solver tolerance instead.
//
// Lanes converge independently: each lane's result is snapshotted at the
// residual-check cadence where it converges (the same iterate the scalar
// solver would return) and the remaining lanes keep iterating. Finished
// lanes are then compacted out — the active columns are left-packed into
// the narrowest stride that holds them (pure column moves, bit patterns
// untouched), so total work tracks the per-lane iteration sum instead of
// lanes x slowest-lane.
//
// Like QpSolver, a BatchSolver is single-threaded mutable state; the fleet
// gives each shard its own (via that shard's SolverPool). Steady-state
// solves are allocation-free once the workspace has grown to the chunk
// size, and solve() processes at most kMaxLanes lanes per chunk.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "smoother/solver/qp.hpp"
#include "smoother/solver/simd.hpp"
#include "smoother/solver/structured_kkt.hpp"

namespace smoother::solver {

class BatchSolver {
 public:
  /// Upper bound on lanes per SoA chunk; solve() splits larger batches.
  /// Keeps the workspace cache-resident at fleet horizons (23 SoA rows of
  /// 64 lanes at m = 1440 is ~17 MB) without limiting batch sizes.
  static constexpr std::size_t kMaxLanes = 64;

  /// One lane's problem data: views into caller storage, shapes as in the
  /// structured QpProblem (q has m entries, bounds have 2m).
  struct Lane {
    std::span<const double> q;
    std::span<const double> lower;
    std::span<const double> upper;
  };

  /// Factorizes the shared structured KKT system for horizon m under
  /// `settings` (rho/sigma are baked into the factor, the rest are adopted
  /// as the per-solve knobs). kNumericalError when the factorization fails.
  QpStatus setup(std::size_t m, const QpSettings& settings);

  /// Adopts non-structural settings (eps, alpha, iteration caps, polish)
  /// without refactorizing. Throws std::invalid_argument if rho or sigma
  /// differ from the factorized ones — that needs a new setup().
  void adopt_settings(const QpSettings& settings);

  /// Solves lanes[l] for every l; results[l] receives what a cold
  /// QpSolver::solve of that lane would produce (see the file comment for
  /// the exactness contract). results.size() must equal lanes.size();
  /// std::invalid_argument on shape mismatches. Requires setup().
  void solve(std::span<const Lane> lanes, std::span<QpResult> results);

  [[nodiscard]] bool is_setup() const { return structured_.has_value(); }
  [[nodiscard]] std::size_t dimension() const { return m_; }
  [[nodiscard]] const QpSettings& settings() const { return settings_; }

  /// Lifetime counters (mirrored into obs as solver.qp.batched_*).
  [[nodiscard]] std::size_t setup_count() const { return setup_count_; }
  [[nodiscard]] std::size_t solve_count() const { return solve_count_; }
  [[nodiscard]] std::size_t lane_count() const { return lane_count_; }

 private:
  void ensure_workspace();
  void solve_chunk(std::span<const Lane> lanes, std::span<QpResult> results);

  // Lane-batched fs_ops: sequential in i, vectorized across lanes.
  void lanes_apply_a(const double* src, double* dst) const;
  void lanes_apply_at(const double* src, double* dst) const;
  void lanes_apply_p(const double* src, double* dst) const;
  void lanes_residuals(const double* q_soa);

  std::size_t m_ = 0;
  std::size_t stride_ = 0;  ///< workspace capacity: kMaxLanes rounded up
  /// Row stride of the chunk being solved: the lane count rounded up to
  /// the SIMD width. Work (elementwise sweeps, tridiagonal lanes, residual
  /// columns) scales with the occupied lanes, not the 64-lane capacity —
  /// a 1-lane batch costs ~kWidth lanes, not kMaxLanes.
  std::size_t chunk_stride_ = 0;
  QpSettings settings_;
  std::optional<StructuredKkt> structured_;

  // SoA workspace, 64-byte aligned. m rows x stride_ lanes...
  simd::AlignedVector q_, x_, x_tilde_, rhs_, px_, aty_, scratch_;
  // ... and 2m rows x stride_ lanes.
  simd::AlignedVector lower_, upper_, z_, z_next_, y_, rz_, ax_tilde_, ax_;
  // Per-lane residual state, written by lanes_residuals.
  std::vector<double> prim_, dual_, eps_prim_, eps_dual_;

  std::size_t setup_count_ = 0;
  std::size_t solve_count_ = 0;
  std::size_t lane_count_ = 0;
};

}  // namespace smoother::solver
