// Structure-exploiting kernels for the Flexible Smoothing QP.
//
// Every FS interval (paper Eq. 8-11) has the same algebraic shape for
// horizon length m:
//
//   P = (2/m) (I - (1/m) 1 1ᵀ)      rank-one-corrected scaled identity
//   A = [ I ; L ]                    identity box rows stacked on the
//                                    lower-triangular all-ones prefix-sum
//                                    block L (the SoC corridor rows)
//
// which makes every dense operation of the ADMM loop replaceable by an
// O(m) implicit one:
//
//   A x   = [ x ; prefix-sums of x ]
//   Aᵀ y  = y_box + suffix-sums of y_soc
//   P x   = (2/m) (x - mean(x))
//
// and reduces the KKT matrix to tridiagonal-plus-rank-one. With
// c = 2/m + sigma + rho and beta = 2/m²:
//
//   K = P + sigma I + rho AᵀA
//     = c I + rho LᵀL - beta 1 1ᵀ
//
// The prefix-sum operator L is inverted by the first-difference operator
// D = L⁻¹ (bidiagonal: +1 diagonal, -1 subdiagonal), which gives the
// congruence
//
//   c I + rho LᵀL = Lᵀ (c DᵀD + rho I) L,      M := c DᵀD + rho I
//
// where M is tridiagonal SPD (DᵀD is the second-difference Laplacian).
// Hence K₀⁻¹ b = D · M⁻¹ · Dᵀ b — two O(m) difference passes around one
// O(m) tridiagonal solve — and the rank-one term folds in by
// Sherman-Morrison with w = K₀⁻¹ 1 precomputed at setup:
//
//   K⁻¹ b = K₀⁻¹ b + beta (1ᵀ K₀⁻¹ b) / (1 - beta 1ᵀ w) · w
//
// Setup is O(m) (one tridiagonal factorization + one solve for w) and each
// application is O(m) with zero allocations, versus O(m³)/O(m²) for the
// dense path. See DESIGN.md §4g for the derivation and fallback rules.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "smoother/solver/banded.hpp"
#include "smoother/solver/matrix.hpp"

namespace smoother::solver {

/// Implicit operators of the FS constraint/objective structure. All are
/// O(m), allocation-free, and require out.size() to match the documented
/// shape (std::invalid_argument otherwise). x and out must not alias.
namespace fs_ops {

/// out = A x = [ x ; prefix-sums of x ]; out.size() == 2 * x.size().
void apply_a(std::span<const double> x, std::span<double> out);

/// out = Aᵀ y = y[0..m) + suffix-sums of y[m..2m); out.size() == y.size()/2.
void apply_at(std::span<const double> y, std::span<double> out);

/// out = P x = (2/m) (x - mean(x)); out.size() == x.size().
void apply_p(std::span<const double> x, std::span<double> out);

/// 0.5 xᵀ P x = population variance of x (the FS objective's quadratic
/// part) — O(m), no matrix.
[[nodiscard]] double half_quadratic(std::span<const double> x);

}  // namespace fs_ops

/// Structured factorization of the FS KKT matrix
/// K = (2/m + sigma + rho) I + rho LᵀL - (2/m²) 1 1ᵀ: one tridiagonal
/// Cholesky factor plus the Sherman-Morrison rank-one state. O(m) setup,
/// O(m) allocation-free solves.
class StructuredKkt {
 public:
  /// Factorizes the KKT system for horizon length m under (sigma, rho).
  /// std::nullopt when the system is not numerically positive definite
  /// (tridiagonal pivot failure or a non-positive Sherman-Morrison
  /// denominator) — the same contract as the dense Cholesky.
  static std::optional<StructuredKkt> factorize(std::size_t m, double sigma,
                                                double rho);

  /// x = K⁻¹ b. scratch must have m entries; b, x and scratch must be
  /// pairwise non-aliasing. Zero allocations.
  void solve_into(std::span<const double> b, std::span<double> x,
                  std::span<double> scratch) const;

  /// Lane-batched K⁻¹: `lanes` independent right-hand sides in lane-major
  /// layout with row stride `stride` (element (i, lane) at
  /// [i * stride + lane]; b, x and scratch are m * stride arrays, pairwise
  /// non-aliasing). One shared factorization, difference/solve/rank-one
  /// sweeps vectorized across lanes; per lane bit-identical to solve_into.
  /// Zero allocations.
  void solve_lanes_into(const double* b, double* x, double* scratch,
                        std::size_t lanes, std::size_t stride) const;

  /// Allocating convenience (tests/diagnostics).
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t dimension() const { return m_; }

 private:
  StructuredKkt(std::size_t m, double beta, double denom,
                BandedCholesky factor, Vector w)
      : m_(m),
        beta_(beta),
        denom_(denom),
        factor_(std::move(factor)),
        w_(std::move(w)) {}

  std::size_t m_;
  double beta_;   ///< rank-one weight 2/m²
  double denom_;  ///< Sherman-Morrison denominator 1 - beta 1ᵀw
  BandedCholesky factor_;  ///< tridiagonal factor of M = c DᵀD + rho I
  Vector w_;               ///< K₀⁻¹ 1
};

}  // namespace smoother::solver
