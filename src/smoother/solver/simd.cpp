#include "smoother/solver/simd.hpp"

// scalar_ref lives out of line so the no-auto-vectorize attribute sticks:
// inlined copies would be re-vectorized by the caller's optimization flags
// and the micro-bench baseline would silently measure SIMD vs SIMD.

#if defined(__GNUC__) && !defined(__clang__)
#define SMOOTHER_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define SMOOTHER_NO_AUTOVEC
#endif

namespace smoother::solver::simd {

const char* tier_name() noexcept {
  switch (kTier) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSse2:
      return "sse2";
    case Tier::kNeon:
      return "neon";
    case Tier::kScalar:
      return "scalar";
  }
  return "unknown";
}

namespace scalar_ref {

SMOOTHER_NO_AUTOVEC
void axpby(double a, const double* x, double b, const double* y, double* out,
           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

SMOOTHER_NO_AUTOVEC
void add_scaled_sub(double a, const double* x, const double* y, double* out,
                    std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] += a * x[i] - y[i];
}

SMOOTHER_NO_AUTOVEC
void relaxed_step_add_scaled(double a, const double* u, double b,
                             const double* v, const double* y, double rho,
                             double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a * u[i] + b * v[i] + y[i] / rho;
  }
}

SMOOTHER_NO_AUTOVEC
void dual_update(double rho, double a, const double* u, double b,
                 const double* v, const double* w, double* y,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += rho * (a * u[i] + b * v[i] - w[i]);
  }
}

SMOOTHER_NO_AUTOVEC
void scale_sub(double a, const double* x, const double* y, double* out,
               std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] - y[i];
}

SMOOTHER_NO_AUTOVEC
void clamp_spans(double* x, const double* lo, const double* hi,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    x[i] = (v < lo[i]) ? lo[i] : (hi[i] < v) ? hi[i] : v;
  }
}

SMOOTHER_NO_AUTOVEC
void clamp_value(double value, const double* lo, const double* hi,
                 double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (value < lo[i]) ? lo[i] : (hi[i] < value) ? hi[i] : value;
  }
}

SMOOTHER_NO_AUTOVEC
double max_abs(const double* x, std::size_t n) noexcept {
  double out = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = std::abs(x[i]);
    out = (out < v) ? v : out;
  }
  return out;
}

SMOOTHER_NO_AUTOVEC
double max_abs_diff(const double* a, const double* b, std::size_t n) noexcept {
  double out = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = std::abs(a[i] - b[i]);
    out = (out < v) ? v : out;
  }
  return out;
}

SMOOTHER_NO_AUTOVEC
double max_abs_sum3(const double* a, const double* b, const double* c,
                    std::size_t n) noexcept {
  double out = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = std::abs(a[i] + b[i] + c[i]);
    out = (out < v) ? v : out;
  }
  return out;
}

SMOOTHER_NO_AUTOVEC
double prefix_sum_into(const double* x, double* out, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += x[i];
    out[i] = total;
  }
  return total;
}

SMOOTHER_NO_AUTOVEC
void suffix_sum_add(const double* head, const double* tail, double* out,
                    std::size_t n) noexcept {
  double suffix = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    suffix += tail[i];
    out[i] = head[i] + suffix;
  }
}

SMOOTHER_NO_AUTOVEC
double sum(const double* x, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += x[i];
  return total;
}

SMOOTHER_NO_AUTOVEC
void scale_center(double scale, const double* x, double mean, double* out,
                  std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = scale * (x[i] - mean);
}

}  // namespace scalar_ref

}  // namespace smoother::solver::simd
