// Convex quadratic programming via ADMM (operator splitting, OSQP-style).
//
//   minimize    (1/2) xᵀ P x + qᵀ x
//   subject to  l <= A x <= u           (elementwise)
//
// with P symmetric positive semidefinite. The Flexible Smoothing problem
// (paper Eq. 9-11) is exactly this shape after rewriting the variance
// objective as a quadratic form and the battery state-of-charge corridor as
// bounds on cumulative sums (rows of A form a lower-triangular all-ones
// block).
//
// Algorithm (Stellato et al., "OSQP: an operator splitting solver for
// quadratic programs"):
//   x~      <- solve (P + sigma I + rho AᵀA) x~ = sigma x - q + Aᵀ(rho z - y)
//   x+      <- alpha x~ + (1-alpha) x
//   z+      <- clamp(A x~ * alpha + (1-alpha) z + y/rho, l, u)
//   y+      <- y + rho (A x~ alpha + (1-alpha) z - z+)
// The KKT matrix is factorized once (Cholesky) and reused every iteration.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "smoother/solver/cholesky.hpp"
#include "smoother/solver/matrix.hpp"

namespace smoother::solver {

/// Algebraic structure of a QP, used by QpSolver to pick a solve path.
enum class QpStructure {
  /// No assumed structure: P and A are dense, setup is O(n³).
  kGeneric,
  /// Flexible Smoothing shape (paper Eq. 9-11): P is the population-variance
  /// form (2/n)(I - (1/n)11ᵀ) and A = [I ; L] with L the lower-triangular
  /// all-ones prefix-sum block, so num_constraints == 2 * num_variables.
  /// P and A may be left empty — the solver never materializes them and
  /// runs O(n) structured kernels instead (see structured_kkt.hpp).
  kSmoothing,
};

/// Problem data for the QP. Shapes: P is n-by-n, q has n entries, A is
/// m-by-n, l and u have m entries with l <= u elementwise.
///
/// For `structure == kSmoothing`, P and A are implied by the tag and may be
/// empty (0-by-0); when present they must still have the generic shapes so a
/// tagged problem can also be solved densely for A/B comparison.
struct QpProblem {
  Matrix p;
  Vector q;
  Matrix a;
  Vector lower;
  Vector upper;
  QpStructure structure = QpStructure::kGeneric;

  [[nodiscard]] std::size_t num_variables() const { return q.size(); }
  [[nodiscard]] std::size_t num_constraints() const { return lower.size(); }

  /// Validates shapes and bound ordering; throws std::invalid_argument.
  void validate() const;

  /// Objective value (1/2)xᵀPx + qᵀx. For kSmoothing problems with no
  /// materialized P this is the O(n) variance form Var(x) + qᵀx.
  [[nodiscard]] double objective(std::span<const double> x) const;

  /// Worst elementwise constraint violation of x (0 when feasible). For
  /// kSmoothing problems with no materialized A, A x is computed implicitly.
  [[nodiscard]] double constraint_violation(std::span<const double> x) const;
};

/// Solver tuning knobs; the defaults solve the FS problems to well below
/// the accuracy that matters for battery scheduling.
struct QpSettings {
  double rho = 0.1;          ///< ADMM penalty
  double sigma = 1e-6;       ///< regularization making the KKT system PD
  double alpha = 1.6;        ///< over-relaxation in (0, 2)
  double eps_abs = 1e-6;     ///< absolute convergence tolerance
  double eps_rel = 1e-6;     ///< relative convergence tolerance
  std::size_t max_iterations = 20000;
  std::size_t check_interval = 10;  ///< residual check cadence
  bool polish = true;  ///< clamp z to bounds and re-derive x report from x~
};

enum class QpStatus {
  kSolved,          ///< converged within tolerances
  kMaxIterations,   ///< best iterate returned, not converged
  kInfeasible,      ///< problem bounds are inconsistent (l > u)
  kNumericalError,  ///< KKT factorization failed
};

[[nodiscard]] std::string to_string(QpStatus status);

/// Result of a QP solve. `x` is always populated for kSolved and
/// kMaxIterations (best iterate so far).
struct QpResult {
  QpStatus status = QpStatus::kNumericalError;
  Vector x;
  Vector z;                ///< constraint-space iterate (A x projected)
  double objective = 0.0;  ///< objective at x
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  std::size_t iterations = 0;

  [[nodiscard]] bool ok() const { return status == QpStatus::kSolved; }
};

/// Solves the QP with ADMM. The problem is validated first
/// (std::invalid_argument on shape errors).
[[nodiscard]] QpResult solve_qp(const QpProblem& problem,
                                const QpSettings& settings = {});

/// Builds the quadratic form of the population-variance objective
///   (1/2) xᵀ P x with P = (2/n) (I - (1/n) 1 1ᵀ),
/// so that (1/2)xᵀPx equals Var(x). Minimizing Var(u + s) over s maps to
/// P_s = P and q = P u (constant terms dropped).
[[nodiscard]] Matrix variance_quadratic_form(std::size_t n);

/// Detrended variant: (1/2)xᵀPx equals the mean squared residual of x
/// around its own least-squares line, P = (2/n) M with M the projector
/// onto the orthogonal complement of span{1, t}. Minimizing this flattens
/// *noise* while letting a deterministic ramp (e.g. the clear-sky solar
/// envelope) pass through. Requires n >= 3.
[[nodiscard]] Matrix detrended_variance_quadratic_form(std::size_t n);

}  // namespace smoother::solver
