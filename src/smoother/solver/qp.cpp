#include "smoother/solver/qp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/obs/metrics.hpp"
#include "smoother/obs/profile.hpp"
#include "smoother/obs/trace.hpp"

namespace smoother::solver {

namespace {

/// solve_qp's instrument handles, resolved once per (registry, thread)
/// instead of by-name on every solve — the name lookup is a mutex + map
/// walk, far more than the relaxed add it guards. Keyed on the registry's
/// generation id so a new registry at a recycled address re-resolves.
struct SolverInstruments {
  obs::MetricsRegistry* registry = nullptr;
  std::uint64_t registry_id = 0;
  obs::Counter* solves = nullptr;
  obs::Counter* infeasible = nullptr;
  obs::Counter* factorizations = nullptr;
  obs::Counter* numerical_errors = nullptr;
  obs::Counter* iterations = nullptr;
  obs::Counter* reuse_hits = nullptr;
  obs::Counter* not_converged = nullptr;
  obs::Gauge* last_primal = nullptr;
  obs::Gauge* last_dual = nullptr;
  obs::Histogram* solve_ms = nullptr;
  obs::Histogram* iterations_hist = nullptr;
};

SolverInstruments* solver_instruments(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return nullptr;
  thread_local SolverInstruments cache;
  if (cache.registry != metrics || cache.registry_id != metrics->id()) {
    cache.registry = metrics;
    cache.registry_id = metrics->id();
    cache.solves = &metrics->counter("solver.qp.solves");
    cache.infeasible = &metrics->counter("solver.qp.infeasible");
    cache.factorizations = &metrics->counter("solver.qp.factorizations");
    cache.numerical_errors = &metrics->counter("solver.qp.numerical_errors");
    cache.iterations = &metrics->counter("solver.qp.iterations");
    cache.reuse_hits = &metrics->counter("solver.qp.factorization_reuse_hits");
    cache.not_converged = &metrics->counter("solver.qp.not_converged");
    cache.last_primal = &metrics->gauge("solver.qp.last_primal_residual");
    cache.last_dual = &metrics->gauge("solver.qp.last_dual_residual");
    cache.solve_ms = &metrics->timing_histogram("solver.qp.solve_ms");
    cache.iterations_hist = &metrics->histogram(
        "solver.qp.iterations_hist",
        {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 20000});
  }
  return &cache;
}

}  // namespace

void QpProblem::validate() const {
  const std::size_t n = q.size();
  const std::size_t m = lower.size();
  if (p.rows() != n || p.cols() != n)
    throw std::invalid_argument("QpProblem: P must be n-by-n");
  if (a.rows() != m || a.cols() != n)
    throw std::invalid_argument("QpProblem: A must be m-by-n");
  if (upper.size() != m)
    throw std::invalid_argument("QpProblem: bound size mismatch");
}

double QpProblem::objective(std::span<const double> x) const {
  const Vector px = p * x;
  return 0.5 * dot(x, px) + dot(q, x);
}

double QpProblem::constraint_violation(std::span<const double> x) const {
  const Vector ax = a * x;
  double worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    worst = std::max(worst, lower[i] - ax[i]);
    worst = std::max(worst, ax[i] - upper[i]);
  }
  return std::max(worst, 0.0);
}

std::string to_string(QpStatus status) {
  switch (status) {
    case QpStatus::kSolved:
      return "solved";
    case QpStatus::kMaxIterations:
      return "max-iterations";
    case QpStatus::kInfeasible:
      return "infeasible";
    case QpStatus::kNumericalError:
      return "numerical-error";
  }
  return "?";
}

Matrix variance_quadratic_form(std::size_t n) {
  if (n == 0) throw std::invalid_argument("variance_quadratic_form: n == 0");
  const double nn = static_cast<double>(n);
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p(i, j) = (i == j ? 2.0 / nn : 0.0) - 2.0 / (nn * nn);
  return p;
}

Matrix detrended_variance_quadratic_form(std::size_t n) {
  if (n < 3)
    throw std::invalid_argument(
        "detrended_variance_quadratic_form: need n >= 3");
  const double nn = static_cast<double>(n);
  // Orthonormal basis of span{1, t}: e1 = 1/sqrt(n), e2 = centered time
  // index normalized. M = I - e1 e1ᵀ - e2 e2ᵀ.
  Vector e2(n);
  const double mean_t = (nn - 1.0) / 2.0;
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    e2[i] = static_cast<double>(i) - mean_t;
    norm_sq += e2[i] * e2[i];
  }
  const double inv_norm = 1.0 / std::sqrt(norm_sq);
  for (double& v : e2) v *= inv_norm;

  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double m_ij =
          (i == j ? 1.0 : 0.0) - 1.0 / nn - e2[i] * e2[j];
      p(i, j) = 2.0 / nn * m_ij;
    }
  }
  return p;
}

QpResult solve_qp(const QpProblem& problem, const QpSettings& settings) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();

  // Observability (off = one relaxed load each): the qp-solve span and the
  // solver counters that would otherwise die inside QpResult.
  SolverInstruments* inst = solver_instruments(obs::global_metrics());
  obs::Span span(obs::global_tracer(), "qp-solve");
  span.field("variables", n).field("constraints", m);
  obs::ScopedTimer solve_timer(inst ? inst->solve_ms : nullptr);
  if (inst != nullptr) inst->solves->add(1);

  QpResult result;
  for (std::size_t i = 0; i < m; ++i) {
    if (problem.lower[i] > problem.upper[i]) {
      result.status = QpStatus::kInfeasible;
      span.field("status", to_string(result.status));
      if (inst != nullptr) inst->infeasible->add(1);
      return result;
    }
  }

  // KKT matrix K = P + sigma I + rho AᵀA, factorized once.
  Matrix kkt = problem.p;
  kkt.add_diagonal(settings.sigma);
  const Matrix at = problem.a.transpose();
  const Matrix ata = at * problem.a;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      kkt(r, c) += settings.rho * ata(r, c);
  const auto factor = Cholesky::factorize(kkt);
  if (inst != nullptr) inst->factorizations->add(1);
  if (!factor) {
    result.status = QpStatus::kNumericalError;
    span.field("status", to_string(result.status));
    if (inst != nullptr) inst->numerical_errors->add(1);
    return result;
  }

  Vector x(n, 0.0);
  Vector z(m, 0.0);
  Vector y(m, 0.0);
  // Start z inside the bounds so the first iterations are sensible.
  for (std::size_t i = 0; i < m; ++i)
    z[i] = std::clamp(0.0, problem.lower[i], problem.upper[i]);

  const double alpha = settings.alpha;
  const double rho = settings.rho;

  auto clamp_bounds = [&](Vector& v) {
    for (std::size_t i = 0; i < m; ++i)
      v[i] = std::clamp(v[i], problem.lower[i], problem.upper[i]);
  };

  std::size_t iter = 0;
  for (; iter < settings.max_iterations; ++iter) {
    // rhs = sigma x - q + Aᵀ (rho z - y)
    Vector rz(m);
    for (std::size_t i = 0; i < m; ++i) rz[i] = rho * z[i] - y[i];
    Vector rhs = problem.a.transpose_times(rz);
    for (std::size_t i = 0; i < n; ++i) rhs[i] += settings.sigma * x[i] - problem.q[i];

    const Vector x_tilde = factor->solve(rhs);
    const Vector ax_tilde = problem.a * x_tilde;

    // Over-relaxed updates.
    for (std::size_t i = 0; i < n; ++i)
      x[i] = alpha * x_tilde[i] + (1.0 - alpha) * x[i];

    Vector z_next(m);
    for (std::size_t i = 0; i < m; ++i)
      z_next[i] = alpha * ax_tilde[i] + (1.0 - alpha) * z[i] + y[i] / rho;
    clamp_bounds(z_next);

    for (std::size_t i = 0; i < m; ++i)
      y[i] += rho * (alpha * ax_tilde[i] + (1.0 - alpha) * z[i] - z_next[i]);
    z = std::move(z_next);

    if ((iter + 1) % settings.check_interval != 0) continue;

    // Residuals (OSQP eq. 24-25).
    const Vector ax = problem.a * x;
    const Vector px = problem.p * x;
    const Vector aty = problem.a.transpose_times(y);
    double prim = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      prim = std::max(prim, std::abs(ax[i] - z[i]));
    double dual = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      dual = std::max(dual, std::abs(px[i] + problem.q[i] + aty[i]));

    const double eps_prim =
        settings.eps_abs +
        settings.eps_rel * std::max(norm_inf(ax), norm_inf(z));
    const double eps_dual =
        settings.eps_abs +
        settings.eps_rel * std::max({norm_inf(px), norm_inf(problem.q),
                                     norm_inf(aty)});
    result.primal_residual = prim;
    result.dual_residual = dual;
    if (prim <= eps_prim && dual <= eps_dual) {
      ++iter;
      result.status = QpStatus::kSolved;
      break;
    }
  }

  if (result.status != QpStatus::kSolved)
    result.status = QpStatus::kMaxIterations;
  result.iterations = iter;
  result.x = std::move(x);
  result.z = std::move(z);
  if (settings.polish) clamp_bounds(result.z);
  result.objective = problem.objective(result.x);

  span.field("status", to_string(result.status))
      .field("iterations", result.iterations)
      .field("primal_residual", result.primal_residual)
      .field("dual_residual", result.dual_residual);
  if (inst != nullptr) {
    inst->iterations->add(result.iterations);
    // The KKT factor is computed once and reused by every ADMM iteration
    // after the first — the reuse count is what makes the one-factorization
    // design pay.
    if (result.iterations > 1)
      inst->reuse_hits->add(result.iterations - 1);
    if (result.status == QpStatus::kMaxIterations)
      inst->not_converged->add(1);
    inst->last_primal->set(result.primal_residual);
    inst->last_dual->set(result.dual_residual);
    inst->iterations_hist->record(static_cast<double>(result.iterations));
  }
  return result;
}

}  // namespace smoother::solver
