#include "smoother/solver/qp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/solver/qp_solver.hpp"
#include "smoother/solver/structured_kkt.hpp"

namespace smoother::solver {

void QpProblem::validate() const {
  const std::size_t n = q.size();
  const std::size_t m = lower.size();
  if (upper.size() != m)
    throw std::invalid_argument("QpProblem: bound size mismatch");
  if (structure == QpStructure::kSmoothing) {
    if (n == 0)
      throw std::invalid_argument("QpProblem: kSmoothing needs n >= 1");
    if (m != 2 * n)
      throw std::invalid_argument(
          "QpProblem: kSmoothing requires 2n constraint rows (box + SoC)");
    // P and A are implied by the tag; when materialized (dense A/B runs)
    // they must still carry the generic shapes.
    const bool p_ok = p.rows() == 0 ? p.cols() == 0
                                    : p.rows() == n && p.cols() == n;
    const bool a_ok = a.rows() == 0 ? a.cols() == 0
                                    : a.rows() == m && a.cols() == n;
    if (!p_ok || !a_ok)
      throw std::invalid_argument(
          "QpProblem: kSmoothing matrices must be empty or full-shape");
    return;
  }
  if (p.rows() != n || p.cols() != n)
    throw std::invalid_argument("QpProblem: P must be n-by-n");
  if (a.rows() != m || a.cols() != n)
    throw std::invalid_argument("QpProblem: A must be m-by-n");
}

double QpProblem::objective(std::span<const double> x) const {
  if (structure == QpStructure::kSmoothing && p.rows() == 0)
    return fs_ops::half_quadratic(x) + dot(q, x);
  const Vector px = p * x;
  return 0.5 * dot(x, px) + dot(q, x);
}

double QpProblem::constraint_violation(std::span<const double> x) const {
  Vector ax;
  if (structure == QpStructure::kSmoothing && a.rows() == 0) {
    ax.assign(2 * x.size(), 0.0);
    fs_ops::apply_a(x, ax);
  } else {
    ax = a * x;
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    worst = std::max(worst, lower[i] - ax[i]);
    worst = std::max(worst, ax[i] - upper[i]);
  }
  return std::max(worst, 0.0);
}

std::string to_string(QpStatus status) {
  switch (status) {
    case QpStatus::kSolved:
      return "solved";
    case QpStatus::kMaxIterations:
      return "max-iterations";
    case QpStatus::kInfeasible:
      return "infeasible";
    case QpStatus::kNumericalError:
      return "numerical-error";
  }
  return "?";
}

Matrix variance_quadratic_form(std::size_t n) {
  if (n == 0) throw std::invalid_argument("variance_quadratic_form: n == 0");
  const double nn = static_cast<double>(n);
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p(i, j) = (i == j ? 2.0 / nn : 0.0) - 2.0 / (nn * nn);
  return p;
}

Matrix detrended_variance_quadratic_form(std::size_t n) {
  if (n < 3)
    throw std::invalid_argument(
        "detrended_variance_quadratic_form: need n >= 3");
  const double nn = static_cast<double>(n);
  // Orthonormal basis of span{1, t}: e1 = 1/sqrt(n), e2 = centered time
  // index normalized. M = I - e1 e1ᵀ - e2 e2ᵀ.
  Vector e2(n);
  const double mean_t = (nn - 1.0) / 2.0;
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    e2[i] = static_cast<double>(i) - mean_t;
    norm_sq += e2[i] * e2[i];
  }
  const double inv_norm = 1.0 / std::sqrt(norm_sq);
  for (double& v : e2) v *= inv_norm;

  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double m_ij =
          (i == j ? 1.0 : 0.0) - 1.0 / nn - e2[i] * e2[j];
      p(i, j) = 2.0 / nn * m_ij;
    }
  }
  return p;
}

QpResult solve_qp(const QpProblem& problem, const QpSettings& settings) {
  // One-shot wrapper over the stateful solver: setup (validate + factorize)
  // then a single cold solve. The ADMM core lives in qp_solver.cpp.
  QpSolver solver;
  (void)solver.setup(problem, settings);
  return solver.solve();
}

}  // namespace smoother::solver
