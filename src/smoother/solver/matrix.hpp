// Dense linear algebra: the minimum needed by the QP and least-squares
// solvers. Matrices are row-major; vectors are std::vector<double>.
//
// Problem sizes in Smoother are tiny (the per-hour Flexible Smoothing QP has
// 12 variables), so the implementation favours clarity and exact shape
// checking over blocking/vectorization.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace smoother::solver {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols);

  /// Matrix from nested initializer lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n-by-n identity.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(std::span<const double> d);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<const double> data() const { return data_; }

  [[nodiscard]] Matrix transpose() const;

  [[nodiscard]] Matrix operator+(const Matrix& other) const;
  [[nodiscard]] Matrix operator-(const Matrix& other) const;
  [[nodiscard]] Matrix operator*(const Matrix& other) const;
  [[nodiscard]] Matrix operator*(double s) const;

  /// Matrix-vector product (x.size() must equal cols()).
  [[nodiscard]] Vector operator*(std::span<const double> x) const;

  /// Allocation-free matrix-vector product: out = this * x. Same arithmetic
  /// as operator*; out must not alias x.
  void times_into(std::span<const double> x, std::span<double> out) const;

  /// yᵀ = xᵀ * this, i.e. transpose-product without materializing Aᵀ.
  [[nodiscard]] Vector transpose_times(std::span<const double> x) const;

  /// Allocation-free transpose-product: out = thisᵀ * x. Same arithmetic as
  /// transpose_times; out must not alias x.
  void transpose_times_into(std::span<const double> x,
                            std::span<double> out) const;

  /// Gram matrix AᵀA, computed directly (upper triangle then mirrored)
  /// without materializing the transpose. Entry (i, j) accumulates
  /// Σ_r A(r,i)·A(r,j) in row order, matching transpose()*this bit-for-bit
  /// on the upper triangle.
  [[nodiscard]] Matrix gram() const;

  /// Adds s to every diagonal entry (square matrices only).
  void add_diagonal(double s);

  /// Max-abs entry difference; matrices must share a shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// Human-readable rendering for diagnostics.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Matrix&) const = default;

 private:
  void require_same_shape(const Matrix& other) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> a);

/// Infinity norm (max |a_i|); 0 for empty input.
[[nodiscard]] double norm_inf(std::span<const double> a);

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Elementwise a - b.
[[nodiscard]] Vector subtract(std::span<const double> a,
                              std::span<const double> b);

/// Elementwise a + b.
[[nodiscard]] Vector add(std::span<const double> a, std::span<const double> b);

/// alpha * a.
[[nodiscard]] Vector scale(double alpha, std::span<const double> a);

}  // namespace smoother::solver
