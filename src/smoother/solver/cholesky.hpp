// Cholesky (LLᵀ) and LDLᵀ factorizations with triangular solves.
//
// The ADMM QP solver factorizes (P + sigma*I + rho*AᵀA) once per problem
// and back-substitutes every iteration; LDLᵀ is also used by the
// Levenberg-Marquardt normal equations.
#pragma once

#include <optional>

#include "smoother/solver/matrix.hpp"

namespace smoother::solver {

/// LLᵀ factorization of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factorizes `a`; returns std::nullopt when `a` is not (numerically)
  /// positive definite. Only the lower triangle of `a` is read.
  static std::optional<Cholesky> factorize(const Matrix& a);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Allocation-free solve with caller-provided scratch for the forward
  /// pass: y_scratch and x must each have dimension() entries and b,
  /// y_scratch, x must be pairwise non-aliasing. Same arithmetic as
  /// solve().
  void solve_into(std::span<const double> b, std::span<double> y_scratch,
                  std::span<double> x) const;

  [[nodiscard]] std::size_t dimension() const { return l_.rows(); }

  /// The lower-triangular factor.
  [[nodiscard]] const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// LDLᵀ factorization (no square roots; tolerates semidefinite D entries
/// down to a pivot floor).
class Ldlt {
 public:
  /// Factorizes `a`; returns std::nullopt when a pivot falls below
  /// `pivot_floor` in magnitude (singular or indefinite beyond tolerance).
  static std::optional<Ldlt> factorize(const Matrix& a,
                                       double pivot_floor = 1e-12);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t dimension() const { return l_.rows(); }

 private:
  Ldlt(Matrix l, Vector d) : l_(std::move(l)), d_(std::move(d)) {}
  Matrix l_;  // unit lower triangular
  Vector d_;  // diagonal
};

}  // namespace smoother::solver
