#pragma once

// Portable SIMD primitives for the solver hot loops (fs_ops scans, the ADMM
// vector updates, and the lane dimension of BatchSolver).
//
// Dispatch is compile-time only: one tier is selected per build and baked
// into every translation unit, so there is exactly one arithmetic story per
// binary and differential tests compare builds, not runtime branches.
//
//   tier     width  selected when
//   -------  -----  -------------------------------------------------------
//   avx2     4      __AVX2__ (e.g. SMOOTHER_NATIVE=ON on an AVX2 host)
//   sse2     2      __SSE2__ / x86-64 baseline
//   neon     2      __ARM_NEON on aarch64
//   scalar   1      everything else, or SMOOTHER_SIMD=scalar
//
// A build can force a tier with SMOOTHER_SIMD=avx2|sse2|neon|scalar (CMake
// option, surfaced here as SMOOTHER_SIMD_FORCE_*). Forcing a tier the
// compiler cannot target is a hard error, not a silent fallback.
//
// Bit-exactness contract (see DESIGN.md §4k):
//  * Elementwise kernels (axpby and friends, clamp, abs) and the max
//    reductions are bit-exact with the reference scalar loops on EVERY
//    tier: they perform the same IEEE operations per element, clamp is
//    implemented with compare+select replicating std::clamp (including the
//    sign of +-0.0, which minpd/maxpd would flip), and max uses
//    std::max's (a < b) ? b : a semantics (NaN-dropping) via
//    compare+select, never native min/max.
//  * Scans and sums (prefix_sum_into, suffix_sum_add, sum) REASSOCIATE on
//    tiers with width >= 4 (avx2) and are then only tolerance-equal to the
//    sequential reference. On width <= 2 tiers they fall back to the
//    sequential loop, so the default (sse2) build stays byte-identical to
//    the pre-SIMD scalar code. kReassociates exposes this to tests.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(SMOOTHER_SIMD_FORCE_SCALAR)
#define SMOOTHER_SIMD_TIER_SCALAR 1
#elif defined(SMOOTHER_SIMD_FORCE_AVX2)
#if !defined(__AVX2__)
#error "SMOOTHER_SIMD=avx2 requires an AVX2 target (-mavx2 or SMOOTHER_NATIVE=ON)"
#endif
#define SMOOTHER_SIMD_TIER_AVX2 1
#elif defined(SMOOTHER_SIMD_FORCE_SSE2)
#if !defined(__SSE2__) && !defined(__x86_64__) && !defined(_M_X64)
#error "SMOOTHER_SIMD=sse2 requires an x86 SSE2 target"
#endif
#define SMOOTHER_SIMD_TIER_SSE2 1
#elif defined(SMOOTHER_SIMD_FORCE_NEON)
#if !defined(__ARM_NEON) && !defined(__ARM_NEON__)
#error "SMOOTHER_SIMD=neon requires an ARM NEON target"
#endif
#define SMOOTHER_SIMD_TIER_NEON 1
#elif defined(__AVX2__)
#define SMOOTHER_SIMD_TIER_AVX2 1
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define SMOOTHER_SIMD_TIER_SSE2 1
#elif (defined(__ARM_NEON) || defined(__ARM_NEON__)) && defined(__aarch64__)
#define SMOOTHER_SIMD_TIER_NEON 1
#else
#define SMOOTHER_SIMD_TIER_SCALAR 1
#endif

#if defined(SMOOTHER_SIMD_TIER_AVX2)
#include <immintrin.h>
#elif defined(SMOOTHER_SIMD_TIER_SSE2)
#include <emmintrin.h>
#elif defined(SMOOTHER_SIMD_TIER_NEON)
#include <arm_neon.h>
#endif

namespace smoother::solver::simd {

enum class Tier { kScalar, kSse2, kNeon, kAvx2 };

#if defined(SMOOTHER_SIMD_TIER_AVX2)
inline constexpr Tier kTier = Tier::kAvx2;
inline constexpr std::size_t kWidth = 4;
#elif defined(SMOOTHER_SIMD_TIER_SSE2)
inline constexpr Tier kTier = Tier::kSse2;
inline constexpr std::size_t kWidth = 2;
#elif defined(SMOOTHER_SIMD_TIER_NEON)
inline constexpr Tier kTier = Tier::kNeon;
inline constexpr std::size_t kWidth = 2;
#else
inline constexpr Tier kTier = Tier::kScalar;
inline constexpr std::size_t kWidth = 1;
#endif

// True when the scan/sum kernels reassociate floating-point addition and
// are therefore only tolerance-equal (not bit-equal) to the sequential
// reference. Tests use this to pick bitwise vs tolerance comparison.
inline constexpr bool kReassociates = kWidth >= 4;

// "avx2" | "sse2" | "neon" | "scalar" — recorded in BENCH_kernels.json so
// tools/bench_regress.py never compares runs across tiers.
const char* tier_name() noexcept;

// ---------------------------------------------------------------------------
// Aligned storage. 64-byte alignment covers AVX-512-width loads and keeps
// every lane-major SoA row on its own cache line boundary.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kAlignment = 64;

template <class T, std::size_t Align = kAlignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

using AlignedVector = std::vector<double, AlignedAllocator<double>>;

// ---------------------------------------------------------------------------
// VecD: one register of kWidth doubles. All kernels below are written once
// against this type; the scalar tier instantiates it as a plain double, so
// the "vector" code path is the reference semantics by construction.
// ---------------------------------------------------------------------------

#if defined(SMOOTHER_SIMD_TIER_AVX2)

struct VecD {
  __m256d v;

  static VecD load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
  static VecD broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static VecD zero() noexcept { return {_mm256_setzero_pd()}; }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) noexcept {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend VecD operator-(VecD a, VecD b) noexcept {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend VecD operator*(VecD a, VecD b) noexcept {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend VecD operator/(VecD a, VecD b) noexcept {
    return {_mm256_div_pd(a.v, b.v)};
  }

  // (a < b) ? t : f per lane; NaN compares false, selecting f — exactly the
  // branch std::clamp / std::max take on unordered operands.
  static VecD select_lt(VecD a, VecD b, VecD t, VecD f) noexcept {
    const __m256d mask = _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
    return {_mm256_blendv_pd(f.v, t.v, mask)};
  }
  static VecD abs(VecD a) noexcept {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  double lane(std::size_t i) const noexcept {
    alignas(32) double out[4];
    _mm256_store_pd(out, v);
    return out[i];
  }
};

#elif defined(SMOOTHER_SIMD_TIER_SSE2)

struct VecD {
  __m128d v;

  static VecD load(const double* p) noexcept { return {_mm_loadu_pd(p)}; }
  static VecD broadcast(double x) noexcept { return {_mm_set1_pd(x)}; }
  static VecD zero() noexcept { return {_mm_setzero_pd()}; }
  void store(double* p) const noexcept { _mm_storeu_pd(p, v); }

  friend VecD operator+(VecD a, VecD b) noexcept {
    return {_mm_add_pd(a.v, b.v)};
  }
  friend VecD operator-(VecD a, VecD b) noexcept {
    return {_mm_sub_pd(a.v, b.v)};
  }
  friend VecD operator*(VecD a, VecD b) noexcept {
    return {_mm_mul_pd(a.v, b.v)};
  }
  friend VecD operator/(VecD a, VecD b) noexcept {
    return {_mm_div_pd(a.v, b.v)};
  }

  static VecD select_lt(VecD a, VecD b, VecD t, VecD f) noexcept {
    // SSE2 has no blendv: mask-select with and/andnot/or.
    const __m128d mask = _mm_cmplt_pd(a.v, b.v);
    return {_mm_or_pd(_mm_and_pd(mask, t.v), _mm_andnot_pd(mask, f.v))};
  }
  static VecD abs(VecD a) noexcept {
    return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
  }
  double lane(std::size_t i) const noexcept {
    alignas(16) double out[2];
    _mm_store_pd(out, v);
    return out[i];
  }
};

#elif defined(SMOOTHER_SIMD_TIER_NEON)

struct VecD {
  float64x2_t v;

  static VecD load(const double* p) noexcept { return {vld1q_f64(p)}; }
  static VecD broadcast(double x) noexcept { return {vdupq_n_f64(x)}; }
  static VecD zero() noexcept { return {vdupq_n_f64(0.0)}; }
  void store(double* p) const noexcept { vst1q_f64(p, v); }

  friend VecD operator+(VecD a, VecD b) noexcept {
    return {vaddq_f64(a.v, b.v)};
  }
  friend VecD operator-(VecD a, VecD b) noexcept {
    return {vsubq_f64(a.v, b.v)};
  }
  friend VecD operator*(VecD a, VecD b) noexcept {
    return {vmulq_f64(a.v, b.v)};
  }
  friend VecD operator/(VecD a, VecD b) noexcept {
    return {vdivq_f64(a.v, b.v)};
  }

  static VecD select_lt(VecD a, VecD b, VecD t, VecD f) noexcept {
    const uint64x2_t mask = vcltq_f64(a.v, b.v);
    return {vbslq_f64(mask, t.v, f.v)};
  }
  static VecD abs(VecD a) noexcept { return {vabsq_f64(a.v)}; }
  double lane(std::size_t i) const noexcept {
    double out[2];
    vst1q_f64(out, v);
    return out[i];
  }
};

#else  // scalar tier

struct VecD {
  double v;

  static VecD load(const double* p) noexcept { return {*p}; }
  static VecD broadcast(double x) noexcept { return {x}; }
  static VecD zero() noexcept { return {0.0}; }
  void store(double* p) const noexcept { *p = v; }

  friend VecD operator+(VecD a, VecD b) noexcept { return {a.v + b.v}; }
  friend VecD operator-(VecD a, VecD b) noexcept { return {a.v - b.v}; }
  friend VecD operator*(VecD a, VecD b) noexcept { return {a.v * b.v}; }
  friend VecD operator/(VecD a, VecD b) noexcept { return {a.v / b.v}; }

  static VecD select_lt(VecD a, VecD b, VecD t, VecD f) noexcept {
    return {(a.v < b.v) ? t.v : f.v};
  }
  static VecD abs(VecD a) noexcept { return {std::abs(a.v)}; }
  double lane(std::size_t) const noexcept { return v; }
};

#endif

// std::max semantics per lane: (acc < x) ? x : acc. Never native max —
// minpd/maxpd pick the second operand on equal/unordered lanes, which
// diverges from std::max on -0.0 and NaN.
inline VecD max_std(VecD acc, VecD x) noexcept {
  return VecD::select_lt(acc, x, x, acc);
}

// std::clamp semantics per lane: hi wins over lo like std::clamp's
// (v < lo) ? lo : (hi < v) ? hi : v, preserving the sign of zero bounds.
inline VecD clamp_std(VecD x, VecD lo, VecD hi) noexcept {
  return VecD::select_lt(x, lo, lo, VecD::select_lt(hi, x, hi, x));
}

// Horizontal std::max over the lanes of acc, folded sequentially from lane
// 0 — order-invariant for the post-abs (sign-free) values it is used on.
inline double hmax_std(VecD acc) noexcept {
  double out = acc.lane(0);
  for (std::size_t l = 1; l < kWidth; ++l) {
    const double x = acc.lane(l);
    out = (out < x) ? x : out;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Elementwise kernels — bit-exact with the scalar reference on every tier.
// No aliasing between out and inputs unless stated; n is the element count.
// ---------------------------------------------------------------------------

// out[i] = a*x[i] + b*y[i]
inline void axpby(double a, const double* x, double b, const double* y,
                  double* out, std::size_t n) noexcept {
  const VecD va = VecD::broadcast(a);
  const VecD vb = VecD::broadcast(b);
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    (va * VecD::load(x + i) + vb * VecD::load(y + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

// out[i] += a*x[i] - y[i]        (ADMM rhs: rhs += sigma*x - q)
inline void add_scaled_sub(double a, const double* x, const double* y,
                           double* out, std::size_t n) noexcept {
  const VecD va = VecD::broadcast(a);
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    (VecD::load(out + i) + (va * VecD::load(x + i) - VecD::load(y + i)))
        .store(out + i);
  }
  for (; i < n; ++i) out[i] += a * x[i] - y[i];
}

// out[i] = a*u[i] + b*v[i] + y[i]/rho   (ADMM z_next before projection)
inline void relaxed_step_add_scaled(double a, const double* u, double b,
                                    const double* v, const double* y,
                                    double rho, double* out,
                                    std::size_t n) noexcept {
  const VecD va = VecD::broadcast(a);
  const VecD vb = VecD::broadcast(b);
  const VecD vrho = VecD::broadcast(rho);
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    (va * VecD::load(u + i) + vb * VecD::load(v + i) +
     VecD::load(y + i) / vrho)
        .store(out + i);
  }
  for (; i < n; ++i) out[i] = a * u[i] + b * v[i] + y[i] / rho;
}

// y[i] += rho*(a*u[i] + b*v[i] - w[i])  (ADMM dual update)
inline void dual_update(double rho, double a, const double* u, double b,
                        const double* v, const double* w, double* y,
                        std::size_t n) noexcept {
  const VecD vrho = VecD::broadcast(rho);
  const VecD va = VecD::broadcast(a);
  const VecD vb = VecD::broadcast(b);
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    (VecD::load(y + i) +
     vrho * (va * VecD::load(u + i) + vb * VecD::load(v + i) -
             VecD::load(w + i)))
        .store(y + i);
  }
  for (; i < n; ++i) y[i] += rho * (a * u[i] + b * v[i] - w[i]);
}

// out[i] = a*x[i] - y[i]          (ADMM rz = rho*z - y)
inline void scale_sub(double a, const double* x, const double* y, double* out,
                      std::size_t n) noexcept {
  const VecD va = VecD::broadcast(a);
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    (va * VecD::load(x + i) - VecD::load(y + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = a * x[i] - y[i];
}

// x[i] = clamp(x[i], lo[i], hi[i]) with std::clamp semantics (in place).
inline void clamp_spans(double* x, const double* lo, const double* hi,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    clamp_std(VecD::load(x + i), VecD::load(lo + i), VecD::load(hi + i))
        .store(x + i);
  }
  for (; i < n; ++i) {
    const double v = x[i];
    x[i] = (v < lo[i]) ? lo[i] : (hi[i] < v) ? hi[i] : v;
  }
}

// out[i] = clamp(value, lo[i], hi[i])  (cold-start z init with value = 0).
inline void clamp_value(double value, const double* lo, const double* hi,
                        double* out, std::size_t n) noexcept {
  const VecD vv = VecD::broadcast(value);
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    clamp_std(vv, VecD::load(lo + i), VecD::load(hi + i)).store(out + i);
  }
  for (; i < n; ++i) {
    out[i] = (value < lo[i]) ? lo[i] : (hi[i] < value) ? hi[i] : value;
  }
}

// ---------------------------------------------------------------------------
// Max reductions — bit-exact with the sequential std::max/std::abs loops on
// every tier (max over sign-free magnitudes is order-invariant, and the
// per-lane combine keeps std::max's NaN-dropping branch).
// ---------------------------------------------------------------------------

// max_i |x[i]|
inline double max_abs(const double* x, std::size_t n) noexcept {
  VecD acc = VecD::zero();
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    acc = max_std(acc, VecD::abs(VecD::load(x + i)));
  }
  double out = hmax_std(acc);
  for (; i < n; ++i) {
    const double v = std::abs(x[i]);
    out = (out < v) ? v : out;
  }
  return out;
}

// max_i |a[i] - b[i]|
inline double max_abs_diff(const double* a, const double* b,
                           std::size_t n) noexcept {
  VecD acc = VecD::zero();
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    acc = max_std(acc, VecD::abs(VecD::load(a + i) - VecD::load(b + i)));
  }
  double out = hmax_std(acc);
  for (; i < n; ++i) {
    const double v = std::abs(a[i] - b[i]);
    out = (out < v) ? v : out;
  }
  return out;
}

// max_i |a[i] + b[i] + c[i]|  (dual residual: |Px + q + A^T y|)
inline double max_abs_sum3(const double* a, const double* b, const double* c,
                           std::size_t n) noexcept {
  VecD acc = VecD::zero();
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    acc = max_std(acc, VecD::abs(VecD::load(a + i) + VecD::load(b + i) +
                                 VecD::load(c + i)));
  }
  double out = hmax_std(acc);
  for (; i < n; ++i) {
    const double v = std::abs(a[i] + b[i] + c[i]);
    out = (out < v) ? v : out;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scans and sums — reassociate only when kWidth >= 4 (see kReassociates);
// sequential (bit-exact) on narrower tiers, where in-register scans do not
// pay for their shuffle overhead.
// ---------------------------------------------------------------------------

#if defined(SMOOTHER_SIMD_TIER_AVX2)
namespace detail {
// [a b c d] -> [a, a+b, a+b+c, a+b+c+d]
inline __m256d scan4_inclusive(__m256d x) noexcept {
  __m256d t = _mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 3));
  t = _mm256_blend_pd(t, _mm256_setzero_pd(), 0x1);
  x = _mm256_add_pd(x, t);
  t = _mm256_permute4x64_pd(x, _MM_SHUFFLE(1, 0, 3, 2));
  t = _mm256_blend_pd(t, _mm256_setzero_pd(), 0x3);
  return _mm256_add_pd(x, t);
}
}  // namespace detail
#endif

// out[i] = x[0] + ... + x[i] (inclusive prefix sum); returns the total.
inline double prefix_sum_into(const double* x, double* out,
                              std::size_t n) noexcept {
#if defined(SMOOTHER_SIMD_TIER_AVX2)
  __m256d running = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d scan = detail::scan4_inclusive(_mm256_loadu_pd(x + i));
    const __m256d res = _mm256_add_pd(scan, running);
    _mm256_storeu_pd(out + i, res);
    running = _mm256_permute4x64_pd(res, _MM_SHUFFLE(3, 3, 3, 3));
  }
  double total = _mm256_cvtsd_f64(running);
  for (; i < n; ++i) {
    total += x[i];
    out[i] = total;
  }
  return total;
#else
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += x[i];
    out[i] = total;
  }
  return total;
#endif
}

// out[i] = head[i] + (tail[i] + tail[i+1] + ... + tail[n-1]) — the fs_ops
// apply_at shape: add the inclusive suffix sum of tail onto head.
inline void suffix_sum_add(const double* head, const double* tail, double* out,
                           std::size_t n) noexcept {
#if defined(SMOOTHER_SIMD_TIER_AVX2)
  __m256d running = _mm256_setzero_pd();
  std::size_t i = n;
  while (i >= 4) {
    i -= 4;
    // Reverse the block so the inclusive prefix scan computes suffix sums.
    const __m256d rev = _mm256_permute4x64_pd(_mm256_loadu_pd(tail + i),
                                              _MM_SHUFFLE(0, 1, 2, 3));
    const __m256d scan = _mm256_add_pd(detail::scan4_inclusive(rev), running);
    running = _mm256_permute4x64_pd(scan, _MM_SHUFFLE(3, 3, 3, 3));
    const __m256d suffix =
        _mm256_permute4x64_pd(scan, _MM_SHUFFLE(0, 1, 2, 3));
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(_mm256_loadu_pd(head + i), suffix));
  }
  double suffix = _mm256_cvtsd_f64(running);
  while (i-- > 0) {
    suffix += tail[i];
    out[i] = head[i] + suffix;
  }
#else
  double suffix = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    suffix += tail[i];
    out[i] = head[i] + suffix;
  }
#endif
}

// sum_i x[i]
inline double sum(const double* x, std::size_t n) noexcept {
#if defined(SMOOTHER_SIMD_TIER_AVX2)
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double total =
      _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) total += x[i];
  return total;
#else
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += x[i];
  return total;
#endif
}

// out[i] = scale * (x[i] - mean)   (fs_ops centering pass)
inline void scale_center(double scale, const double* x, double mean,
                         double* out, std::size_t n) noexcept {
  const VecD vs = VecD::broadcast(scale);
  const VecD vm = VecD::broadcast(mean);
  std::size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    (vs * (VecD::load(x + i) - vm)).store(out + i);
  }
  for (; i < n; ++i) out[i] = scale * (x[i] - mean);
}

// ---------------------------------------------------------------------------
// scalar_ref: the reference loops, compiled with auto-vectorization off so
// bench/micro_kernels measures hand-SIMD against honest scalar code rather
// than against whatever the compiler vectorized on its own. Also the oracle
// for the kernel differential tests. Out of line (simd.cpp) so the
// no-tree-vectorize attribute survives.
// ---------------------------------------------------------------------------

namespace scalar_ref {

void axpby(double a, const double* x, double b, const double* y, double* out,
           std::size_t n) noexcept;
void add_scaled_sub(double a, const double* x, const double* y, double* out,
                    std::size_t n) noexcept;
void relaxed_step_add_scaled(double a, const double* u, double b,
                             const double* v, const double* y, double rho,
                             double* out, std::size_t n) noexcept;
void dual_update(double rho, double a, const double* u, double b,
                 const double* v, const double* w, double* y,
                 std::size_t n) noexcept;
void scale_sub(double a, const double* x, const double* y, double* out,
               std::size_t n) noexcept;
void clamp_spans(double* x, const double* lo, const double* hi,
                 std::size_t n) noexcept;
void clamp_value(double value, const double* lo, const double* hi,
                 double* out, std::size_t n) noexcept;
double max_abs(const double* x, std::size_t n) noexcept;
double max_abs_diff(const double* a, const double* b, std::size_t n) noexcept;
double max_abs_sum3(const double* a, const double* b, const double* c,
                    std::size_t n) noexcept;
double prefix_sum_into(const double* x, double* out, std::size_t n) noexcept;
void suffix_sum_add(const double* head, const double* tail, double* out,
                    std::size_t n) noexcept;
double sum(const double* x, std::size_t n) noexcept;
void scale_center(double scale, const double* x, double mean, double* out,
                  std::size_t n) noexcept;

}  // namespace scalar_ref

}  // namespace smoother::solver::simd
