#include "smoother/solver/structured_kkt.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "smoother/solver/simd.hpp"

namespace smoother::solver {

namespace fs_ops {

void apply_a(std::span<const double> x, std::span<double> out) {
  const std::size_t m = x.size();
  if (out.size() != 2 * m)
    throw std::invalid_argument("fs_ops::apply_a: out must have 2m entries");
  if (m == 0) return;
  std::memcpy(out.data(), x.data(), m * sizeof(double));
  simd::prefix_sum_into(x.data(), out.data() + m, m);
}

void apply_at(std::span<const double> y, std::span<double> out) {
  const std::size_t m = out.size();
  if (y.size() != 2 * m)
    throw std::invalid_argument("fs_ops::apply_at: y must have 2m entries");
  if (m == 0) return;
  // (Aᵀy)_c = y_box[c] + Σ_{i >= c} y_soc[i]: one suffix-sum pass.
  simd::suffix_sum_add(y.data(), y.data() + m, out.data(), m);
}

void apply_p(std::span<const double> x, std::span<double> out) {
  const std::size_t m = x.size();
  if (out.size() != m)
    throw std::invalid_argument("fs_ops::apply_p: size mismatch");
  if (m == 0) return;
  const double sum = simd::sum(x.data(), m);
  const double mean = sum / static_cast<double>(m);
  const double scale = 2.0 / static_cast<double>(m);
  simd::scale_center(scale, x.data(), mean, out.data(), m);
}

double half_quadratic(std::span<const double> x) {
  const std::size_t m = x.size();
  if (m == 0) return 0.0;
  double sum = 0.0;
  for (const double v : x) sum += v;
  const double mean = sum / static_cast<double>(m);
  double acc = 0.0;
  for (const double v : x) {
    const double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(m);
}

}  // namespace fs_ops

std::optional<StructuredKkt> StructuredKkt::factorize(std::size_t m,
                                                      double sigma,
                                                      double rho) {
  if (m == 0) return std::nullopt;
  const double md = static_cast<double>(m);
  const double c = 2.0 / md + sigma + rho;
  const double beta = 2.0 / (md * md);
  // M = c DᵀD + rho I where D is the first-difference bidiagonal. DᵀD has
  // diagonal 2 (except 1 in the last row) and off-diagonal -1.
  Vector diag(m, rho + 2.0 * c);
  diag[m - 1] = rho + c;
  Vector off(m > 1 ? m - 1 : 0, -c);
  auto factor = BandedCholesky::factorize(BandedMatrix::tridiagonal(diag, off));
  if (!factor) return std::nullopt;

  // w = K₀⁻¹ 1 = D M⁻¹ Dᵀ 1. The differences telescope: Dᵀ1 = e_{m-1},
  // so one tridiagonal solve plus a first-difference pass (descending, so
  // the update is in place) gives w.
  Vector rhs(m, 0.0);
  rhs[m - 1] = 1.0;
  Vector w(m, 0.0);
  factor->solve_into(rhs, w);
  for (std::size_t ii = m; ii-- > 1;) w[ii] -= w[ii - 1];

  double wsum = 0.0;
  for (const double v : w) wsum += v;
  const double denom = 1.0 - beta * wsum;
  if (!(denom > 0.0) || !std::isfinite(denom)) return std::nullopt;
  return StructuredKkt(m, beta, denom, std::move(*factor), std::move(w));
}

void StructuredKkt::solve_into(std::span<const double> b, std::span<double> x,
                               std::span<double> scratch) const {
  if (b.size() != m_ || x.size() != m_ || scratch.size() != m_)
    throw std::invalid_argument("StructuredKkt::solve_into: size mismatch");
  // scratch = Dᵀ b: (Dᵀb)_i = b_i - b_{i+1}, last entry b_{m-1}.
  for (std::size_t i = 0; i + 1 < m_; ++i) scratch[i] = b[i] - b[i + 1];
  scratch[m_ - 1] = b[m_ - 1];
  // x = M⁻¹ scratch (tridiagonal solve), then x = D x (first differences,
  // descending so it is in place): x0 = K₀⁻¹ b.
  factor_.solve_into(scratch, x);
  for (std::size_t ii = m_; ii-- > 1;) x[ii] -= x[ii - 1];
  // Sherman-Morrison rank-one correction for the -beta 1 1ᵀ term:
  // K⁻¹b = x0 + beta (1ᵀx0) / denom · w.
  double xsum = 0.0;
  for (const double v : x) xsum += v;
  const double gamma = beta_ * xsum / denom_;
  for (std::size_t i = 0; i < m_; ++i) x[i] += gamma * w_[i];
}

void StructuredKkt::solve_lanes_into(const double* b, double* x,
                                     double* scratch, std::size_t lanes,
                                     std::size_t stride) const {
  using simd::VecD;
  constexpr std::size_t kW = simd::kWidth;
  // scratch = Dᵀ b per lane: rows 0..m-2 are b_i - b_{i+1}, last row b_{m-1}.
  for (std::size_t i = 0; i + 1 < m_; ++i) {
    const double* bi = b + i * stride;
    const double* bn = bi + stride;
    double* si = scratch + i * stride;
    std::size_t c = 0;
    for (; c + kW <= lanes; c += kW)
      (VecD::load(bi + c) - VecD::load(bn + c)).store(si + c);
    for (; c < lanes; ++c) si[c] = bi[c] - bn[c];
  }
  std::memcpy(scratch + (m_ - 1) * stride, b + (m_ - 1) * stride,
              lanes * sizeof(double));
  // x = M⁻¹ scratch (shared tridiagonal factor, vectorized across lanes),
  // then x = D x: descending rows so the first-difference pass is in place.
  factor_.solve_lanes_into(scratch, x, lanes, stride);
  for (std::size_t ii = m_; ii-- > 1;) {
    double* xi = x + ii * stride;
    const double* xp = x + (ii - 1) * stride;
    std::size_t c = 0;
    for (; c + kW <= lanes; c += kW)
      (VecD::load(xi + c) - VecD::load(xp + c)).store(xi + c);
    for (; c < lanes; ++c) xi[c] -= xp[c];
  }
  // Sherman-Morrison correction with a per-lane gamma = beta (1ᵀx) / denom.
  std::size_t c = 0;
  for (; c + kW <= lanes; c += kW) {
    VecD acc = VecD::zero();
    for (std::size_t i = 0; i < m_; ++i)
      acc = acc + VecD::load(x + i * stride + c);
    const VecD gamma = (VecD::broadcast(beta_) * acc) / VecD::broadcast(denom_);
    for (std::size_t i = 0; i < m_; ++i) {
      double* xi = x + i * stride + c;
      (VecD::load(xi) + gamma * VecD::broadcast(w_[i])).store(xi);
    }
  }
  for (; c < lanes; ++c) {
    double xsum = 0.0;
    for (std::size_t i = 0; i < m_; ++i) xsum += x[i * stride + c];
    const double gamma = beta_ * xsum / denom_;
    for (std::size_t i = 0; i < m_; ++i) x[i * stride + c] += gamma * w_[i];
  }
}

Vector StructuredKkt::solve(std::span<const double> b) const {
  Vector x(m_, 0.0);
  Vector scratch(m_, 0.0);
  solve_into(b, x, scratch);
  return x;
}

}  // namespace smoother::solver
