#include "smoother/solver/least_squares.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "smoother/solver/cholesky.hpp"

namespace smoother::solver {

std::string to_string(LeastSquaresStatus status) {
  switch (status) {
    case LeastSquaresStatus::kConverged:
      return "converged";
    case LeastSquaresStatus::kMaxIterations:
      return "max-iterations";
    case LeastSquaresStatus::kStalled:
      return "stalled";
  }
  return "?";
}

namespace {

/// Central-difference Jacobian of the residual at theta.
Matrix jacobian(const ResidualFn& residual, const Vector& theta,
                std::size_t residual_size, double fd_step) {
  const std::size_t p = theta.size();
  Matrix jac(residual_size, p);
  Vector probe = theta;
  for (std::size_t j = 0; j < p; ++j) {
    const double h = fd_step * std::max(std::abs(theta[j]), 1.0);
    probe[j] = theta[j] + h;
    const Vector r_plus = residual(probe);
    probe[j] = theta[j] - h;
    const Vector r_minus = residual(probe);
    probe[j] = theta[j];
    if (r_plus.size() != residual_size || r_minus.size() != residual_size)
      throw std::logic_error("levenberg_marquardt: residual size changed");
    for (std::size_t i = 0; i < residual_size; ++i)
      jac(i, j) = (r_plus[i] - r_minus[i]) / (2.0 * h);
  }
  return jac;
}

double half_squared_norm(const Vector& r) {
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return 0.5 * acc;
}

}  // namespace

LeastSquaresResult levenberg_marquardt(const ResidualFn& residual,
                                       Vector initial,
                                       const LeastSquaresSettings& settings) {
  LeastSquaresResult result;
  Vector theta = std::move(initial);
  Vector r = residual(theta);
  if (r.empty()) throw std::invalid_argument("levenberg_marquardt: empty residual");
  const std::size_t m = r.size();
  double cost = half_squared_norm(r);
  double lambda = settings.initial_lambda;

  std::size_t iter = 0;
  for (; iter < settings.max_iterations; ++iter) {
    const Matrix jac = jacobian(residual, theta, m, settings.fd_step);
    const Vector grad = jac.transpose_times(r);  // Jᵀ r
    if (norm_inf(grad) < settings.gradient_tolerance) {
      result.status = LeastSquaresStatus::kConverged;
      break;
    }

    const Matrix jtj = jac.transpose() * jac;
    bool stepped = false;
    for (int attempt = 0; attempt < 40; ++attempt) {
      Matrix damped = jtj;
      // Marquardt scaling: damp proportionally to the diagonal.
      for (std::size_t i = 0; i < damped.rows(); ++i)
        damped(i, i) += lambda * std::max(jtj(i, i), 1e-12);
      const auto factor = Ldlt::factorize(damped);
      if (factor) {
        Vector neg_grad = grad;
        for (double& g : neg_grad) g = -g;
        const Vector step = factor->solve(neg_grad);
        Vector candidate = theta;
        for (std::size_t i = 0; i < candidate.size(); ++i)
          candidate[i] += step[i];
        const Vector r_new = residual(candidate);
        const double cost_new = half_squared_norm(r_new);
        if (std::isfinite(cost_new) && cost_new < cost) {
          const double step_norm = norm2(step);
          theta = std::move(candidate);
          r = r_new;
          cost = cost_new;
          lambda = std::max(lambda * settings.lambda_down, 1e-12);
          stepped = true;
          if (step_norm < settings.step_tolerance)
            result.status = LeastSquaresStatus::kConverged;
          break;
        }
      }
      lambda *= settings.lambda_up;
    }
    if (!stepped) {
      result.status = LeastSquaresStatus::kStalled;
      break;
    }
    if (result.status == LeastSquaresStatus::kConverged) break;
  }

  result.parameters = std::move(theta);
  result.cost = cost;
  result.iterations = iter;
  return result;
}

}  // namespace smoother::solver
