#include "smoother/solver/banded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "smoother/solver/simd.hpp"

namespace smoother::solver {

BandedMatrix::BandedMatrix(std::size_t n, std::size_t bandwidth)
    : n_(n), w_(bandwidth), band_(n * (bandwidth + 1), 0.0) {
  if (n > 0 && bandwidth >= n)
    throw std::invalid_argument(
        "BandedMatrix: bandwidth must be < dimension (use dense Matrix)");
}

BandedMatrix BandedMatrix::tridiagonal(std::span<const double> diag,
                                       std::span<const double> off) {
  if (diag.empty())
    throw std::invalid_argument("BandedMatrix::tridiagonal: empty diagonal");
  if (off.size() + 1 != diag.size())
    throw std::invalid_argument(
        "BandedMatrix::tridiagonal: off-diagonal size must be n - 1");
  BandedMatrix m(diag.size(), diag.size() == 1 ? 0 : 1);
  for (std::size_t i = 0; i < diag.size(); ++i) m.entry(i, i) = diag[i];
  for (std::size_t i = 0; i + 1 < diag.size(); ++i)
    m.entry(i + 1, i) = off[i];
  return m;
}

BandedMatrix BandedMatrix::from_dense(const Matrix& a, std::size_t bandwidth) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("BandedMatrix::from_dense: matrix not square");
  BandedMatrix m(a.rows(), bandwidth);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (i - j <= bandwidth) {
        m.entry(i, j) = a(i, j);
      } else if (a(i, j) != 0.0) {
        throw std::invalid_argument(
            "BandedMatrix::from_dense: nonzero entry outside the band");
      }
    }
  }
  return m;
}

double BandedMatrix::operator()(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("BandedMatrix: index");
  const std::size_t lo = i < j ? i : j;
  const std::size_t hi = i < j ? j : i;
  if (hi - lo > w_) return 0.0;
  return band_[hi * (w_ + 1) + (hi - lo)];
}

double& BandedMatrix::entry(std::size_t i, std::size_t j) {
  if (i >= n_ || j > i || i - j > w_)
    throw std::out_of_range("BandedMatrix::entry: outside the lower band");
  return band_[i * (w_ + 1) + (i - j)];
}

Matrix BandedMatrix::to_dense() const {
  Matrix out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i < w_ ? 0 : i - w_; j <= i; ++j) {
      const double v = band_[i * (w_ + 1) + (i - j)];
      out(i, j) = v;
      out(j, i) = v;
    }
  return out;
}

void BandedMatrix::times_into(std::span<const double> x,
                              std::span<double> out) const {
  if (x.size() != n_ || out.size() != n_)
    throw std::invalid_argument("BandedMatrix::times_into: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = 0.0;
    // Lower band (including the diagonal) ...
    for (std::size_t j = i < w_ ? 0 : i - w_; j <= i; ++j)
      acc += band_[i * (w_ + 1) + (i - j)] * x[j];
    // ... plus the mirrored strictly-upper entries.
    const std::size_t hi_end = std::min(i + w_, n_ - 1);
    for (std::size_t j = i + 1; j <= hi_end; ++j)
      acc += band_[j * (w_ + 1) + (j - i)] * x[j];
    out[i] = acc;
  }
}

Vector BandedMatrix::operator*(std::span<const double> x) const {
  Vector out(n_, 0.0);
  times_into(x, out);
  return out;
}

std::optional<BandedCholesky> BandedCholesky::factorize(
    const BandedMatrix& a) {
  const std::size_t n = a.dimension();
  const std::size_t w = a.bandwidth();
  Vector l(n * (w + 1), 0.0);
  const auto at = [&](std::size_t i, std::size_t j) -> double& {
    return l[i * (w + 1) + (i - j)];
  };
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = j < w ? 0 : j - w; k < j; ++k)
      diag -= at(j, k) * at(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    at(j, j) = ljj;
    const std::size_t i_end = std::min(j + w, n - 1);
    for (std::size_t i = j + 1; i <= i_end; ++i) {
      double acc = a(i, j);
      for (std::size_t k = i < w ? 0 : i - w; k < j; ++k)
        acc -= at(i, k) * at(j, k);
      at(i, j) = acc / ljj;
    }
  }
  return BandedCholesky(n, w, std::move(l));
}

void BandedCholesky::solve_into(std::span<const double> b,
                                std::span<double> x) const {
  if (b.size() != n_ || x.size() != n_)
    throw std::invalid_argument("BandedCholesky::solve_into: size mismatch");
  // Forward solve L y = b, in place on x.
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[i];
    for (std::size_t k = i < w_ ? 0 : i - w_; k < i; ++k)
      acc -= l(i, k) * x[k];
    x[i] = acc / l(i, i);
  }
  // Backward solve Lᵀ z = y, in place on x.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    const std::size_t k_end = std::min(ii + w_, n_ - 1);
    for (std::size_t k = ii + 1; k <= k_end; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
}

void BandedCholesky::solve_lanes_into(const double* b, double* x,
                                      std::size_t lanes,
                                      std::size_t stride) const {
  using simd::VecD;
  constexpr std::size_t kW = simd::kWidth;
  std::size_t c = 0;
  for (; c + kW <= lanes; c += kW) {
    // Forward solve L y = b, in place on x.
    for (std::size_t i = 0; i < n_; ++i) {
      VecD acc = VecD::load(b + i * stride + c);
      for (std::size_t k = i < w_ ? 0 : i - w_; k < i; ++k) {
        acc = acc - VecD::broadcast(l(i, k)) * VecD::load(x + k * stride + c);
      }
      (acc / VecD::broadcast(l(i, i))).store(x + i * stride + c);
    }
    // Backward solve Lᵀ z = y, in place on x.
    for (std::size_t ii = n_; ii-- > 0;) {
      VecD acc = VecD::load(x + ii * stride + c);
      const std::size_t k_end = std::min(ii + w_, n_ - 1);
      for (std::size_t k = ii + 1; k <= k_end; ++k) {
        acc = acc - VecD::broadcast(l(k, ii)) * VecD::load(x + k * stride + c);
      }
      (acc / VecD::broadcast(l(ii, ii))).store(x + ii * stride + c);
    }
  }
  // Remainder lanes: the scalar substitution, per lane.
  for (; c < lanes; ++c) {
    for (std::size_t i = 0; i < n_; ++i) {
      double acc = b[i * stride + c];
      for (std::size_t k = i < w_ ? 0 : i - w_; k < i; ++k)
        acc -= l(i, k) * x[k * stride + c];
      x[i * stride + c] = acc / l(i, i);
    }
    for (std::size_t ii = n_; ii-- > 0;) {
      double acc = x[ii * stride + c];
      const std::size_t k_end = std::min(ii + w_, n_ - 1);
      for (std::size_t k = ii + 1; k <= k_end; ++k)
        acc -= l(k, ii) * x[k * stride + c];
      x[ii * stride + c] = acc / l(ii, ii);
    }
  }
}

Vector BandedCholesky::solve(std::span<const double> b) const {
  Vector x(n_, 0.0);
  solve_into(b, x);
  return x;
}

Matrix BandedCholesky::lower_dense() const {
  Matrix out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i < w_ ? 0 : i - w_; j <= i; ++j)
      out(i, j) = l(i, j);
  return out;
}

}  // namespace smoother::solver
