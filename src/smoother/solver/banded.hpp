// Symmetric banded matrices and banded Cholesky factorization.
//
// The structured FS fast path (structured_kkt.hpp) reduces the ADMM KKT
// system to a tridiagonal solve; BandedMatrix/BandedCholesky are the
// general-bandwidth carriers for that reduction, sitting alongside the
// dense Cholesky. For bandwidth 1 the factorization degenerates to the
// classic Thomas-style bidiagonal factor/solve: O(n) setup, O(n) solve,
// and — with solve_into — zero allocations per solve.
//
// Storage is the lower band only, row-major by diagonal offset: entry
// (i, j) with i >= j and i - j <= bandwidth lives at
// band_[i * (bandwidth + 1) + (i - j)]. The matrix is symmetric by
// construction — writes through entry(i, j) define both (i, j) and (j, i).
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "smoother/solver/matrix.hpp"

namespace smoother::solver {

/// Symmetric n-by-n matrix with all entries zero outside |i - j| <= w.
class BandedMatrix {
 public:
  /// Zero matrix with the given dimension and lower bandwidth w
  /// (w = 0 diagonal, w = 1 tridiagonal, ...). Throws std::invalid_argument
  /// when w >= n and n > 0 (use a dense Matrix at that point).
  BandedMatrix(std::size_t n, std::size_t bandwidth);

  /// Symmetric tridiagonal matrix from its diagonal and off-diagonal
  /// (off.size() must be diag.size() - 1).
  static BandedMatrix tridiagonal(std::span<const double> diag,
                                  std::span<const double> off);

  /// Extracts the band of a symmetric dense matrix; entries outside the
  /// band must be zero (throws std::invalid_argument otherwise, so a wrong
  /// bandwidth never silently drops mass).
  static BandedMatrix from_dense(const Matrix& a, std::size_t bandwidth);

  [[nodiscard]] std::size_t dimension() const { return n_; }
  [[nodiscard]] std::size_t bandwidth() const { return w_; }

  /// Symmetric read access; zero outside the band.
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const;

  /// Mutable access to the stored lower-band entry (requires i >= j and
  /// i - j <= bandwidth; the symmetric (j, i) entry is implied).
  [[nodiscard]] double& entry(std::size_t i, std::size_t j);

  [[nodiscard]] Matrix to_dense() const;

  /// Symmetric banded matrix-vector product, O(n * w).
  [[nodiscard]] Vector operator*(std::span<const double> x) const;
  void times_into(std::span<const double> x, std::span<double> out) const;

 private:
  std::size_t n_ = 0;
  std::size_t w_ = 0;
  Vector band_;  ///< lower band, row-major (see file comment)
};

/// LLᵀ factorization of a symmetric positive-definite banded matrix. The
/// factor keeps the bandwidth, so factorize is O(n * w^2) and each solve is
/// O(n * w) — for the tridiagonal KKT reduction both are O(n).
class BandedCholesky {
 public:
  /// Factorizes `a`; std::nullopt when `a` is not numerically positive
  /// definite (a pivot fell to <= 0 or lost finiteness).
  static std::optional<BandedCholesky> factorize(const BandedMatrix& a);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Allocation-free solve: forward then backward substitution in place on
  /// `x` (b is copied into x first; b and x must not alias).
  void solve_into(std::span<const double> b, std::span<double> x) const;

  /// Lane-batched solve: `lanes` independent right-hand sides stored
  /// lane-major with row stride `stride` (element (i, lane) lives at
  /// [i * stride + lane]; b and x are n * stride arrays, non-aliasing).
  /// The substitution sweeps are vectorized ACROSS the lane dimension and
  /// sequential in i, so every lane is bit-identical to a solve_into on
  /// that lane alone (see simd.hpp for the exactness contract).
  void solve_lanes_into(const double* b, double* x, std::size_t lanes,
                        std::size_t stride) const;

  [[nodiscard]] std::size_t dimension() const { return n_; }
  [[nodiscard]] std::size_t bandwidth() const { return w_; }

  /// The lower-triangular factor as a dense matrix (diagnostics/tests).
  [[nodiscard]] Matrix lower_dense() const;

 private:
  BandedCholesky(std::size_t n, std::size_t w, Vector band)
      : n_(n), w_(w), band_(std::move(band)) {}

  [[nodiscard]] double l(std::size_t i, std::size_t j) const {
    return band_[i * (w_ + 1) + (i - j)];
  }

  std::size_t n_ = 0;
  std::size_t w_ = 0;
  Vector band_;  ///< lower-triangular factor, same banded layout
};

}  // namespace smoother::solver
