// Stateful QP solver: factorize once per structure, warm-start across
// solves.
//
// solve_qp() rebuilds and refactorizes the KKT matrix
// K = P + sigma I + rho AᵀA on every call, even when only the vectors
// (q, l, u) changed — which is exactly the situation of consecutive
// Flexible Smoothing intervals: every interval of horizon length m shares
// P, A and therefore K, and differs only in the energy vector and the
// battery corridor bounds. QpSolver splits the OSQP lifecycle apart
// (Stellato et al., "OSQP: An Operator Splitting Solver for Quadratic
// Programs", §3):
//
//   setup(problem, settings)   validate + build + factorize K   (O(n³) once)
//   update(q, l, u)            swap the vectors, keep the factor       (O(n))
//   solve()                    ADMM, warm-started from the previous
//                              solution's (x, y, z) when available
//
// Warm-start invalidation rules:
//   * setup() always refactorizes and drops the warm-start state;
//   * update() keeps both (that is its purpose) but throws
//     std::invalid_argument on any dimension mismatch — a stale
//     factorization is never silently reused against new shapes;
//   * the convenience solve(problem, settings) overload re-runs setup()
//     automatically whenever the structure changed: dimensions, the P or A
//     entries, or a KKT-relevant setting (rho, sigma). Only an exact
//     structural match reuses the cached factor;
//   * reset_warm_start() drops the iterates but keeps the factorization —
//     the next solve cold-starts (used after a caller's world state
//     diverged from what the cached duals describe, e.g. degraded-mode
//     fallback intervals rewriting the battery trajectory).
//
// A warm-started solve runs the same ADMM loop to the same tolerances as a
// cold one; it converges in fewer iterations, to an iterate that can differ
// from the cold result only within those tolerances.
//
// Structured fast path: problems tagged QpStructure::kSmoothing are set up
// with the O(n) StructuredKkt factorization (tridiagonal + Sherman-Morrison,
// see structured_kkt.hpp) instead of the dense O(n³) Cholesky, and the ADMM
// loop runs the implicit O(n) FS operators in place of dense matvecs.
// Untagged problems take the dense path unchanged. Both paths share one
// ADMM loop and a preallocated workspace, so no heap allocation happens
// inside the iteration loop on either path.
//
// Ownership: a QpSolver is single-threaded mutable state. Concurrent sweeps
// must give each task its own instance (see runtime::SweepRunner); the TSan
// suite asserts per-task instances are clean.
#pragma once

#include <cstddef>
#include <optional>

#include "smoother/solver/cholesky.hpp"
#include "smoother/solver/matrix.hpp"
#include "smoother/solver/qp.hpp"
#include "smoother/solver/structured_kkt.hpp"

namespace smoother::solver {

/// Stateful ADMM QP solver with a cached KKT factorization and
/// warm-started iterates. See the file comment for the lifecycle.
class QpSolver {
 public:
  QpSolver() = default;

  /// Builds and factorizes the KKT system for `problem` under `settings`.
  /// Validates shapes (std::invalid_argument on mismatch). Returns kSolved
  /// when the factorization succeeded, kNumericalError when K is not
  /// numerically positive definite (non-PSD P). Drops any warm-start state.
  QpStatus setup(QpProblem problem, QpSettings settings = {});

  /// Replaces only the vectors of the problem; the cached factorization and
  /// the warm-start state survive. Requires a successful setup() and exact
  /// size matches (throws std::invalid_argument otherwise — structure is
  /// never silently reused).
  void update(Vector q, Vector lower, Vector upper);

  /// Runs ADMM on the current problem data, warm-starting from the previous
  /// solution when one is available. Without a successful setup() the
  /// result is kNumericalError; inconsistent bounds give kInfeasible.
  [[nodiscard]] QpResult solve();

  /// One-shot convenience with automatic re-setup: reuses the cached
  /// factorization iff `problem`/`settings` match the setup structure
  /// (dimensions, P, A, rho, sigma); otherwise runs setup() again. The
  /// non-structural knobs (tolerances, iteration caps, polish) are adopted
  /// either way.
  [[nodiscard]] QpResult solve(const QpProblem& problem,
                               const QpSettings& settings = {});

  /// Drops the warm-start iterates but keeps the factorization: the next
  /// solve() cold-starts.
  void reset_warm_start();

  /// True after a successful setup() (a factorization is cached).
  [[nodiscard]] bool is_setup() const {
    return factor_.has_value() || structured_.has_value();
  }

  /// True when the cached factorization is the structured O(n) fast path.
  [[nodiscard]] bool structured() const { return structured_.has_value(); }

  /// True when the next solve() will warm-start.
  [[nodiscard]] bool warm_ready() const { return warm_valid_; }

  [[nodiscard]] std::size_t num_variables() const {
    return problem_.num_variables();
  }
  [[nodiscard]] std::size_t num_constraints() const {
    return problem_.num_constraints();
  }

  [[nodiscard]] const QpSettings& settings() const { return settings_; }

  /// Lifecycle counters (per instance, deterministic).
  [[nodiscard]] std::size_t setup_count() const { return setup_count_; }
  [[nodiscard]] std::size_t solve_count() const { return solve_count_; }
  [[nodiscard]] std::size_t warm_start_count() const {
    return warm_start_count_;
  }
  /// Solves that ran against a previously-used factorization (every solve
  /// after the first per setup).
  [[nodiscard]] std::size_t factorization_reuse_count() const {
    return factorization_reuse_count_;
  }

 private:
  /// Exact structural match: same shapes, same P/A entries, same
  /// KKT-relevant settings.
  [[nodiscard]] bool structure_matches(const QpProblem& problem,
                                       const QpSettings& settings) const;

  QpProblem problem_;
  QpSettings settings_;
  std::optional<Cholesky> factor_;
  std::optional<StructuredKkt> structured_;

  /// Preallocated per-solve/per-iteration buffers, sized once in setup() so
  /// the ADMM loop never touches the heap. Names follow the loop variables.
  struct Workspace {
    // n-sized (variable space)
    Vector x, rhs, x_tilde, px, aty, chol_y, scratch;
    // m-sized (constraint space)
    Vector z, y, rz, ax_tilde, z_next, ax;

    void resize(std::size_t n, std::size_t m);
  };
  Workspace ws_;

  Vector warm_x_;
  Vector warm_y_;
  Vector warm_z_;
  bool warm_valid_ = false;
  bool factor_used_ = false;  ///< a solve has already run on this factor

  std::size_t setup_count_ = 0;
  std::size_t solve_count_ = 0;
  std::size_t warm_start_count_ = 0;
  std::size_t factorization_reuse_count_ = 0;
};

}  // namespace smoother::solver
