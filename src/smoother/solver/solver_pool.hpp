// SolverPool: shared, keyed QpSolver instances for batched planning.
//
// FlexibleSmoothing's private per-horizon cache gives every middleware
// instance its own solver — the right call for one stream, ruinous for a
// fleet: 10k tenants on one box would hold 10k identical factorizations of
// the same m-point FS KKT system. Every tenant with the same horizon length
// and the same KKT-relevant settings (rho, sigma — the two knobs baked into
// K = P + sigma I + rho AᵀA) solves against *the same matrix*, so one
// factorization can serve them all.
//
// SolverPool is that sharing point: a map from (num_variables, rho bit
// pattern, sigma bit pattern) to one stateful QpSolver. FlexibleSmoothing
// instances attach a pool with set_shared_solver_pool() and route their
// reuse_solver-cached solves through it; the first tenant to plan a given
// (m, settings) key pays the setup, every later tenant reuses the cached
// factor (QpSolver::solve's structural match sees identical P/A/rho/sigma
// and skips re-setup). `fleet.batched_factorizations` — the pool's setup
// count — stays at the number of distinct keys, not the number of tenants.
//
// Keys use the exact IEEE-754 bit patterns of rho and sigma, not their
// values: two settings that differ in any bit must not share a factor, and
// bitwise keying keeps the lookup exact without tolerance policy.
//
// Sharing contract (enforced where it can be):
//   * warm starts must be OFF for every attached instance
//     (FlexibleSmoothing::set_shared_solver_pool throws otherwise): ADMM
//     iterates are per-stream state, and seeding tenant B's solve from
//     tenant A's duals would couple their outputs. With warm_start off each
//     cached solve cold-starts, so only the factorization — which is
//     bitwise identical to the one a private solver would build — is
//     shared, and per-tenant outputs are unchanged by pooling.
//   * a pool is single-threaded mutable state, exactly like QpSolver.
//     Parallel users give each concurrency domain its own pool (the fleet
//     engine: one pool per shard, shards never run concurrently with
//     themselves).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <tuple>

#include "smoother/solver/batch_solver.hpp"
#include "smoother/solver/qp.hpp"
#include "smoother/solver/qp_solver.hpp"

namespace smoother::solver {

/// Aggregate lifecycle counters over a pool (sums of the member solvers'
/// counters; see QpSolver and BatchSolver).
struct SolverPoolStats {
  std::size_t solvers = 0;             ///< distinct (m, settings) keys
  std::size_t setups = 0;              ///< KKT factorizations built
  std::size_t solves = 0;              ///< ADMM runs through the pool
  std::size_t factorization_reuse = 0; ///< solves on a previously-used factor
  std::size_t batch_solvers = 0;       ///< distinct batched keys
  std::size_t batched_solves = 0;      ///< SoA chunk solves
  std::size_t batched_lanes = 0;       ///< lanes across all chunk solves
};

/// Shared pool of stateful QpSolvers keyed by problem size and the
/// KKT-relevant settings. See the file comment for the sharing contract.
class SolverPool {
 public:
  /// The solver for problems with `num_variables` unknowns under
  /// `settings`' KKT knobs, created on first use. The reference is stable
  /// for the pool's lifetime.
  [[nodiscard]] QpSolver& solver_for(std::size_t num_variables,
                                     const QpSettings& settings);

  /// The batched structured solver for horizon `m` under `settings`,
  /// created (and set up — the factorization is determined by the key) on
  /// first use; later calls adopt the non-structural settings. The
  /// reference is stable for the pool's lifetime. Callers must check
  /// is_setup(): a false return means the factorization failed and every
  /// lane should take the scalar path for its error reporting.
  [[nodiscard]] BatchSolver& batch_solver_for(std::size_t m,
                                              const QpSettings& settings);

  /// Drops every member solver's warm-start iterates (factorizations stay).
  /// A defensive sweep — attached instances must run with warm_start off,
  /// so member solvers normally hold no iterates to drop.
  void reset_warm_starts();

  [[nodiscard]] std::size_t size() const { return solvers_.size(); }

  [[nodiscard]] SolverPoolStats stats() const;

 private:
  /// (n, rho bits, sigma bits); bitwise so the match is exact.
  using Key = std::tuple<std::size_t, std::uint64_t, std::uint64_t>;

  std::map<Key, QpSolver> solvers_;
  std::map<Key, BatchSolver> batch_solvers_;
};

}  // namespace smoother::solver
