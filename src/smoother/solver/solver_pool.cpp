#include "smoother/solver/solver_pool.hpp"

#include <bit>

namespace smoother::solver {

QpSolver& SolverPool::solver_for(std::size_t num_variables,
                                 const QpSettings& settings) {
  return solvers_[Key{num_variables, std::bit_cast<std::uint64_t>(settings.rho),
                      std::bit_cast<std::uint64_t>(settings.sigma)}];
}

BatchSolver& SolverPool::batch_solver_for(std::size_t m,
                                          const QpSettings& settings) {
  BatchSolver& batch =
      batch_solvers_[Key{m, std::bit_cast<std::uint64_t>(settings.rho),
                         std::bit_cast<std::uint64_t>(settings.sigma)}];
  if (!batch.is_setup() && batch.setup_count() == 0) {
    (void)batch.setup(m, settings);
  } else {
    batch.adopt_settings(settings);
  }
  return batch;
}

void SolverPool::reset_warm_starts() {
  for (auto& [key, qp_solver] : solvers_) qp_solver.reset_warm_start();
}

SolverPoolStats SolverPool::stats() const {
  SolverPoolStats stats;
  stats.solvers = solvers_.size();
  for (const auto& [key, qp_solver] : solvers_) {
    stats.setups += qp_solver.setup_count();
    stats.solves += qp_solver.solve_count();
    stats.factorization_reuse += qp_solver.factorization_reuse_count();
  }
  stats.batch_solvers = batch_solvers_.size();
  for (const auto& [key, batch] : batch_solvers_) {
    stats.setups += batch.setup_count();
    stats.batched_solves += batch.solve_count();
    stats.batched_lanes += batch.lane_count();
  }
  return stats;
}

}  // namespace smoother::solver
