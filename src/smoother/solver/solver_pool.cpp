#include "smoother/solver/solver_pool.hpp"

#include <bit>

namespace smoother::solver {

QpSolver& SolverPool::solver_for(std::size_t num_variables,
                                 const QpSettings& settings) {
  return solvers_[Key{num_variables, std::bit_cast<std::uint64_t>(settings.rho),
                      std::bit_cast<std::uint64_t>(settings.sigma)}];
}

void SolverPool::reset_warm_starts() {
  for (auto& [key, qp_solver] : solvers_) qp_solver.reset_warm_start();
}

SolverPoolStats SolverPool::stats() const {
  SolverPoolStats stats;
  stats.solvers = solvers_.size();
  for (const auto& [key, qp_solver] : solvers_) {
    stats.setups += qp_solver.setup_count();
    stats.solves += qp_solver.solve_count();
    stats.factorization_reuse += qp_solver.factorization_reuse_count();
  }
  return stats;
}

}  // namespace smoother::solver
