#include "smoother/solver/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace smoother::solver {

std::optional<Cholesky> Cholesky::factorize(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("Cholesky: matrix not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  Vector y(n);
  Vector x(n);
  solve_into(b, y, x);
  return x;
}

void Cholesky::solve_into(std::span<const double> b,
                          std::span<double> y_scratch,
                          std::span<double> x) const {
  const std::size_t n = l_.rows();
  if (b.size() != n || y_scratch.size() != n || x.size() != n)
    throw std::invalid_argument("Cholesky::solve_into: size");
  // Forward solve L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y_scratch[k];
    y_scratch[i] = acc / l_(i, i);
  }
  // Backward solve Lᵀ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y_scratch[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
}

std::optional<Ldlt> Ldlt::factorize(const Matrix& a, double pivot_floor) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("Ldlt: matrix not square");
  const std::size_t n = a.rows();
  Matrix l = Matrix::identity(n);
  Vector d(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l(j, k) * l(j, k) * d[k];
    if (std::abs(dj) < pivot_floor || !std::isfinite(dj)) return std::nullopt;
    d[j] = dj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k) * d[k];
      l(i, j) = acc / dj;
    }
  }
  return Ldlt(std::move(l), std::move(d));
}

Vector Ldlt::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Ldlt::solve: size");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc;  // L is unit lower triangular
  }
  for (std::size_t i = 0; i < n; ++i) y[i] /= d_[i];
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc;
  }
  return x;
}

}  // namespace smoother::solver
