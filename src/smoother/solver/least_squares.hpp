// Nonlinear least squares via Levenberg-Marquardt.
//
// Used to fit the Gaussian-sum wind power curve G(v) of paper Eq. 2 to
// sampled (wind speed, power) pairs, replacing MATLAB's `fit(..., 'gaussN')`.
// The Jacobian is computed by central finite differences, which is accurate
// enough for the smooth exponential models fitted here.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "smoother/solver/matrix.hpp"

namespace smoother::solver {

/// Residual function: given parameters, returns the residual vector
/// r(theta) with r_i = model(x_i; theta) - y_i. The solver minimizes
/// (1/2)||r||^2.
using ResidualFn = std::function<Vector(std::span<const double>)>;

struct LeastSquaresSettings {
  std::size_t max_iterations = 200;
  double gradient_tolerance = 1e-10;  ///< stop when ||Jᵀr||_inf below this
  double step_tolerance = 1e-12;      ///< stop when the step is this small
  double initial_lambda = 1e-3;       ///< LM damping
  double lambda_up = 10.0;
  double lambda_down = 0.5;
  double fd_step = 1e-6;  ///< relative finite-difference step
};

enum class LeastSquaresStatus {
  kConverged,
  kMaxIterations,
  kStalled,  ///< damping grew without any acceptable step
};

[[nodiscard]] std::string to_string(LeastSquaresStatus status);

struct LeastSquaresResult {
  LeastSquaresStatus status = LeastSquaresStatus::kMaxIterations;
  Vector parameters;
  double cost = 0.0;  ///< (1/2)||r||^2 at the returned parameters
  std::size_t iterations = 0;

  [[nodiscard]] bool ok() const {
    return status == LeastSquaresStatus::kConverged;
  }
};

/// Minimizes (1/2)||r(theta)||^2 starting from `initial`.
[[nodiscard]] LeastSquaresResult levenberg_marquardt(
    const ResidualFn& residual, Vector initial,
    const LeastSquaresSettings& settings = {});

}  // namespace smoother::solver
