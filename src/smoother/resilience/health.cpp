#include "smoother/resilience/health.hpp"

#include <sstream>

namespace smoother::resilience {

void HealthReport::record_sample_fault(FaultKind kind) {
  if (kind == FaultKind::kNone) return;
  ++samples_faulted;
  ++faults[static_cast<std::size_t>(kind)];
}

void HealthReport::record_interval_fault(FaultKind kind) {
  if (kind == FaultKind::kNone) return;
  ++faults[static_cast<std::size_t>(kind)];
}

void HealthReport::record_fallback(FallbackReason reason) {
  if (reason == FallbackReason::kNone) return;
  ++intervals_fallback;
  ++fallbacks[static_cast<std::size_t>(reason)];
}

double HealthReport::fallback_rate() const {
  if (intervals_seen == 0) return 0.0;
  return static_cast<double>(intervals_fallback) /
         static_cast<double>(intervals_seen);
}

std::string HealthReport::summary() const {
  std::ostringstream os;
  os << "samples=" << samples_seen << " faulted=" << samples_faulted
     << " intervals=" << intervals_seen << " fallback=" << intervals_fallback;
  for (std::size_t i = 1; i < kFallbackReasonCount; ++i)
    if (fallbacks[i] > 0)
      os << " " << to_string(static_cast<FallbackReason>(i)) << "="
         << fallbacks[i];
  os << " degraded_entries=" << degraded_entries
     << " recoveries=" << recoveries;
  return os.str();
}

}  // namespace smoother::resilience
