// Deterministic fault injection for the online middleware path.
//
// The injector corrupts the world around OnlineSmoother the way real
// deployments do: telemetry faults per sample (NaN, dropout, spike,
// stuck-at), battery faults per interval (outage windows, capacity fade),
// forecast-oracle failures (exceptions, wrong length, stale data) and
// forced QP non-convergence.
//
// Every decision is a *pure function of (seed, fault stream, index)*, built
// on util::Rng::split — the same keyed-by-logical-identity discipline the
// runtime subsystem uses for parallel sweeps. Two consequences:
//
//   * a sweep over fault rates is deterministic for any thread count and
//     any call order (ext_fault_injection relies on this);
//   * fault sets are *nested* in the rate — every fault injected at rate r
//     is also injected at rate r' > r — so measured fallback curves are
//     monotone by construction, not just statistically.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "smoother/battery/battery.hpp"
#include "smoother/resilience/result.hpp"
#include "smoother/util/rng.hpp"

namespace smoother::resilience {

/// Fault probabilities. Telemetry rates are per sample; battery, oracle and
/// solver rates are per interval. Telemetry sub-kinds trigger independently
/// (each from its own split stream) with fixed priority NaN > dropout >
/// spike > stuck, so at most one fault fires per sample; the three oracle
/// rates are cumulative within one per-interval draw. Each group must sum
/// to <= 1.
struct FaultInjectorConfig {
  double telemetry_nan_rate = 0.0;
  double telemetry_dropout_rate = 0.0;
  double telemetry_spike_rate = 0.0;
  double telemetry_stuck_rate = 0.0;  ///< probability a stuck window starts
  std::size_t stuck_window_samples = 6;
  double spike_multiplier = 10.0;  ///< spike = clean sample * multiplier

  double battery_outage_rate = 0.0;  ///< probability an outage window starts
  std::size_t battery_outage_intervals = 4;
  double battery_capacity_fade = 0.0;  ///< fraction of capacity lost

  double oracle_throw_rate = 0.0;
  double oracle_bad_length_rate = 0.0;
  double oracle_stale_rate = 0.0;

  double solver_failure_rate = 0.0;  ///< force QP non-convergence

  /// Throws std::invalid_argument on rates outside [0,1] or cumulative
  /// groups summing beyond 1.
  void validate() const;
};

class FaultInjector {
 public:
  /// Oracle shape mirrors core::OnlineSmoother::ForecastOracle (spelled out
  /// here because resilience sits below core in the layering).
  using Oracle = std::function<std::vector<double>(std::size_t)>;

  FaultInjector(FaultInjectorConfig config, std::uint64_t seed);

  [[nodiscard]] const FaultInjectorConfig& config() const { return config_; }

  /// Corrupts the clean sample at stream position `index`. Call with
  /// samples in order: stuck-at replays the last clean value seen before
  /// the stuck window opened. NaN and dropout faults return quiet NaN.
  double corrupt_sample(std::size_t index, double clean_kw);

  /// Battery availability for the interval: false inside an injected
  /// outage window. Pure in the interval index.
  [[nodiscard]] bool battery_available(std::size_t interval) const;

  /// Whether the QP should be forced to non-convergence this interval.
  [[nodiscard]] bool solver_should_fail(std::size_t interval) const;

  /// The spec with the configured capacity fade applied.
  [[nodiscard]] battery::BatterySpec faded_spec(
      battery::BatterySpec spec) const;

  /// Wraps a forecast oracle: per interval it may throw, truncate the
  /// forecast, or substitute the forecast of an earlier interval.
  [[nodiscard]] Oracle wrap_oracle(Oracle inner);

  /// The stuck-at replay source: the last clean value seen before the
  /// current position. This is the injector's one piece of sequential
  /// state — every other decision is pure in (seed, stream, index) — so a
  /// checkpoint/restore cycle that wants corrupt_sample() to continue
  /// byte-identically must carry it across (the injected() counters, by
  /// contrast, are per-run observations and restart at zero).
  [[nodiscard]] double last_clean_kw() const { return last_clean_kw_; }

  /// Restores the stuck-at replay source from a checkpoint. Throws
  /// std::invalid_argument on a non-finite value.
  void restore_last_clean(double kw);

  /// Ground-truth injection counters by FaultKind (what was injected, as
  /// opposed to what the guard detected).
  [[nodiscard]] const std::array<std::uint64_t, kFaultKindCount>& injected()
      const {
    return injected_;
  }
  [[nodiscard]] std::uint64_t injected_of(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }

 private:
  /// Uniform [0,1) draw keyed by (seed, stream, index).
  [[nodiscard]] double draw(std::uint64_t stream, std::uint64_t index) const;

  void count(FaultKind kind) { ++injected_[static_cast<std::size_t>(kind)]; }

  FaultInjectorConfig config_;
  std::uint64_t seed_;
  double last_clean_kw_ = 0.0;  ///< stuck-at replay source
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace smoother::resilience
