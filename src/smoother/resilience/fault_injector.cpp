#include "smoother/resilience/fault_injector.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace smoother::resilience {

namespace {

// Fault-stream ids for Rng::split. Arbitrary distinct constants; changing
// them changes every injected fault pattern, so they are frozen here.
// Each telemetry sub-kind draws from its own stream: with one shared
// cumulative draw the slice boundaries move as rates change, so the set of
// *detectable* faults (NaN/dropout/overrange) would not be nested in the
// rate — a detectable fault could turn into an undetectable stuck-at.
constexpr std::uint64_t kStreamTelemetryNan = 0x7e1e;
constexpr std::uint64_t kStreamTelemetryDropout = 0xd409;
constexpr std::uint64_t kStreamTelemetrySpike = 0x591c;
constexpr std::uint64_t kStreamTelemetryStuck = 0x57cc;
constexpr std::uint64_t kStreamBattery = 0xba77;
constexpr std::uint64_t kStreamOracle = 0x0a1e;
constexpr std::uint64_t kStreamSolver = 0x501e;

void check_rate(double rate, const char* name) {
  if (!(rate >= 0.0 && rate <= 1.0))
    throw std::invalid_argument(std::string("FaultInjectorConfig: ") + name +
                                " must be in [0,1]");
}

}  // namespace

void FaultInjectorConfig::validate() const {
  check_rate(telemetry_nan_rate, "telemetry_nan_rate");
  check_rate(telemetry_dropout_rate, "telemetry_dropout_rate");
  check_rate(telemetry_spike_rate, "telemetry_spike_rate");
  check_rate(telemetry_stuck_rate, "telemetry_stuck_rate");
  check_rate(battery_outage_rate, "battery_outage_rate");
  check_rate(oracle_throw_rate, "oracle_throw_rate");
  check_rate(oracle_bad_length_rate, "oracle_bad_length_rate");
  check_rate(oracle_stale_rate, "oracle_stale_rate");
  check_rate(solver_failure_rate, "solver_failure_rate");
  if (telemetry_nan_rate + telemetry_dropout_rate + telemetry_spike_rate +
          telemetry_stuck_rate >
      1.0)
    throw std::invalid_argument(
        "FaultInjectorConfig: telemetry rates must sum to <= 1");
  if (oracle_throw_rate + oracle_bad_length_rate + oracle_stale_rate > 1.0)
    throw std::invalid_argument(
        "FaultInjectorConfig: oracle rates must sum to <= 1");
  if (stuck_window_samples == 0)
    throw std::invalid_argument(
        "FaultInjectorConfig: stuck window must be >= 1 sample");
  if (battery_outage_intervals == 0)
    throw std::invalid_argument(
        "FaultInjectorConfig: outage window must be >= 1 interval");
  if (spike_multiplier <= 1.0)
    throw std::invalid_argument(
        "FaultInjectorConfig: spike multiplier must be > 1");
  if (battery_capacity_fade < 0.0 || battery_capacity_fade >= 1.0)
    throw std::invalid_argument(
        "FaultInjectorConfig: capacity fade must be in [0,1)");
}

FaultInjector::FaultInjector(FaultInjectorConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  config_.validate();
}

double FaultInjector::draw(std::uint64_t stream, std::uint64_t index) const {
  return util::Rng(seed_).split(stream).split(index).uniform();
}

double FaultInjector::corrupt_sample(std::size_t index, double clean_kw) {
  // Fixed priority NaN > dropout > spike > stuck-window. Every sub-kind's
  // per-index draw comes from its own stream, so each sub-kind's trigger
  // set — and their union, and the detectable subset — is nested in the
  // rate, which is exactly what makes measured fallback curves monotone.
  if (draw(kStreamTelemetryNan, index) < config_.telemetry_nan_rate) {
    count(FaultKind::kTelemetryNaN);
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (draw(kStreamTelemetryDropout, index) < config_.telemetry_dropout_rate) {
    count(FaultKind::kTelemetryDropout);
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (draw(kStreamTelemetrySpike, index) < config_.telemetry_spike_rate) {
    count(FaultKind::kTelemetrySpike);
    return clean_kw * config_.spike_multiplier;
  }
  // A stuck window that opened at j covers samples [j, j + window); the
  // replayed value is the last clean sample delivered before the window,
  // so membership is checked before updating last_clean_kw_.
  if (config_.telemetry_stuck_rate > 0.0) {
    const std::size_t window = config_.stuck_window_samples;
    const std::size_t lo = index + 1 >= window ? index + 1 - window : 0;
    for (std::size_t j = lo; j <= index; ++j)
      if (draw(kStreamTelemetryStuck, j) < config_.telemetry_stuck_rate) {
        count(FaultKind::kTelemetryStuck);
        return last_clean_kw_;
      }
  }
  last_clean_kw_ = clean_kw;
  return clean_kw;
}

void FaultInjector::restore_last_clean(double kw) {
  if (!std::isfinite(kw))
    throw std::invalid_argument(
        "FaultInjector::restore_last_clean: value must be finite");
  last_clean_kw_ = kw;
}

bool FaultInjector::battery_available(std::size_t interval) const {
  if (config_.battery_outage_rate <= 0.0) return true;
  const std::size_t window = config_.battery_outage_intervals;
  const std::size_t lo = interval + 1 >= window ? interval + 1 - window : 0;
  for (std::size_t j = lo; j <= interval; ++j)
    if (draw(kStreamBattery, j) < config_.battery_outage_rate) return false;
  return true;
}

bool FaultInjector::solver_should_fail(std::size_t interval) const {
  return config_.solver_failure_rate > 0.0 &&
         draw(kStreamSolver, interval) < config_.solver_failure_rate;
}

battery::BatterySpec FaultInjector::faded_spec(battery::BatterySpec spec) const {
  spec.capacity = spec.capacity * (1.0 - config_.battery_capacity_fade);
  return spec;
}

FaultInjector::Oracle FaultInjector::wrap_oracle(Oracle inner) {
  return [this, inner = std::move(inner)](std::size_t interval) {
    const double u = draw(kStreamOracle, interval);
    double cum = config_.oracle_throw_rate;
    if (u < cum) {
      count(FaultKind::kOracleThrow);
      throw std::runtime_error("injected: forecast oracle outage");
    }
    cum += config_.oracle_bad_length_rate;
    if (u < cum) {
      count(FaultKind::kOracleBadLength);
      std::vector<double> forecast = inner(interval);
      forecast.resize(forecast.size() / 2);
      return forecast;
    }
    cum += config_.oracle_stale_rate;
    if (u < cum) {
      count(FaultKind::kOracleStale);
      // Plausible-but-wrong: the forecast of three intervals ago.
      return inner(interval >= 3 ? interval - 3 : 0);
    }
    return inner(interval);
  };
}

}  // namespace smoother::resilience
