// Error taxonomy for the online middleware path.
//
// A deployed Smoother sits in the live power path of a datacenter; the
// streaming pipeline must not die mid-stream because a sensor emitted NaN,
// the forecast service threw, or the QP stopped one iteration short of its
// tolerance. The streaming hot path therefore reports failures as values —
// a FaultKind classifying *what went wrong* plus a FallbackReason recording
// *how the interval was handled instead* — and reserves exceptions for
// construction-time configuration errors, where dying early is correct.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

namespace smoother::resilience {

/// What went wrong. Telemetry kinds classify single samples; the battery,
/// oracle and solver kinds classify interval-boundary failures.
enum class FaultKind {
  kNone = 0,
  kTelemetryNaN,        ///< non-finite sample (NaN or +-inf)
  kTelemetryDropout,    ///< sample never arrived (gap in the stream)
  kTelemetrySpike,      ///< implausible magnitude vs rated power
  kTelemetryStuck,      ///< sensor repeats a previous reading (undetectable
                        ///< at the guard; injected for robustness testing)
  kBatteryOutage,       ///< battery reported unavailable for the interval
  kOracleThrow,         ///< forecast oracle raised an exception
  kOracleBadLength,     ///< forecast of the wrong length
  kOracleStale,         ///< forecast for an earlier interval (plausible but
                        ///< wrong; injected for robustness testing)
  kSolverFailure,       ///< QP did not reach kSolved
  kInternalError,       ///< unexpected exception inside the interval path
};
inline constexpr std::size_t kFaultKindCount = 11;

[[nodiscard]] std::string to_string(FaultKind kind);

/// How an interval that could not take the planned QP path was handled.
enum class FallbackReason {
  kNone = 0,             ///< normal QP-planned interval
  kTelemetryUnreliable,  ///< too many faulted samples to trust the window
  kBatteryFaulted,       ///< battery unavailable: pass-through
  kOracleFailed,         ///< oracle threw / wrong length: cheap plan
  kSolverNotConverged,   ///< QP status != kSolved: cheap plan
  kDegradedHold,         ///< healthy interval inside the recovery window
  kInternalError,        ///< defensive catch-all around the interval path
};
inline constexpr std::size_t kFallbackReasonCount = 7;

[[nodiscard]] std::string to_string(FallbackReason reason);

/// A classified failure with a human-readable message.
struct Error {
  FaultKind kind = FaultKind::kNone;
  std::string message;
};

/// Value-or-Error, the return shape of fallible hot-path steps. Deliberately
/// minimal: the streaming loop only ever asks "did it work, and if not,
/// what kind of fault was it".
template <class T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() { return *value_; }
  [[nodiscard]] const T& value() const { return *value_; }
  [[nodiscard]] const Error& error() const { return error_; }

 private:
  std::optional<T> value_;
  Error error_;
};

}  // namespace smoother::resilience
